#!/usr/bin/env python3
"""The Piz Daint scaling study (Figs. 2 and 3) from the cluster simulator.

Builds the structural V1309 octrees, partitions them along the space-
filling curve, and evaluates per-step times over 1..N simulated Piz Daint
nodes for both parcelports — printing the speedup and ratio series the
paper plots.

Run:  python examples/scaling_study.py            (levels 14-15, <=512 nodes)
      REPRO_FULL_SCALE=1 python examples/scaling_study.py   (14-17, 5400)
"""

import os

from repro.analysis import format_table
from repro.simulator.scaling import parcelport_ratio, scaling_sweep


def main() -> None:
    full = os.environ.get("REPRO_FULL_SCALE", "0") == "1"
    levels = (14, 15, 16, 17) if full else (14, 15)
    max_nodes = 5400 if full else 512

    print("Fig. 2 - speedup w.r.t. sub-grids/s of level 14 on one node")
    points = scaling_sweep(levels=levels, max_nodes=max_nodes)
    rows = [[p.level, p.n_nodes, p.parcelport, f"{p.speedup:.1f}",
             f"{p.efficiency * 100:.1f}"] for p in points
            if p.parcelport == "libfabric" or p.n_nodes >= 8]
    print(format_table(["level", "nodes", "port", "speedup", "eff %"],
                       rows))

    print("\nFig. 3 - libfabric / MPI throughput ratio")
    ratio_levels = tuple(l for l in levels if l <= 16)
    series = parcelport_ratio(levels=ratio_levels, max_nodes=max_nodes)
    print(format_table(["level", "nodes", "ratio"],
                       [[l, n, f"{r:.3f}"] for l, n, r in series]))

    peak = max(r for _l, _n, r in series)
    dip = min(r for _l, n, r in series if n <= 8)
    print(f"\nshape summary: small-scale dip {dip:.3f} (paper: <1), "
          f"peak gain {peak:.2f}x (paper: up to ~2.8x at full scale)")


if __name__ == "__main__":
    main()
