#!/usr/bin/env python3
"""The Fig. 1 scenario: a V1309 Scorpii-like contact binary.

Builds the binary with the Hachisu SCF solver (mass ratio q ~ 0.11,
synchronous rotation, common envelope), evolves a few coupled
gravity+hydro steps in the rotating frame, prints an ASCII density slice
through the orbital plane, and reports conservation — a laptop-scale
version of the paper's production scenario.

Run:  python examples/v1309_merger.py
"""

import numpy as np

from repro.core import RHO, ConservationMonitor, v1309_binary

GLYPHS = " .:-=+*#%@"


def density_slice_ascii(rho: np.ndarray) -> str:
    mid = rho.shape[2] // 2
    slab = rho[:, :, mid].T
    peak = slab.max()
    rows = []
    for row in slab[::-1]:
        line = ""
        for v in row:
            t = np.log10(max(v, 1e-12) / peak)
            idx = int(np.clip((t + 4.0) / 4.0, 0, 1) * (len(GLYPHS) - 1))
            line += GLYPHS[idx] * 2
        rows.append(line)
    return "\n".join(rows)


def main() -> None:
    print("building the SCF contact-binary model (q = 0.11)...")
    mesh = v1309_binary(M=16, scf_iters=25)
    print(f"  orbital frequency Omega = {mesh.options.omega:.4f} "
          f"(period {2 * np.pi / mesh.options.omega:.2f} code units)")
    print(f"  total mass {mesh.conserved_totals()['mass']:.4f}\n")
    print("density in the orbital plane (log scale):")
    print(density_slice_ascii(mesh.interior[RHO]))

    monitor = ConservationMonitor()
    monitor.sample(mesh)
    n_steps = 5
    print(f"\nevolving {n_steps} coupled FMM+hydro steps "
          "in the rotating frame...")
    for _ in range(n_steps):
        dt = min(mesh.compute_dt(), 0.02)
        mesh.step(dt)
        monitor.sample(mesh)
    rep = monitor.report()
    lz = monitor.records[-1].angular_momentum[2]
    print(f"t = {mesh.time:.4f}: mass drift {rep['mass']:.2e}, "
          f"Lz = {lz:.5f} (drift {rep['angular_momentum']:.2e})")
    print("\nfinal density slice:")
    print(density_slice_ascii(mesh.interior[RHO]))


if __name__ == "__main__":
    main()
