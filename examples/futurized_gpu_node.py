#!/usr/bin/env python3
"""Futurization + simulated CUDA streams: the Sec. 5.1 execution model.

Demonstrates the runtime substrate on one "node": FMM kernels for a batch
of sub-grids are launched through the paper's policy (GPU stream if one
of the caller's streams is idle, CPU otherwise), with completions setting
futures that chain into dependent tasks — no explicit synchronization
anywhere.  Also prints the launch-fraction statistic the paper reports
(97.4995% / 99.9997% of kernels on the GPU, Sec. 6.1.2).

Run:  python examples/futurized_gpu_node.py
"""

import time

import numpy as np

from repro.core.gravity.kernels import p2p_pair
from repro.runtime import (CudaDevice, LaunchPolicy, StreamPool,
                           WorkStealingScheduler, dataflow, when_all)


def make_kernel(rng, n_pairs=2000):
    """A monopole interaction batch, the 12-flop kernel of Sec. 4.3."""
    dR = rng.normal(size=(n_pairs, 3)) * 6 + 5
    mA = rng.uniform(0.5, 2.0, n_pairs)
    mB = rng.uniform(0.5, 2.0, n_pairs)
    return lambda: p2p_pair(dR, mA, mB)[0].sum()


def main() -> None:
    rng = np.random.default_rng(1)
    n_subgrids = 256
    kernels = [make_kernel(rng) for _ in range(n_subgrids)]

    with CudaDevice(n_streams=32, n_workers=4, name="sim-P100") as gpu, \
            WorkStealingScheduler(4) as cpu:
        policy = LaunchPolicy(StreamPool([gpu]))

        t0 = time.perf_counter()
        # launch every sub-grid's kernel; attach a "communication"
        # continuation to each (the halo send that follows the solve)
        sends = []
        for i, kern in enumerate(kernels):
            fut = policy.launch(kern)
            sends.append(fut.then(lambda f, i=i: ("sent", i, f.get()),
                                  executor=cpu.post))
        # a dependent reduction fires only when every send completed
        total = dataflow(lambda results: sum(r[2] for r in results),
                         when_all(sends).then(
                             lambda f: [x.get() for x in f.get()]))
        value = total.get()
        elapsed = time.perf_counter() - t0

    print(f"{n_subgrids} FMM kernels + continuations in {elapsed:.2f}s")
    print(f"GPU launches: {policy.gpu_launches}, "
          f"CPU fallbacks: {policy.cpu_launches}")
    print(f"GPU launch fraction: {policy.gpu_fraction * 100:.4f}% "
          "(the Sec. 6.1.2 statistic)")
    print(f"reduction over all kernels: {value:.3f}")


if __name__ == "__main__":
    main()
