#!/usr/bin/env python3
"""Distributed V1309 merger: real physics sharded over localities.

The Sec. 4.2 contact-binary merger runs twice on one SCF solve: once as
the node-level :class:`repro.core.BlockMesh` (all blocks local), once as
a :class:`repro.core.DistBlockMesh` whose blocks are AGAS-registered
components sharded across simulated localities, halos charged through
the parcelport cost model (eager vs rendezvous vs RMA) and delivered in
a seeded out-of-order shuffle.  Mid-run one locality goes silent; the
phi-accrual failure detector notices, AGAS evacuates its blocks, the
victim's data is clobbered (a node death takes its memory with it), and
the run rolls back to the latest checkpoint and replays on the
survivors.  The final state must come out **byte-identical** to the
node-level run, with the ``/distmesh/*`` and ``/parcels/halo:*``
counters reconciling exactly.

Run:  python examples/distributed_merger.py
      python examples/distributed_merger.py --localities 8 --port mpi
      python examples/distributed_merger.py --no-kill --steps 5
"""

import argparse

from repro.analysis import format_report
from repro.resilience.distrun import (DistributedMergerConfig,
                                      run_distributed_merger)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="distributed V1309 merger with a mid-run locality kill")
    defaults = DistributedMergerConfig()
    parser.add_argument("--M", type=int, default=defaults.M,
                        help="cells per edge (multiple of 8, 2^k blocks)")
    parser.add_argument("--steps", type=int, default=defaults.steps)
    parser.add_argument("--scf-iters", type=int, default=defaults.scf_iters)
    parser.add_argument("--localities", type=int,
                        default=defaults.n_localities)
    parser.add_argument("--port", choices=("mpi", "libfabric"),
                        default=defaults.port)
    parser.add_argument("--reorder-seed", type=int,
                        default=defaults.reorder_seed,
                        help="seed for out-of-order remote halo delivery")
    parser.add_argument("--kill", type=int, default=defaults.kill_locality,
                        help="locality to silence mid-run")
    parser.add_argument("--no-kill", action="store_true",
                        help="fault-free distributed run")
    parser.add_argument("--kill-after", type=int,
                        default=defaults.kill_after_steps,
                        help="steps to complete before the kill")
    args = parser.parse_args()

    cfg = DistributedMergerConfig(
        M=args.M, scf_iters=args.scf_iters, steps=args.steps,
        n_localities=args.localities, port=args.port,
        reorder_seed=args.reorder_seed,
        kill_locality=None if args.no_kill else args.kill,
        kill_after_steps=args.kill_after)

    print(f"running V1309 merger (M={cfg.M}) node-level and distributed "
          f"over {cfg.n_localities} localities via {cfg.port} "
          f"(kill={cfg.kill_locality}) ...\n")
    result = run_distributed_merger(cfg)

    print(result.summary())
    print()
    print("conservation drifts (node-level == distributed, byte for byte):")
    for key, val in result.dist_monitor.report().items():
        print(f"  {key:<18} {val:.3e}")
    print()
    print(format_report(result.registry))

    if not result.bitwise_identical:
        raise SystemExit(
            "distributed run diverged from the node-level run")
    if not result.reports_identical:
        raise SystemExit("conservation reports differ")
    if not result.counters_reconcile:
        raise SystemExit(
            "/distmesh and /parcels halo counters do not reconcile")


if __name__ == "__main__":
    main()
