#!/usr/bin/env python3
"""Chaos run: the V1309 merger under every fault class at once.

One scaled-down merger evolves while the full adversary is active —
lossy/delaying halo parcels, transient task faults, a permanently
poisoned CUDA stream, a locality that silently goes dark mid-run, an
announced step fault and a silent state corruption.  The defence layers
(parcel retry, task re-execution, stream quarantine, phi-accrual failure
detection with automatic AGAS evacuation, guarded stepping with
checkpoint rollback) each engage at least once, and the final state plus
conservation drifts come out **byte-identical** to a fault-free run.

With ``REPRO_SANITIZE=1`` the dynamic sanitizers watch the whole run
(lock orders, the future wait-for graph, lease/channel protocols) and a
quiesce-point sweep runs after the chaotic evolution: the chaos gauntlet
must come out with **zero findings** — CI enforces this.

Run:  python examples/chaos_merger.py
"""

from repro import sanitize
from repro.analysis import format_report
from repro.resilience.chaos import ChaosConfig, run_chaos_merger
from repro.runtime.counters import default_registry


def main() -> None:
    registry = default_registry()
    registry.reset()

    cfg = ChaosConfig()
    print(f"running V1309 merger (M={cfg.M}) fault-free and under chaos "
          f"(seed={cfg.seed}) ...\n")
    result = run_chaos_merger(cfg, registry=registry)

    print(result.summary())
    print()
    print("conservation drifts (clean == chaotic, byte for byte):")
    for key, val in result.chaos_report.items():
        print(f"  {key:<18} {val:.3e}")
    print()
    print(format_report(registry))

    if sanitize.enabled():
        sanitize.sweep()
        sanitize.publish_counters(registry)
        print()
        print(sanitize.report())
        if sanitize.finding_count():
            raise SystemExit(
                "sanitizers reported findings during the chaos run")

    if not result.bitwise_identical:
        raise SystemExit("chaos run diverged from the fault-free run")


if __name__ == "__main__":
    main()
