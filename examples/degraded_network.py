#!/usr/bin/env python3
"""Scaling on a faulty machine: the Fig. 2 study under message loss.

The paper's runs assume a lossless interconnect.  This example reruns the
per-step model for the level-14 V1309 workload over 1..512 Piz Daint nodes
while the resilience layer recovers from 1% / 5% / 10% iid parcel loss
(retry with exponential backoff, budgets from NETWORK_RETRY_POLICY), and
prints how much scaling survives — the degraded-network curves the
/resilience counters are built to explain.

Run:  python examples/degraded_network.py
"""

from repro.analysis import format_table
from repro.network import PARCELPORTS
from repro.resilience import NETWORK_RETRY_POLICY
from repro.runtime import CounterRegistry
from repro.simulator import PIZ_DAINT, StepModel
from repro.simulator.scaling import cached_profile

LOSS_RATES = (0.0, 0.01, 0.05, 0.10)
NODE_COUNTS = (1, 8, 64, 256, 512)


def main() -> None:
    profile = cached_profile(14)
    port = PARCELPORTS["libfabric"]
    policy = NETWORK_RETRY_POLICY
    print(f"level-14 V1309 workload, libfabric parcelport, retry budget "
          f"{policy.max_attempts} attempts / {policy.base_backoff * 1e6:.0f}"
          f" us base backoff\n")

    registry = CounterRegistry()
    models = {p: StepModel(profile, PIZ_DAINT, loss_rate=p,
                           registry=registry) for p in LOSS_RATES}
    rows = []
    for n in NODE_COUNTS:
        results = {p: m.step_time(n, port) for p, m in models.items()}
        base = results[0.0].t_step
        rows.append([n] + [f"{results[p].t_step * 1e3:.2f}"
                           for p in LOSS_RATES]
                    + [f"{100 * (results[0.10].t_step / base - 1):.1f}"])
    print(format_table(
        ["nodes"] + [f"t_step ms @{p:.0%} loss" for p in LOSS_RATES]
        + ["slowdown % @10%"], rows))

    print("\nresilience accounting at 512 nodes, 10% loss:")
    snap = registry.snapshot()
    name = port.name
    print(f"  expected sends per message  "
          f"{snap[f'/simulator/step/{name}/retry-attempts-per-msg']:.3f}")
    print(f"  retransmitted messages      "
          f"{snap[f'/simulator/step/{name}/retry-messages']:.0f}")
    print(f"  delivery probability        "
          f"{snap[f'/simulator/step/{name}/delivery-probability']:.6f}")
    undelivered = 1.0 - snap[f'/simulator/step/{name}/delivery-probability']
    print(f"  (per-message giving-up risk {undelivered:.2e} -> those fall "
          "back to checkpoint/restore, see examples in EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
