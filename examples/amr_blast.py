#!/usr/bin/env python3
"""Adaptive mesh refinement: a blast wave across resolution jumps.

Builds an octree refined around the explosion site, evolves the blast
with the refluxing AMR driver, and shows that mass/energy are conserved
to machine precision across the coarse-fine boundaries — the AMR half of
Octo-Tiger's Sec. 4.2 datastructure.

Run:  python examples/amr_blast.py
"""

import numpy as np

from repro.core import EGAS, RHO, TAU, IdealGas, Octree
from repro.core.amr import AmrMesh
from repro.core.hydro.solver import HydroOptions


def main() -> None:
    eos = IdealGas(gamma=1.4)
    tree = Octree(domain=1.0)
    tree.refine(0, (0, 0, 0))
    tree.refine(1, (0, 0, 0))       # extra resolution near the corner blast

    for leaf in tree.leaves():
        I = leaf.grid.interior
        I[RHO] = 1.0
        I[EGAS] = 1e-6 / (eos.gamma - 1.0)
        I[TAU] = eos.tau_from_eint(np.asarray(I[EGAS]))
        x, y, z = leaf.grid.cell_centers()
        # blast centred on the coarse-fine boundary at (0.5, 0.45, 0.45)
        src = ((x - 0.5) ** 2 + (y - 0.45) ** 2
               + (z - 0.45) ** 2) < 0.09 ** 2
        n_src = int(src.sum())
        if n_src:
            eint = 0.05 / (n_src * leaf.grid.cell_volume)
            I[EGAS][src] = eint
            I[TAU][src] = eos.tau_from_eint(np.full(n_src, eint))

    mesh = AmrMesh(tree, HydroOptions(eos=eos), bc="reflect")
    levels = sorted({leaf.level for leaf in tree.leaves()})
    print(f"octree: {tree.n_nodes} nodes, {tree.n_leaves} leaves on "
          f"levels {levels}")
    t0 = mesh.totals()
    print(f"initial: mass={t0['mass']:.6f} egas={t0['egas']:.6f}")

    for _ in range(12):
        dt = min(mesh.compute_dt(), 0.003)
        mesh.step(dt)
    t1 = mesh.totals()
    print(f"t={mesh.time:.4f} ({mesh.steps} steps)")
    print(f"mass drift across AMR boundaries: "
          f"{abs(t1['mass'] - t0['mass']) / t0['mass']:.2e}")
    print(f"energy drift:                     "
          f"{abs(t1['egas'] - t0['egas']) / t0['egas']:.2e}")
    peak = max(float(l.grid.interior[RHO].max()) for l in tree.leaves())
    print(f"peak compression: {peak:.2f} "
          f"(strong-shock limit {(1.4 + 1) / (1.4 - 1):.0f})")


if __name__ == "__main__":
    main()
