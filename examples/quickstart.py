#!/usr/bin/env python3
"""Quickstart: a self-gravitating star on the grid in ~40 lines.

Builds a Lane-Emden polytrope in hydrostatic equilibrium, evolves it with
the coupled FMM-gravity + PPM-hydro solver, and prints the conservation
report — the smallest end-to-end tour of the public API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import RHO, ConservationMonitor, equilibrium_star, evolve

def main() -> None:
    # a polytropic star (n = 3/2, the fully convective stars of V1309)
    # centred in a 4-radius box, with FMM self-gravity enabled
    mesh = equilibrium_star(n=16, domain=4.0, n_poly=1.5,
                            radius=1.0, mass=1.0)
    rho0 = mesh.interior[RHO].copy()
    print(f"initial model: {mesh.n}^3 cells, "
          f"central density {rho0.max():.3f}, "
          f"mass {mesh.conserved_totals()['mass']:.4f}")

    monitor = ConservationMonitor()
    evolve(mesh, t_end=0.5, monitor=monitor, max_steps=40)

    drift = np.abs(mesh.interior[RHO] - rho0).max() / rho0.max()
    report = monitor.report()
    print(f"evolved to t={mesh.time:.3f} in {mesh.steps} steps")
    print(f"density drift (hydrostatic equilibrium): {drift:.2e}")
    print(f"mass drift:             {report['mass']:.2e}")
    print(f"momentum drift:         {report['momentum']:.2e}")
    print(f"angular momentum drift: {report['angular_momentum']:.2e}")
    print("OK" if drift < 0.1 else "WARNING: equilibrium not held")


if __name__ == "__main__":
    main()
