#!/usr/bin/env python3
"""Verification test 2 (Sec. 4.2): the Sedov-Taylor blast wave.

Deposits a point explosion in a cold uniform medium, tracks the spherical
shock front, and compares its radius against the self-similar solution
R(t) = (E t^2 / (alpha rho0))^(1/5).

Run:  python examples/sedov_taylor.py
"""

import numpy as np

from repro.core import RHO, sedov_blast
from repro.validation import shock_radius


def measure_shock(mesh) -> float:
    x, y, z = mesh.cell_centers()
    r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
    shell = r[mesh.interior[RHO] > 1.3]
    return float(shell.max()) if len(shell) else 0.0


def main() -> None:
    E, rho0, gamma = 1.0, 1.0, 1.4
    mesh = sedov_blast(n=32, E=E, rho0=rho0, gamma=gamma)
    print("Sedov-Taylor blast: E=1 in a rho=1 cold medium, 32^3 cells")
    print(f"{'t':>8} {'R_sim':>8} {'R_sedov':>9} {'ratio':>7} {'rho_max':>8}")
    for t_end in (0.004, 0.008, 0.012, 0.016, 0.020):
        while mesh.time < t_end:
            mesh.step(min(mesh.compute_dt(), t_end - mesh.time))
        r_sim = measure_shock(mesh)
        r_ana = shock_radius(mesh.time, E, rho0, gamma)
        print(f"{mesh.time:8.4f} {r_sim:8.4f} {r_ana:9.4f} "
              f"{r_sim / r_ana:7.3f} {mesh.interior[RHO].max():8.3f}")
    print("\nratio should be ~1 and stable: the front obeys R ~ t^(2/5)")
    print(f"ideal-gas strong-shock compression limit: "
          f"{(gamma + 1) / (gamma - 1):.1f}")


if __name__ == "__main__":
    main()
