#!/usr/bin/env python3
"""Verification test 1 (Sec. 4.2): the Sod shock tube vs its exact solution.

Evolves the standard Sod problem to t = 0.2 and prints an ASCII overlay
of the simulated and exact density profiles plus the L1 error.

Run:  python examples/sod_shock_tube.py
"""

import numpy as np

from repro.core import RHO, sod_tube
from repro.validation import sod_solution


def ascii_profile(x, sim, exact, width=64, height=16) -> str:
    lines = [[" "] * width for _ in range(height)]
    lo, hi = 0.0, 1.05
    for xi, si, ei in zip(x, sim, exact):
        col = min(int(xi * width), width - 1)
        row_e = height - 1 - int((ei - lo) / (hi - lo) * (height - 1))
        lines[row_e][col] = "."
    for xi, si in zip(x, sim):
        col = min(int(xi * width), width - 1)
        row_s = height - 1 - int((si - lo) / (hi - lo) * (height - 1))
        lines[row_s][col] = "#"
    return "\n".join("".join(r) for r in lines)


def main() -> None:
    mesh = sod_tube(n=(128, 8, 8))
    t_end = 0.2
    while mesh.time < t_end:
        mesh.step(min(mesh.compute_dt(), t_end - mesh.time))

    x = np.ravel(mesh.cell_centers()[0])
    sim = mesh.interior[RHO][:, 4, 4]
    exact = sod_solution(x, t_end).rho
    l1 = np.abs(sim - exact).mean() / exact.mean()

    print(f"Sod shock tube at t = {t_end} ({mesh.steps} steps, "
          f"{len(x)} cells along x)")
    print("density: '#' = simulation, '.' = exact Riemann solution\n")
    print(ascii_profile(x, sim, exact))
    print(f"\nL1 density error: {l1:.4f} (expect < 0.03 at this resolution)")


if __name__ == "__main__":
    main()
