#!/usr/bin/env python3
"""Durable-recovery soak: correlated kills + corrupt checkpoints + bad net.

The Sec. 4.2 contact-binary merger runs twice on one SCF solve: once as
the node-level reference, once sharded over ``--localities`` simulated
localities with every committed checkpoint buddy-replicated across them.
Mid-run the scripted disaster strikes all at once:

* two localities (``--kill``) go silent *together* — more failures than
  evacuation capacity, so their blocks' GIDs are lost with their memory;
* the newest checkpoint was silently corrupted on its way to the store
  (``--corrupt-save``), so the restore must fall back a generation;
* optionally the network is degraded (``--loss-rate``/``--delay-rate``)
  while all of this happens.

The phi-accrual detector declares both victims, the
:class:`repro.resilience.durability.RecoveryCoordinator` rolls every
survivor back to the newest globally-consistent **verified** generation,
remaps block ownership over the remaining localities, resurrects the
lost GIDs from surviving replicas, and the run replays to completion.
The exit gate (what CI's recovery-soak job enforces): the final state is
**byte-identical** to the reference, the drift reports match record for
record, and the halo/checkpoint counters reconcile exactly.

Run:  python examples/recovery_soak.py
      python examples/recovery_soak.py --localities 6 --kill 1 4
      python examples/recovery_soak.py --loss-rate 0.2 --delay-rate 0.2
"""

import argparse

from repro.analysis import format_report
from repro.resilience.distrun import (RecoveryMergerConfig,
                                      run_recovery_merger)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="durable-recovery soak: correlated locality kills with "
                    "corrupt checkpoints")
    defaults = RecoveryMergerConfig()
    parser.add_argument("--M", type=int, default=defaults.M,
                        help="cells per edge (multiple of 8, 2^k blocks)")
    parser.add_argument("--steps", type=int, default=defaults.steps)
    parser.add_argument("--scf-iters", type=int, default=defaults.scf_iters)
    parser.add_argument("--localities", type=int,
                        default=defaults.n_localities)
    parser.add_argument("--port", choices=("mpi", "libfabric"),
                        default=defaults.port)
    parser.add_argument("--kill", type=int, nargs="+",
                        default=list(defaults.kill_localities),
                        help="localities silenced together mid-run "
                             "(non-adjacent pairs are survivable; an "
                             "owner+buddy pair is not)")
    parser.add_argument("--kill-after", type=int,
                        default=defaults.kill_after_steps)
    parser.add_argument("--corrupt-save", type=int,
                        default=defaults.corrupt_save_index,
                        help="checkpoint save index to silently corrupt "
                             "(-1: none)")
    parser.add_argument("--loss-rate", type=float,
                        default=defaults.loss_rate)
    parser.add_argument("--delay-rate", type=float,
                        default=defaults.delay_rate)
    parser.add_argument("--seed", type=int, default=defaults.fault_seed)
    args = parser.parse_args()

    cfg = RecoveryMergerConfig(
        M=args.M, scf_iters=args.scf_iters, steps=args.steps,
        n_localities=args.localities, port=args.port,
        kill_localities=tuple(args.kill),
        kill_after_steps=args.kill_after,
        corrupt_save_index=(None if args.corrupt_save is not None
                            and args.corrupt_save < 0
                            else args.corrupt_save),
        loss_rate=args.loss_rate, delay_rate=args.delay_rate,
        fault_seed=args.seed)

    print(f"running V1309 merger (M={cfg.M}) node-level and distributed "
          f"over {cfg.n_localities} localities via {cfg.port}; correlated "
          f"kill of {list(cfg.kill_localities)} after "
          f"{cfg.kill_after_steps} steps, corrupt save "
          f"#{cfg.corrupt_save_index} ...\n")
    result = run_recovery_merger(cfg)

    print(result.summary())
    print()
    print("conservation drifts (reference == recovered, byte for byte):")
    for key, val in result.dist_monitor.report().items():
        print(f"  {key:<18} {val:.3e}")
    print()
    print(format_report(result.registry))

    if result.report is None:
        raise SystemExit("global rollback never triggered")
    if not result.bitwise_identical:
        raise SystemExit(
            "recovered run diverged from the node-level reference")
    if not result.reports_identical:
        raise SystemExit("conservation reports differ")
    if not result.counters_reconcile:
        raise SystemExit(
            "halo / checkpoint counters do not reconcile")


if __name__ == "__main__":
    main()
