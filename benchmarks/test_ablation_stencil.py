"""Sec. 4.3 ablation: interaction-list AoS vs stencil-based SoA kernels.

"Originally, lookup of close neighbor cells was performed using an
interaction list, and data was stored in an array-of-struct format. ...
we changed it to a stencil-based approach and are now utilizing a
struct-of-arrays datastructure ... this led to a speedup of the total
application runtime between 1.90 and 2.22 on AVX512 CPUs and between 1.23
and 1.35 on AVX2 CPUs."

We reproduce the design comparison in NumPy terms: the same
monopole-monopole interactions evaluated (a) per cell through an explicit
interaction list over AoS records, and (b) as whole-stencil SoA batches.
The shape claim — the stencil/SoA layout wins — holds here too (by a much
larger factor, since batch-vectorization is NumPy's analogue of SIMD).
"""

import numpy as np
import pytest

from repro.analysis import STENCIL_SIZE
from repro.core.gravity.stencil import canonical_stencil

N = 8            # one sub-grid edge
HALO = 5


def _setup():
    rng = np.random.default_rng(2)
    m = N + 2 * HALO
    rho = rng.uniform(0.1, 1.0, (m, m, m))
    stencil = canonical_stencil()
    assert len(stencil) == STENCIL_SIZE
    return rho, stencil


def _interaction_list_aos(rho, stencil):
    """The 'old' layout: per-cell Python records and an explicit list."""
    m = rho.shape[0]
    cells = [
        {"pos": (i, j, k), "mass": rho[i, j, k], "phi": 0.0}
        for i in range(HALO, HALO + N)
        for j in range(HALO, HALO + N)
        for k in range(HALO, HALO + N)
    ]
    for cell in cells:
        i, j, k = cell["pos"]
        acc = 0.0
        for (di, dj, dk) in stencil[::16]:          # subsampled list
            w = rho[i + di, j + dj, k + dk]
            r = np.sqrt(di * di + dj * dj + dk * dk)
            acc -= w / r
        cell["phi"] = acc
    return np.array([c["phi"] for c in cells])


def _stencil_soa(rho, stencil):
    """The paper's redesign: one vectorized sweep per stencil offset."""
    inner = rho[HALO:HALO + N, HALO:HALO + N, HALO:HALO + N]
    phi = np.zeros_like(inner)
    for (di, dj, dk) in stencil[::16]:
        shifted = rho[HALO + di:HALO + di + N,
                      HALO + dj:HALO + dj + N,
                      HALO + dk:HALO + dk + N]
        r = np.sqrt(di * di + dj * dj + dk * dk)
        phi -= shifted / r
    return phi.reshape(-1)


def test_layouts_agree():
    rho, stencil = _setup()
    a = _interaction_list_aos(rho, stencil)
    b = _stencil_soa(rho, stencil)
    np.testing.assert_allclose(a, b, rtol=1e-12)


def test_interaction_list_aos(benchmark):
    rho, stencil = _setup()
    benchmark(_interaction_list_aos, rho, stencil)


def test_stencil_soa(benchmark):
    rho, stencil = _setup()
    benchmark(_stencil_soa, rho, stencil)


def test_soa_speedup_exceeds_paper_band(capsys):
    """The stencil/SoA rewrite must win by at least the paper's 1.23x."""
    import time
    rho, stencil = _setup()
    t0 = time.perf_counter()
    _interaction_list_aos(rho, stencil)
    t_aos = time.perf_counter() - t0
    t0 = time.perf_counter()
    _stencil_soa(rho, stencil)
    t_soa = time.perf_counter() - t0
    speedup = t_aos / t_soa
    with capsys.disabled():
        print(f"\nstencil-SoA speedup over interaction-list AoS: "
              f"{speedup:.1f}x (paper: 1.23-2.22x on SIMD CPUs)")
    assert speedup > 1.23
