"""Table 4: sub-grids and memory per level of refinement.

Regenerates the (level, sub-grid count, memory GB) rows from the
structural V1309 octree.
"""

import pytest

from repro.analysis import format_table
from repro.simulator import TABLE4_PAPER_COUNTS
from repro.simulator.scaling import cached_tree


def test_table4_rows(benchmark, capsys, scale_levels):
    def build():
        return [(lvl, cached_tree(lvl).total_subgrids,
                 cached_tree(lvl).memory_gb()) for lvl in scale_levels]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = []
    for lvl, n, mem in rows:
        paper_n, paper_mem = TABLE4_PAPER_COUNTS[lvl]
        table.append([lvl, n, paper_n, f"{n / paper_n:.2f}",
                      f"{mem:.2f}", paper_mem])
    with capsys.disabled():
        print()
        print(format_table(
            ["level", "sub-grids", "paper", "ratio", "mem GB", "paper GB"],
            table, title="Table 4 - tree size per level of refinement"))
    for lvl, n, mem in rows:
        paper_n, paper_mem = TABLE4_PAPER_COUNTS[lvl]
        assert n == pytest.approx(paper_n, rel=0.25), f"level {lvl}"
        assert mem == pytest.approx(paper_mem, rel=0.30), f"level {lvl}"


def test_growth_ratios_sub_octree(benchmark, scale_levels):
    """Table 4's growth per level stays below the naive x8."""
    counts = benchmark.pedantic(
        lambda: [cached_tree(lvl).total_subgrids for lvl in scale_levels],
        rounds=1, iterations=1)
    for a, b in zip(counts, counts[1:]):
        assert 1.5 < b / a < 8.0
