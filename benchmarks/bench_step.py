"""Node-level step benchmark: serial vs futurized ``BlockMesh``.

The paper's Table 2 measures one node-level time step of Octo-Tiger with
kernels routed to GPU streams by the launch policy.  This script is the
repro analogue on real solver work: it times self-gravitating hydro
steps of a ``blocks_per_edge**3``-sub-grid :class:`repro.core.mesh.BlockMesh`
twice from the same initial state —

* **serial**: no scheduler, no device; the bit-identical reference;
* **futurized**: per-block RHS tasks on a work-stealing scheduler and
  FMM interaction batches coalesced into aggregated GPU-stream launches
  (with CPU overflow) through an
  :class:`repro.core.exec.ExecutionEngine`

— verifies the two end states are byte-identical, and writes
``BENCH_step.json`` with wall times, zone-update/interaction rates, the
work-aggregation ratio and the hot-path counters (``/cuda/launched/*``,
``/cuda/agg-*``, ``/threads/stolen``, ``/fmm/*``).

Timing is **paired and noise-robust**: the two variants advance their
meshes in lock-step (serial step ``k``, then futurized step ``k``) and
each variant is scored by its *fastest* step.  Interleaving exposes
both variants to the same background load; min-of-N discards slow
outliers from shared-host memory-bandwidth contention — the same
estimator ``timeit`` uses.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_step.py            # 4^3 blocks
    PYTHONPATH=src python benchmarks/bench_step.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_step.py --check    # regression gate

``--check`` exits nonzero if the futurized throughput falls below
``--threshold`` (default 1.0: aggregation must make futurized *beat*
serial) times the serial throughput, if the two runs diverge bitwise,
or if the aggregation ratio ``/cuda/aggregated-per-launch`` is not
above ``--min-agg`` (default 4).

The report also carries a ``kernels`` block from
:mod:`kernels_micro` — per-kernel ns/interaction (p2p, m2l
fused-vs-reference, greens) and ns/zone (reconstruct, kt_flux, full
RHS fused-vs-reference) — and ``--check`` additionally requires the
block to be present and the fused m2l and hydro-RHS kernels to beat
their retained reference implementations by ``--min-kernel-speedup``
(default 1.5x).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.core import BlockMesh, SUBGRID_N  # noqa: E402
from repro.core.exec import ExecutionEngine  # noqa: E402
from repro.core.scenario import equilibrium_star  # noqa: E402
from repro.runtime import CudaDevice, WorkStealingScheduler  # noqa: E402
from repro.runtime.counters import default_registry  # noqa: E402

from kernels_micro import run_kernels_micro  # noqa: E402

#: counters whose per-step delta feeds the interaction rate
_RATE_KEYS = ("/fmm/interactions/multipole", "/fmm/interactions/monopole")


def build_mesh(bpe: int, engine: ExecutionEngine | None = None) -> BlockMesh:
    """A Lane-Emden star tiled into ``bpe**3`` sub-grids."""
    star = equilibrium_star(n=bpe * SUBGRID_N, domain=4.0)
    mesh = BlockMesh(bpe, domain=star.domain, origin=star.origin,
                     options=star.options, bc=star.bc,
                     engine=engine, self_gravity=True)
    mesh.load_interior(star.interior.copy())
    return mesh


def timed_step(mesh: BlockMesh) -> tuple[float, float]:
    """One step; returns (wall seconds, FMM interactions performed)."""
    reg = default_registry()
    before = [reg.snapshot().get(k, 0.0) for k in _RATE_KEYS]
    t0 = time.perf_counter()
    mesh.step()
    seconds = time.perf_counter() - t0
    after = reg.snapshot()
    interactions = sum(after.get(k, 0.0) - b
                       for k, b in zip(_RATE_KEYS, before))
    return seconds, interactions


def summarize(mesh: BlockMesh, walls: list[float],
              interactions: list[float]) -> dict:
    """Best-step throughput summary for one variant."""
    best = min(walls)
    zones = mesh.n ** 3
    per_step = interactions[walls.index(best)]
    return {
        "seconds": best,
        "step_seconds": walls,
        "steps": len(walls),
        "zone_updates_per_s": zones / best if best > 0 else 0.0,
        "fmm_interactions_per_s": per_step / best if best > 0 else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=None,
                        help="blocks per edge (power of two; default 4)")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per variant (default 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup steps (default 1)")
    parser.add_argument("--workers", type=int, default=4,
                        help="scheduler worker threads (default 4)")
    parser.add_argument("--streams", type=int, default=16,
                        help="simulated CUDA streams (default 16)")
    parser.add_argument("--gpu-workers", type=int, default=4,
                        help="simulated GPU executor workers (default 4)")
    parser.add_argument("--out", default="BENCH_step.json",
                        help="output JSON path (default BENCH_step.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration (4^3 blocks, 4 timed steps) "
                             "unless --blocks/--steps are given")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on bitwise divergence or if "
                             "futurized throughput < threshold * serial")
    parser.add_argument("--threshold", type=float, default=1.0,
                        help="minimum futurized/serial throughput ratio "
                             "for --check (default 1.0)")
    parser.add_argument("--min-agg", type=float, default=4.0,
                        help="minimum /cuda/aggregated-per-launch ratio "
                             "for --check (default 4)")
    parser.add_argument("--min-kernel-speedup", type=float, default=1.5,
                        help="minimum fused/reference speedup of the m2l "
                             "and hydro-RHS microbenchmarks for --check "
                             "(default 1.5)")
    parser.add_argument("--skip-kernels", action="store_true",
                        help="skip the per-kernel microbenchmarks (the "
                             "kernels block is then absent and --check "
                             "fails)")
    parser.add_argument("--agg-slots", type=int, default=16,
                        help="aggregation slot-buffer capacity (default 16)")
    args = parser.parse_args(argv)

    bpe = args.blocks if args.blocks is not None else 4
    steps = args.steps if args.steps is not None else (4 if args.smoke else 3)
    reg = default_registry()
    reg.reset()

    with WorkStealingScheduler(args.workers) as sched, \
            CudaDevice(n_streams=args.streams, n_workers=args.gpu_workers,
                       name="bench-gpu") as gpu:
        engine = ExecutionEngine(scheduler=sched, devices=[gpu],
                                 agg_slots=args.agg_slots)
        serial_mesh = build_mesh(bpe)
        fut_mesh = build_mesh(bpe, engine=engine)
        for _ in range(args.warmup):  # records the FMM pair script
            serial_mesh.step()
            fut_mesh.step()
        serial_walls: list[float] = []
        serial_inter: list[float] = []
        fut_walls: list[float] = []
        fut_inter: list[float] = []
        for k in range(steps):  # paired: same background load for both;
            # alternate order so neither variant always draws the
            # earlier (possibly noisier or quieter) slot of a round
            order = ((serial_mesh, serial_walls, serial_inter),
                     (fut_mesh, fut_walls, fut_inter))
            for mesh, walls, inter in (order if k % 2 == 0
                                       else order[::-1]):
                w, n = timed_step(mesh)
                walls.append(w)
                inter.append(n)
        engine.synchronize()
        engine.publish_counters(reg)
        serial_state = serial_mesh.gather_interior()
        fut_state = fut_mesh.gather_interior()
    snap = reg.snapshot()

    serial = summarize(serial_mesh, serial_walls, serial_inter)
    futurized = summarize(fut_mesh, fut_walls, fut_inter)
    bit_identical = bool(np.array_equal(serial_state, fut_state))
    ratio = (futurized["zone_updates_per_s"] / serial["zone_updates_per_s"]
             if serial["zone_updates_per_s"] > 0 else 0.0)
    counters = {k: snap.get(k, 0.0) for k in (
        "/cuda/launched/gpu", "/cuda/launched/cpu", "/cuda/leases-reclaimed",
        "/cuda/agg-launches", "/cuda/agg-tasks", "/cuda/aggregated-per-launch",
        "/threads/stolen", "/threads/executed", "/exec/batches",
        "/exec/tasks", "/fmm/solves", "/fmm/solves-futurized",
        "/fmm/staged-bytes",
        "/fmm/interactions/multipole", "/fmm/interactions/monopole")}
    report = {
        "config": {
            "blocks_per_edge": bpe, "grid": fut_mesh.n,
            "steps": steps, "warmup": args.warmup,
            "workers": args.workers, "streams": args.streams,
            "gpu_workers": args.gpu_workers, "agg_slots": args.agg_slots,
        },
        "serial": serial,
        "futurized": futurized,
        "throughput_ratio": ratio,
        "gpu_launch_fraction": engine.gpu_fraction,
        "aggregation": {
            "launches": engine.agg_launches,
            "tasks": engine.agg_tasks,
            "per_launch": engine.aggregated_per_launch,
        },
        "bit_identical": bit_identical,
        "counters": counters,
    }
    if not args.skip_kernels:
        report["kernels"] = run_kernels_micro()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)

    print(f"grid {fut_mesh.n}^3 ({bpe}^3 blocks), "
          f"best of {steps} paired steps:")
    print(f"  serial     {serial['seconds']:8.3f} s   "
          f"{serial['zone_updates_per_s']:12.0f} zones/s")
    print(f"  futurized  {futurized['seconds']:8.3f} s   "
          f"{futurized['zone_updates_per_s']:12.0f} zones/s   "
          f"({ratio:.2f}x serial)")
    print(f"  gpu/cpu launches {counters['/cuda/launched/gpu']:.0f}/"
          f"{counters['/cuda/launched/cpu']:.0f} "
          f"({100 * engine.gpu_fraction:.1f}% gpu), "
          f"tasks stolen {counters['/threads/stolen']:.0f}")
    print(f"  aggregation: {engine.agg_tasks} kernels in "
          f"{engine.agg_launches} launches "
          f"({engine.aggregated_per_launch:.1f} per launch)")
    print(f"  bit-identical end state: {bit_identical}")
    if "kernels" in report:
        k = report["kernels"]
        print(f"  kernels: m2l {k['m2l']['ns_per_item']:.0f} ns/inter "
              f"({k['m2l_speedup']:.2f}x ref), "
              f"rhs {k['rhs']['ns_per_item']:.0f} ns/zone "
              f"({k['rhs_speedup']:.2f}x ref)")
    print(f"wrote {args.out}")

    if args.check:
        if not bit_identical:
            print("CHECK FAILED: futurized end state diverged bitwise",
                  file=sys.stderr)
            return 1
        if ratio < args.threshold:
            print(f"CHECK FAILED: futurized throughput {ratio:.2f}x serial "
                  f"< {args.threshold:.2f}x", file=sys.stderr)
            return 1
        if counters["/cuda/launched/gpu"] <= 0 \
                or counters["/threads/stolen"] <= 0:
            print("CHECK FAILED: expected nonzero /cuda/launched/gpu and "
                  "/threads/stolen", file=sys.stderr)
            return 1
        if engine.aggregated_per_launch <= args.min_agg:
            print(f"CHECK FAILED: aggregation ratio "
                  f"{engine.aggregated_per_launch:.1f} tasks/launch "
                  f"<= {args.min_agg:.1f}", file=sys.stderr)
            return 1
        if "kernels" not in report:
            print("CHECK FAILED: kernels block missing from report",
                  file=sys.stderr)
            return 1
        kernels = report["kernels"]
        for name in ("m2l", "rhs"):
            speedup = kernels[f"{name}_speedup"]
            if speedup < args.min_kernel_speedup:
                print(f"CHECK FAILED: fused {name} only {speedup:.2f}x its "
                      f"reference < {args.min_kernel_speedup:.2f}x",
                      file=sys.stderr)
                return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
