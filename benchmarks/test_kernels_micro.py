"""Microbenchmarks of the building-block kernels.

Not tied to a single table, but they back Table 2's cost model: one
monopole vs one multipole kernel launch (the 12- vs 455-flop classes of
Sec. 4.3), one FMM solve, and one hydro RHS evaluation.
"""

import numpy as np
import pytest

from repro.analysis import (INTERACTIONS_PER_LAUNCH,
                            MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS)
from repro.core import FmmSolver, IdealGas, NF, NGHOST, RHO, EGAS, TAU
from repro.core.gravity.kernels import m2l_pair, p2p_pair
from repro.core.hydro.solver import HydroOptions, compute_rhs
from repro.core.mesh import apply_boundary


@pytest.fixture(scope="module")
def pair_batch():
    rng = np.random.default_rng(4)
    n = INTERACTIONS_PER_LAUNCH // 8       # one sub-grid's worth / 8
    dR = rng.normal(size=(n, 3)) * 6 + 5
    mA = rng.uniform(0.5, 2.0, n)
    mB = rng.uniform(0.5, 2.0, n)
    M2 = rng.normal(size=(n, 3, 3))
    M2 = 0.5 * (M2 + M2.transpose(0, 2, 1))
    return dR, mA, mB, M2


def test_monopole_kernel_batch(benchmark, pair_batch):
    """The 12-flop interaction class."""
    dR, mA, mB, _ = pair_batch
    benchmark(p2p_pair, dR, mA, mB)


def test_multipole_kernel_batch(benchmark, pair_batch):
    """The 455-flop interaction class."""
    dR, mA, mB, M2 = pair_batch
    benchmark(m2l_pair, dR, mA, mB, M2, M2)


def test_flop_ratio_matches_paper():
    assert MULTIPOLE_KERNEL_FLOPS / MONOPOLE_KERNEL_FLOPS \
        == pytest.approx(455 / 12)


def test_fmm_solve_16(benchmark):
    rng = np.random.default_rng(5)
    rho = rng.uniform(0.1, 1.0, (16, 16, 16))
    solver = FmmSolver.from_uniform(rho, 1.0 / 16)
    benchmark.pedantic(solver.solve, rounds=2, iterations=1)


def test_hydro_rhs_32(benchmark):
    rng = np.random.default_rng(6)
    opts = HydroOptions(eos=IdealGas())
    m = 32 + 2 * NGHOST
    U = np.zeros((NF, m, m, m))
    U[RHO] = rng.uniform(0.5, 2.0, (m, m, m))
    U[EGAS] = rng.uniform(0.5, 2.0, (m, m, m))
    U[TAU] = IdealGas().tau_from_eint(U[EGAS])
    apply_boundary(U, "periodic")
    benchmark.pedantic(compute_rhs, args=(U, 1.0 / 32, opts),
                       rounds=3, iterations=1)
