"""Microbenchmarks of the building-block kernels.

Not tied to a single table, but they back Table 2's cost model: one
monopole vs one multipole kernel launch (the 12- vs 455-flop classes of
Sec. 4.3), one FMM solve, and one hydro RHS evaluation.  The fused SoA
kernels are benchmarked against their retained reference
implementations (`m2l_pair_reference`, `kt_flux_reference`,
`compute_rhs_reference`) — the same pairs that feed the ``kernels``
block of ``BENCH_step.json`` via :mod:`kernels_micro`.
"""

import numpy as np
import pytest

from repro.analysis import (INTERACTIONS_PER_LAUNCH,
                            MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS)
from repro.core import FmmSolver, IdealGas, NF, NGHOST, RHO, EGAS, TAU
from repro.core.gravity.kernels import (m2l_pair, m2l_pair_reference,
                                        p2p_pair)
from repro.core.hydro.reconstruct import ppm_faces
from repro.core.hydro.riemann import (conserved_to_primitive, kt_flux,
                                      kt_flux_reference)
from repro.core.hydro.solver import (HydroOptions, compute_rhs,
                                     compute_rhs_reference)
from repro.core.mesh import apply_boundary
from repro.core.workspace import Workspace


@pytest.fixture(scope="module")
def pair_batch():
    rng = np.random.default_rng(4)
    n = INTERACTIONS_PER_LAUNCH // 8       # one sub-grid's worth / 8
    dR = rng.normal(size=(n, 3)) * 6 + 5
    mA = rng.uniform(0.5, 2.0, n)
    mB = rng.uniform(0.5, 2.0, n)
    M2 = rng.normal(size=(n, 3, 3))
    M2 = 0.5 * (M2 + M2.transpose(0, 2, 1))
    return dR, mA, mB, M2


@pytest.fixture(scope="module")
def hydro_block():
    rng = np.random.default_rng(6)
    opts = HydroOptions(eos=IdealGas())
    m = 32 + 2 * NGHOST
    U = np.zeros((NF, m, m, m))
    U[RHO] = rng.uniform(0.5, 2.0, (m, m, m))
    U[EGAS] = rng.uniform(0.5, 2.0, (m, m, m))
    U[TAU] = opts.eos.tau_from_eint(U[EGAS])
    apply_boundary(U, "periodic")
    return U, opts


def test_monopole_kernel_batch(benchmark, pair_batch):
    """The 12-flop interaction class."""
    dR, mA, mB, _ = pair_batch
    n = len(dR)
    out = (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)))
    benchmark(p2p_pair, dR, mA, mB, out=out)


def test_multipole_kernel_batch(benchmark, pair_batch):
    """The 455-flop interaction class, fused component form."""
    dR, mA, mB, M2 = pair_batch
    n = len(dR)
    out = (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)),
           np.empty((n, 3, 3)), np.empty((n, 3, 3)))
    benchmark(m2l_pair, dR, mA, mB, M2, M2, out=out)


def test_multipole_kernel_reference(benchmark, pair_batch):
    """The einsum-over-Green-tensors baseline the fused kernel replaced."""
    dR, mA, mB, M2 = pair_batch
    benchmark(m2l_pair_reference, dR, mA, mB, M2, M2)


def test_flop_ratio_matches_paper():
    assert MULTIPOLE_KERNEL_FLOPS / MONOPOLE_KERNEL_FLOPS \
        == pytest.approx(455 / 12)


def test_ppm_reconstruct_fused(benchmark, hydro_block):
    """Workspace PPM: per-field chunked, all scratch reused."""
    U, opts = hydro_block
    ws = Workspace()
    W = conserved_to_primitive(U, opts.eos, opts.rho_floor)
    benchmark(ppm_faces, W, NGHOST, 1, ws=ws)


def test_kt_flux_fused(benchmark, hydro_block):
    """Single-pass KT flux (no UL/UR/FL/FR full-field temporaries)."""
    U, opts = hydro_block
    ws = Workspace()
    W = conserved_to_primitive(U, opts.eos, opts.rho_floor)
    WL, WR = (f.copy() for f in ppm_faces(W, NGHOST, 1))
    out = np.empty_like(WL)
    benchmark(kt_flux, WL, WR, opts.eos, 0, out=out, ws=ws)


def test_kt_flux_reference(benchmark, hydro_block):
    """The compose-from-building-blocks baseline."""
    U, opts = hydro_block
    W = conserved_to_primitive(U, opts.eos, opts.rho_floor)
    WL, WR = (f.copy() for f in ppm_faces(W, NGHOST, 1))
    benchmark(kt_flux_reference, WL, WR, opts.eos, 0)


def test_fmm_solve_16(benchmark):
    rng = np.random.default_rng(5)
    rho = rng.uniform(0.1, 1.0, (16, 16, 16))
    solver = FmmSolver.from_uniform(rho, 1.0 / 16)
    benchmark.pedantic(solver.solve, rounds=2, iterations=1)


def test_hydro_rhs_32(benchmark, hydro_block):
    """Full fused RHS: workspace-backed primitives, faces, fluxes."""
    U, opts = hydro_block
    ws = Workspace()
    out = np.empty((NF, 32, 32, 32))
    benchmark.pedantic(compute_rhs, args=(U, 1.0 / 32, opts),
                       kwargs={"out": out, "ws": ws},
                       rounds=3, iterations=1)


def test_hydro_rhs_32_reference(benchmark, hydro_block):
    """The allocate-per-stage RHS composition the fused path replaced."""
    U, opts = hydro_block
    benchmark.pedantic(compute_rhs_reference, args=(U, 1.0 / 32, opts),
                       rounds=3, iterations=1)
