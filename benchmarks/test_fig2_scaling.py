"""Figure 2: relative speedup vs processed sub-grids on one node.

Regenerates the combined weak/strong scaling graph: speedup of levels
14-17 over 1..5400 Piz Daint nodes for both parcelports, plus the
headline efficiency numbers of Sec. 6.3.
"""

import pytest

from repro.analysis import format_table, parallel_efficiency
from repro.network import PARCELPORTS
from repro.simulator import PIZ_DAINT, StepModel
from repro.simulator.scaling import (PAPER_NODE_COUNTS, cached_profile,
                                     reference_rate, scaling_sweep)

from conftest import full_scale

#: Sec. 6.3 headline efficiencies (libfabric, % of the 1-node reference)
PAPER_EFFICIENCIES = {(16, 256): 71.4, (16, 5400): 21.2,
                      (17, 1024): 78.4, (17, 2048): 68.1}


def test_fig2_speedup_series(benchmark, capsys, scale_levels):
    levels = tuple(l for l in scale_levels if l >= 14)
    max_nodes = 5400 if full_scale() else 512

    points = benchmark.pedantic(
        scaling_sweep, kwargs=dict(levels=levels, max_nodes=max_nodes),
        rounds=1, iterations=1)

    rows = [[p.level, p.n_nodes, p.parcelport, f"{p.speedup:.1f}",
             f"{p.efficiency * 100:.1f}"] for p in points]
    with capsys.disabled():
        print()
        print(format_table(
            ["level", "nodes", "parcelport", "speedup", "efficiency %"],
            rows, title="Fig. 2 - speedup w.r.t. level 14 on one node"))

    by_key = {(p.level, p.n_nodes, p.parcelport): p for p in points}
    # weak scaling near-ideal along the constant-work diagonal
    diag = [(14, 1), (15, 4)] + ([(16, 16)] if 16 in levels else [])
    for level, n in diag:
        p = by_key[(level, n, "libfabric")]
        assert p.efficiency > 0.7, f"weak point L{level}@{n}"
    # strong scaling tails off: efficiency decreases with node count
    for level in levels:
        effs = [by_key[(level, n, "libfabric")].efficiency
                for n in PAPER_NODE_COUNTS
                if (level, n, "libfabric") in by_key]
        assert effs[0] > effs[-1]
    # libfabric >= MPI at every large-run point
    for (level, n, port), p in by_key.items():
        if port == "libfabric" and n >= 256:
            assert p.speedup >= by_key[(level, n, "mpi")].speedup


@pytest.mark.skipif(not full_scale(), reason="set REPRO_FULL_SCALE=1 for "
                    "the level-16/17 headline numbers")
def test_headline_efficiencies(benchmark, capsys):
    """Sec. 6.3: 78.4% @ L17/1024, 68.1% @ L17/2048, 71.4% @ L16/256,
    21.2% @ L16/5400 (libfabric)."""
    lf = PARCELPORTS["libfabric"]

    def run():
        ref = reference_rate()
        out = {}
        for (level, n), paper in PAPER_EFFICIENCIES.items():
            model = StepModel(cached_profile(level), PIZ_DAINT)
            rate = model.step_time(n, lf).subgrids_per_second
            out[(level, n)] = (parallel_efficiency(rate, n, ref) * 100,
                               paper)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"L{lvl}", n, f"{ours:.1f}", paper]
            for (lvl, n), (ours, paper) in sorted(out.items())]
    with capsys.disabled():
        print()
        print(format_table(["level", "nodes", "ours %", "paper %"], rows,
                           title="Sec. 6.3 headline efficiencies"))
    for (lvl, n), (ours, paper) in out.items():
        assert ours == pytest.approx(paper, abs=12.0), f"L{lvl}@{n}"
