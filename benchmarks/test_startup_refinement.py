"""Sec. 6.3 start-up claim: refining the level-13 restart to level 16/17
is ~an order of magnitude faster over libfabric."""

import pytest

from repro.analysis import format_table
from repro.network import PARCELPORTS
from repro.simulator import startup_speedup, startup_time

LF = PARCELPORTS["libfabric"]
MPI = PARCELPORTS["mpi"]


def test_startup_table(benchmark, capsys):
    def run():
        rows = []
        for level, nodes in ((14, 64), (15, 256), (16, 1024), (17, 2048)):
            t_mpi = startup_time(level, nodes, MPI)
            t_lf = startup_time(level, nodes, LF)
            rows.append([level, nodes, f"{t_mpi:.2f}", f"{t_lf:.2f}",
                         f"{t_mpi / t_lf:.1f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["level", "nodes", "MPI s", "libfabric s", "ratio"], rows,
            title="Sec. 6.3 - start-up (restart refinement) times"))
    for level, nodes in ((16, 1024), (17, 2048)):
        assert startup_speedup(level, nodes, (MPI, LF)) > 7.0
