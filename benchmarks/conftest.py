"""Benchmark harness configuration.

Every benchmark prints the paper's corresponding table/figure rows
(paper value vs ours) in addition to timing its regeneration, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the whole evaluation
section.  Set ``REPRO_FULL_SCALE=1`` to include the level-16/17 trees
(minutes of tree building); the default covers levels 13-15 plus the
paper-resolution node-level and parcelport models.
"""

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture(scope="session")
def scale_levels():
    return (13, 14, 15, 16, 17) if full_scale() else (13, 14, 15)
