"""Figure 3: ratio of processed sub-grids/s, libfabric over MPI.

Regenerates the ratio curves for levels 14-16: slightly below 1 at small
node counts (polling penalty), climbing toward ~2.5-2.8x at the largest
runs ("outperforms it by a factor of almost 3", Sec. 6.3).
"""

import pytest

from repro.analysis import format_table
from repro.simulator.scaling import parcelport_ratio

from conftest import full_scale


def test_fig3_ratio_series(benchmark, capsys, scale_levels):
    levels = tuple(l for l in scale_levels if 14 <= l <= 16)
    max_nodes = 5400 if full_scale() else 1024

    series = benchmark.pedantic(
        parcelport_ratio, kwargs=dict(levels=levels, max_nodes=max_nodes),
        rounds=1, iterations=1)

    rows = [[f"L{lvl}", n, f"{r:.3f}"] for lvl, n, r in series]
    with capsys.disabled():
        print()
        print(format_table(
            ["level", "nodes", "libfabric/MPI"], rows,
            title="Fig. 3 - parcelport throughput ratio"))

    by_key = {(lvl, n): r for lvl, n, r in series}
    # the dip: lf <= ~parity at the smallest multi-node runs
    assert by_key[(14, 2)] < 1.05
    # the gain: ratio grows monotonically-ish and exceeds 1.8 at scale
    biggest = max(n for lvl, n, _ in series if lvl == 14)
    assert by_key[(14, biggest)] > 1.8
    for lvl in levels:
        ns = sorted(n for l, n, _ in series if l == lvl)
        assert by_key[(lvl, ns[-1])] > by_key[(lvl, ns[0])]


@pytest.mark.skipif(not full_scale(), reason="set REPRO_FULL_SCALE=1")
def test_peak_ratio_near_paper(benchmark):
    """At the largest runs the paper reports up to ~2.8x."""
    series = benchmark.pedantic(
        parcelport_ratio, kwargs=dict(levels=(14, 15), max_nodes=5400),
        rounds=1, iterations=1)
    peak = max(r for _l, _n, r in series)
    assert 2.0 < peak < 3.2
