"""Table 2: FMM kernel node-level performance on the paper's platforms.

Regenerates the nine rows (GFLOP/s and fraction of peak per platform
configuration) plus the Sec. 6.1.2 GPU kernel-launch fractions.
"""

import pytest

from repro.analysis import format_table
from repro.simulator import TABLE2_CONFIGS, measure_node, with_gpus
from repro.simulator.platforms import (V100, XEON_E5_2660V3_10C,
                                       XEON_E5_2660V3_20C)

#: paper values: name -> (GFLOP/s, fraction of peak %)
PAPER_TABLE2 = {
    "E5-2660v3 10c, CPU-only": (125, 30),
    "E5-2660v3 10c + 1x V100": (2271, 32),
    "E5-2660v3 10c + 2x V100": (3185, 22),
    "E5-2660v3 20c, CPU-only": (250, 30),
    "E5-2660v3 20c + 1x V100": (1516, 22),
    "E5-2660v3 20c + 2x V100": (5188, 37),
    "Xeon Phi 7210 64c": (459, 17),
    "Piz Daint node, CPU-only": (157, 31),
    "Piz Daint node + 1x P100": (973, 21),
}


def _generate_rows():
    rows = []
    for name, node in TABLE2_CONFIGS:
        r = measure_node(node)
        pg, pf = PAPER_TABLE2[name]
        rows.append([name, round(r.gflops), f"{r.fraction_of_peak*100:.1f}",
                     pg, pf, f"{r.gpu_fraction*100:.4f}"])
    return rows


def test_table2_rows(benchmark, capsys):
    rows = benchmark.pedantic(_generate_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["platform", "GF/s", "% peak", "paper GF/s", "paper %",
             "GPU launch %"], rows,
            title="Table 2 - FMM node-level performance (model vs paper)"))
    # the CPU rows follow the paper's accounting exactly
    by_name = {r[0]: r for r in rows}
    assert by_name["E5-2660v3 10c, CPU-only"][1] == 125
    assert by_name["E5-2660v3 20c, CPU-only"][1] == 250
    assert by_name["Xeon Phi 7210 64c"][1] in (458, 459)
    assert by_name["Piz Daint node, CPU-only"][1] == 157
    # GPU rows land within a factor ~1.8 of the paper's measurements
    for name, (pg, _pf) in PAPER_TABLE2.items():
        ours = by_name[name][1]
        assert 0.45 < ours / pg < 2.2, name


def test_launch_fractions(benchmark):
    """Sec. 6.1.2: 10c + 1 V100 launches ~99.9997% of kernels on the GPU,
    20c + 1 V100 only ~97.4995% — more feeders saturate the streams."""

    def run():
        ten = measure_node(with_gpus(XEON_E5_2660V3_10C, V100))
        twenty = measure_node(with_gpus(XEON_E5_2660V3_20C, V100))
        return ten, twenty

    ten, twenty = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ten.gpu_fraction > twenty.gpu_fraction
    assert ten.gpu_fraction > 0.97
    assert twenty.gpu_fraction > 0.85
    # the corresponding performance inversion (2271 vs 1516 in the paper)
    assert ten.gflops > twenty.gflops
