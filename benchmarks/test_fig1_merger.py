"""Figure 1: the V1309 contact-binary merger model.

Benchmarks one coupled gravity+hydro step of the SCF-initialized binary
(the production scenario at laptop scale) and checks the contact-binary
morphology: two density maxima sharing a common envelope, rotating with
the SCF frequency.
"""

import numpy as np
import pytest

from repro.core import RHO, v1309_binary


@pytest.fixture(scope="module")
def binary_mesh():
    return v1309_binary(M=16, scf_iters=20)


def test_contact_binary_morphology(binary_mesh, capsys):
    rho = binary_mesh.interior[RHO]
    mid = rho.shape[2] // 2
    slab = rho[:, :, mid]
    # two maxima along x, separated by a saddle (contact configuration)
    profile = slab.max(axis=1)
    peaks = np.nonzero((profile[1:-1] > profile[:-2])
                       & (profile[1:-1] >= profile[2:])
                       & (profile[1:-1] > 10 * binary_mesh.options.rho_floor)
                       )[0]
    assert len(peaks) >= 2, "expected two stellar cores"
    assert binary_mesh.options.omega > 0.0, "binary must rotate"
    with capsys.disabled():
        print(f"\nFig. 1 scenario: omega={binary_mesh.options.omega:.3f}, "
              f"rho_max={rho.max():.3f}, cores at x-cells {peaks[:3]}")


def test_mass_ratio_near_v1309(binary_mesh):
    """Sec. 3: 1.54 + 0.17 M_sun -> q ~ 0.11."""
    rho = binary_mesh.interior[RHO]
    x, _y, _z = binary_mesh.cell_centers()
    left = rho * ((x + 0 * rho) < 0)
    right = rho * ((x + 0 * rho) >= 0)
    q = left.sum() / right.sum()
    assert 0.02 < q < 0.7  # secondary clearly lighter


def test_merger_step(benchmark, binary_mesh):
    """One coupled FMM+hydro step of the merger scenario."""
    mesh = binary_mesh
    m0 = mesh.conserved_totals()["mass"]

    def step():
        dt = min(mesh.compute_dt(), 1e-3)
        mesh.step(dt)
        return dt

    benchmark.pedantic(step, rounds=3, iterations=1)
    m1 = mesh.conserved_totals()["mass"]
    # outflow walls may shed a little envelope; interior scheme is exact
    assert m1 == pytest.approx(m0, rel=1e-3)
