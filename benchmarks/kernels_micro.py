"""Per-kernel microbenchmarks for the fused SoA physics kernels.

Times each building-block kernel on representative batch sizes and
reports ns per interaction (gravity pair kernels) or ns per zone/face
(hydro kernels).  Where a reference implementation exists (the einsum
``m2l_pair_reference`` and the allocate-per-stage
``compute_rhs_reference``) both variants are timed and the speedup of
the fused path is reported — the CI gate asserts fused >= 1.5x for m2l
and the full RHS.

Used two ways:

* imported by ``bench_step.py`` so ``BENCH_step.json`` grows a
  ``kernels`` block tracking per-kernel cost per PR;
* run standalone::

      PYTHONPATH=src python benchmarks/kernels_micro.py

All timings are min-of-N (same estimator as ``timeit``): the minimum
over repeats discards scheduling noise and shared-host contention.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import IdealGas, NF, NGHOST, RHO, EGAS, TAU  # noqa: E402
from repro.core.gravity.kernels import (greens, m2l_pair,  # noqa: E402
                                        m2l_pair_reference, p2p_pair)
from repro.core.hydro.reconstruct import ppm_faces  # noqa: E402
from repro.core.hydro.riemann import (conserved_to_primitive,  # noqa: E402
                                      kt_flux, kt_flux_reference)
from repro.core.hydro.solver import (HydroOptions, compute_rhs,  # noqa: E402
                                     compute_rhs_reference)
from repro.core.mesh import apply_boundary  # noqa: E402
from repro.core.workspace import Workspace  # noqa: E402

#: pair-batch size for the gravity kernels (one aggregated launch's worth)
PAIR_N = 16384
#: hydro block edge (interior zones per side)
HYDRO_N = 32


def _time(fn, *, repeats: int = 5) -> float:
    """Best wall time of ``fn()`` over ``repeats`` calls (one warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _pair_batch(n: int = PAIR_N):
    rng = np.random.default_rng(4)
    dR = rng.normal(size=(n, 3)) * 6 + 5
    mA = rng.uniform(0.5, 2.0, n)
    mB = rng.uniform(0.5, 2.0, n)
    M2 = rng.normal(size=(n, 3, 3))
    M2 = 0.5 * (M2 + M2.transpose(0, 2, 1))
    return dR, mA, mB, M2


def _hydro_block(n: int = HYDRO_N):
    rng = np.random.default_rng(6)
    opts = HydroOptions(eos=IdealGas())
    m = n + 2 * NGHOST
    U = np.zeros((NF, m, m, m))
    U[RHO] = rng.uniform(0.5, 2.0, (m, m, m))
    U[EGAS] = rng.uniform(0.5, 2.0, (m, m, m))
    U[TAU] = opts.eos.tau_from_eint(U[EGAS])
    apply_boundary(U, "periodic")
    return U, opts


def run_kernels_micro(repeats: int = 5) -> dict:
    """Time every kernel; return the ``kernels`` block for the report.

    Every entry carries ``seconds`` (best wall time of one batch) and
    ``ns_per_item`` (interaction, zone, or face).  ``m2l_speedup`` and
    ``rhs_speedup`` compare the fused kernels against their retained
    reference implementations on identical inputs.
    """
    dR, mA, mB, M2 = _pair_batch()
    n_pairs = len(dR)

    p2p_out = tuple(np.empty(s) for s in
                    ((n_pairs,), (n_pairs,), (n_pairs, 3), (n_pairs, 3)))
    m2l_out = tuple(np.empty(s) for s in
                    ((n_pairs,), (n_pairs,), (n_pairs, 3), (n_pairs, 3),
                     (n_pairs, 3, 3), (n_pairs, 3, 3)))

    t_p2p = _time(lambda: p2p_pair(dR, mA, mB, out=p2p_out),
                  repeats=repeats)
    t_m2l = _time(lambda: m2l_pair(dR, mA, mB, M2, M2, out=m2l_out),
                  repeats=repeats)
    t_m2l_ref = _time(lambda: m2l_pair_reference(dR, mA, mB, M2, M2),
                      repeats=repeats)
    t_greens = _time(lambda: greens(dR), repeats=repeats)

    U, opts = _hydro_block()
    ws = Workspace()
    W = conserved_to_primitive(U, opts.eos, opts.rho_floor)
    n_zones = HYDRO_N ** 3

    # reconstruction along x: array axis 1 (dim 0 is the field index)
    t_rec = _time(lambda: ppm_faces(W, NGHOST, 1, ws=ws),
                  repeats=repeats)

    WL, WR = (f.copy() for f in ppm_faces(W, NGHOST, 1))
    n_faces = int(np.prod(WL.shape[1:]))
    flux_out = np.empty_like(WL)
    t_ktf = _time(lambda: kt_flux(WL, WR, opts.eos, 0, out=flux_out, ws=ws),
                  repeats=repeats)
    t_ktf_ref = _time(lambda: kt_flux_reference(WL, WR, opts.eos, 0),
                      repeats=repeats)

    rhs_out = np.empty((NF, HYDRO_N, HYDRO_N, HYDRO_N))
    t_rhs = _time(lambda: compute_rhs(U, 1.0 / HYDRO_N, opts,
                                      out=rhs_out, ws=ws),
                  repeats=repeats)
    t_rhs_ref = _time(lambda: compute_rhs_reference(U, 1.0 / HYDRO_N, opts),
                      repeats=repeats)

    def entry(seconds: float, items: int) -> dict:
        return {"seconds": seconds, "items": items,
                "ns_per_item": 1e9 * seconds / items}

    return {
        "pair_batch": n_pairs,
        "hydro_grid": HYDRO_N,
        "p2p": entry(t_p2p, n_pairs),
        "m2l": entry(t_m2l, n_pairs),
        "m2l_reference": entry(t_m2l_ref, n_pairs),
        "greens": entry(t_greens, n_pairs),
        "reconstruct": entry(t_rec, n_zones),
        "kt_flux": entry(t_ktf, n_faces),
        "kt_flux_reference": entry(t_ktf_ref, n_faces),
        "rhs": entry(t_rhs, n_zones),
        "rhs_reference": entry(t_rhs_ref, n_zones),
        "m2l_speedup": t_m2l_ref / t_m2l,
        "rhs_speedup": t_rhs_ref / t_rhs,
    }


def main(argv: list[str] | None = None) -> int:
    kernels = run_kernels_micro()
    for name in ("p2p", "m2l", "m2l_reference", "greens", "reconstruct",
                 "kt_flux", "kt_flux_reference", "rhs", "rhs_reference"):
        e = kernels[name]
        print(f"  {name:18s} {e['ns_per_item']:10.1f} ns/item "
              f"({e['items']} items, best {1e3 * e['seconds']:.3f} ms)")
    print(f"  m2l fused speedup  {kernels['m2l_speedup']:.2f}x")
    print(f"  rhs fused speedup  {kernels['rhs_speedup']:.2f}x")
    if argv and "--json" in argv:
        print(json.dumps(kernels, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
