"""V1309 merger scenario (Fig. 1 / Sec. 3) at laptop scale, end to end."""

import numpy as np
import pytest

from repro.core import PASSIVE0, RHO, ConservationMonitor, v1309_binary


@pytest.mark.slow
class TestV1309:
    @pytest.fixture(scope="class")
    def mesh(self):
        return v1309_binary(M=16, scf_iters=20)

    def test_scf_produces_two_cores(self, mesh):
        rho = mesh.interior[RHO]
        mid = rho.shape[2] // 2
        profile = rho[:, :, mid].max(axis=1)
        peaks = np.nonzero((profile[1:-1] > profile[:-2])
                           & (profile[1:-1] >= profile[2:])
                           & (profile[1:-1]
                              > 100 * mesh.options.rho_floor))[0]
        assert len(peaks) >= 2

    def test_binary_rotates_synchronously(self, mesh):
        """The SCF omega should be near the Keplerian rate of the point-
        mass binary at the same separation and mass."""
        assert mesh.options.omega > 0
        total_mass = mesh.conserved_totals()["mass"]
        kepler = np.sqrt(total_mass / 3.0 ** 3)
        assert mesh.options.omega == pytest.approx(kepler, rel=0.6)

    def test_passive_scalars_tag_components(self, mesh):
        I = mesh.interior
        acc = I[PASSIVE0].sum()
        don = I[PASSIVE0 + 1].sum()
        assert acc > 0 and don > 0
        # accretor (primary) carries much more mass than the donor
        assert acc > 1.5 * don

    def test_short_evolution_conserves(self, mesh):
        mon = ConservationMonitor()
        mon.sample(mesh)
        for _ in range(3):
            mesh.step(min(mesh.compute_dt(), 0.02))
        mon.sample(mesh)
        rep = mon.report()
        # outflow walls shed a little envelope; interior scheme is exact
        assert rep["mass"] < 1e-2
        # in the rotating frame, Coriolis/centrifugal exchange momentum
        # but mass-normalized drifts stay small over a few steps
        assert rep["momentum"] < 0.05

    def test_stars_survive_the_steps(self, mesh):
        rho = mesh.interior[RHO]
        assert rho.max() > 0.1
        assert np.isfinite(rho).all()
