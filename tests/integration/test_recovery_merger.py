"""PR 9 acceptance: durable recovery of the distributed V1309 merger.

One scripted disaster
(:func:`repro.resilience.distrun.run_recovery_merger`): the merger runs
over four localities with every committed checkpoint buddy-replicated;
two non-adjacent localities are killed *together* mid-run (more than
evacuation capacity — their blocks' GIDs are lost with their memory),
and the newest checkpoint was silently corrupted on its way into the
store.  The acceptance bar (ISSUE 9):

* the phi-accrual detector declares both victims with no manual call;
* the :class:`~repro.resilience.durability.RecoveryCoordinator` rolls
  every survivor back to the newest globally-consistent **verified**
  generation (falling back past the corrupted one), remaps ownership
  over the two survivors, resurrects the lost GIDs, and the run replays
  to a final state **byte-identical** to the node-level reference;
* the drift reports match record for record and the halo / checkpoint /
  recovery counters reconcile exactly.
"""

import pytest

from repro.resilience.distrun import (RecoveryMergerConfig,
                                      run_recovery_merger)
from repro.runtime.counters import CounterRegistry


@pytest.fixture(scope="module")
def recovery():
    registry = CounterRegistry()
    result = run_recovery_merger(RecoveryMergerConfig(), registry)
    return result, registry.snapshot()


@pytest.mark.slow
class TestRecoveryMerger:
    def test_completes_bit_identical_to_node_level(self, recovery):
        res, _snap = recovery
        assert res.dist.steps == res.config.steps
        assert res.bitwise_identical
        assert res.reports_identical

    def test_both_victims_detected_without_manual_calls(self, recovery):
        res, snap = recovery
        assert res.killed == sorted(res.config.kill_localities)
        assert sorted(res.detector.declared_failed) == res.killed
        assert snap["/resilience/health/detected"] == len(res.killed)
        assert snap["/resilience/health/silenced"] == len(res.killed)
        # correlated loss: nothing was evacuated, the GIDs died with
        # the nodes and only the replicated store could bring them back
        assert snap.get("/resilience/health/evacuated", 0.0) == 0.0
        assert snap["/resilience/agas/components-lost"] > 0

    def test_global_rollback_fell_back_past_the_corrupt_generation(
            self, recovery):
        res, snap = recovery
        rep = res.report
        assert rep is not None
        assert res.coordinator.rollbacks == 1
        assert snap["/recovery/global-rollbacks"] == 1.0
        assert snap["/recovery/elastic-restarts"] == 1.0
        # the newest save (the corrupted one) was skipped
        assert res.injector.stats()["ckpt-corruption"] == 1
        assert snap["/resilience/ckpt/fallback"] >= 1.0
        assert snap["/resilience/ckpt/corrupt"] >= 1.0
        assert snap["/resilience/ckpt/verified"] >= 1.0
        assert rep.step < res.config.kill_after_steps

    def test_elastic_restart_on_the_survivors(self, recovery):
        res, snap = recovery
        rep = res.report
        survivors = sorted(set(range(res.config.n_localities))
                           - set(res.killed))
        assert rep.survivors == survivors
        assert snap["/recovery/localities-remaining"] == len(survivors)
        # every block now lives on a survivor; the victims host nothing
        owners = res.dist.owners()
        assert set(owners.values()) <= set(survivors)
        for victim in res.killed:
            assert res.dist.locality_blocks()[victim] == 0
        # the lost GIDs were resurrected (not migrated — they were dead)
        assert rep.components_restored > 0
        assert snap["/recovery/components-restored"] == \
            rep.components_restored
        assert snap["/resilience/agas/components-restored"] == \
            rep.components_restored
        assert res.dist.lost_blocks == set()
        assert rep.blocks_fetched == len(res.dist.blocks)

    def test_replication_and_counters_reconcile(self, recovery):
        res, snap = recovery
        assert res.counters_reconcile
        assert snap["/distmesh/halo/sets"] == snap["/distmesh/halo/gets"]
        # replication was charged like real traffic and survived the loss
        assert snap["/resilience/ckpt/replicas"] > 0
        assert snap["/resilience/ckpt/replicas-lost"] > 0
        assert snap["/recovery/blocks-fetched"] == len(res.dist.blocks)
        st = res.dist.transport.stats
        assert st.onesided_msgs > 0
        port = res.dist.transport.port_snapshot()
        assert int(port["messages"]) == st.remote_msgs + st.onesided_msgs
        assert int(port["bytes"]) == st.remote_bytes + st.onesided_bytes
