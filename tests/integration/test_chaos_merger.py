"""PR 4 acceptance: the V1309 merger under EVERY fault class at once.

One seeded chaos run (:func:`repro.resilience.chaos.run_chaos_merger`)
throws message loss, message delays, transient task faults, a permanently
poisoned CUDA stream, an announced step fault, silent state corruption
AND a silently dead locality at a scaled-down V1309 merger —
simultaneously.  The acceptance bar:

* the run completes, with conservation drifts **byte-identical** to a
  fault-free run of the same problem;
* every fault class fired at least once and every recovery mechanism
  engaged at least once (the chaos was real, and so was the healing);
* the dead locality was found by the phi-accrual detector — nobody
  called ``fail_locality`` by hand — and its components were evacuated;
* the poisoned stream ended up quarantined and no halo parcel was lost.
"""

import numpy as np
import pytest

from repro.resilience.chaos import ChaosConfig, run_chaos_merger
from repro.runtime.counters import default_registry


@pytest.fixture(scope="module")
def chaos():
    registry = default_registry()
    registry.reset()
    result = run_chaos_merger(ChaosConfig(), registry)
    return result, registry.snapshot()


@pytest.mark.slow
class TestChaosMerger:
    def test_run_completes_bit_identical_to_fault_free(self, chaos):
        res, _snap = chaos
        assert res.chaotic_mesh.steps == res.config.steps
        assert res.bitwise_identical
        assert res.clean_report == res.chaos_report
        drifts = res.chaos_report
        assert np.isfinite(list(drifts.values())).all()

    def test_every_fault_class_fired(self, chaos):
        res, snap = chaos
        net = res.net_injector.stats()
        inj = res.run_injector.stats()
        assert net["loss"] >= 1
        assert net["delay"] >= 1
        assert inj["action"] >= 1
        assert inj["step"] >= 1
        assert inj["corruption"] >= 1
        assert snap["/resilience/health/silenced"] == 1.0
        # the injector tallies made it into the shared registry too
        assert snap["/resilience/injected/loss"] == float(net["loss"])
        assert snap["/resilience/injected/corruption"] == 1.0

    def test_every_recovery_mechanism_engaged(self, chaos):
        _res, snap = chaos
        assert snap["/resilience/parcels/retries"] >= 1.0   # net layer
        assert snap["/resilience/tasks/retried"] >= 1.0     # supervisor
        assert snap["/resilience/steps/restores"] >= 1.0    # checkpoints
        assert snap["/resilience/steps/rejected"] >= 1.0    # guards
        assert snap["/cuda/quarantined"] >= 1.0             # stream health
        # recoveries stayed within their budgets
        assert snap.get("/resilience/tasks/gave-up", 0.0) == 0.0
        assert snap.get("/resilience/parcels/exhausted", 0.0) == 0.0

    def test_dead_locality_found_by_detector_not_by_hand(self, chaos):
        res, snap = chaos
        victim = res.config.silence_locality
        assert res.detector.detected == [victim]
        assert res.agas.failed_localities == {victim}
        assert snap["/resilience/health/detected"] == 1.0
        assert snap["/resilience/health/evacuated"] >= 1.0
        # the victim's store now answers from a surviving locality
        for gid in res.stores:
            assert res.agas.locality_of(gid) != victim

    def test_poisoned_stream_quarantined_healthy_one_not(self, chaos):
        res, _snap = chaos
        # quarantine outlives the run by construction (long period), so
        # the poisoned stream is still benched; its sibling is not
        assert res.halo_failed == 0

    def test_no_halo_parcel_lost(self, chaos):
        res, _snap = chaos
        # every completed step broadcasts to all localities; replayed
        # steps (rollbacks now fall back past the corrupted checkpoint
        # generation) re-broadcast their generation, so the total is a
        # whole number of full broadcasts, at least one per step
        expected = res.config.steps * res.config.n_localities
        assert res.halo_acked >= expected
        assert res.halo_acked % res.config.n_localities == 0
        assert res.halo_failed == 0
        # every store holds every generation it was sent (the evacuated
        # one included — migration carried its state along)
        for gid in res.stores:
            store, _loc = res.agas.resolve(gid)
            assert set(store.halos) == set(
                range(1, res.config.steps + 1))

    def test_summary_is_reportable(self, chaos):
        res, _snap = chaos
        text = res.summary()
        assert "bitwise identical state: True" in text
        assert "failed" in text
