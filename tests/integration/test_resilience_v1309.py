"""PR 2 acceptance: the V1309 merger survives an unreliable machine.

With fault injection enabled (5% message loss on the halo parcel path, a
transient whole-locality failure, an injected mid-run step fault — all
from one fixed seed) the merger run completes via retry + checkpoint
restore and reproduces the fault-free conservation behaviour bit for bit;
retry-budget exhaustion surfaces as an exceptional future, never a hang.
"""

import numpy as np
import pytest

from repro.core import RHO, evolve, v1309_binary
from repro.resilience import (FaultInjector, ResilientParcelSender,
                              RetryBudgetExhausted, RetryPolicy)
from repro.runtime import (AgasRuntime, Component, CounterRegistry, Parcel,
                           ParcelHandler)


def build_binary():
    return v1309_binary(M=16, scf_iters=12)


@pytest.mark.slow
class TestMergerUnderFaults:
    def test_checkpoint_restore_reproduces_fault_free_run(self):
        clean = build_binary()
        faulty = build_binary()
        assert np.array_equal(clean.U, faulty.U)  # identical initial data

        mon_clean = evolve(clean, t_end=1.0, max_steps=3)
        inj = FaultInjector(seed=1309, fail_at_steps=(1,),
                            registry=CounterRegistry())
        mon_faulty = evolve(faulty, t_end=1.0, max_steps=3,
                            checkpoint_interval=1, fault_injector=inj)

        assert inj.stats()["step"] == 1            # the failure happened
        assert faulty.steps == clean.steps == 3    # and the run completed
        assert np.array_equal(clean.U, faulty.U)   # bitwise identical state
        rep_c, rep_f = mon_clean.report(), mon_faulty.report()
        assert rep_c == rep_f                      # identical drifts
        assert np.isfinite(faulty.interior[RHO]).all()

    def test_halo_parcels_survive_loss_and_locality_failure(self):
        """Distribute sub-grid payloads over 4 localities, lose 5% of the
        parcels and one whole locality mid-stream; every halo arrives."""

        class SubgridStore(Component):
            def __init__(self):
                super().__init__()
                self.halos = {}

            def put_halo(self, generation, buf):
                self.halos[generation] = buf
                return generation

        reg = CounterRegistry()
        ag = AgasRuntime(4, registry=reg)
        stores = [ag.register(SubgridStore(), loc) for loc in range(4)]
        inj = FaultInjector(seed=7, loss_rate=0.05, registry=reg)
        sender = ResilientParcelSender(
            ParcelHandler(ag), injector=inj, registry=reg,
            policy=RetryPolicy(max_attempts=8, base_backoff=1e-6),
            sleep=lambda _t: None)

        halo = np.arange(16 * 16, dtype=np.float64)
        futs = []
        for gen in range(25):
            if gen == 12:   # a node dies mid-run; survivors take over
                ag.fail_locality(3)
            for gid in stores:
                futs.append(sender.send(
                    Parcel(gid, "put_halo", (gen, halo * gen))))
        for f in futs:
            assert f.get() >= 0                    # every send was acked

        snap = reg.snapshot()
        assert snap["/resilience/injected/loss"] > 0
        assert snap["/resilience/parcels/recovered"] > 0
        assert snap["/resilience/agas/localities-failed"] == 1.0
        # the evacuated store kept its GID and collected all generations
        comp, home = ag.resolve(stores[3])
        assert home != 3
        assert sorted(comp.halos) == list(range(25))

    def test_retry_exhaustion_never_hangs(self):
        """A fully dead link yields an exceptional future promptly (the
        pytest-timeout cap in CI turns any regression into a failure)."""
        ag = AgasRuntime(1)

        class Sink(Component):
            def put(self, x):
                return x

        gid = ag.register(Sink())
        inj = FaultInjector(seed=3, loss_rate=1.0,
                            registry=CounterRegistry())
        sender = ResilientParcelSender(
            ParcelHandler(ag), injector=inj,
            policy=RetryPolicy(max_attempts=4, base_backoff=1e-6),
            sleep=lambda _t: None)
        fut = sender.send(Parcel(gid, "put", (1,)))
        assert fut.is_ready()
        with pytest.raises(RetryBudgetExhausted):
            fut.get()
