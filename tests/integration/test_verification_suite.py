"""The four-test verification suite of Sec. 4.2, end to end.

"We used a test suite of four verification tests, recommended by Tasker
et al. for self-gravitating astrophysical codes": Sod shock tube,
Sedov-Taylor blast wave, a star in equilibrium at rest, and the same star
in motion.
"""

import numpy as np
import pytest

from repro.core import EGAS, RHO, SX, Mesh, equilibrium_star, sedov_blast, \
    sod_tube
from repro.core.stepper import ConservationMonitor, evolve
from repro.validation import shock_radius, sod_solution


@pytest.mark.slow
class TestSodTube:
    def test_profile_matches_exact_solution(self):
        mesh = sod_tube(n=(128, 8, 8))
        t_end = 0.2
        while mesh.time < t_end:
            mesh.step(min(mesh.compute_dt(), t_end - mesh.time))
        x = np.ravel(mesh.cell_centers()[0])
        sim = mesh.interior[RHO][:, 4, 4]
        exact = sod_solution(x, t_end).rho
        l1 = np.abs(sim - exact).mean() / exact.mean()
        assert l1 < 0.03, f"Sod L1 density error {l1:.4f}"

    def test_mass_conserved_and_passives_advect(self):
        mesh = sod_tube(n=(64, 8, 8))
        m0 = mesh.conserved_totals()["mass"]
        from repro.core import PASSIVE0
        frac0 = mesh.interior[PASSIVE0].sum() * mesh.dx ** 3
        for _ in range(20):
            mesh.step()
        assert mesh.conserved_totals()["mass"] == pytest.approx(
            m0, rel=1e-12)
        frac1 = mesh.interior[PASSIVE0].sum() * mesh.dx ** 3
        assert frac1 == pytest.approx(frac0, rel=1e-10)


@pytest.mark.slow
class TestSedovBlast:
    def test_shock_radius_follows_t_two_fifths(self):
        mesh = sedov_blast(n=32, E=1.0)
        radii, times = [], []
        x, y, z = mesh.cell_centers()
        r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        t_marks = (0.006, 0.012)
        for t_end in t_marks:
            while mesh.time < t_end:
                mesh.step(min(mesh.compute_dt(), t_end - mesh.time))
            rho = mesh.interior[RHO]
            # shock = outermost strong density enhancement
            shell = r[rho > 1.3]
            radii.append(shell.max() if len(shell) else 0.0)
            times.append(mesh.time)
        assert radii[1] > radii[0] > 0
        measured_exp = np.log(radii[1] / radii[0]) \
            / np.log(times[1] / times[0])
        assert measured_exp == pytest.approx(0.4, abs=0.15)

    def test_shock_radius_magnitude_near_sedov(self):
        mesh = sedov_blast(n=32, E=1.0)
        t_end = 0.01
        while mesh.time < t_end:
            mesh.step(min(mesh.compute_dt(), t_end - mesh.time))
        x, y, z = mesh.cell_centers()
        r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
        shell = r[mesh.interior[RHO] > 1.3]
        expected = shock_radius(mesh.time, 1.0, 1.0, 1.4)
        assert shell.max() == pytest.approx(expected, rel=0.35)

    def test_blast_stays_spherical(self):
        mesh = sedov_blast(n=32, E=1.0)
        for _ in range(15):
            mesh.step()
        rho = mesh.interior[RHO]
        # symmetry: the three axis profiles through the centre agree
        cx = rho[:, 16, 16]
        cy = rho[16, :, 16]
        cz = rho[16, 16, :]
        np.testing.assert_allclose(cx, cy, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(cx, cz, rtol=1e-8, atol=1e-10)


@pytest.mark.slow
class TestStarEquilibrium:
    def test_star_at_rest_retains_structure(self):
        """Verification test 3: central density and profile persist."""
        mesh = equilibrium_star(n=16, domain=4.0)
        rho0 = mesh.interior[RHO].copy()
        mon = ConservationMonitor()
        evolve(mesh, t_end=0.20, monitor=mon, max_steps=40)
        drift = np.abs(mesh.interior[RHO] - rho0).max() / rho0.max()
        # 16^3 discretization: FMM gravity and PPM pressure gradients
        # balance to ~10%; the structure must persist, not blow up
        assert drift < 0.20, f"equilibrium density drift {drift:.3f}"
        rep = mon.report()
        # density floors inject tiny mass in the evacuated exterior
        assert rep["mass"] < 1e-7

    def test_star_in_motion_advects_cleanly(self):
        """Verification test 4: uniform translation preserves the star."""
        v = 0.1
        mesh = equilibrium_star(n=16, domain=4.0, velocity=(v, 0.0, 0.0))
        x, _y, _z = mesh.cell_centers()
        rho0 = mesh.interior[RHO].copy()
        com0 = float((rho0 * x).sum() / rho0.sum())
        t_end = 0.5
        evolve(mesh, t_end=t_end, max_steps=60)
        rho1 = mesh.interior[RHO]
        com1 = float((rho1 * x).sum() / rho1.sum())
        assert com1 - com0 == pytest.approx(v * mesh.time, rel=0.25)
        # the peak stays within ~10% of the initial central density
        assert rho1.max() == pytest.approx(rho0.max(), rel=0.15)
