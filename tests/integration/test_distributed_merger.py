"""PR 7 acceptance: the real V1309 merger distributed over localities.

One supervised distributed run
(:func:`repro.resilience.distrun.run_distributed_merger`): blocks
AGAS-sharded over four localities, halos charged through the parcelport
and delivered in a seeded shuffled order, one locality silenced
mid-merger.  The acceptance bar (ISSUE 7):

* the distributed final state is **byte-identical** to the node-level
  ``BlockMesh`` run — including after the phi-accrual detector found the
  silent locality, AGAS evacuated its blocks, and the run rolled back to
  checkpoint and replayed on the survivors;
* the conservation-drift reports are identical record for record;
* the counters reconcile: halo sets == halo gets, and every
  cross-locality halo was charged to the halo parcelport (transport
  tallies == ``/parcels/halo:<port>/*`` tallies, exactly).
"""

import numpy as np
import pytest

from repro.resilience.distrun import (DistributedMergerConfig,
                                      run_distributed_merger)
from repro.runtime.counters import CounterRegistry


@pytest.fixture(scope="module")
def merger():
    registry = CounterRegistry()
    result = run_distributed_merger(DistributedMergerConfig(), registry)
    return result, registry.snapshot()


@pytest.mark.slow
class TestDistributedMerger:
    def test_completes_bit_identical_to_node_level(self, merger):
        res, _snap = merger
        assert res.dist.steps == res.config.steps
        assert res.bitwise_identical
        assert res.reports_identical

    def test_locality_was_killed_detected_and_evacuated(self, merger):
        res, snap = merger
        victim = res.config.kill_locality
        assert res.killed_locality == victim
        # nobody called fail_locality by hand — the detector did
        assert victim in res.detector.declared_failed
        assert snap["/resilience/health/detected"] == 1
        assert snap["/resilience/health/silenced"] == 1
        assert res.evacuated
        assert snap["/resilience/health/evacuated"] == len(res.evacuated)
        # the victim hosts nothing now; its blocks moved, none were lost
        assert res.dist.locality_blocks()[victim] == 0
        assert snap["/resilience/agas/components-lost"] == 0
        for gid in res.evacuated:
            assert res.dist.agas.locality_of(gid) != victim

    def test_rollback_and_replay_engaged(self, merger):
        res, snap = merger
        assert res.checkpoints.restores >= 1
        assert snap["/resilience/checkpoint/restores"] >= 1
        # the replay re-ran at least one step's worth of supervised tasks
        assert snap["/resilience/tasks/submitted"] > 0

    def test_counters_reconcile(self, merger):
        res, snap = merger
        assert res.counters_reconcile
        assert snap["/distmesh/halo/sets"] == snap["/distmesh/halo/gets"]
        st = res.dist.transport.stats
        assert st.remote_msgs > 0        # halos really crossed localities
        assert st.reordered == st.remote_msgs  # all were shuffle-delivered
        port = res.dist.transport.port_snapshot()
        assert int(port["messages"]) == st.remote_msgs + st.onesided_msgs
        assert int(port["bytes"]) == st.remote_bytes + st.onesided_bytes
        # the halo port's gauges were published (global tallies — they
        # include any earlier traffic on the same process-wide port, so
        # >= this run's share, never less)
        published = snap[f"/parcels/{res.dist.transport.port.name}/messages"]
        assert published >= port["messages"]
        total_blocks = sum(res.dist.locality_blocks().values())
        assert sum(int(snap[f"/distmesh/blocks/loc{i}"])
                   for i in range(res.config.n_localities)) == total_blocks

    def test_conservation_drifts_are_finite_and_small(self, merger):
        res, _snap = merger
        report = res.dist_monitor.report()
        assert report == res.ref_monitor.report()
        for key, val in report.items():
            assert np.isfinite(val), key
