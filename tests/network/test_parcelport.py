"""Parcelport cost models: the Sec. 6.3 mechanism list as properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (EAGER_BYTES, DragonflyTopology, MessageCost,
                           PARCELPORTS, Parcelport)

LF = PARCELPORTS["libfabric"]
MPI = PARCELPORTS["mpi"]


class TestCatalogue:
    def test_both_ports_exist(self):
        assert set(PARCELPORTS) == {"mpi", "libfabric"}

    def test_mpi_is_two_sided(self):
        assert MPI.rendezvous and not LF.rendezvous

    def test_libfabric_is_zero_copy(self):
        """Sec. 5.2: pinned RMA buffers avoid internal copies."""
        assert LF.copy_per_byte == 0.0 and MPI.copy_per_byte > 0.0

    def test_libfabric_lower_base_overheads(self):
        assert LF.send_overhead < MPI.send_overhead
        assert LF.recv_overhead < MPI.recv_overhead
        assert LF.latency < MPI.latency


class TestMessageCost:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LF.message_cost(-1)

    def test_total_is_sum_of_parts(self):
        c = LF.message_cost(1000)
        assert c.total == pytest.approx(c.sender_cpu + c.wire
                                        + c.receiver_cpu)

    def test_rendezvous_kicks_in_above_eager(self):
        small = MPI.message_cost(EAGER_BYTES)
        large = MPI.message_cost(EAGER_BYTES + 1)
        # the round-trip adds two extra latencies beyond the one-byte delta
        assert large.wire - small.wire > 1.5 * MPI.latency

    def test_libfabric_has_no_rendezvous_jump(self):
        small = LF.message_cost(EAGER_BYTES)
        large = LF.message_cost(EAGER_BYTES + 1)
        assert large.wire - small.wire < 0.1 * LF.latency + 1e-9

    @given(st.integers(0, 10_000_000))
    @settings(max_examples=50, deadline=None)
    def test_wire_time_monotone_in_size(self, size):
        a = LF.message_cost(size)
        b = LF.message_cost(size + 4096)
        assert b.wire >= a.wire

    def test_hops_increase_latency(self):
        near = LF.message_cost(100, hops=1)
        far = LF.message_cost(100, hops=4)
        assert far.wire > near.wire

    def test_mpi_interference_scales_with_senders_and_intensity(self):
        """Sec. 5.2: MPI locking interferes with the scheduler."""
        quiet = MPI.message_cost(100, concurrent_senders=1,
                                 comm_intensity=1.0)
        busy = MPI.message_cost(100, concurrent_senders=12,
                                comm_intensity=1.0)
        idle_comm = MPI.message_cost(100, concurrent_senders=12,
                                     comm_intensity=0.0)
        assert busy.sender_cpu > quiet.sender_cpu
        assert idle_comm.sender_cpu == pytest.approx(quiet.sender_cpu)

    def test_libfabric_poll_delay_when_workers_busy(self):
        """Sec. 6.3: nobody polls completions while all cores compute."""
        relaxed = LF.message_cost(100, busy_fraction=0.0,
                                  concurrent_senders=1)
        busy = LF.message_cost(100, busy_fraction=1.0, concurrent_senders=1)
        assert busy.receiver_cpu > relaxed.receiver_cpu

    def test_idle_contention_when_workers_starved(self):
        """Sec. 6.3: 'if no work is available, all cores compete for
        access to the network'."""
        calm = MPI.message_cost(100, busy_fraction=1.0,
                                concurrent_senders=12)
        starved = MPI.message_cost(100, busy_fraction=0.0,
                                   concurrent_senders=12)
        assert starved.receiver_cpu > calm.receiver_cpu

    def test_large_message_crossover(self):
        """For big halos libfabric must beat MPI on every component."""
        size = 64 * 1024
        a = LF.message_cost(size, concurrent_senders=12, busy_fraction=0.5,
                            comm_intensity=0.5)
        b = MPI.message_cost(size, concurrent_senders=12, busy_fraction=0.5,
                             comm_intensity=0.5)
        assert a.total < b.total


class TestSharedEagerConstant:
    def test_cost_model_and_serializer_share_the_threshold(self):
        """The eager/rendezvous boundary must be one constant: the cost
        model (network) and the parcel serializer (runtime) can never
        disagree."""
        from repro.network import parcelport
        from repro.runtime.parcel import EAGER_THRESHOLD
        assert parcelport.EAGER_BYTES is EAGER_THRESHOLD
        assert EAGER_BYTES == EAGER_THRESHOLD


class TestPortStats:
    def test_message_cost_tallies_components(self):
        from repro.network import parcelport
        parcelport.reset_port_stats()
        MPI.message_cost(100)                 # eager
        MPI.message_cost(EAGER_BYTES + 100)   # rendezvous
        LF.message_cost(EAGER_BYTES + 100)    # one-sided RMA
        mpi = parcelport.port_stats("mpi").snapshot()
        lf = parcelport.port_stats("libfabric").snapshot()
        assert mpi["messages"] == 2 and lf["messages"] == 1
        assert mpi["eager"] == 1 and mpi["rendezvous"] == 1 and mpi["rma"] == 0
        assert lf["eager"] == 0 and lf["rendezvous"] == 0 and lf["rma"] == 1
        assert mpi["sender_cpu"] > 0 and mpi["wire"] > 0 \
            and mpi["receiver_cpu"] > 0

    def test_publish_counters_into_registry(self):
        from repro.network import parcelport
        from repro.runtime import CounterRegistry
        parcelport.reset_port_stats()
        MPI.message_cost(10)
        MPI.message_cost(EAGER_BYTES * 2)
        reg = CounterRegistry()
        parcelport.publish_counters(reg)
        assert reg.value("/parcels/mpi/messages") == 2.0
        assert reg.value("/parcels/mpi/eager-fraction") == pytest.approx(0.5)
        assert reg.value("/parcels/mpi/rendezvous") == 1.0

    def test_reset(self):
        from repro.network import parcelport
        parcelport.reset_port_stats()
        LF.message_cost(1)
        parcelport.reset_port_stats()
        assert parcelport.port_stats("libfabric").messages == 0


class TestTopology:
    def test_zero_hops_to_self(self):
        topo = DragonflyTopology(100)
        assert topo.hops(5, 5) == 0

    def test_same_router_one_hop(self):
        topo = DragonflyTopology(100)
        assert topo.hops(0, 3) == 1

    def test_same_group_two_hops(self):
        topo = DragonflyTopology(1000)
        assert topo.hops(0, 100) == 2

    def test_cross_group_four_hops(self):
        topo = DragonflyTopology(5400)
        assert topo.hops(0, 5000) == 4

    def test_symmetry(self):
        topo = DragonflyTopology(5400)
        for a, b in [(0, 1), (0, 500), (17, 4999)]:
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_out_of_range_rejected(self):
        topo = DragonflyTopology(10)
        with pytest.raises(ValueError):
            topo.hops(0, 10)

    def test_group_count(self):
        topo = DragonflyTopology(5400)
        assert topo.n_groups == 15  # ceil(5400 / 384)

    def test_mean_hops(self):
        topo = DragonflyTopology(1000)
        assert 0.0 < topo.mean_hops(0, [1, 2, 500, 900]) <= 4.0


class TestDegradedParcelport:
    def test_degrade_preserves_base_and_renames(self):
        from repro.network.parcelport import degrade
        dp = degrade(LF, 0.1)
        assert dp.name == "libfabric+loss0.1"
        assert dp.latency == LF.latency and dp.bandwidth == LF.bandwidth

    def test_loss_inflates_every_cost_component(self):
        from repro.network.parcelport import degrade
        dp = degrade(LF, 0.2)
        base = LF.message_cost(8192)
        worse = dp.message_cost(8192)
        assert worse.sender_cpu > base.sender_cpu
        assert worse.wire > base.wire
        assert worse.receiver_cpu >= base.receiver_cpu
        assert worse.total > base.total

    def test_zero_loss_changes_nothing(self):
        from repro.network.parcelport import degrade
        dp = degrade(MPI, 0.0)
        base = MPI.message_cost(1024)
        same = dp.message_cost(1024)
        assert same.sender_cpu == base.sender_cpu
        assert same.wire == base.wire

    def test_more_loss_costs_more(self):
        from repro.network.parcelport import degrade
        costs = [degrade(LF, p).message_cost(65536).total
                 for p in (0.0, 0.05, 0.2, 0.5)]
        assert costs == sorted(costs)

    def test_bad_loss_rate_rejected(self):
        from repro.network.parcelport import degrade
        with pytest.raises(ValueError):
            degrade(LF, 1.0)
