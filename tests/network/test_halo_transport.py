"""HaloTransport: local fast path, parcelport charging, reordering."""

import numpy as np
import pytest

from repro.network.parcelport import EAGER_BYTES, PARCELPORTS, port_stats
from repro.network.transport import HaloTransport
from repro.runtime.channel import Channel


class _FakeChannel:
    """Records (value, generation) deliveries in arrival order."""

    def __init__(self):
        self.delivered = []

    def set(self, value, generation):
        self.delivered.append((value, generation))


def _buf(nbytes):
    return np.zeros(nbytes, dtype=np.uint8)


class TestPaths:
    def test_local_send_is_not_charged(self):
        tr = HaloTransport("libfabric")
        ch = _FakeChannel()
        tr.send(ch, _buf(100), 3, src_locality=1, dst_locality=1)
        assert ch.delivered == [(ch.delivered[0][0], 3)]
        assert tr.stats.local_msgs == 1
        assert tr.stats.local_bytes == 100
        assert tr.stats.remote_msgs == 0
        assert tr.port_snapshot()["messages"] == 0

    def test_remote_send_is_charged_to_the_halo_port(self):
        tr = HaloTransport("libfabric")
        ch = _FakeChannel()
        tr.send(ch, _buf(100), 0, src_locality=0, dst_locality=1)
        assert tr.stats.remote_msgs == 1
        snap = tr.port_snapshot()
        assert snap["messages"] == 1
        assert snap["bytes"] == 100
        assert tr.port.name == "halo:libfabric"
        # the base transport's own tallies are untouched
        assert tr.base_port.name == "libfabric"

    def test_eager_rendezvous_rma_split(self):
        small, big = EAGER_BYTES, EAGER_BYTES + 1
        for port, large_path in (("mpi", "rendezvous"),
                                 ("libfabric", "rma")):
            tr = HaloTransport(port)
            ch = _FakeChannel()
            tr.send(ch, _buf(small), 0, 0, 1)
            tr.send(ch, _buf(big), 1, 0, 1)
            assert tr.stats.eager == 1
            assert getattr(tr.stats, large_path) == 1
            snap = tr.port_snapshot()
            assert snap["eager"] == 1
            assert snap[large_path] == 1

    def test_onesided_charge(self):
        tr = HaloTransport("mpi")
        tr.charge_onesided(512, 0, 0)   # same locality: free
        assert tr.stats.onesided_msgs == 0
        tr.charge_onesided(512, 0, 1)
        assert tr.stats.onesided_msgs == 1
        assert tr.stats.onesided_bytes == 512
        assert tr.port_snapshot()["messages"] == 1

    def test_port_instance_accepted(self):
        tr = HaloTransport(PARCELPORTS["mpi"])
        assert tr.port.name == "halo:mpi"
        assert tr.port.rendezvous


class TestReordering:
    def test_without_seed_delivery_is_immediate_and_in_order(self):
        tr = HaloTransport("libfabric")
        ch = _FakeChannel()
        for gen in range(5):
            tr.send(ch, _buf(8), gen, 0, 1)
        assert [g for _v, g in ch.delivered] == list(range(5))
        assert tr.flush() == 0
        assert tr.stats.reordered == 0

    def test_seeded_flush_shuffles_but_delivers_everything(self):
        tr = HaloTransport("libfabric", reorder_seed=123)
        ch = _FakeChannel()
        for gen in range(16):
            tr.send(ch, _buf(8), gen, 0, 1)
        assert ch.delivered == []          # buffered until flush
        assert tr.flush() == 16
        gens = [g for _v, g in ch.delivered]
        assert sorted(gens) == list(range(16))
        assert gens != list(range(16))     # 1/16! chance, seed-fixed
        assert tr.stats.reordered == 16

    def test_same_seed_same_order(self):
        orders = []
        for _ in range(2):
            tr = HaloTransport("libfabric", reorder_seed=7)
            ch = _FakeChannel()
            for gen in range(12):
                tr.send(ch, _buf(8), gen, 0, 1)
            tr.flush()
            orders.append([g for _v, g in ch.delivered])
        assert orders[0] == orders[1]

    def test_local_sends_never_buffered(self):
        tr = HaloTransport("libfabric", reorder_seed=1)
        ch = _FakeChannel()
        tr.send(ch, _buf(8), 0, 2, 2)
        assert len(ch.delivered) == 1

    def test_discard_pending_drops_but_keeps_the_charge(self):
        tr = HaloTransport("libfabric", reorder_seed=1)
        ch = _FakeChannel()
        tr.send(ch, _buf(8), 0, 0, 1)
        assert tr.discard_pending() == 1
        assert tr.flush() == 0
        assert ch.delivered == []
        # the bytes travelled before the rollback; the charge stands
        assert tr.port_snapshot()["messages"] == 1
        assert tr.stats.remote_msgs == 1

    def test_reordered_delivery_matches_real_channel_generations(self):
        """Generation matching makes the shuffle invisible: every get
        resolves to the value sent for its generation."""
        tr = HaloTransport("libfabric", reorder_seed=99)
        ch = Channel(name="halo")
        futures = {gen: ch.get(gen) for gen in range(8)}
        for gen in range(8):
            tr.send(ch, np.full(4, float(gen)), gen, 0, 1)
        tr.flush()
        for gen, fut in futures.items():
            np.testing.assert_array_equal(fut.get(), np.full(4, float(gen)))


class TestReconciliation:
    def test_reconciles_counts_exactly(self):
        tr = HaloTransport("mpi")
        ch = _FakeChannel()
        tr.send(ch, _buf(64), 0, 0, 0)               # local, uncharged
        tr.send(ch, _buf(64), 1, 0, 1)               # eager
        tr.send(ch, _buf(EAGER_BYTES + 1), 2, 1, 0)  # rendezvous
        tr.charge_onesided(32, 0, 1)
        assert tr.reconciles()

    def test_baseline_isolates_later_transports(self):
        """Port tallies are global by name; the construction-time
        baseline keeps a fresh transport's snapshot exact even after
        earlier transports already charged the same halo port."""
        before = port_stats("halo:libfabric").messages
        a = HaloTransport("libfabric")
        ch = _FakeChannel()
        a.send(ch, _buf(8), 0, 0, 1)
        assert a.port_snapshot()["messages"] == pytest.approx(1)
        assert a.reconciles()
        b = HaloTransport("libfabric")   # baseline excludes a's traffic
        b.send(ch, _buf(8), 0, 0, 1)
        b.send(ch, _buf(8), 1, 0, 1)
        assert b.port_snapshot()["messages"] == pytest.approx(2)
        assert b.reconciles()
        # the shared global tally saw all three
        assert port_stats("halo:libfabric").messages == before + 3
