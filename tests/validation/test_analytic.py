"""Analytic reference solutions (Sod exact Riemann, Sedov-Taylor)."""

import numpy as np
import pytest

from repro.validation import (RiemannState, post_shock_state, sedov_alpha,
                              shock_radius, sod_solution, solve_riemann)


class TestRiemannSolver:
    def test_sod_star_values_match_literature(self):
        p, u = solve_riemann(RiemannState(1.0, 0.0, 1.0),
                             RiemannState(0.125, 0.0, 0.1), gamma=1.4)
        assert p == pytest.approx(0.30313, rel=1e-4)
        assert u == pytest.approx(0.92745, rel=1e-4)

    def test_symmetric_problem_has_zero_star_velocity(self):
        s = RiemannState(1.0, 0.0, 1.0)
        p, u = solve_riemann(s, s)
        assert u == pytest.approx(0.0, abs=1e-12)
        assert p == pytest.approx(1.0, rel=1e-10)

    def test_colliding_streams_raise_pressure(self):
        p, _u = solve_riemann(RiemannState(1.0, 1.0, 1.0),
                              RiemannState(1.0, -1.0, 1.0))
        assert p > 1.0

    def test_t_zero_returns_initial_data(self):
        x = np.linspace(0, 1, 11)
        sol = sod_solution(x, 0.0)
        assert sol.rho[0] == 1.0 and sol.rho[-1] == 0.125

    def test_sampled_solution_monotone_density_regions(self):
        x = np.linspace(0, 1, 201)
        sol = sod_solution(x, 0.2)
        # density bounded by initial extremes
        assert sol.rho.max() <= 1.0 + 1e-12
        assert sol.rho.min() >= 0.125 - 1e-12
        # contact and shock present: at least two distinct plateaus
        plateaus = np.unique(np.round(sol.rho, 3))
        assert len(plateaus) > 3

    def test_rankine_hugoniot_across_shock(self):
        """Mass flux is continuous across the right-moving shock."""
        x = np.linspace(0, 1, 2001)
        t = 0.2
        sol = sod_solution(x, t)
        # locate the shock: last jump in density
        jumps = np.nonzero(np.abs(np.diff(sol.rho)) > 0.05)[0]
        i = jumps[-1]
        s_speed = 1.7522  # literature value for Sod at gamma=1.4
        rho1, u1 = sol.rho[i], sol.u[i]
        rho2, u2 = sol.rho[i + 1], sol.u[i + 1]
        flux1 = rho1 * (u1 - s_speed)
        flux2 = rho2 * (u2 - s_speed)
        assert flux1 == pytest.approx(flux2, rel=0.02)


class TestSedov:
    def test_alpha_literature_values(self):
        assert sedov_alpha(1.4) == pytest.approx(0.8511, rel=1e-3)
        assert sedov_alpha(5.0 / 3.0) == pytest.approx(0.4936, rel=1e-3)

    def test_alpha_interpolates_between(self):
        a = sedov_alpha(1.5)
        assert sedov_alpha(5 / 3) < a < sedov_alpha(1.4)

    def test_shock_radius_scaling(self):
        r1 = shock_radius(1.0, 1.0, 1.0, 1.4)
        r32 = shock_radius(32.0, 1.0, 1.0, 1.4)
        assert r32 / r1 == pytest.approx(32 ** 0.4, rel=1e-12)

    def test_energy_scaling(self):
        r1 = shock_radius(1.0, 1.0, 1.0, 1.4)
        r2 = shock_radius(1.0, 32.0, 1.0, 1.4)
        assert r2 / r1 == pytest.approx(2.0, rel=1e-12)

    def test_post_shock_compression_is_strong_shock_limit(self):
        st = post_shock_state(1.0, 1.0, 1.0, gamma=1.4)
        assert st["rho"] == pytest.approx((1.4 + 1) / (1.4 - 1))

    def test_post_shock_velocity_below_shock_speed(self):
        st = post_shock_state(1.0, 1.0, 1.0, gamma=1.4)
        assert 0 < st["u"] < st["speed"]
