"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro import sanitize
from repro.sanitize import schedules


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


@pytest.fixture(autouse=True, scope="session")
def _schedule_explorer():
    """Honour ``REPRO_SCHEDULE_SEED``: run the whole suite under one
    adversarial-but-replayable schedule.

    Inert when the variable is unset; with it, every instrumented
    scheduling point (task post, steal scan, channel set, parcel
    delivery, transport flush) draws seeded perturbations, so the
    bit-identity tests double as a schedule-fuzz smoke — CI sweeps 25
    seeds, a failure replays locally from the printed seed alone.
    """
    exp = schedules.install_from_env()
    yield exp
    if exp is not None:
        schedules.uninstall()


@pytest.fixture
def san():
    """Sanitizers enabled with pristine graphs; restores prior state.

    Objects built inside the test (futures, locks, leases) are
    instrumented; tests inject hazards inside ``sanitize.scope()`` so the
    global findings list — asserted empty by ``_sanitize_guard`` — stays
    clean.
    """
    was_enabled = sanitize.enabled()
    sanitize.enable()
    sanitize.reset_graphs()
    yield sanitize
    sanitize.reset_graphs()
    if not was_enabled:
        sanitize.disable()


@pytest.fixture(autouse=True)
def _sanitize_guard(request):
    """Fail any test that leaks *global* sanitizer findings.

    Under ``REPRO_SANITIZE=1`` the whole suite doubles as a sanitizer
    run: a finding recorded outside a ``sanitize.scope()`` means either a
    real runtime hazard or an adversarial test missing the
    ``sanitize_tolerated`` marker.  Inert when the sanitizers are off.
    """
    before = sanitize.finding_count()
    yield
    if request.node.get_closest_marker("sanitize_tolerated"):
        sanitize.clear()
        return
    leaked = sanitize.findings()[before:]
    assert not leaked, (
        "test leaked sanitizer findings (wrap injected hazards in "
        "sanitize.scope() or mark the test sanitize_tolerated):\n"
        + "\n".join(f"  {f}" for f in leaked))
