"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro import sanitize


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


@pytest.fixture
def san():
    """Sanitizers enabled with pristine graphs; restores prior state.

    Objects built inside the test (futures, locks, leases) are
    instrumented; tests inject hazards inside ``sanitize.scope()`` so the
    global findings list — asserted empty by ``_sanitize_guard`` — stays
    clean.
    """
    was_enabled = sanitize.enabled()
    sanitize.enable()
    sanitize.reset_graphs()
    yield sanitize
    sanitize.reset_graphs()
    if not was_enabled:
        sanitize.disable()


@pytest.fixture(autouse=True)
def _sanitize_guard(request):
    """Fail any test that leaks *global* sanitizer findings.

    Under ``REPRO_SANITIZE=1`` the whole suite doubles as a sanitizer
    run: a finding recorded outside a ``sanitize.scope()`` means either a
    real runtime hazard or an adversarial test missing the
    ``sanitize_tolerated`` marker.  Inert when the sanitizers are off.
    """
    before = sanitize.finding_count()
    yield
    if request.node.get_closest_marker("sanitize_tolerated"):
        sanitize.clear()
        return
    leaked = sanitize.findings()[before:]
    assert not leaked, (
        "test leaked sanitizer findings (wrap injected hazards in "
        "sanitize.scope() or mark the test sanitize_tolerated):\n"
        + "\n".join(f"  {f}" for f in leaked))
