"""The repo-specific lint pass: every rule fires on its fixture, the
repo's own source tree stays clean, and the CLI exit codes are right."""

import textwrap

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source, main


def _lint(src, rel="repro/somewhere/mod.py"):
    return lint_source(textwrap.dedent(src), path=rel, rel=rel)


# -- REPRO001: blocking get in task bodies --------------------------------

def test_repro001_unbounded_get_in_posted_lambda():
    vs = _lint("sched.post(lambda: upstream.get())")
    assert [v.rule for v in vs] == ["REPRO001"]
    assert "stall a worker" in vs[0].message


def test_repro001_result_in_submit_and_post_batch():
    vs = _lint("""
        sched.submit(lambda: f.result())
        sched.post_batch([lambda: g.get() for g in futs])
    """)
    assert [v.rule for v in vs] == ["REPRO001", "REPRO001"]


def test_repro001_timeout_and_non_task_gets_are_clean():
    assert _lint("sched.post(lambda: f.get(1.0))") == []
    assert _lint("value = f.get()") == []  # not inside a posted thunk
    assert _lint("sched.post(lambda: mapping.get)") == []


# -- REPRO002: unguarded stream leases ------------------------------------

def test_repro002_unguarded_acquire():
    vs = _lint("""
        def launch(self):
            lease = self.pool.acquire()
            return lease.enqueue(kernel)
    """)
    assert [v.rule for v in vs] == ["REPRO002"]
    assert "leaks the stream" in vs[0].message


def test_repro002_with_and_finally_are_clean():
    assert _lint("""
        def launch(self):
            lease = self.pool.acquire()
            if lease is not None:
                with lease:
                    return lease.enqueue(kernel)
            return None
    """) == []
    assert _lint("""
        def launch(self):
            lease = stream_pool.acquire()
            try:
                return lease.enqueue(kernel)
            finally:
                lease.release()
    """) == []


# -- REPRO003: nondeterminism in core kernels -----------------------------

def test_repro003_wall_clock_in_core():
    vs = _lint("""
        import time
        def kernel(U):
            return U * time.time()
    """, rel="repro/core/hydro.py")
    assert [v.rule for v in vs] == ["REPRO003"]
    assert "bit-identical" in vs[0].message


def test_repro003_random_in_core():
    vs = _lint("""
        import random
        import numpy as np
        def kernel(U):
            return U + random.random() + np.random.rand()
    """, rel="repro/core/hydro.py")
    assert [v.rule for v in vs] == ["REPRO003", "REPRO003"]


def test_repro003_only_applies_to_core():
    src = "import time\nx = time.time()\n"
    assert _lint(src, rel="repro/runtime/trace_util.py") == []
    assert [v.rule for v in _lint(src, rel="repro/core/mesh2.py")] \
        == ["REPRO003"]


def test_repro003_perf_counter_allowed_in_core():
    assert _lint("import time\nt = time.perf_counter()\n",
                 rel="repro/core/mesh2.py") == []


# -- REPRO004: counter-name sections --------------------------------------

def test_repro004_unknown_section():
    vs = _lint("registry.increment('/thread/executed')")
    assert [v.rule for v in vs] == ["REPRO004"]
    assert "'thread'" in vs[0].message


def test_repro004_fstring_head_is_checked():
    vs = _lint('registry.set_gauge(f"/gpu/{name}/busy", 1.0)')
    assert [v.rule for v in vs] == ["REPRO004"]


def test_repro004_known_sections_and_helpers_clean():
    assert _lint("""
        registry.increment('/threads/executed')
        registry.set_gauge(f"/cuda/{name}/busy", 1.0)
        counter('/resilience/retries')
        gauge('/sanitize/findings-live', 0.0)
        with registry.time('/fmm/solve'):
            pass
    """) == []


def test_repro004_non_counter_strings_ignored():
    assert _lint("path.startswith('/not/a/counter')") == []


# -- REPRO005: bare except in runtime/resilience --------------------------

def test_repro005_bare_except_in_runtime():
    vs = _lint("""
        try:
            f()
        except:
            pass
    """, rel="repro/runtime/worker.py")
    assert [v.rule for v in vs] == ["REPRO005"]


def test_repro005_typed_except_and_other_dirs_clean():
    typed = """
        try:
            f()
        except BaseException as exc:
            record(exc)
    """
    assert _lint(typed, rel="repro/runtime/worker.py") == []
    bare = "try:\n    f()\nexcept:\n    pass\n"
    assert _lint(bare, rel="repro/analysis/tool.py") == []
    assert [v.rule for v in _lint(bare, rel="repro/resilience/sup.py")] \
        == ["REPRO005"]


# -- REPRO006: unaggregated enqueues in core/ -----------------------------

def test_repro006_direct_lease_enqueue_in_core():
    vs = _lint("lease.enqueue(kernel, dR, m)", rel="repro/core/solver.py")
    assert [v.rule for v in vs] == ["REPRO006"]
    assert "aggregation region" in vs[0].message


def test_repro006_stream_enqueue_aggregated_in_core():
    vs = _lint("self.stream.enqueue_aggregated(items)",
               rel="repro/core/gravity/fmm.py")
    assert [v.rule for v in vs] == ["REPRO006"]


def test_repro006_clean_outside_core_and_for_other_bases():
    # the runtime layer implements aggregation, so it may enqueue directly
    assert _lint("lease.enqueue(op)", rel="repro/runtime/aggregate.py") == []
    # only lease/stream receivers are launch paths
    assert _lint("queue.enqueue(item)", rel="repro/core/mesh.py") == []
    # engine-mediated dispatch is the sanctioned route
    assert _lint("engine.map(fn, argtuples)", rel="repro/core/mesh.py") == []


# -- REPRO007: unaccounted channel set in network-aware core/ -------------

_NETWORK_IMPORT = "from ..network.transport import HaloTransport\n"


def test_repro007_direct_set_in_network_aware_core_module():
    vs = _lint(_NETWORK_IMPORT + "ch.set(halo, generation)",
               rel="repro/core/distmesh.py")
    assert [v.rule for v in vs] == ["REPRO007"]
    assert "HaloTransport" in vs[0].message


def test_repro007_matches_channel_spellings():
    for recv in ("ch", "chan", "channel", "self._channel((nb, off))",
                 "halo_channel"):
        vs = _lint(_NETWORK_IMPORT + f"{recv}.set(v, g)",
                   rel="repro/core/distmesh.py")
        assert [v.rule for v in vs] == ["REPRO007"], recv


def test_repro007_clean_without_network_import():
    # core/mesh.py is node-level: no network import, direct sets are fine
    assert _lint("ch.set(halo, generation)", rel="repro/core/mesh.py") == []


def test_repro007_clean_outside_core_and_for_other_receivers():
    # the network layer itself delivers into channels — that IS the route
    assert _lint(_NETWORK_IMPORT + "ch.set(v, g)",
                 rel="repro/network/transport.py") == []
    # non-channel .set() receivers in network-aware core/ are untouched
    assert _lint(_NETWORK_IMPORT + "flags.set(True)",
                 rel="repro/core/distmesh.py") == []
    # transport-mediated sends are the sanctioned route
    assert _lint(_NETWORK_IMPORT + "transport.send(ch, v, g, src, dst)",
                 rel="repro/core/distmesh.py") == []


def test_repro007_absolute_import_spelling_also_counts():
    vs = _lint("import repro.network.parcelport as pp\nch.set(v, g)",
               rel="repro/core/distmesh.py")
    assert [v.rule for v in vs] == ["REPRO007"]


# -- REPRO008: unconditional allocations in out=/ws hot kernels -----------

def test_repro008_unconditional_alloc_with_out_param():
    vs = _lint("""
        def pair_kernel(dR, m, out=None):
            scratch = np.empty(len(dR))
            out[...] = scratch
            return out
    """, rel="repro/core/gravity/kernels.py")
    assert [v.rule for v in vs] == ["REPRO008"]
    assert "caller's scratch" in vs[0].message


def test_repro008_all_banned_allocators_fire():
    vs = _lint("""
        def rhs(U, ws):
            a = np.zeros(3)
            b = np.empty_like(U)
            c = np.zeros_like(U)
            d = np.concatenate([a, b])
            return a, b, c, d
    """, rel="repro/core/hydro/solver.py")
    assert [v.rule for v in vs] == ["REPRO008"] * 4


def test_repro008_guarded_fallback_branches_are_clean():
    # if/elif chain conditioned on out / ws
    assert _lint("""
        def rhs(U, out=None, ws=None):
            if out is not None:
                r = out
            elif ws is not None:
                r = ws.buf("rhs", U.shape)
            else:
                r = np.empty(U.shape)
            return r
    """, rel="repro/core/hydro/solver.py") == []
    # conditional expression on ws
    assert _lint("""
        def scratch(ws, shape):
            return ws.buf("x", shape) if ws is not None else np.empty(shape)
    """, rel="repro/core/hydro/riemann.py") == []


def test_repro008_out_of_scope_cases_are_clean():
    # reference kernels without out=/ws allocate freely
    assert _lint("""
        def reference(dR):
            return np.empty(len(dR))
    """, rel="repro/core/gravity/kernels.py") == []
    # same code outside core/gravity|hydro is untouched
    assert _lint("""
        def pair_kernel(dR, out=None):
            return np.empty(len(dR))
    """, rel="repro/core/mesh.py") == []
    # nested helpers are judged by their own signature, not the parent's
    assert _lint("""
        def solve(self, out=None):
            def fresh(n):
                return np.empty(n)
            return fresh(4) if out is None else out
    """, rel="repro/core/gravity/fmm.py") == []


def test_repro008_nested_def_with_own_out_param_fires():
    vs = _lint("""
        def driver(x):
            def kernel(dR, out=None):
                t = np.zeros(3)
                return t
            return kernel(x)
    """, rel="repro/core/gravity/fmm.py")
    assert [v.rule for v in vs] == ["REPRO008"]


# -- REPRO009: checkpoint records bypassing the verified store ------------

def test_repro009_mesh_checkpoint_construction_outside_store():
    vs = _lint("cp = MeshCheckpoint(step=3, time=0.1, U=mesh.U.copy())")
    assert [v.rule for v in vs] == ["REPRO009"]
    assert "checksum stamping" in vs[0].message
    # the qualified spelling counts too
    vs = _lint("cp = checkpoint.MeshCheckpoint(step=0, time=0.0, U=U)")
    assert [v.rule for v in vs] == ["REPRO009"]


def test_repro009_checkpoint_list_mutation_fires():
    for src in ("mgr._checkpoints.append(cp)",
                "mgr._checkpoints.pop()",
                "mgr._checkpoints.clear()",
                "mgr._checkpoints = [cp]",
                "mgr._checkpoints[0] = cp",
                "mgr._checkpoints += [cp]",
                "del mgr._checkpoints[:-1]"):
        vs = _lint(src)
        assert [v.rule for v in vs] == ["REPRO009"], src


def test_repro009_store_module_and_reads_are_clean():
    # the verified store itself implements the protocol
    assert _lint("""
        cp = MeshCheckpoint(step=0, time=0.0, U=U)
        self._checkpoints.append(cp)
        del self._checkpoints[:-self.keep]
    """, rel="repro/resilience/checkpoint.py") == []
    # read-only access is fine everywhere (tests inspect the store)
    assert _lint("n = len(mgr._checkpoints)") == []
    assert _lint("newest = mgr._checkpoints[-1].step") == []
    # unrelated attributes with similar shape stay clean
    assert _lint("mgr._records.append(x)") == []
    assert _lint("mgr._checkpoint = cp") == []


# -- REPRO010: task-body buffer writes invisible to the race detector -----

def test_repro010_subscript_write_to_out_param():
    vs = _lint("""
        def kern(x, out):
            out[...] = x * 2

        engine.map(kern, [(1,)])
    """, rel="repro/core/hydro/mod.py")
    assert [v.rule for v in vs] == ["REPRO010"]
    assert "race detector" in vs[0].message
    assert "sanitize.access" in vs[0].message


def test_repro010_workspace_pool_and_alias_mutations_fire():
    for body in ("acc = ws.take('acc', 8)\n    acc += x",
                 "buf = self._ws.buf('b', 8)\n    buf[0] = x",
                 "o = self._pool_out('m2l', slot, n)\n    np.copyto(o, x)",
                 "rhs2 = out\n    rhs2[...] = x",
                 "r = out if out is not None else alloc()\n    r[...] = x"):
        src = (f"def kern(x, out, slot=0, n=1):\n    {body}\n\n"
               "engine.submit(kern, 1)\n")
        vs = lint_source(src, rel="repro/core/gravity/mod.py")
        assert [v.rule for v in vs] == ["REPRO010"], body


def test_repro010_access_declaration_exempts_the_function():
    assert _lint("""
        def kern(x, out):
            _racecheck.access(out, "w", owner="k")
            out[...] = x * 2

        engine.map(kern, [(1,)])
    """, rel="repro/core/hydro/mod.py") == []


def test_repro010_out_of_scope_cases_are_clean():
    # not dispatched through an engine: plain helper, rule silent
    assert _lint("""
        def helper(x, out):
            out[...] = x
    """, rel="repro/core/hydro/mod.py") == []
    # dispatched but outside core/: the runtime orders its own writes
    assert _lint("""
        def kern(x, out):
            out[...] = x

        engine.map(kern, [(1,)])
    """, rel="repro/runtime/mod.py") == []
    # dispatched core/ kernel mutating only its own locals: clean
    assert _lint("""
        def kern(x, out):
            tmp = [0]
            tmp[0] = x
            return tmp

        engine.map(kern, [(1,)])
    """, rel="repro/core/hydro/mod.py") == []


def test_repro010_collection_crosses_files(tmp_path):
    """The dispatch site and the kernel live in different files; the
    two-pass lint_paths still connects them."""
    pkg = tmp_path / "core" / "hydro"
    pkg.mkdir(parents=True)
    (pkg / "kern.py").write_text(
        "def remote_kern(x, out):\n    out[...] = x\n")
    (tmp_path / "driver.py").write_text(
        "engine.map(remote_kern, [(1,)])\n")
    vs = lint_paths([str(tmp_path)])
    assert [v.rule for v in vs] == ["REPRO010"]
    # single-file lint of the kernel alone cannot see the dispatch
    assert lint_paths([str(pkg / "kern.py")]) == []


# -- syntax errors, repo cleanliness, CLI ---------------------------------

def test_syntax_error_is_reported_not_raised():
    vs = _lint("def broken(:\n")
    assert [v.rule for v in vs] == ["REPRO000"]


def test_repo_source_tree_is_clean():
    from pathlib import Path
    src = Path(__file__).resolve().parents[2] / "src"
    assert lint_paths([str(src)]) == []


def test_cli_exit_codes(tmp_path, capsys):
    assert main(["--rules"]) == 0
    assert set(RULES) <= set(capsys.readouterr().out.split())
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out
    dirty = tmp_path / "dirty.py"
    dirty.write_text("sched.post(lambda: f.get())\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "REPRO001" in out and "1 violation" in out
