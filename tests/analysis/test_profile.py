"""Profiling report: snapshot grouping, tables, the runnable scenario."""

import json
import subprocess
import sys

import pytest

from repro.analysis.profile import (format_report, group_snapshot,
                                    run_example_scenario)
from repro.runtime import CounterRegistry, trace


@pytest.fixture(autouse=True)
def clean_tracing():
    trace.disable()
    trace.clear()
    yield
    trace.disable()
    trace.clear()


class TestGroupSnapshot:
    def test_groups_by_top_level_prefix(self):
        snap = {"/threads/executed": 10.0, "/threads/posted": 12.0,
                "/cuda/launch/gpu": 3.0, "flat": 1.0}
        groups = group_snapshot(snap)
        assert groups["threads"] == {"executed": 10.0, "posted": 12.0}
        assert groups["cuda"] == {"launch/gpu": 3.0}
        assert groups["flat"] == {"": 1.0}

    def test_empty(self):
        assert group_snapshot({}) == {}


class TestFormatReport:
    def test_empty_registry(self):
        assert format_report(CounterRegistry()) == "(no counters recorded)"

    def test_renders_each_section(self):
        reg = CounterRegistry()
        reg.set_gauge("/threads/executed", 4.0)
        reg.set_gauge("/threads/posted", 4.0)
        reg.set_gauge("/threads/worker/0/executed", 4.0)
        reg.set_gauge("/cuda/launch/gpu", 3.0)
        reg.set_gauge("/cuda/launch/cpu", 1.0)
        reg.set_gauge("/cuda/launch/gpu-fraction", 0.75)
        reg.set_gauge("/cuda/sim-gpu/kernels-executed", 3.0)
        reg.set_gauge("/cuda/sim-gpu/streams", 8.0)
        reg.set_gauge("/parcels/mpi/messages", 2.0)
        reg.set_gauge("/futures/continuations-dispatched", 5.0)
        reg.set_gauge("/simulator/steps-evaluated", 6.0)
        report = format_report(reg)
        for heading in ("scheduler (/threads)", "per-worker utilization",
                        "kernel launch policy", "devices (/cuda)",
                        "parcelport cost components", "futures (/futures)",
                        "step model (/simulator)"):
            assert heading in report
        assert "75.00%" in report  # gpu-launch percentage


class TestScenario:
    def test_scenario_populates_all_subsystem_counters(self):
        reg = CounterRegistry()
        out = run_example_scenario(reg, n_kernels=24, n_streams=4,
                                   n_gpu_workers=2, n_cpu_workers=2,
                                   pair_batch=64, step_nodes=(2,),
                                   tree_level=9)
        assert out["gpu_launches"] + out["cpu_launches"] == 24
        names = set(reg.names())
        for expect in ("/threads/executed", "/threads/idle-rate",
                       "/cuda/launch/gpu-fraction",
                       "/cuda/sim-gpu/kernels-executed",
                       "/parcels/mpi/messages",
                       "/parcels/libfabric/messages",
                       "/futures/continuations-dispatched",
                       "/simulator/steps-evaluated"):
            assert expect in names, expect
        # every kernel's continuation ran through the scheduler
        assert reg.value("/threads/executed") >= 24
        assert format_report(reg) != "(no counters recorded)"

    def test_scenario_traces_when_enabled(self, tmp_path):
        trace.enable()
        run_example_scenario(CounterRegistry(), n_kernels=8, n_streams=2,
                             n_gpu_workers=1, n_cpu_workers=2,
                             pair_batch=32, step_nodes=(2,), tree_level=9)
        trace.disable()
        path = tmp_path / "trace.json"
        assert trace.export_chrome(str(path)) > 0
        doc = json.loads(path.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"phase", "cuda", "future"} <= cats


class TestEntryPoint:
    def test_module_entry_writes_trace_and_report(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.profile",
             "--out", str(tmp_path), "--kernels", "16", "--level", "9"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "scheduler (/threads)" in proc.stdout
        assert "parcelport cost components" in proc.stdout
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "M"} <= phases
