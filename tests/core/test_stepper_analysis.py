"""Conservation monitor, evolve driver, analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (KernelCounts, MONOPOLE_KERNEL_FLOPS,
                            MULTIPOLE_KERNEL_FLOPS, fmm_flops_per_solve,
                            format_table)
from repro.core import Mesh, sod_tube
from repro.core.stepper import ConservationMonitor, evolve


class TestMonitor:
    def test_sample_records_state(self):
        mesh = sod_tube(n=(16, 8, 8))
        mon = ConservationMonitor()
        rec = mon.sample(mesh)
        assert rec.mass > 0
        assert rec.step == 0
        assert len(mon.records) == 1

    def test_drift_zero_with_single_record(self):
        mon = ConservationMonitor()
        mon.sample(sod_tube(n=(16, 8, 8)))
        assert mon.drift("mass") == 0.0

    def test_evolve_advances_to_t_end(self):
        mesh = sod_tube(n=(16, 8, 8))
        mon = evolve(mesh, t_end=0.02)
        assert mesh.time == pytest.approx(0.02)
        assert len(mon.records) == mesh.steps + 1

    def test_evolve_respects_max_steps(self):
        mesh = sod_tube(n=(16, 8, 8))
        evolve(mesh, t_end=10.0, max_steps=3)
        assert mesh.steps == 3

    def test_evolve_callback_invoked(self):
        mesh = sod_tube(n=(16, 8, 8))
        seen = []
        evolve(mesh, t_end=10.0, max_steps=2,
               callback=lambda m: seen.append(m.time))
        assert len(seen) == 2

    def test_report_keys(self):
        mesh = sod_tube(n=(16, 8, 8))
        mon = evolve(mesh, t_end=10.0, max_steps=2)
        rep = mon.report()
        assert set(rep) == {"mass", "momentum", "angular_momentum", "egas"}
        assert rep["mass"] < 1e-12


class TestFlopAccounting:
    def test_kernel_counts(self):
        kc = KernelCounts(multipole_launches=2, monopole_launches=3)
        assert kc.total_launches == 5
        assert kc.flops == pytest.approx(
            2 * MULTIPOLE_KERNEL_FLOPS + 3 * MONOPOLE_KERNEL_FLOPS)

    def test_paper_constants(self):
        assert MULTIPOLE_KERNEL_FLOPS == 549_888 * 455
        assert MONOPOLE_KERNEL_FLOPS == 549_888 * 12

    def test_fmm_flops_per_solve(self):
        assert fmm_flops_per_solve(1, 0) == MULTIPOLE_KERNEL_FLOPS


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_handles_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out
