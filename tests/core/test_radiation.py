"""Gray M1 radiation transport (the paper's Sec. 7 extension module)."""

import numpy as np
import pytest

from repro.core.radiation import (RadiationField, RadiationOptions,
                                  couple_matter, m1_closure, radiation_dt,
                                  radiation_rhs)


class TestClosure:
    def test_diffusion_limit_isotropic(self):
        """f = 0: P = E/3 I (Eddington)."""
        E = np.full((4, 4, 4), 2.0)
        F = np.zeros((3, 4, 4, 4))
        P = m1_closure(E, F, c=1.0)
        for i in range(3):
            np.testing.assert_allclose(P[i, i], 2.0 / 3.0)
            for j in range(3):
                if i != j:
                    np.testing.assert_allclose(P[i, j], 0.0)

    def test_free_streaming_limit_beamed(self):
        """f = 1 along x: P_xx = E, all else 0."""
        E = np.full((2, 2, 2), 1.0)
        F = np.zeros((3, 2, 2, 2))
        F[0] = 1.0      # |F| = c E with c = 1
        P = m1_closure(E, F, c=1.0)
        np.testing.assert_allclose(P[0, 0], 1.0, rtol=1e-12)
        np.testing.assert_allclose(P[1, 1], 0.0, atol=1e-12)

    def test_causality_clipped(self):
        """Superluminal input fluxes are treated as f = 1, not NaN."""
        E = np.full((2, 2, 2), 1.0)
        F = np.zeros((3, 2, 2, 2))
        F[0] = 10.0
        P = m1_closure(E, F, c=1.0)
        assert np.isfinite(P).all()

    def test_trace_equals_energy(self):
        """tr P = E for any closure value."""
        rng = np.random.default_rng(2)
        E = rng.uniform(0.5, 2.0, (4, 4, 4))
        F = rng.normal(size=(3, 4, 4, 4)) * 0.3
        P = m1_closure(E, F, c=1.0)
        np.testing.assert_allclose(P[0, 0] + P[1, 1] + P[2, 2], E,
                                   rtol=1e-10)


class TestTransport:
    def test_uniform_field_is_static(self):
        opts = RadiationOptions(c_light=1.0)
        rad = RadiationField(np.full((8, 8, 8), 3.0),
                             np.zeros((3, 8, 8, 8)))
        dE, dF = radiation_rhs(rad, 0.1, opts)
        assert np.abs(dE).max() < 1e-12
        assert np.abs(dF).max() < 1e-12

    def test_energy_conserved_interior(self):
        """Transport moves energy without creating it (interior sum)."""
        opts = RadiationOptions(c_light=1.0)
        rng = np.random.default_rng(3)
        n = 10
        rad = RadiationField(rng.uniform(1.0, 2.0, (n, n, n)),
                             np.zeros((3, n, n, n)))
        dE, _dF = radiation_rhs(rad, 1.0 / n, opts)
        # edge-replicated boundaries leak only through the outer faces;
        # an interior pulse far from walls conserves exactly
        rad2 = RadiationField.zeros((n, n, n))
        rad2.E[4:6, 4:6, 4:6] = 5.0
        dE2, _ = radiation_rhs(rad2, 1.0 / n, opts)
        assert abs(dE2.sum()) < 1e-10

    def test_pulse_expands_at_light_speed(self):
        """A free-streaming front must not outrun c."""
        opts = RadiationOptions(c_light=2.0)
        n = 16
        dx = 1.0 / n
        rad = RadiationField.zeros((n, n, n))
        rad.E[8, 8, 8] = 100.0
        t = 0.0
        dt = radiation_dt(dx, opts)
        for _ in range(6):
            dE, dF = radiation_rhs(rad, dx, opts)
            rad.E += dt * dE
            rad.F += dt * dF
            np.maximum(rad.E, opts.floor, out=rad.E)
            t += dt
        g = (np.arange(n) + 0.5) * dx
        X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
        r = np.sqrt((X - g[8]) ** 2 + (Y - g[8]) ** 2 + (Z - g[8]) ** 2)
        # the numerical (Rusanov) tail smears ~1 cell/step, but the bulk
        # of the energy must stay inside the light cone
        mean_r = float((rad.E * r).sum() / rad.E.sum())
        assert mean_r <= opts.c_light * t + 1.5 * dx

    def test_dt_scales_inversely_with_c(self):
        assert radiation_dt(0.1, RadiationOptions(c_light=10.0)) \
            == pytest.approx(0.1 * radiation_dt(
                0.1, RadiationOptions(c_light=1.0)))


class TestMatterCoupling:
    def test_relaxes_to_planck_equilibrium(self):
        """E_r -> a T^4 under absorption/emission."""
        opts = RadiationOptions(c_light=1.0, a_rad=2.0, kappa=50.0)
        rad = RadiationField.zeros((4, 4, 4))
        rho = np.ones((4, 4, 4))
        T = np.full((4, 4, 4), 1.5)
        for _ in range(20):
            couple_matter(rad, rho, T, dt=0.1, options=opts)
        np.testing.assert_allclose(rad.E, 2.0 * 1.5 ** 4, rtol=1e-6)

    def test_energy_exchange_is_antisymmetric(self):
        """What radiation loses the gas gains, exactly."""
        opts = RadiationOptions(kappa=1.0)
        rad = RadiationField(np.full((4, 4, 4), 5.0),
                             np.zeros((3, 4, 4, 4)))
        E0 = rad.E.copy()
        gas_gain, _ = couple_matter(rad, np.ones((4, 4, 4)),
                                    np.zeros((4, 4, 4)), dt=0.5,
                                    options=opts)
        np.testing.assert_allclose(gas_gain, E0 - rad.E, rtol=1e-14)

    def test_flux_damps_in_optically_thick_gas(self):
        opts = RadiationOptions(kappa=10.0)
        rad = RadiationField(np.ones((4, 4, 4)),
                             np.full((3, 4, 4, 4), 0.5))
        couple_matter(rad, np.ones((4, 4, 4)), np.ones((4, 4, 4)),
                      dt=1.0, options=opts)
        assert np.abs(rad.F).max() < 0.01

    def test_transparent_gas_leaves_radiation_alone(self):
        opts = RadiationOptions(kappa=0.0)
        rad = RadiationField(np.full((4, 4, 4), 3.0),
                             np.full((3, 4, 4, 4), 0.2))
        gain, _ = couple_matter(rad, np.ones((4, 4, 4)),
                                np.ones((4, 4, 4)), dt=1.0, options=opts)
        np.testing.assert_allclose(rad.E, 3.0)
        np.testing.assert_allclose(gain, 0.0)
