"""Property tests for the Sec. 4.3 kernel rework: the fused SoA kernels
against their retained reference implementations, plus the floored-cell
regression suite.

Tolerance policy
----------------
Hydro fusion (``kt_flux``, the workspace PPM path, ``compute_rhs``,
``conserved_signal_speed``) is **bitwise**: the fusion only removes
temporaries and routes results through ``out=``/workspace scratch; every
surviving floating-point operation runs in the reference order, so the
comparisons below use exact equality (``rtol=0``).

The fused ``m2l_pair`` is the one exception: the reference contracts the
quadrupole against full Green tensors with ``np.einsum``, whose internal
summation order is an implementation detail, while the fused kernel sums
the 6/10 unique components explicitly.  Reassociating a ~10-term sum
moves the result by a few ULPs, so that comparison carries a documented
relative tolerance instead.
"""

import numpy as np
import pytest

from repro.core import IdealGas, NF, NGHOST, RHO, SX, EGAS, TAU
from repro.core.grid import LX
from repro.core.gravity.kernels import (LEVI_CIVITA, greens, m2l_pair,
                                        m2l_pair_reference, p2p_pair,
                                        pair_torque)
from repro.core.hydro.reconstruct import minmod_faces, ppm_faces
from repro.core.hydro.riemann import (conserved_signal_speed,
                                      conserved_to_primitive, kt_flux,
                                      kt_flux_reference, max_signal_speed)
from repro.core.hydro.solver import (HydroOptions, apply_floors, cfl_dt,
                                     compute_rhs, compute_rhs_reference)
from repro.core.mesh import apply_boundary
from repro.core.scenario import equilibrium_star
from repro.core.workspace import Workspace

FLOOR = 1e-12


# -- seeded batches ---------------------------------------------------------

def pair_batch(n=257, seed=11):
    """Well-separated interaction pairs with symmetric quadrupoles."""
    rng = np.random.default_rng(seed)
    dR = rng.normal(size=(n, 3)) * 4 + np.array([5.0, -5.0, 5.0])
    mA = rng.uniform(0.5, 2.0, n)
    mB = rng.uniform(0.5, 2.0, n)
    M2A = rng.normal(size=(n, 3, 3))
    M2A = 0.5 * (M2A + M2A.transpose(0, 2, 1))
    M2B = rng.normal(size=(n, 3, 3))
    M2B = 0.5 * (M2B + M2B.transpose(0, 2, 1))
    return dR, mA, mB, M2A, M2B


def hydro_block(n=12, seed=3, nasty=True):
    """A ghost-filled conserved block with floored and denormal cells."""
    rng = np.random.default_rng(seed)
    m = n + 2 * NGHOST
    eos = IdealGas()
    U = np.zeros((NF, m, m, m))
    U[RHO] = rng.uniform(0.5, 2.0, (m, m, m))
    for d in range(3):
        U[SX + d] = rng.normal(size=(m, m, m)) * 0.3
    eint = rng.uniform(0.2, 1.5, (m, m, m))
    U[EGAS] = eint + 0.5 * (U[SX] ** 2 + U[SX + 1] ** 2
                            + U[SX + 2] ** 2) / U[RHO]
    U[TAU] = eos.tau_from_eint(eint)
    for f in range(TAU + 1, NF):
        U[f] = rng.uniform(0.0, 0.5, (m, m, m)) * U[RHO]
    if nasty:
        # sprinkle vacuum (below floor), edge-of-floor, and denormal
        # densities with *finite* momenta — the states the headline
        # bugfix is about
        g = NGHOST
        U[:, g + 1, g + 2, g + 3] = 0.0
        U[RHO, g + 1, g + 2, g + 3] = 1e-30
        U[SX, g + 1, g + 2, g + 3] = 0.7
        U[EGAS, g + 1, g + 2, g + 3] = 1e-25
        U[RHO, g + 4, g, g + 2] = FLOOR              # exactly at floor
        U[SX + 1, g + 4, g, g + 2] = -0.4
        U[RHO, g, g + 5, g + 1] = 5e-324             # denormal
        U[SX + 2, g, g + 5, g + 1] = 0.2
        U[TAU, g, g + 5, g + 1] = 1e-200
    apply_boundary(U, "periodic")
    return U


def face_states(axis, seed=7):
    U = hydro_block(seed=seed)
    W = conserved_to_primitive(U, IdealGas(), FLOOR)
    WL, WR = ppm_faces(W, NGHOST, axis + 1)
    return np.ascontiguousarray(WL), np.ascontiguousarray(WR)


# -- gravity kernels --------------------------------------------------------

def test_p2p_out_matches_fresh():
    dR, mA, mB, _, _ = pair_batch()
    fresh = p2p_pair(dR, mA, mB)
    n = len(dR)
    out = (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)))
    ret = p2p_pair(dR, mA, mB, out=out)
    for o, r, f in zip(out, ret, fresh):
        assert r is o
        np.testing.assert_array_equal(o, f)


def test_m2l_out_matches_fresh():
    dR, mA, mB, M2A, M2B = pair_batch()
    fresh = m2l_pair(dR, mA, mB, M2A, M2B)
    n = len(dR)
    out = (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)),
           np.empty((n, 3, 3)), np.empty((n, 3, 3)))
    ret = m2l_pair(dR, mA, mB, M2A, M2B, out=out)
    for o, r, f in zip(out, ret, fresh):
        assert r is o
        np.testing.assert_array_equal(o, f)


def test_m2l_fused_matches_reference_within_ulps():
    # einsum reassociation tolerance — see the module docstring
    dR, mA, mB, M2A, M2B = pair_batch(n=1024)
    fused = m2l_pair(dR, mA, mB, M2A, M2B)
    ref = m2l_pair_reference(dR, mA, mB, M2A, M2B)
    for f, r in zip(fused, ref):
        np.testing.assert_allclose(f, r, rtol=1e-12, atol=1e-15)


def test_greens_tensors_exactly_symmetric_and_traceless():
    dR, *_ = pair_batch()
    g0, g1, g2, g3 = greens(dR)
    # unique components written to every symmetric slot => exact symmetry
    np.testing.assert_array_equal(g2, g2.transpose(0, 2, 1))
    for perm in ((0, 1, 3, 2), (0, 2, 1, 3), (0, 3, 2, 1)):
        np.testing.assert_array_equal(g3, g3.transpose(*perm))
    # 1/r is harmonic away from the origin
    np.testing.assert_allclose(np.trace(g2, axis1=1, axis2=2), 0.0,
                               atol=1e-15)
    np.testing.assert_allclose(np.einsum("niij->nj", g3), 0.0, atol=1e-15)


def test_pair_torque_matches_levi_civita_oracle():
    dR, mA, mB, M2A, M2B = pair_batch()
    tA, tB = pair_torque(dR, mA, mB, M2A, M2B)
    _, _, g2, _ = greens(dR)
    oracle_A = mB[:, None] * np.einsum("jlm,nmk,njk->nl",
                                       LEVI_CIVITA, M2A, g2)
    oracle_B = mA[:, None] * np.einsum("jlm,nmk,njk->nl",
                                       LEVI_CIVITA, M2B, g2)
    np.testing.assert_allclose(tA, oracle_A, rtol=1e-12, atol=1e-15)
    np.testing.assert_allclose(tB, oracle_B, rtol=1e-12, atol=1e-15)


def test_coincidence_guard_hoisted_out_of_hot_kernels():
    # the r2 == 0 scan moved to plan-build time (FmmSolver._validate_pairs
    # checks each recorded batch once); the per-call hot kernels no longer
    # pay for it, while the geometry-level helpers keep their guard
    dR = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
    m = np.ones(2)
    M2 = np.zeros((2, 3, 3))
    with pytest.raises(ValueError, match="coincident"):
        greens(dR)
    with pytest.raises(ValueError, match="coincident"):
        pair_torque(dR, m, m, M2, M2)
    with np.errstate(divide="ignore", invalid="ignore"):
        phiA, _, accA, _ = p2p_pair(dR, m, m)
        res = m2l_pair(dR, m, m, M2, M2)
    assert np.isfinite(phiA[0]) and np.isfinite(accA[0]).all()
    assert not np.isfinite(res[0][1])     # garbage in, garbage out — the
    # solver's recorded pair lists are what guarantee this never happens


# -- reconstruction ---------------------------------------------------------

@pytest.mark.parametrize("axis", [1, 2, 3])
def test_ppm_workspace_path_bitwise(axis):
    U = hydro_block()
    W = conserved_to_primitive(U, IdealGas(), FLOOR)
    refL, refR = ppm_faces(W, NGHOST, axis)
    ws = Workspace()
    for _ in range(3):      # reuse must not leak state between calls
        wsL, wsR = ppm_faces(W, NGHOST, axis, ws=ws)
        np.testing.assert_array_equal(wsL, refL)
        np.testing.assert_array_equal(wsR, refR)
    out = (np.empty_like(refL), np.empty_like(refR))
    outL, outR = ppm_faces(W, NGHOST, axis, out=out)
    assert outL is out[0] and outR is out[1]
    np.testing.assert_array_equal(outL, refL)
    np.testing.assert_array_equal(outR, refR)


def test_ppm_workspace_path_bitwise_1d():
    rng = np.random.default_rng(9)
    q = rng.uniform(0.5, 2.0, 40)
    refL, refR = ppm_faces(q, NGHOST, 0)
    wsL, wsR = ppm_faces(q, NGHOST, 0, ws=Workspace())
    np.testing.assert_array_equal(wsL, refL)
    np.testing.assert_array_equal(wsR, refR)


@pytest.mark.parametrize("axis", [1, 2, 3])
def test_minmod_workspace_path_bitwise(axis):
    U = hydro_block()
    W = conserved_to_primitive(U, IdealGas(), FLOOR)
    refL, refR = minmod_faces(W, NGHOST, axis)
    wsL, wsR = minmod_faces(W, NGHOST, axis, ws=Workspace())
    np.testing.assert_array_equal(wsL, refL)
    np.testing.assert_array_equal(wsR, refR)


# -- fluxes and the full RHS ------------------------------------------------

@pytest.mark.parametrize("axis", [0, 1, 2])
def test_kt_flux_fused_bitwise(axis):
    WL, WR = face_states(axis)
    ref = kt_flux_reference(WL, WR, IdealGas(), axis)
    eos = IdealGas()
    np.testing.assert_array_equal(kt_flux(WL, WR, eos, axis), ref)
    ws = Workspace()
    for _ in range(2):
        np.testing.assert_array_equal(
            kt_flux(WL, WR, eos, axis, ws=ws), ref)
    out = np.empty_like(ref)
    assert kt_flux(WL, WR, eos, axis, out=out) is out
    np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("reconstruction", ["ppm", "minmod"])
def test_compute_rhs_fused_bitwise(reconstruction):
    U = hydro_block()
    n = U.shape[1] - 2 * NGHOST
    rng = np.random.default_rng(13)
    gravity = rng.normal(size=(3, n, n, n)) * 0.1
    opts = HydroOptions(eos=IdealGas(), reconstruction=reconstruction,
                        omega=0.3)
    ref = compute_rhs_reference(U, 0.05, opts, origin=(-0.3, 0.0, 0.2),
                                gravity=gravity)
    plain = compute_rhs(U, 0.05, opts, origin=(-0.3, 0.0, 0.2),
                        gravity=gravity)
    np.testing.assert_array_equal(plain, ref)
    ws = Workspace()
    out = np.empty((NF, n, n, n))
    for _ in range(3):      # steady-state reuse of both out and ws
        got = compute_rhs(U, 0.05, opts, origin=(-0.3, 0.0, 0.2),
                          gravity=gravity, out=out, ws=ws)
        assert got is out
        np.testing.assert_array_equal(out, ref)
    ws_only = compute_rhs(U, 0.05, opts, origin=(-0.3, 0.0, 0.2),
                          gravity=gravity, ws=Workspace())
    np.testing.assert_array_equal(ws_only, ref)


def test_compute_rhs_return_fluxes_detached_from_workspace():
    U = hydro_block()
    opts = HydroOptions(eos=IdealGas())
    ws = Workspace()
    _, fluxes = compute_rhs(U, 0.05, opts, return_fluxes=True, ws=ws)
    kept = [F.copy() for F in fluxes]
    compute_rhs(U, 0.04, opts, ws=ws)   # must not overwrite held fluxes
    for F, K in zip(fluxes, kept):
        np.testing.assert_array_equal(F, K)


# -- cfl_dt through the fused signal-speed kernel ---------------------------

def reference_cfl_dt(U, dx, options):
    """The old path: materialize the full primitive block, scan per axis."""
    g = NGHOST
    inner = (slice(None),) + tuple(
        slice(g, U.shape[1 + d] - g) for d in range(3))
    W = conserved_to_primitive(U[inner], options.eos, options.rho_floor)
    vmax = np.zeros(W.shape[1:])
    for axis in range(3):
        np.maximum(vmax, max_signal_speed(W, options.eos, axis), out=vmax)
    peak = float(np.max(vmax))
    return np.inf if peak <= 0.0 else options.cfl * dx / peak


def test_cfl_dt_identical_to_primitive_path():
    U = hydro_block()
    opts = HydroOptions(eos=IdealGas())
    ref = reference_cfl_dt(U, 0.05, opts)
    assert cfl_dt(U, 0.05, opts) == ref
    ws = Workspace()
    for _ in range(3):
        assert cfl_dt(U, 0.05, opts, ws=ws) == ref


def test_conserved_signal_speed_bitwise_vs_primitives():
    U = hydro_block()
    opts = HydroOptions(eos=IdealGas())
    W = conserved_to_primitive(U, opts.eos, opts.rho_floor)
    vmax = np.zeros(W.shape[1:])
    for axis in range(3):
        np.maximum(vmax, max_signal_speed(W, opts.eos, axis), out=vmax)
    np.testing.assert_array_equal(
        conserved_signal_speed(U, opts.eos, opts.rho_floor), vmax)


def test_cfl_dt_identical_on_equilibrium_star():
    mesh = equilibrium_star(n=16, domain=4.0)
    mesh.fill_ghosts()
    ref = reference_cfl_dt(mesh.U, mesh.dx, mesh.options)
    assert mesh.compute_dt() == ref


# -- floored-cell regressions (the headline bugfix) -------------------------

def corrupted_pair():
    """A clean block and a copy with one fault-corrupted interior cell."""
    clean = hydro_block(nasty=False)
    corrupt = clean.copy()
    g = NGHOST
    corrupt[RHO, g + 2, g + 3, g + 4] = 1e-290     # far below the floor
    corrupt[SX, g + 2, g + 3, g + 4] = 1.0         # but finite momentum
    corrupt[EGAS, g + 2, g + 3, g + 4] = 1e-280
    corrupt[TAU, g + 2, g + 3, g + 4] = 1e-280
    apply_boundary(corrupt, "periodic")
    return clean, corrupt


def test_corrupted_cell_does_not_collapse_cfl_dt():
    # pre-fix, 1/1e-290 velocities drove dt to ~1e-291 x the clean value
    clean, corrupt = corrupted_pair()
    opts = HydroOptions(eos=IdealGas())
    dt_clean = cfl_dt(clean, 0.05, opts)
    dt_corrupt = cfl_dt(corrupt, 0.05, opts)
    assert np.isfinite(dt_corrupt)
    assert dt_corrupt > dt_clean / 10.0


def test_c2p_zeroes_specific_fields_of_floored_cells():
    U = hydro_block()
    g = NGHOST
    at = (g + 4, g, g + 2)          # rho == rho_floor exactly (<= fires)
    below = (g + 1, g + 2, g + 3)   # rho = 1e-30
    W = conserved_to_primitive(U, IdealGas(), FLOOR)
    for cell in (at, below):
        assert W[(RHO,) + cell] == FLOOR
        for f in (SX, SX + 1, SX + 2, *range(TAU, NF)):
            assert W[(f,) + cell] == 0.0
    # above-floor cells keep the plain division result
    ok = (g, g, g)
    assert U[(RHO,) + ok] > FLOOR
    assert W[(SX,) + ok] == U[(SX,) + ok] / U[(RHO,) + ok]


def test_apply_floors_zeroes_momenta_of_floored_cells():
    U = hydro_block(nasty=False)
    g = NGHOST
    cell = (g + 1, g + 1, g + 1)
    U[(RHO,) + cell] = 1e-40
    for d in range(3):
        U[(SX + d,) + cell] = 0.5 - 0.1 * d
    U[(TAU,) + cell] = -1e-3
    keep = (g + 2, g + 2, g + 2)
    s_keep = [U[(SX + d,) + keep] for d in range(3)]
    opts = HydroOptions(eos=IdealGas())
    apply_floors(U, opts)
    assert U[(RHO,) + cell] == opts.rho_floor
    for d in range(3):
        assert U[(SX + d,) + cell] == 0.0        # no stale kinetic energy
        assert U[(SX + d,) + keep] == s_keep[d]  # healthy cells untouched
    assert U[(TAU,) + cell] == 0.0


def test_floored_cell_flows_clean_through_dual_energy():
    # after the floors, kin == 0, so diff/safe == 1 > eta1/eta2: the
    # dual-energy switch trusts egas and sync_tau rederives tau from it
    # instead of locking onto the stale tracer
    eos = IdealGas()
    U = hydro_block(nasty=False)
    g = NGHOST
    cell = (g + 3, g + 2, g + 1)
    U[(RHO,) + cell] = 1e-100
    U[(SX,) + cell] = 2.0            # stale momentum about to be zeroed
    U[(EGAS,) + cell] = 1e-6
    U[(TAU,) + cell] = 1e3           # wildly stale tracer
    opts = HydroOptions(eos=eos)
    apply_floors(U, opts)
    args = tuple(U[(f,) + cell] for f in (RHO, SX, SX + 1, SX + 2,
                                          EGAS, TAU))
    assert eos.internal_energy(*args) == U[(EGAS,) + cell]
    assert eos.sync_tau(*args) == eos.tau_from_eint(U[(EGAS,) + cell])


def test_eos_floor_unified_with_solver_floor():
    eos = IdealGas(rho_floor=1e-6)
    # the clamp is the configured floor, not a hard-wired 1e-300
    assert eos.sound_speed(1e-30, 1.0) \
        == np.sqrt(eos.gamma * 1.0 / 1e-6)
    assert eos.kinetic(1e-30, 3.0, 0.0, 0.0) == 0.5 * 9.0 / 1e-6
    with pytest.raises(ValueError):
        IdealGas(rho_floor=0.0)
    # HydroOptions propagates its floor into the EOS it holds
    opts = HydroOptions(eos=IdealGas(), rho_floor=1e-8)
    assert opts.eos.rho_floor == 1e-8


def test_spin_fields_survive_fusion():
    # the L slots ride the same fused machinery; a rotating-frame RHS
    # must still match the reference on them specifically
    U = hydro_block()
    opts = HydroOptions(eos=IdealGas(), omega=0.5)
    ref = compute_rhs_reference(U, 0.05, opts)
    got = compute_rhs(U, 0.05, opts, ws=Workspace())
    np.testing.assert_array_equal(got[LX:LX + 3], ref[LX:LX + 3])
