"""Mesh boundary conditions, distributed equivalence, AMR octree."""

import numpy as np
import pytest

from repro.core import (EGAS, NF, NGHOST, RHO, SX, TAU, DistributedMesh,
                        IdealGas, Mesh, Octree, apply_boundary, prolong,
                        restrict)
from repro.core.hydro.solver import HydroOptions
from repro.runtime import WorkStealingScheduler


class TestBoundaries:
    def _block(self):
        m = 8 + 2 * NGHOST
        U = np.zeros((NF, m, m, m))
        U[RHO, NGHOST:-NGHOST, NGHOST:-NGHOST, NGHOST:-NGHOST] = \
            np.arange(8 * 8 * 8, dtype=float).reshape(8, 8, 8) + 1.0
        return U

    def test_unknown_bc_rejected(self):
        with pytest.raises(ValueError):
            apply_boundary(self._block(), "weird")
        with pytest.raises(ValueError):
            Mesh(n=8, bc="weird")

    def test_periodic_wraps(self):
        U = self._block()
        apply_boundary(U, "periodic")
        g = NGHOST
        np.testing.assert_array_equal(U[RHO, g - 1], U[RHO, g + 7])
        np.testing.assert_array_equal(U[RHO, g + 8], U[RHO, g])

    def test_outflow_copies_edge(self):
        U = self._block()
        apply_boundary(U, "outflow")
        g = NGHOST
        np.testing.assert_array_equal(U[RHO, 0], U[RHO, g])

    def test_reflect_mirrors_and_negates_normal_momentum(self):
        U = self._block()
        U[SX] = 1.0
        apply_boundary(U, "reflect")
        g = NGHOST
        np.testing.assert_array_equal(U[RHO, g - 1], U[RHO, g])
        assert (U[SX, 0:g] == -1.0).all()
        # transverse momentum untouched in sign
        assert (U[SX + 1, 0:g] == 0.0).all()


class TestMesh:
    def test_load_primitives_roundtrip(self):
        mesh = Mesh(n=8)
        mesh.load_primitives(2.0, 0.5, 0.0, 0.0, 1.0)
        I = mesh.interior
        assert np.allclose(I[RHO], 2.0)
        assert np.allclose(I[SX], 1.0)
        eint = 1.0 / (IdealGas().gamma - 1.0)
        np.testing.assert_allclose(I[EGAS], eint + 0.5 * 2.0 * 0.25)

    def test_anisotropic_shape(self):
        mesh = Mesh(n=(16, 8, 8), domain=1.0)
        assert mesh.interior.shape == (NF, 16, 8, 8)
        x, y, z = mesh.cell_centers()
        assert x.shape[0] == 16 and y.shape[1] == 8

    def test_self_gravity_requires_cube(self):
        with pytest.raises(ValueError):
            Mesh(n=(16, 8, 8), self_gravity=True)

    def test_uniform_gas_is_static(self):
        mesh = Mesh(n=8, bc="periodic")
        mesh.load_primitives(1.0, 0.0, 0.0, 0.0, 1.0)
        before = mesh.interior.copy()
        mesh.step(0.01)
        np.testing.assert_allclose(mesh.interior[RHO], before[RHO],
                                   atol=1e-13)

    def test_step_advances_time(self):
        mesh = Mesh(n=8)
        mesh.load_primitives(1.0, 0.0, 0.0, 0.0, 1.0)
        mesh.step(0.001)
        assert mesh.time == pytest.approx(0.001)
        assert mesh.steps == 1

    def test_conserved_totals_shape(self):
        mesh = Mesh(n=8)
        mesh.load_primitives(1.0, 0.1, 0.0, 0.0, 1.0)
        tot = mesh.conserved_totals()
        assert tot["mass"] == pytest.approx(1.0)
        assert tot["momentum"].shape == (3,)
        assert tot["angular_momentum"].shape == (3,)


class TestDistributedEquivalence:
    """The futurized multi-sub-grid mesh reproduces the single block."""

    def _setup_pair(self, scheduler=None):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        n = 16
        single = Mesh(n=n, domain=1.0, options=opts, bc="outflow")
        x, y, z = single.cell_centers()
        rho = 1.0 + 0.5 * np.sin(2 * np.pi * (x + y + z) / 3)
        single.load_primitives(rho, 0.1, 0.0, -0.05, 1.0 + 0 * rho)
        dist = DistributedMesh(blocks_per_edge=2, domain=1.0, options=opts,
                               bc="outflow", scheduler=scheduler)
        dist.load_interior(single.interior.copy())
        return single, dist

    def test_interiors_match_after_steps(self):
        single, dist = self._setup_pair()
        dt = 0.002
        for _ in range(3):
            single.step(dt)
            dist.step(dt)
        np.testing.assert_allclose(dist.gather_interior(),
                                   single.interior, rtol=1e-12, atol=1e-13)

    def test_matches_with_scheduler(self):
        """Per-sub-grid RHS tasks on the work-stealing pool change nothing
        about the physics (the Sec. 4.1 promise)."""
        with WorkStealingScheduler(4) as sched:
            single, dist = self._setup_pair(scheduler=sched)
            dt = 0.002
            for _ in range(2):
                single.step(dt)
                dist.step(dt)
            np.testing.assert_allclose(dist.gather_interior(),
                                       single.interior, rtol=1e-12,
                                       atol=1e-13)

    def test_scatter_gather_roundtrip(self):
        _single, dist = self._setup_pair()
        full = dist.gather_interior()
        dist.load_interior(full)
        np.testing.assert_array_equal(dist.gather_interior(), full)


class TestOctree:
    def test_root_only_initially(self):
        t = Octree()
        assert t.n_nodes == 1 and t.n_leaves == 1

    def test_refine_creates_eight_children(self):
        t = Octree()
        kids = t.refine(0, (0, 0, 0))
        assert len(kids) == 8
        assert t.n_leaves == 8 and t.n_nodes == 9

    def test_refine_nonexistent_raises(self):
        t = Octree()
        with pytest.raises(KeyError):
            t.refine(1, (0, 0, 0))

    def test_double_refine_raises(self):
        t = Octree()
        t.refine(0, (0, 0, 0))
        with pytest.raises(ValueError):
            t.refine(0, (0, 0, 0))

    def test_prolong_restrict_inverse(self, rng):
        data = rng.uniform(0, 1, (NF, 8, 8, 8))
        np.testing.assert_allclose(restrict(prolong(data)), data,
                                   rtol=1e-15)

    def test_refinement_conserves_mass(self, rng):
        t = Octree(domain=2.0)
        root = t.get(0, (0, 0, 0))
        root.grid.interior[RHO] = rng.uniform(0.5, 1.5, (8, 8, 8))
        m0 = t.total_mass()
        t.refine(0, (0, 0, 0))
        assert t.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_coarsen_conserves_mass(self, rng):
        t = Octree(domain=2.0)
        t.refine(0, (0, 0, 0))
        for leaf in t.leaves():
            leaf.grid.interior[RHO] = rng.uniform(
                0.5, 1.5, (8, 8, 8))
        m0 = t.total_mass()
        t.coarsen(0, (0, 0, 0))
        assert t.total_mass() == pytest.approx(m0, rel=1e-13)
        assert t.n_nodes == 1

    def test_two_to_one_balance_enforced(self):
        t = Octree()
        t.refine(0, (0, 0, 0))
        t.refine(1, (0, 0, 0))
        # refining a level-2 corner forces its coarse neighbours to split
        t.refine(2, (0, 0, 0))
        for node in t.nodes.values():
            if node.refined:
                continue
            # all leaf neighbours of any refined node differ by <= 1 level
        levels = {n.level for n in t.leaves()}
        assert max(levels) - min(levels) <= 2

    def test_sfc_order_parents_before_descendants(self):
        t = Octree()
        t.refine(0, (0, 0, 0))
        t.refine(1, (1, 0, 0))
        order = t.leaves_sfc()
        assert len(order) == t.n_leaves
        # depth-first: the 8 children of (1,(1,0,0)) appear contiguously
        lv2 = [i for i, n in enumerate(order) if n.level == 2]
        assert lv2 == list(range(lv2[0], lv2[0] + 8))

    def test_refine_by_criterion(self, rng):
        t = Octree()
        root = t.get(0, (0, 0, 0))
        root.grid.interior[RHO] = 1.0
        count = t.refine_by(
            lambda node: float(node.grid.interior[RHO].max()) > 0.5,
            max_level=2)
        assert t.max_level() == 2
        assert count == 1 + 8

    def test_fmm_levels_cell_counts(self):
        t = Octree()
        t.refine(0, (0, 0, 0))
        specs, rho = t.fmm_levels()
        assert specs[0][2].shape == (512, 3)
        assert specs[1][2].shape == (4096, 3)
        assert rho[1].shape == (4096,)
