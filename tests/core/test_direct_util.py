"""Direct-summation reference solver and Morton utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gravity.direct import (direct_field, direct_potential,
                                       direct_summation)
from repro.core.gravity.fmm import FmmSolver
from repro.util import morton_encode, morton_key, spread_bits


class TestDirectField:
    def test_two_body_newton(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        mass = np.array([1.0, 3.0])
        phi, acc = direct_field(pos, mass)
        assert phi[0] == pytest.approx(-1.5)     # -3/2
        assert phi[1] == pytest.approx(-0.5)     # -1/2
        assert acc[0, 0] == pytest.approx(0.75)  # toward +x
        assert acc[1, 0] == pytest.approx(-0.25)

    def test_momentum_conservation(self, rng):
        pos = rng.normal(size=(40, 3))
        mass = rng.uniform(0.5, 2.0, 40)
        _phi, acc = direct_field(pos, mass)
        resid = (mass[:, None] * acc).sum(0)
        assert np.abs(resid).max() < 1e-12 * np.abs(
            mass[:, None] * acc).sum()

    def test_self_interaction_excluded(self):
        pos = np.array([[1.0, 1.0, 1.0]])
        phi, acc = direct_field(pos, np.array([5.0]))
        assert phi[0] == 0.0 and np.all(acc[0] == 0.0)

    def test_external_targets(self):
        pos = np.array([[0.0, 0.0, 0.0]])
        mass = np.array([2.0])
        tg = np.array([[3.0, 0.0, 0.0], [0.0, 4.0, 0.0]])
        phi, acc = direct_field(pos, mass, targets=tg)
        assert phi[0] == pytest.approx(-2.0 / 3.0)
        assert phi[1] == pytest.approx(-0.5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            direct_field(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            direct_field(np.zeros((3, 3)), np.zeros(2))

    def test_direct_potential_wrapper(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        phi = direct_potential(pos, np.array([1.0, 1.0]))
        np.testing.assert_allclose(phi, [-1.0, -1.0])

    def test_fmm_converges_to_direct_on_grid(self, rng):
        """Whole-grid comparison (complements the sampled FMM tests)."""
        M = 8
        rho = rng.uniform(0.1, 1.0, (M, M, M))
        dx = 1.0 / M
        phi_d, acc_d = direct_summation(rho, dx)
        solver = FmmSolver.from_uniform(rho, dx)
        phi_f, acc_f = solver.uniform_field(solver.solve())
        err = np.linalg.norm(acc_f - acc_d, axis=-1) \
            / np.maximum(np.linalg.norm(acc_d, axis=-1), 1e-30)
        assert np.median(err) < 0.02
        assert err.max() < 0.2   # near-field cells see larger rel. error


class TestMortonUtil:
    def test_spread_bits_small_values(self):
        assert int(spread_bits(np.array([0b11]))[0]) == 0b1001

    def test_morton_key_matches_encode(self, rng):
        c = rng.integers(0, 1024, size=(20, 3)).astype(np.int64)
        np.testing.assert_array_equal(
            morton_key(c), morton_encode(c[:, 0], c[:, 1], c[:, 2]))

    @given(st.integers(0, 2 ** 20 - 1), st.integers(0, 2 ** 20 - 1))
    @settings(max_examples=50, deadline=None)
    def test_monotone_along_axes(self, a, b):
        """Along one axis with others fixed, keys are strictly ordered."""
        if a == b:
            return
        lo, hi = sorted((a, b))
        k_lo = morton_encode(np.array([lo]), np.array([0]), np.array([0]))
        k_hi = morton_encode(np.array([hi]), np.array([0]), np.array([0]))
        assert k_lo[0] < k_hi[0]

    def test_parent_prefix_property(self, rng):
        """morton(c >> 1) == morton(c) >> 3 — the octree-key relation the
        FMM's parent lookup relies on."""
        c = rng.integers(0, 2 ** 15, size=(50, 3)).astype(np.int64)
        parents = morton_key(c >> 1)
        np.testing.assert_array_equal(
            parents, morton_key(c) >> np.uint64(3))
