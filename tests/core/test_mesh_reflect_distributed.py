"""DistributedMesh with reflect walls matches the single block, and
physical wall behaviour is sane."""

import numpy as np
import pytest

from repro.core import EGAS, RHO, SX, DistributedMesh, IdealGas, Mesh
from repro.core.hydro.solver import HydroOptions


class TestReflectEquivalence:
    def test_distributed_matches_single_with_reflect(self):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        single = Mesh(n=16, domain=1.0, options=opts, bc="reflect")
        x, y, z = single.cell_centers()
        rho = 1.0 + 0.3 * np.cos(np.pi * x) * np.cos(np.pi * y) \
            + 0.0 * z
        single.load_primitives(rho, 0.05, -0.03, 0.0, 1.0 + 0.1 * rho)
        dist = DistributedMesh(blocks_per_edge=2, domain=1.0,
                               options=opts, bc="reflect")
        dist.load_interior(single.interior.copy())
        for _ in range(3):
            single.step(0.002)
            dist.step(0.002)
        np.testing.assert_allclose(dist.gather_interior(),
                                   single.interior, rtol=1e-12,
                                   atol=1e-13)

    def test_reflecting_box_conserves_mass_and_energy(self):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        mesh = Mesh(n=16, domain=1.0, options=opts, bc="reflect")
        x, _y, _z = mesh.cell_centers()
        mesh.load_primitives(1.0 + 0.2 * np.sin(2 * np.pi * x) + 0 * _y,
                             0.1, 0.0, 0.0, 1.0 + 0 * x + 0 * _y)
        t0 = mesh.conserved_totals()
        for _ in range(10):
            mesh.step(mesh.compute_dt())
        t1 = mesh.conserved_totals()
        assert t1["mass"] == pytest.approx(t0["mass"], rel=1e-13)
        assert t1["egas"] == pytest.approx(t0["egas"], rel=1e-12)

    def test_momentum_reverses_off_walls(self):
        """A slab moving toward a reflecting wall bounces back."""
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        mesh = Mesh(n=(32, 8, 8), domain=1.0, options=opts, bc="reflect")
        x, y, z = mesh.cell_centers()
        mesh.load_primitives(1.0 + 0 * x + 0 * y + 0 * z,
                             0.5, 0.0, 0.0, 0.05 + 0 * x + 0 * y + 0 * z)
        p0 = mesh.conserved_totals()["momentum"][0]
        assert p0 > 0
        for _ in range(120):
            mesh.step(mesh.compute_dt())
            if mesh.conserved_totals()["momentum"][0] < 0:
                break
        assert mesh.conserved_totals()["momentum"][0] < 0.5 * p0
