"""AMR time-stepping with refluxing: conservation across level jumps."""

import numpy as np
import pytest

from repro.core import EGAS, RHO, SX, TAU, IdealGas, Mesh, Octree
from repro.core.amr import AmrMesh
from repro.core.hydro.solver import HydroOptions


def _fill_random(tree, rng):
    eos = IdealGas()
    for leaf in tree.leaves():
        I = leaf.grid.interior
        I[RHO] = rng.uniform(0.5, 1.5, I[RHO].shape)
        for d in range(3):
            I[SX + d] = rng.uniform(-0.1, 0.1, I[RHO].shape) * I[RHO]
        eint = rng.uniform(0.5, 1.5, I[RHO].shape)
        I[EGAS] = eint + 0.5 * (I[SX] ** 2 + I[SX + 1] ** 2
                                + I[SX + 2] ** 2) / I[RHO]
        I[TAU] = eos.tau_from_eint(eint)
    return eos


def _smooth_blob(tree):
    """A smooth Gaussian pressure blob (same function on every leaf)."""
    eos = IdealGas()
    for leaf in tree.leaves():
        I = leaf.grid.interior
        x, y, z = leaf.grid.cell_centers()
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
        I[RHO] = 1.0 + 0.5 * np.exp(-r2 / 0.02)
        eint = 1.0 + 1.0 * np.exp(-r2 / 0.02)
        I[EGAS] = eint
        I[TAU] = eos.tau_from_eint(eint)
    return eos


class TestGhostFill:
    def test_rejects_unsupported_bc(self):
        with pytest.raises(ValueError):
            AmrMesh(Octree(), bc="periodic")

    def test_same_level_halo_is_neighbour_interior(self, rng):
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        _fill_random(tree, rng)
        mesh = AmrMesh(tree)
        mesh.fill_ghosts()
        from repro.core import NGHOST as g
        a = tree.get(1, (0, 0, 0)).grid
        b = tree.get(1, (1, 0, 0)).grid
        np.testing.assert_array_equal(
            a.U[:, g + 8:g + 8 + g, g:g + 8, g:g + 8],
            b.U[:, g:2 * g, g:g + 8, g:g + 8])

    def test_coarse_fine_halo_prolongs(self, rng):
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (0, 0, 0))
        _fill_random(tree, rng)
        mesh = AmrMesh(tree)
        mesh.fill_ghosts()
        from repro.core import NGHOST as g
        fine = tree.get(2, (1, 0, 0)).grid      # fine leaf at +x edge
        coarse = tree.get(1, (1, 0, 0)).grid    # its coarse +x neighbour
        # fine's +x ghost layer equals the coarse neighbour's first
        # interior layer (piecewise-constant prolongation)
        ghost = fine.U[RHO, g + 8, g, g]
        src = coarse.U[RHO, g, g, g]
        assert ghost == src


class TestConservation:
    def test_mass_and_energy_machine_precision(self, rng):
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (1, 1, 1))
        _fill_random(tree, rng)
        mesh = AmrMesh(tree, bc="reflect")
        t0 = mesh.totals()
        for _ in range(4):
            mesh.step(min(mesh.compute_dt(), 0.002))
        t1 = mesh.totals()
        assert abs(t1["mass"] - t0["mass"]) / t0["mass"] < 1e-13
        assert abs(t1["egas"] - t0["egas"]) / t0["egas"] < 1e-12

    def test_three_level_tree_conserves(self, rng):
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (0, 0, 0))
        tree.refine(2, (1, 1, 1))
        _fill_random(tree, rng)
        mesh = AmrMesh(tree, bc="reflect")
        t0 = mesh.totals()
        for _ in range(3):
            mesh.step(min(mesh.compute_dt(), 0.001))
        t1 = mesh.totals()
        assert abs(t1["mass"] - t0["mass"]) / t0["mass"] < 1e-13

    def test_unbalanced_tree_detected(self, rng):
        """Ghost fill refuses level jumps > 1 (2:1 balance violated)."""
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (0, 0, 0))
        # manufacture an illegal jump: delete intermediate nodes
        bad = Octree(domain=1.0)
        bad.refine(0, (0, 0, 0))
        bad.refine(1, (0, 0, 0))
        bad.refine(2, (0, 0, 0))
        # remove the 2:1 guard's work by nothing - tree built by refine
        # is balanced, so this should just work:
        _fill_random(bad, rng)
        AmrMesh(bad).fill_ghosts()


class TestAccuracy:
    def test_fully_refined_tree_matches_uniform_mesh(self):
        """A tree refined uniformly to level 1 must track a 16^3 Mesh."""
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        eos = _smooth_blob(tree)
        amr = AmrMesh(tree, HydroOptions(eos=eos), bc="outflow")

        single = Mesh(n=16, domain=1.0,
                      options=HydroOptions(eos=eos), bc="outflow")
        x, y, z = single.cell_centers()
        r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2
        eint = 1.0 + 1.0 * np.exp(-r2 / 0.02)
        single.load_primitives(1.0 + 0.5 * np.exp(-r2 / 0.02), 0, 0, 0,
                               (eos.gamma - 1.0) * eint)

        dt = 0.002
        for _ in range(3):
            amr.step(dt)
            single.step(dt)

        # gather the AMR leaves into a flat array
        full = np.zeros((16, 16, 16))
        for leaf in tree.leaves():
            i, j, k = leaf.ipos
            full[i * 8:(i + 1) * 8, j * 8:(j + 1) * 8,
                 k * 8:(k + 1) * 8] = leaf.grid.interior[RHO]
        np.testing.assert_allclose(full, single.interior[RHO],
                                   rtol=5e-12, atol=1e-13)

    def test_blob_on_mixed_levels_stays_finite(self, rng):
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (0, 0, 0))
        _smooth_blob(tree)
        mesh = AmrMesh(tree, bc="outflow")
        for _ in range(4):
            mesh.step(min(mesh.compute_dt(), 0.002))
        for leaf in tree.leaves():
            assert np.isfinite(leaf.grid.interior).all()
            assert (leaf.grid.interior[RHO] > 0).all()
