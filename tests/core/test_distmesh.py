"""DistBlockMesh: AGAS-sharded blocks, parcelport halos, bitwise physics.

The distribution contract (ISSUE 7 / ROADMAP item 2): a distributed step
is byte-identical to the node-level ``BlockMesh`` step for any partition,
parcelport and delivery order; block components migrate through AGAS with
ownership tracked; every cross-locality halo is charged and the counters
reconcile exactly.
"""

import numpy as np
import pytest

from repro.core import NF, SUBGRID_N, BlockMesh, DistBlockMesh, IdealGas
from repro.core.distmesh import slab_partition
from repro.core.hydro.solver import HydroOptions
from repro.runtime.counters import CounterRegistry


def _initial_data(rng, n):
    full = np.zeros((NF, n, n, n))
    full[0] = 1.0 + 0.2 * rng.random((n, n, n))
    full[1:4] = 0.1 * rng.standard_normal((3, n, n, n))
    full[4] = 1.5 + 0.2 * rng.random((n, n, n))
    full[5] = 0.5 * full[4]
    return full


def _pair(rng, bc="outflow", n_localities=3, reorder_seed=42, bpe=2,
          registry=None, **kwargs):
    opts = HydroOptions(eos=IdealGas(gamma=1.4))
    ref = BlockMesh(bpe, domain=1.0, options=opts, bc=bc, **kwargs)
    dist = DistBlockMesh(bpe, n_localities=n_localities, port="mpi",
                         reorder_seed=reorder_seed,
                         registry=registry or CounterRegistry(),
                         domain=1.0, options=opts, bc=bc, **kwargs)
    full = _initial_data(rng, bpe * SUBGRID_N)
    ref.load_interior(full)
    dist.load_interior(full)
    return ref, dist


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("bc", ["outflow", "periodic", "reflect"])
    def test_matches_node_level_blockmesh(self, rng, bc):
        ref, dist = _pair(rng, bc=bc)
        for _ in range(3):
            assert ref.step() == dist.step()
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())

    def test_delivery_order_does_not_matter(self, rng):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        full = _initial_data(rng, 2 * SUBGRID_N)
        states = []
        for seed in (None, 1, 2, 31337):
            dist = DistBlockMesh(2, n_localities=4, port="libfabric",
                                 reorder_seed=seed,
                                 registry=CounterRegistry(),
                                 domain=1.0, options=opts, bc="periodic")
            dist.load_interior(full)
            for _ in range(2):
                dist.step()
            states.append(dist.gather_interior())
        for other in states[1:]:
            np.testing.assert_array_equal(states[0], other)

    def test_single_locality_degenerates_to_node_level(self, rng):
        ref, dist = _pair(rng, n_localities=1, reorder_seed=None)
        for _ in range(2):
            ref.step()
            dist.step()
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())
        assert dist.transport.stats.remote_msgs == 0
        assert dist.transport.stats.local_msgs > 0

    def test_self_gravity_distributed(self, rng):
        ref, dist = _pair(rng, n_localities=4, self_gravity=True)
        for _ in range(2):
            assert ref.step() == dist.step()
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())


class TestOwnership:
    def test_slab_partition_covers_all_localities(self):
        locs = [slab_partition(i, 8, 3) for i in range(8)]
        assert locs == sorted(locs)
        assert set(locs) == {0, 1, 2}

    def test_blocks_registered_and_counted(self):
        reg = CounterRegistry()
        dist = DistBlockMesh(2, n_localities=3, registry=reg)
        assert len(dist.gids) == 8
        counts = dist.locality_blocks()
        assert sum(counts.values()) == 8
        assert set(counts) == {0, 1, 2}
        for ip, gid in dist.gids.items():
            assert dist.agas.locality_of(gid) == dist.owners()[ip]

    def test_partition_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            DistBlockMesh(2, n_localities=2, registry=CounterRegistry(),
                          partition=lambda i, n, k: 5)

    def test_migration_updates_owner_and_counters(self, rng):
        reg = CounterRegistry()
        ref, dist = _pair(rng, registry=reg)
        ip = next(iter(dist.blocks))
        old = dist.owners()[ip]
        new = (old + 1) % dist.n_localities
        dist.agas.migrate(dist.gids[ip], new)
        assert dist.owners()[ip] == new
        assert dist.block_migrations == 1
        assert reg.snapshot()["/distmesh/migrations"] == 1
        # physics is unaffected by where blocks live
        for _ in range(2):
            ref.step()
            dist.step()
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())

    def test_fail_locality_evacuates_and_physics_survives(self, rng):
        reg = CounterRegistry()
        ref, dist = _pair(rng, registry=reg)
        victim = 0
        doomed = [ip for ip, loc in dist.owners().items() if loc == victim]
        assert doomed
        result = dist.fail_locality(victim)
        assert len(result["migrated"]) == len(doomed)
        assert not result["lost"]
        owners = dist.owners()
        assert all(owners[ip] != victim for ip in doomed)
        assert dist.locality_blocks()[victim] == 0
        for _ in range(2):
            ref.step()
            dist.step()
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())
        assert reg.snapshot()["/distmesh/localities-failed"] == 1


class TestCounters:
    def test_sets_equal_gets_and_transport_reconciles(self, rng):
        reg = CounterRegistry()
        _ref, dist = _pair(rng, bc="periodic", registry=reg)
        for _ in range(3):
            dist.step()
        snap = reg.snapshot()
        assert snap["/distmesh/halo/sets"] == snap["/distmesh/halo/gets"]
        assert snap["/distmesh/halo/sets"] > 0
        assert dist.transport.reconciles()
        st = dist.transport.stats
        # every halo went one way or the other, none both
        plan_sends = len(dist._halo_plan[1])
        stages = 2 * dist.steps
        assert st.local_msgs + st.remote_msgs == plan_sends * stages
        # periodic wraps crossed localities and were charged one-sided
        assert st.onesided_msgs > 0

    def test_publish_counters_gauges(self, rng):
        reg = CounterRegistry()
        _ref, dist = _pair(rng, registry=reg)
        dist.step()
        dist.publish_counters()
        snap = reg.snapshot()
        assert snap["/distmesh/localities"] == 3
        total = sum(snap[f"/distmesh/blocks/loc{i}"] for i in range(3))
        assert total == 8
        assert snap["/distmesh/halo/remote-msgs"] == \
            dist.transport.stats.remote_msgs
        assert any(k.startswith("/parcels/halo:mpi/") for k in snap)

    def test_restore_resets_channels_and_pending(self, rng):
        """Checkpoint rollback: replayed generations are accepted and the
        replayed trajectory matches the uninterrupted one bit for bit."""
        from repro.resilience.checkpoint import CheckpointManager

        ref, dist = _pair(rng)
        manager = CheckpointManager(interval=1, registry=CounterRegistry())
        ref.step()
        dist.step()
        manager.save(dist)
        dist.step()                    # the step about to be discarded
        manager.restore_latest(dist)   # back to step 1, channels reset
        dist.step()                    # replay must re-use the generations
        ref.step()
        assert ref.steps == dist.steps == 2
        np.testing.assert_array_equal(dist.gather_interior(),
                                      ref.gather_interior())
