"""PPM/minmod reconstruction and the KT flux."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NF, NGHOST, RHO, SX, EGAS, IdealGas
from repro.core.hydro.reconstruct import minmod_faces, ppm_faces
from repro.core.hydro.riemann import (conserved_to_primitive, kt_flux,
                                      max_signal_speed, physical_flux,
                                      primitive_to_conserved)


def _block_1d(values: np.ndarray) -> np.ndarray:
    """Embed a 1-D profile (with ghosts) into a (n+2g, 1+2g, 1+2g) block."""
    g = NGHOST
    n = len(values) - 2 * g
    out = np.empty((len(values), 1 + 2 * g, 1 + 2 * g))
    out[...] = values[:, None, None]
    return out


class TestReconstruction:
    @pytest.mark.parametrize("method", [minmod_faces, ppm_faces])
    def test_constant_field_reconstructs_exactly(self, method):
        q = _block_1d(np.full(16 + 2 * NGHOST, 3.14))
        qL, qR = method(q, NGHOST, axis=0)
        assert np.allclose(qL, 3.14) and np.allclose(qR, 3.14)

    @pytest.mark.parametrize("method", [minmod_faces, ppm_faces])
    def test_linear_profile_faces_exact(self, method):
        g = NGHOST
        x = np.arange(16 + 2 * g, dtype=float)
        q = _block_1d(2.0 * x + 1.0)
        qL, qR = method(q, g, axis=0)
        faces = 2.0 * (np.arange(17) + g - 0.5) + 1.0
        np.testing.assert_allclose(qL[:, g, g], faces, rtol=1e-12)
        np.testing.assert_allclose(qR[:, g, g], faces, rtol=1e-12)

    def test_ppm_higher_order_on_smooth_data(self):
        g = NGHOST
        n = 32
        x = (np.arange(n + 2 * g) - g + 0.5) / n
        q = _block_1d(np.sin(2 * np.pi * x))
        faces_exact = np.sin(2 * np.pi * np.arange(n + 1) / n)
        qLp, _ = ppm_faces(q, g, axis=0)
        qLm, _ = minmod_faces(q, g, axis=0)
        # mean error: PPM's monotonizer clips smooth extrema, so compare
        # away from the max-norm (the standard PPM caveat)
        err_ppm = np.abs(qLp[:, g, g] - faces_exact).mean()
        err_mm = np.abs(qLm[:, g, g] - faces_exact).mean()
        assert err_ppm < err_mm

    @pytest.mark.parametrize("method", [minmod_faces, ppm_faces])
    def test_no_new_extrema(self, method):
        rng = np.random.default_rng(3)
        q = _block_1d(rng.uniform(0.1, 1.0, 24 + 2 * NGHOST))
        qL, qR = method(q, NGHOST, axis=0)
        assert qL.min() >= q.min() - 1e-12
        assert qL.max() <= q.max() + 1e-12
        assert qR.min() >= q.min() - 1e-12
        assert qR.max() <= q.max() + 1e-12

    def test_ppm_requires_three_ghosts(self):
        q = np.zeros((10, 10, 10))
        with pytest.raises(ValueError):
            ppm_faces(q, 2, axis=0)

    @given(st.integers(0, 2))
    @settings(max_examples=3, deadline=None)
    def test_axes_equivalent_under_transpose(self, axis):
        rng = np.random.default_rng(7)
        m = 8 + 2 * NGHOST
        q = rng.uniform(0.5, 1.5, (m, m, m))
        qL0, _ = ppm_faces(q, NGHOST, axis=0)
        qT = np.moveaxis(q, 0, axis)
        qLa, _ = ppm_faces(qT, NGHOST, axis=axis)
        np.testing.assert_allclose(np.moveaxis(qLa, axis, 0), qL0)


class TestPrimitiveConversion:
    def _random_state(self, rng, n=50):
        W = np.zeros((NF, n))
        W[RHO] = rng.uniform(0.1, 10.0, n)
        for d in range(3):
            W[SX + d] = rng.uniform(-2, 2, n)
        W[EGAS] = rng.uniform(0.01, 5.0, n)     # pressure slot
        for f in range(5, NF):
            W[f] = rng.uniform(0, 1, n)
        return W

    def test_roundtrip(self, rng):
        eos = IdealGas()
        W = self._random_state(rng)
        back = conserved_to_primitive(primitive_to_conserved(W, eos), eos)
        np.testing.assert_allclose(back, W, rtol=1e-10, atol=1e-12)

    def test_pressure_positive(self, rng):
        eos = IdealGas()
        W = self._random_state(rng)
        U = primitive_to_conserved(W, eos)
        W2 = conserved_to_primitive(U, eos)
        assert (W2[EGAS] >= 0).all()


class TestKtFlux:
    def test_consistency_with_physical_flux(self, rng):
        """F(q, q) must equal the exact Euler flux (KT consistency)."""
        eos = IdealGas(gamma=1.4)
        W = np.zeros((NF, 10))
        W[RHO] = rng.uniform(0.5, 2.0, 10)
        W[SX] = rng.uniform(-1, 1, 10)
        W[EGAS] = rng.uniform(0.1, 2.0, 10)
        F = kt_flux(W, W, eos, axis=0)
        np.testing.assert_allclose(F, physical_flux(W, eos, axis=0),
                                   rtol=1e-13)

    def test_mass_flux_is_rho_u(self):
        eos = IdealGas()
        W = np.zeros((NF, 1))
        W[RHO], W[SX], W[EGAS] = 2.0, 3.0, 1.0
        F = physical_flux(W, eos, axis=0)
        assert F[RHO, 0] == pytest.approx(6.0)

    def test_momentum_flux_includes_pressure(self):
        eos = IdealGas()
        W = np.zeros((NF, 1))
        W[RHO], W[EGAS] = 1.0, 2.5
        F = physical_flux(W, eos, axis=0)
        assert F[SX, 0] == pytest.approx(2.5)   # static gas: pure pressure

    def test_signal_speed(self):
        eos = IdealGas(gamma=1.4)
        W = np.zeros((NF, 1))
        W[RHO], W[SX], W[EGAS] = 1.0, 2.0, 1.0
        a = max_signal_speed(W, eos, axis=0)
        assert a[0] == pytest.approx(2.0 + np.sqrt(1.4))

    def test_dissipation_vanishes_for_equal_states(self, rng):
        eos = IdealGas()
        W = np.zeros((NF, 5))
        W[RHO] = 1.0
        W[EGAS] = 1.0
        WL = W.copy()
        WR = W.copy()
        WR[RHO] += 0.5
        F_eq = kt_flux(WL, WL, eos, 0)
        F_ne = kt_flux(WL, WR, eos, 0)
        # unequal states produce a dissipative difference in mass flux
        assert not np.allclose(F_eq[RHO], F_ne[RHO])
