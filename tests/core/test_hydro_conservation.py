"""Hydro solver: conservation to machine precision (the Sec. 4.2 claim).

The headline test verifies the Despres-Labourasse bookkeeping: the change
of total angular momentum (orbital x cross s plus spin l) over one explicit
update equals exactly the boundary angular-momentum flux — i.e. on any
closed control volume the scheme conserves L to machine precision.
"""

import numpy as np
import pytest

from repro.core import (EGAS, LX, NF, NGHOST, RHO, SX, TAU, IdealGas,
                        Mesh)
from repro.core.hydro.solver import HydroOptions, cfl_dt, compute_rhs
from repro.core.mesh import apply_boundary


def _random_block(rng, n=12):
    m = n + 2 * NGHOST
    U = np.zeros((NF, m, m, m))
    U[RHO] = rng.uniform(0.5, 2.0, (m, m, m))
    for d in range(3):
        U[SX + d] = rng.uniform(-0.3, 0.3, (m, m, m)) * U[RHO]
    eint = rng.uniform(0.5, 2.0, (m, m, m))
    kin = 0.5 * (U[SX] ** 2 + U[SX + 1] ** 2 + U[SX + 2] ** 2) / U[RHO]
    U[EGAS] = eint + kin
    U[TAU] = IdealGas().tau_from_eint(eint)
    return U


class TestRhsBasics:
    def test_uniform_state_has_zero_rhs(self):
        opts = HydroOptions(eos=IdealGas())
        m = 8 + 2 * NGHOST
        U = np.zeros((NF, m, m, m))
        U[RHO] = 1.0
        U[EGAS] = 1.0
        U[TAU] = IdealGas().tau_from_eint(np.array(1.0))
        rhs = compute_rhs(U, 0.1, opts)
        assert np.abs(rhs).max() < 1e-12

    def test_cfl_dt_scales_with_dx(self):
        opts = HydroOptions(eos=IdealGas())
        m = 8 + 2 * NGHOST
        U = np.zeros((NF, m, m, m))
        U[RHO] = 1.0
        U[EGAS] = 1.0
        assert cfl_dt(U, 0.2, opts) == pytest.approx(
            2.0 * cfl_dt(U, 0.1, opts))

    def test_static_gas_has_infinite_dt_at_zero_pressure(self):
        opts = HydroOptions(eos=IdealGas())
        m = 8 + 2 * NGHOST
        U = np.zeros((NF, m, m, m))
        U[RHO] = 1.0
        assert cfl_dt(U, 0.1, opts) == np.inf

    def test_unknown_reconstruction_rejected(self):
        opts = HydroOptions(eos=IdealGas(), reconstruction="wrong")
        m = 8 + 2 * NGHOST
        with pytest.raises(ValueError):
            compute_rhs(np.zeros((NF, m, m, m)) + 1e-3, 0.1, opts)


class TestConservationBookkeeping:
    """Forward-Euler budget checks: interior change == boundary flux."""

    def _fluxed_update(self, rng, spin=True):
        opts = HydroOptions(eos=IdealGas(), spin_correction=spin)
        n = 10
        dx = 1.0 / n
        U = _random_block(rng, n)
        apply_boundary(U, "periodic")
        rhs, fluxes = compute_rhs(U, dx, opts, return_fluxes=True)
        return U, rhs, fluxes, dx, n

    def test_mass_momentum_energy_telescope_periodic(self, rng):
        """With periodic wrapping, opposite boundary fluxes cancel and
        every conserved total is exactly preserved."""
        U, rhs, fluxes, dx, n = self._fluxed_update(rng)
        for f in (RHO, SX, SX + 1, SX + 2, EGAS):
            total = rhs[f].sum() * dx ** 3
            scale = max(np.abs(rhs[f]).sum() * dx ** 3, 1e-30)
            assert abs(total) / scale < 1e-12, f"field {f}"

    def test_angular_momentum_conserved_with_spin_channel(self, rng):
        """Sec. 4.2: orbital + spin angular momentum changes only through
        the conservative boundary flux — zero under periodic wrapping."""
        opts = HydroOptions(eos=IdealGas(), spin_correction=True)
        n = 10
        dx = 1.0 / n
        U = _random_block(rng, n)
        apply_boundary(U, "periodic")
        rhs = compute_rhs(U, dx, opts)
        ax = (np.arange(n) + 0.5) * dx
        x = ax[:, None, None]
        y = ax[None, :, None]
        # dLz/dt = sum x (ds_y/dt) - y (ds_x/dt) + dl_z/dt
        dlz = (x * rhs[SX + 1] - y * rhs[SX] + rhs[LX + 2]).sum() * dx ** 3
        # boundary contribution under periodic wrap: the arm jumps by the
        # domain length L across the seam, dL/dt = -L dx^2 (e_ax x F)
        rhs2, fluxes = compute_rhs(U, dx, opts, return_fluxes=True)
        Fx = fluxes[0]      # momentum fluxes on x-faces
        Fy = fluxes[1]
        L = n * dx
        wrap_x = -L * Fx[SX + 1][0].sum() * dx ** 2
        wrap_y = L * Fy[SX][:, 0].sum() * dx ** 2
        expected = wrap_x + wrap_y
        scale = max(abs(x * rhs[SX + 1]).sum() * dx ** 3, 1e-30)
        assert abs(dlz - expected) / scale < 1e-12

    def test_without_spin_channel_L_is_not_conserved(self, rng):
        """Ablation: dropping the spin correction loses exactness."""
        opts_off = HydroOptions(eos=IdealGas(), spin_correction=False)
        n = 10
        dx = 1.0 / n
        U = _random_block(rng, n)
        apply_boundary(U, "periodic")
        rhs, fluxes = compute_rhs(U, dx, opts_off, return_fluxes=True)
        ax = (np.arange(n) + 0.5) * dx
        x = ax[:, None, None]
        y = ax[None, :, None]
        dlz = (x * rhs[SX + 1] - y * rhs[SX] + rhs[LX + 2]).sum() * dx ** 3
        Fx, Fy = fluxes[0], fluxes[1]
        L = n * dx
        expected = -L * Fx[SX + 1][0].sum() * dx ** 2 \
            + L * Fy[SX][:, 0].sum() * dx ** 2
        scale = max(abs(x * rhs[SX + 1]).sum() * dx ** 3, 1e-30)
        assert abs(dlz - expected) / scale > 1e-10

    def test_gravity_source_conserves_energy_budget(self, rng):
        """The s.g energy source matches the momentum work term."""
        opts = HydroOptions(eos=IdealGas())
        n = 8
        dx = 1.0 / n
        U = _random_block(rng, n)
        apply_boundary(U, "periodic")
        grav = rng.normal(size=(3, n, n, n)) * 0.1
        rhs0 = compute_rhs(U, dx, opts)
        rhs1 = compute_rhs(U, dx, opts, gravity=grav)
        g = NGHOST
        inner = (slice(g, g + n),) * 3
        for d in range(3):
            np.testing.assert_allclose(
                rhs1[SX + d] - rhs0[SX + d], U[RHO][inner] * grav[d],
                rtol=1e-12, atol=1e-14)
        work = sum(U[SX + d][inner] * grav[d] for d in range(3))
        np.testing.assert_allclose(rhs1[EGAS] - rhs0[EGAS], work,
                                   rtol=1e-12, atol=1e-14)

    def test_coriolis_does_no_work(self, rng):
        """Rotating-frame sources: energy change comes only from the
        centrifugal term."""
        n = 8
        dx = 1.0 / n
        U = _random_block(rng, n)
        opts0 = HydroOptions(eos=IdealGas(), omega=0.0)
        opts1 = HydroOptions(eos=IdealGas(), omega=0.7)
        apply_boundary(U, "periodic")
        rhs0 = compute_rhs(U, dx, opts0)
        rhs1 = compute_rhs(U, dx, opts1)
        g = NGHOST
        inner = (slice(g, g + n),) * 3
        ax = (np.arange(n) + 0.5) * dx
        x = ax[:, None, None]
        y = ax[None, :, None]
        om = 0.7
        expected = om * om * (x * U[SX][inner] + y * U[SX + 1][inner])
        np.testing.assert_allclose(rhs1[EGAS] - rhs0[EGAS], expected,
                                   rtol=1e-12, atol=1e-14)
