"""Futurized execution engine: bit-identity with serial, counters, routing."""

import numpy as np
import pytest

from repro.core import BlockMesh, ConservationMonitor, ExecutionEngine
from repro.core.gravity.fmm import FmmSolver
from repro.core.scenario import equilibrium_star
from repro.runtime import CudaDevice, WorkStealingScheduler
from repro.runtime.counters import default_registry


def make_star_block(engine=None):
    star = equilibrium_star(n=16, domain=4.0)
    block = BlockMesh(blocks_per_edge=2, domain=star.domain,
                      origin=star.origin, options=star.options,
                      bc=star.bc, engine=engine, self_gravity=True)
    block.load_interior(star.interior.copy())
    return block


class TestEngineBasics:
    def test_no_resources_runs_inline_in_order(self):
        engine = ExecutionEngine()
        futs = engine.map(lambda x: x * x, [(i,) for i in range(8)])
        assert [f.get() for f in futs] == [i * i for i in range(8)]

    def test_exception_propagates_through_future(self):
        engine = ExecutionEngine()

        def boom(x):
            raise ValueError(f"bad {x}")

        fut = engine.submit(boom, 3)
        with pytest.raises(ValueError, match="bad 3"):
            fut.get()

    def test_scheduler_only_preserves_order(self):
        with WorkStealingScheduler(3) as sched:
            engine = ExecutionEngine(scheduler=sched)
            futs = engine.map(lambda x: x + 1, [(i,) for i in range(50)])
            assert [f.get() for f in futs] == list(range(1, 51))
            engine.synchronize()

    def test_device_routing_counts_launches(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=2, n_workers=2, name="exec-gpu") as gpu:
            engine = ExecutionEngine(devices=[gpu])
            futs = engine.map(lambda x: -x, [(i,) for i in range(10)])
            assert [f.get() for f in futs] == [-i for i in range(10)]
            engine.synchronize()
        assert engine.gpu_launches + engine.cpu_launches == 10
        snap = reg.snapshot()
        assert snap.get("/cuda/launched/gpu", 0) == engine.gpu_launches
        assert snap.get("/exec/tasks") == 10.0

    def test_use_device_false_stays_on_cpu(self):
        with CudaDevice(n_streams=2, n_workers=2, name="exec-gpu2") as gpu:
            engine = ExecutionEngine(devices=[gpu])
            futs = engine.map(lambda x: x, [(i,) for i in range(5)],
                              use_device=False)
            assert [f.get() for f in futs] == list(range(5))
        assert engine.gpu_launches == 0


class TestFmmFuturized:
    def test_solver_executor_matches_serial_bitwise(self):
        rng = np.random.default_rng(7)
        rho = rng.uniform(0.1, 2.0, (16, 16, 16))
        serial = FmmSolver.from_uniform(rho, dx=0.1, subgrid_n=8)
        ref = serial.uniform_field(serial.solve())

        with WorkStealingScheduler(4) as sched, \
                CudaDevice(n_streams=4, n_workers=2, name="fmm-gpu") as gpu:
            engine = ExecutionEngine(scheduler=sched, devices=[gpu])
            fut = FmmSolver.from_uniform(rho, dx=0.1, subgrid_n=8)
            fut.solve(executor=engine)  # records the script serially
            got = fut.uniform_field(fut.solve(executor=engine))
            engine.synchronize()
        assert np.array_equal(got[0], ref[0])
        assert np.array_equal(got[1], ref[1])

    def test_futurized_solve_counted(self):
        reg = default_registry()
        reg.reset()
        rho = np.ones((8, 8, 8))
        solver = FmmSolver.from_uniform(rho, dx=0.1, subgrid_n=8)
        engine = ExecutionEngine()
        solver.solve(executor=engine)
        solver.solve(executor=engine)
        snap = reg.snapshot()
        assert snap.get("/fmm/solves") == 2.0
        assert snap.get("/fmm/solves-futurized") == 1.0


class TestBlockMeshFuturized:
    def test_five_steps_bit_identical_with_identical_drifts(self):
        reg = default_registry()
        reg.reset()
        serial = make_star_block()
        mon_s = ConservationMonitor()
        mon_s.sample(serial)
        for _ in range(5):
            serial.step()
            mon_s.sample(serial)

        with WorkStealingScheduler(4) as sched, \
                CudaDevice(n_streams=8, n_workers=4, name="fut-gpu") as gpu:
            engine = ExecutionEngine(scheduler=sched, devices=[gpu])
            fut = make_star_block(engine=engine)
            mon_f = ConservationMonitor()
            mon_f.sample(fut)
            for _ in range(5):
                fut.step()
                mon_f.sample(fut)
            engine.synchronize()
            snap = reg.snapshot()
            state_s = serial.gather_interior()
            state_f = fut.gather_interior()

        assert state_s.tobytes() == state_f.tobytes()
        assert np.array_equal(fut.phi, serial.phi)
        assert mon_f.report() == mon_s.report()
        # the futurized run really exercised the hot path
        assert snap.get("/cuda/launched/gpu", 0) > 0
        assert snap.get("/fmm/solves-futurized", 0) > 0
        assert engine.gpu_launches > 0
