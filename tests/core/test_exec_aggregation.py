"""Engine-level work aggregation: accounting, fast path, bit-identity."""

import numpy as np
import pytest

from repro.core import BlockMesh, ExecutionEngine
from repro.core.scenario import equilibrium_star
from repro.resilience.supervisor import SupervisedEngine
from repro.runtime import CudaDevice, WorkStealingScheduler
from repro.runtime.counters import default_registry


def make_star_block(engine=None):
    star = equilibrium_star(n=16, domain=4.0)
    block = BlockMesh(blocks_per_edge=2, domain=star.domain,
                      origin=star.origin, options=star.options,
                      bc=star.bc, engine=engine, self_gravity=True)
    block.load_interior(star.interior.copy())
    return block


class TestLaunchReconciliation:
    def test_every_placement_is_counted(self):
        """/cuda/launched/gpu + /cuda/launched/cpu == /exec/tasks across
        device, use_device=False and stream-less dispatch."""
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=4, n_workers=2, name="rec-gpu") as gpu:
            engine = ExecutionEngine(devices=[gpu], agg_slots=4)
            bare = ExecutionEngine(agg_slots=4)  # no pool at all
            futs = engine.map(lambda x: x, [(i,) for i in range(9)])
            futs += engine.map(lambda x: x, [(i,) for i in range(5)],
                               use_device=False)
            futs += bare.map(lambda x: x, [(i,) for i in range(3)])
            for f in futs:
                f.get(timeout=5.0)
            engine.synchronize()
            engine.publish_counters(reg)
            bare.publish_counters(reg)
        snap = reg.snapshot()
        assert snap.get("/cuda/launched/gpu", 0.0) \
            + snap.get("/cuda/launched/cpu", 0.0) == snap.get("/exec/tasks")
        assert snap.get("/exec/tasks") == 17.0
        # the stream-less engine and use_device=False were counted as CPU
        assert snap.get("/cuda/launched/cpu", 0.0) >= 8.0
        assert engine.gpu_launches + engine.cpu_launches == 14
        assert bare.cpu_launches == 3 and bare.gpu_launches == 0

    def test_publish_counters_gauges_reconcile(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=4, n_workers=2, name="rec-gpu2") as gpu:
            engine = ExecutionEngine(devices=[gpu], agg_slots=4)
            futs = engine.map(lambda x: x * 2, [(i,) for i in range(8)])
            assert [f.get(timeout=5.0) for f in futs] \
                == [2 * i for i in range(8)]
            engine.synchronize()
            engine.publish_counters(reg)
        snap = reg.snapshot()
        assert snap.get("/exec/launched/gpu") \
            + snap.get("/exec/launched/cpu") == snap.get("/exec/tasks")
        assert snap.get("/exec/gpu-fraction") == pytest.approx(
            engine.gpu_fraction)
        assert snap.get("/cuda/aggregated-per-launch") == pytest.approx(
            engine.aggregated_per_launch)

    def test_aggregation_ratio_reflects_slot_buffering(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=4, n_workers=2, name="agg-gpu") as gpu:
            engine = ExecutionEngine(devices=[gpu], agg_slots=4)
            futs = engine.map(lambda x: x, [(i,) for i in range(8)])
            for f in futs:
                f.get(timeout=5.0)
            engine.synchronize()
            engine.publish_counters(reg)
        # 8 kernels in 2 aggregated launches of 4 slots each
        assert engine.agg_launches == 2
        assert engine.agg_tasks == 8
        assert engine.aggregated_per_launch == pytest.approx(4.0)
        assert reg.snapshot().get("/cuda/aggregated-per-launch") \
            == pytest.approx(4.0)

    def test_aggregate_false_degrades_to_single_slot(self):
        with CudaDevice(n_streams=4, n_workers=2, name="one-gpu") as gpu:
            engine = ExecutionEngine(devices=[gpu], aggregate=False,
                                     agg_slots=16)
            assert engine.agg_slots == 1
            futs = engine.map(lambda x: -x, [(i,) for i in range(6)])
            assert [f.get(timeout=5.0) for f in futs] \
                == [-i for i in range(6)]
            engine.synchronize()
        if engine.agg_launches:
            assert engine.aggregated_per_launch == pytest.approx(1.0)

    def test_agg_slots_validation(self):
        with pytest.raises(ValueError):
            ExecutionEngine(agg_slots=0)


class TestCountAfterEnqueue:
    def test_failed_enqueue_is_not_a_gpu_launch(self):
        """Regression: a faulting enqueue used to be pre-counted as a GPU
        launch.  The kernels overflow to the CPU, the gauges reconcile,
        and /cuda/agg-enqueue-failed records the fault."""
        reg = default_registry()
        reg.reset()
        gpu = CudaDevice(n_streams=2, n_workers=1, name="dead-gpu")
        engine = ExecutionEngine(devices=[gpu], agg_slots=4)
        gpu.shutdown()  # every enqueue now raises inside the flush
        futs = engine.map(lambda x: x + 1, [(i,) for i in range(6)])
        assert [f.get(timeout=5.0) for f in futs] == list(range(1, 7))
        snap = reg.snapshot()
        assert engine.gpu_launches == 0
        assert engine.cpu_launches == 6
        assert snap.get("/cuda/launched/gpu", 0.0) == 0.0
        assert snap.get("/cuda/launched/cpu") == 6.0
        assert snap.get("/cuda/agg-enqueue-failed", 0.0) > 0.0
        assert snap.get("/cuda/launched/cpu") == snap.get("/exec/tasks")

    def test_poisoned_kernels_still_count_as_placed(self):
        """Stream faults happen *after* the enqueue: the placement was
        real, so the launch counters must not unwind."""
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="sick-gpu",
                        quarantine_threshold=None) as gpu:
            gpu.streams[0].poison()  # every kernel faults, forever
            engine = ExecutionEngine(devices=[gpu], agg_slots=4)
            futs = engine.map(lambda x: x, [(i,) for i in range(4)])
            failed = 0
            for f in futs:
                f.wait(5.0)
                failed += f.has_exception()
            engine.synchronize()
        snap = reg.snapshot()
        assert failed == 4
        assert engine.gpu_launches == 4  # placed, even though they faulted
        assert snap.get("/cuda/launched/gpu") + \
            snap.get("/cuda/launched/cpu", 0.0) == snap.get("/exec/tasks")


class TestSingleTaskFastPath:
    def test_submit_posts_once(self):
        """A one-chunk batch skips the fan-out double-hop: exactly one
        scheduler post, not a fan-out task plus the chunk."""
        with WorkStealingScheduler(2) as sched:
            engine = ExecutionEngine(scheduler=sched, agg_slots=4)
            sched.wait_idle()
            before = sched.stats.posted
            fut = engine.submit(lambda: 41 + 1)
            assert fut.get(timeout=5.0) == 42
            sched.wait_idle()
            assert sched.stats.posted - before == 1

    def test_multi_chunk_batch_still_fans_out(self):
        with WorkStealingScheduler(2) as sched:
            engine = ExecutionEngine(scheduler=sched, agg_slots=2)
            sched.wait_idle()
            before = sched.stats.posted
            futs = engine.map(lambda x: x, [(i,) for i in range(6)])
            assert [f.get(timeout=5.0) for f in futs] == list(range(6))
            sched.wait_idle()
            # one fan-out post plus three chunk tasks
            assert sched.stats.posted - before == 4


class TestAggregatedMeshStep:
    def test_two_steps_bit_identical_with_tiny_slot_buffer(self):
        """Forcing many buffer-full flushes must not change a single bit
        of the V1309 step (recorded-order accumulation replay)."""
        reg = default_registry()
        reg.reset()
        serial = make_star_block()
        for _ in range(2):
            serial.step()

        with WorkStealingScheduler(2) as sched, \
                CudaDevice(n_streams=8, n_workers=4, name="agg-mesh") as gpu:
            engine = ExecutionEngine(scheduler=sched, devices=[gpu],
                                     agg_slots=3)
            fut = make_star_block(engine=engine)
            for _ in range(2):
                fut.step()
            engine.synchronize()
            engine.publish_counters(reg)
            state_s = serial.gather_interior()
            state_f = fut.gather_interior()

        assert state_s.tobytes() == state_f.tobytes()
        assert np.array_equal(fut.phi, serial.phi)
        snap = reg.snapshot()
        assert snap.get("/cuda/agg-flush/full", 0.0) > 0.0
        assert engine.aggregated_per_launch > 1.0
        assert snap.get("/cuda/launched/gpu", 0.0) \
            + snap.get("/cuda/launched/cpu", 0.0) == snap.get("/exec/tasks")


class TestSupervisedAggregation:
    def test_quarantined_mid_region_tasks_are_reexecuted(self):
        """A stream that sickens mid-region faults its slots; supervision
        re-executes them (placement re-decided, quarantined stream
        skipped) and the books still balance."""
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="sup-gpu",
                        quarantine_threshold=2,
                        quarantine_period=60.0) as gpu:
            gpu.streams[0].poison(count=4)
            engine = ExecutionEngine(devices=[gpu], agg_slots=2)
            sup = SupervisedEngine(engine)
            futs = sup.map(lambda x: x * x, [(i,) for i in range(8)])
            assert [f.get(timeout=5.0) for f in futs] \
                == [i * i for i in range(8)]
            sup.synchronize()
            # the first slot buffer drew the poison twice in a row
            assert gpu.streams[0].quarantined()
        snap = reg.snapshot()
        assert snap.get("/resilience/tasks/retried") == 2.0
        assert snap.get("/resilience/tasks/recovered") == 2.0
        assert snap.get("/resilience/tasks/gave-up", 0.0) == 0.0
        # 8 first attempts + 2 re-executions, every placement counted
        assert snap.get("/exec/tasks") == 10.0
        assert snap.get("/cuda/launched/gpu") == 2.0
        assert snap.get("/cuda/launched/cpu") == 8.0
