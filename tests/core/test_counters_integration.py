"""APEX-style counters are fed by the physics (Sec. 4.1: diagnostics)."""

import numpy as np

from repro.core import FmmSolver, Mesh
from repro.runtime import default_registry


class TestCountersIntegration:
    def test_fmm_solve_counts_interactions(self):
        reg = default_registry()
        before = dict.fromkeys(
            ("/fmm/solves", "/fmm/interactions/monopole"), 0.0)
        for k in before:
            try:
                before[k] = reg.value(k)
            except KeyError:
                pass
        rho = np.random.default_rng(0).uniform(0.1, 1.0, (8, 8, 8))
        solver = FmmSolver.from_uniform(rho, 1.0 / 8)
        solver.solve()
        assert reg.value("/fmm/solves") == before["/fmm/solves"] + 1
        assert reg.value("/fmm/interactions/monopole") \
            > before["/fmm/interactions/monopole"]

    def test_replay_counts_too(self):
        reg = default_registry()
        rho = np.random.default_rng(1).uniform(0.1, 1.0, (8, 8, 8))
        solver = FmmSolver.from_uniform(rho, 1.0 / 8)
        solver.solve()
        a = reg.value("/fmm/interactions/monopole")
        solver.solve()      # replay path
        assert reg.value("/fmm/interactions/monopole") > a

    def test_hydro_steps_counted(self):
        reg = default_registry()
        try:
            before = reg.value("/hydro/steps")
        except KeyError:
            before = 0.0
        mesh = Mesh(n=8)
        mesh.load_primitives(1.0, 0.0, 0.0, 0.0, 1.0)
        mesh.step(1e-4)
        assert reg.value("/hydro/steps") == before + 1
