"""FMM gravity solver: accuracy against direct summation, conservation."""

import numpy as np
import pytest

from repro.core import FmmSolver, Octree, RHO
from repro.core.gravity.multipole import aggregate_m2m, taylor_shift


@pytest.fixture(scope="module")
def uniform16():
    rng = np.random.default_rng(42)
    M = 16
    rho = rng.uniform(0.1, 1.0, (M, M, M))
    solver = FmmSolver.from_uniform(rho, 1.0 / M)
    result = solver.solve()
    return rng, M, rho, solver, result


def _direct_reference(rho, M, dx, index):
    g = (np.arange(M) + 0.5) * dx
    X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
    pos = np.stack([X, Y, Z], -1).reshape(-1, 3)
    mass = (rho * dx ** 3).ravel()
    d = pos[index] - pos
    r2 = (d * d).sum(1)
    r2[index] = 1.0
    inv = 1.0 / np.sqrt(r2)
    inv[index] = 0.0
    phi = -(mass * inv).sum()
    acc = (mass[:, None] * (-d) * inv[:, None] ** 3).sum(0)
    return phi, acc


class TestM2M:
    def test_mass_and_com_aggregate(self):
        m = np.array([1.0, 3.0])
        com = np.array([[0.0, 0.0, 0.0], [4.0, 0.0, 0.0]])
        M2 = np.zeros((2, 3, 3))
        groups = np.array([0, 0])
        pm, pcom, pM2 = aggregate_m2m(m, com, M2, groups, 1)
        assert pm[0] == pytest.approx(4.0)
        assert pcom[0, 0] == pytest.approx(3.0)
        # parallel-axis theorem: M2_xx = sum m d^2
        assert pM2[0, 0, 0] == pytest.approx(1 * 9.0 + 3 * 1.0)

    def test_massless_parent_stays_finite(self):
        m = np.zeros(8)
        com = np.random.default_rng(0).normal(size=(8, 3))
        pm, pcom, pM2 = aggregate_m2m(m, com, np.zeros((8, 3, 3)),
                                      np.zeros(8, dtype=np.int64), 1)
        assert np.isfinite(pcom).all()

    def test_taylor_shift_constant_hessian(self):
        phi = np.array([1.0])
        acc = np.array([[0.5, 0.0, 0.0]])
        H = np.zeros((1, 3, 3))
        d = np.array([[2.0, 0.0, 0.0]])
        p2, a2, H2 = taylor_shift(phi, acc, H, d)
        assert p2[0] == pytest.approx(1.0 - 1.0)  # phi - acc.d
        np.testing.assert_allclose(a2, acc)


class TestUniformSolver:
    def test_rejects_bad_grid_shapes(self):
        with pytest.raises(ValueError):
            FmmSolver.from_uniform(np.zeros((10, 10, 10)), 0.1)
        with pytest.raises(ValueError):
            FmmSolver.from_uniform(np.zeros((8, 8, 4)), 0.1)

    def test_negative_density_rejected(self):
        solver = FmmSolver.from_uniform(np.ones((8, 8, 8)), 0.1)
        with pytest.raises(ValueError):
            solver.set_leaf_density({0: -np.ones((8, 8, 8))})

    def test_acc_matches_direct_summation(self, uniform16):
        rng, M, rho, solver, result = uniform16
        phi, acc = solver.uniform_field(result)
        for index in rng.choice(M ** 3, 10, replace=False):
            pd, ad = _direct_reference(rho, M, 1.0 / M, index)
            i, j, k = np.unravel_index(index, (M, M, M))
            assert np.linalg.norm(acc[i, j, k] - ad) \
                < 0.02 * np.linalg.norm(ad)
            assert abs(phi[i, j, k] - pd) < 5e-4 * abs(pd)

    def test_linear_momentum_conserved(self, uniform16):
        _rng, M, rho, solver, result = uniform16
        _phi, acc = solver.uniform_field(result)
        mass = (rho / M ** 3).reshape(-1, 1)
        resid = (mass * acc.reshape(-1, 3)).sum(0)
        scale = np.abs(mass * acc.reshape(-1, 3)).sum()
        assert np.abs(resid).max() / scale < 1e-13

    def test_angular_momentum_conserved(self, uniform16):
        """Total gravitational torque about the origin vanishes to
        machine precision (Sec. 4.2's headline FMM property)."""
        _rng, M, rho, solver, result = uniform16
        _phi, acc = solver.uniform_field(result)
        dx = 1.0 / M
        g = (np.arange(M) + 0.5) * dx
        X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
        pos = np.stack([X, Y, Z], -1).reshape(-1, 3)
        mass = (rho * dx ** 3).reshape(-1, 1)
        torque = np.cross(pos, mass * acc.reshape(-1, 3)).sum(0)
        scale = np.abs(np.cross(pos, mass * acc.reshape(-1, 3))).sum()
        assert np.abs(torque).max() / scale < 1e-12

    def test_point_mass_far_field(self):
        """A compact blob's far field approaches -M/r^2."""
        M = 16
        rho = np.zeros((M, M, M))
        rho[7:9, 7:9, 7:9] = 10.0
        solver = FmmSolver.from_uniform(rho, 1.0 / M)
        phi, acc = solver.uniform_field(solver.solve())
        total_mass = rho.sum() / M ** 3
        # probe a corner cell
        dx = 1.0 / M
        probe = np.array([0.5 * dx, 0.5 * dx, 0.5 * dx])
        center = np.array([0.5, 0.5, 0.5])
        r = np.linalg.norm(probe - center)
        expected = total_mass / r ** 2
        assert np.linalg.norm(acc[0, 0, 0]) == pytest.approx(
            expected, rel=0.05)

    def test_resolve_reuses_hierarchy(self, uniform16):
        _rng, M, rho, solver, _result = uniform16
        res2 = solver.solve()
        phi2, _ = solver.uniform_field(res2)
        assert np.isfinite(phi2).all()


class TestAdaptiveSolver:
    def test_amr_matches_direct(self):
        rng = np.random.default_rng(11)
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (0, 1, 0))
        for leaf in tree.leaves():
            leaf.grid.interior[RHO] = rng.uniform(
                0.1, 1.0, leaf.grid.interior[RHO].shape)
        specs, rho_by_level = tree.fmm_levels()
        solver = FmmSolver.from_levels(specs)
        solver.set_leaf_density(rho_by_level)
        res = solver.solve()
        pos, mass = [], []
        for lv in solver.levels:
            mask = lv.leaf
            pos.append(lv.centers()[mask])
            mass.append(lv.m[mask])
        pos = np.vstack(pos)
        mass = np.concatenate(mass)
        for lvl in sorted(res.acc):
            lv = solver.levels[lvl]
            sel = res.leaf_slots[lvl]
            for si in rng.choice(len(sel), min(8, len(sel)), replace=False):
                p = lv.com[sel[si]]
                d = p - pos
                r2 = (d * d).sum(1)
                keep = r2 > 1e-20
                inv = np.zeros_like(r2)
                inv[keep] = 1.0 / np.sqrt(r2[keep])
                ad = (mass[keep, None] * (-d[keep])
                      * inv[keep, None] ** 3).sum(0)
                a = res.acc[lvl][si]
                assert np.linalg.norm(a - ad) < 0.02 * np.linalg.norm(ad)

    def test_amr_momentum_conserved(self):
        rng = np.random.default_rng(13)
        tree = Octree(domain=1.0)
        tree.refine(0, (0, 0, 0))
        tree.refine(1, (1, 1, 1))
        for leaf in tree.leaves():
            leaf.grid.interior[RHO] = rng.uniform(
                0.1, 1.0, leaf.grid.interior[RHO].shape)
        specs, rho_by_level = tree.fmm_levels()
        solver = FmmSolver.from_levels(specs)
        solver.set_leaf_density(rho_by_level)
        res = solver.solve()
        mom = np.zeros(3)
        scale = 0.0
        for lvl, a in res.acc.items():
            m = solver.levels[lvl].m[res.leaf_slots[lvl]]
            mom += (m[:, None] * a).sum(0)
            scale += np.abs(m[:, None] * a).sum()
        assert np.abs(mom).max() / scale < 1e-13

    def test_orphan_level_rejected(self):
        coords0 = np.array([[0, 0, 0]], dtype=np.int64)
        coords2 = np.array([[5, 5, 5]], dtype=np.int64)
        with pytest.raises(ValueError):
            FmmSolver.from_levels([
                (0, 1.0, coords0, np.array([False])),
                (1, 0.5, coords2, np.array([True]))])
