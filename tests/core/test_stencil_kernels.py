"""FMM stencils (the 1074-element set, the exact partition) and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gravity.kernels import (greens, m2l_pair, p2p_pair,
                                        pair_torque)
from repro.core.gravity.stencil import (OPENING_R2, canonical_stencil,
                                        p2p_stencil, parity_stencils,
                                        root_stencil, well_separated)


class TestCanonicalStencil:
    def test_has_exactly_1074_elements(self):
        """Sec. 4.3: 'each cell interacts with 1074 of its close
        neighbors'."""
        assert len(canonical_stencil()) == 1074

    def test_interactions_per_launch(self):
        assert 512 * len(canonical_stencil()) == 549_888

    def test_bounded_by_11_cubed_box(self):
        s = canonical_stencil()
        assert np.abs(s).max() == 5

    def test_all_elements_well_separated(self):
        assert well_separated(canonical_stencil()).all()

    def test_symmetric_under_negation(self):
        s = {tuple(w) for w in canonical_stencil()}
        assert all((-a, -b, -c) in s for (a, b, c) in s)


class TestExactPartition:
    """Every cell pair must be handled exactly once: by the same-level
    M2L pass at the coarsest well-separated level, or by leaf P2P."""

    @given(st.tuples(st.integers(-12, 12), st.integers(-12, 12),
                     st.integers(-12, 12)),
           st.tuples(st.integers(0, 1), st.integers(0, 1),
                     st.integers(0, 1)))
    @settings(max_examples=300, deadline=None)
    def test_pair_handled_exactly_once_across_two_levels(self, w, parity):
        w_arr = np.array([w])
        if not w_arr.any():
            return
        par = parity_stencils()
        in_parity_list = any((w_arr == row).all()
                             for row in par[parity]) if np.abs(
            w_arr).max() <= 9 else False
        parent = np.floor_divide(w_arr + np.array(parity), 2)
        handled_by_parent_or_higher = bool(well_separated(parent)[0])
        is_p2p = not well_separated(w_arr)[0]
        is_m2l_here = bool(well_separated(w_arr)[0]) \
            and not handled_by_parent_or_higher
        # exactly one of: handled coarser, handled here, P2P at leaf
        assert int(handled_by_parent_or_higher) + int(is_m2l_here) \
            + int(is_p2p) == 1
        # and the parity list is exactly the "handled here" set
        if np.abs(w_arr).max() <= 9:
            assert in_parity_list == is_m2l_here

    def test_parity_lists_symmetric(self):
        par = parity_stencils()
        for p, lst in par.items():
            s = {tuple(w) for w in lst}
            for (a, b, c) in list(s)[:50]:
                q = tuple((np.array(p) + (a, b, c)) & 1)
                back = {tuple(w) for w in par[tuple(int(v) for v in q)]}
                assert (-a, -b, -c) in back

    def test_p2p_stencil_is_near_region(self):
        s = p2p_stencil()
        assert (~well_separated(s)).all()
        assert ((s * s).sum(axis=1) > 0).all()

    def test_root_stencil_covers_all_separated_offsets(self):
        s = root_stencil()
        d2 = (s * s).sum(axis=1)
        assert (d2 > OPENING_R2).all()
        assert np.abs(s).max() == 7


class TestGreens:
    def test_coincident_points_rejected(self):
        with pytest.raises(ValueError):
            greens(np.zeros((1, 3)))

    def test_g2_traceless(self, rng):
        dR = rng.normal(size=(20, 3)) * 5
        _g0, _g1, g2, _g3 = greens(dR)
        np.testing.assert_allclose(np.trace(g2, axis1=1, axis2=2), 0.0,
                                   atol=1e-14)

    def test_g3_traceless(self, rng):
        dR = rng.normal(size=(20, 3)) * 5
        _g0, _g1, _g2, g3 = greens(dR)
        np.testing.assert_allclose(np.einsum("nijj->ni", g3), 0.0,
                                   atol=1e-13)

    def test_g1_is_gradient_of_g0(self):
        x = np.array([[1.0, 2.0, -0.5]])
        eps = 1e-6
        g0, g1, _g2, _g3 = greens(x)
        for d in range(3):
            xp = x.copy()
            xp[0, d] += eps
            xm = x.copy()
            xm[0, d] -= eps
            num = (greens(xp)[0][0] - greens(xm)[0][0]) / (2 * eps)
            assert g1[0, d] == pytest.approx(num, rel=1e-6)


class TestPairKernels:
    def test_p2p_matches_newton(self):
        dR = np.array([[3.0, 0.0, 0.0]])
        m = np.array([2.0])
        phiA, phiB, accA, accB = p2p_pair(dR, m, np.array([5.0]))
        assert phiA[0] == pytest.approx(-5.0 / 3.0)
        assert accA[0, 0] == pytest.approx(-5.0 / 9.0)
        assert phiB[0] == pytest.approx(-2.0 / 3.0)

    def test_p2p_pair_momentum_exact(self, rng):
        dR = rng.normal(size=(50, 3)) * 4
        mA = rng.uniform(0.5, 2.0, 50)
        mB = rng.uniform(0.5, 2.0, 50)
        _pa, _pb, aA, aB = p2p_pair(dR, mA, mB)
        resid = mA[:, None] * aA + mB[:, None] * aB
        assert np.abs(resid).max() < 1e-15

    def test_m2l_reduces_to_p2p_for_zero_quadrupoles(self, rng):
        dR = rng.normal(size=(20, 3)) * 6
        mA = rng.uniform(1, 3, 20)
        mB = rng.uniform(1, 3, 20)
        Z = np.zeros((20, 3, 3))
        pa, pb, aA, aB, HA, HB = m2l_pair(dR, mA, mB, Z, Z)
        pa2, pb2, aA2, aB2 = p2p_pair(dR, mA, mB)
        np.testing.assert_allclose(pa, pa2, rtol=1e-13)
        np.testing.assert_allclose(aA, aA2, rtol=1e-13)

    def test_noether_identity_machine_precision(self, rng):
        """R x F + tau_A + tau_B = 0 — the angular-momentum-conserving
        FMM property (Marcello 2017 / Sec. 4.2)."""
        n = 200
        dR = rng.normal(size=(n, 3)) * 8
        mA = rng.uniform(0.5, 4.0, n)
        mB = rng.uniform(0.5, 4.0, n)

        def sym(a):
            return 0.5 * (a + a.transpose(0, 2, 1))

        M2A = sym(rng.normal(size=(n, 3, 3)))
        M2B = sym(rng.normal(size=(n, 3, 3)))
        _pa, _pb, aA, _aB, _HA, _HB = m2l_pair(dR, mA, mB, M2A, M2B)
        F = mA[:, None] * aA
        tauA, tauB = pair_torque(dR, mA, mB, M2A, M2B)
        resid = np.cross(dR, F) + tauA + tauB
        scale = np.abs(np.cross(dR, F)).max()
        assert np.abs(resid).max() / scale < 1e-13

    def test_quadrupole_improves_accuracy(self, rng):
        """The 455-flop multipole kernel beats the 12-flop monopole one
        against a resolved point-mass cluster."""
        pts = rng.normal(size=(8, 3)) * 0.3
        ms = rng.uniform(0.5, 1.5, 8)
        com = (ms[:, None] * pts).sum(0) / ms.sum()
        d = pts - com
        M2 = np.einsum("n,ni,nj->ij", ms, d, d)
        target = np.array([8.0, 1.0, -3.0])
        r = np.linalg.norm(target - pts, axis=1)
        phi_exact = -(ms / r).sum()
        dR = (target - com)[None]
        one = np.array([1.0])
        Z = np.zeros((1, 3, 3))
        phi_q = m2l_pair(dR, one, np.array([ms.sum()]), Z, M2[None])[0][0]
        phi_m = m2l_pair(dR, one, np.array([ms.sum()]), Z, Z)[0][0]
        assert abs(phi_q - phi_exact) < 0.2 * abs(phi_m - phi_exact)
