"""Regression: periodic BlockMesh boundaries must wrap all 26 offsets.

The old ``BlockMesh._physical_boundary`` wrapped only the six face
offsets — and copied the wrong side of the source block — so edge and
corner ghost regions across the periodic seam held stale data.  The
axis-sweep reconstruction of the node-level path happened to never read
them; per-neighbour distributed halos do, and so does any future corner-
aware kernel.  These tests assert the full ghost shell and bitwise
equality with the single-block mesh (both failed on the old code).
"""

import itertools

import numpy as np

from repro.core import NF, NGHOST, SUBGRID_N, BlockMesh, IdealGas, Mesh
from repro.core.hydro.solver import HydroOptions


def _loaded_pair(rng, bpe=2):
    n = bpe * SUBGRID_N
    opts = HydroOptions(eos=IdealGas(gamma=1.4))
    single = Mesh(n=n, domain=1.0, options=opts, bc="periodic")
    blocks = BlockMesh(bpe, domain=1.0, options=opts, bc="periodic")
    full = np.zeros((NF, n, n, n))
    full[0] = 1.0 + 0.2 * rng.random((n, n, n))
    full[1:4] = 0.1 * rng.standard_normal((3, n, n, n))
    full[4] = 1.5 + 0.2 * rng.random((n, n, n))
    full[5] = 0.5 * full[4]
    single.interior[...] = full
    blocks.load_interior(full)
    return single, blocks, full


class TestPeriodicGhostShell:
    def test_every_ghost_cell_is_the_wrapped_interior(self, rng):
        """After one exchange, each padded block must equal the periodic
        extension of the global interior — faces, edges AND corners."""
        _single, blocks, full = _loaded_pair(rng)
        blocks._halo_exchange(0)
        g, s, n = NGHOST, SUBGRID_N, blocks.n
        for ip, blk in blocks.blocks.items():
            idx = [[(ip[d] * s + local - g) % n for local in range(s + 2 * g)]
                   for d in range(3)]
            expected = full[np.ix_(range(NF), *idx)]
            np.testing.assert_array_equal(blk, expected)

    def test_corner_ghosts_cross_the_seam(self, rng):
        """The (-1,-1,-1) corner of block (0,0,0) comes from the far
        corner of the domain — exactly the region the old code left
        stale."""
        _single, blocks, full = _loaded_pair(rng)
        blocks._halo_exchange(0)
        g = NGHOST
        corner = blocks.blocks[(0, 0, 0)][:, :g, :g, :g]
        np.testing.assert_array_equal(corner, full[:, -g:, -g:, -g:])

    def test_blockmesh_matches_single_mesh_bitwise(self, rng):
        single, blocks, _full = _loaded_pair(rng)
        for _ in range(3):
            single.step(0.002)
            blocks.step(0.002)
        np.testing.assert_array_equal(blocks.gather_interior(),
                                      single.interior)

    def test_offsets_cover_all_26_directions(self):
        blocks = BlockMesh(2, bc="periodic")
        assert sorted(blocks._offsets) == sorted(
            o for o in itertools.product((-1, 0, 1), repeat=3)
            if o != (0, 0, 0))
        # every block of a 2^3 lattice has all 26 neighbours outside or
        # inside; the wrap list must cover exactly the outside ones
        for ip in blocks.blocks:
            wraps = dict(blocks._periodic_wraps(ip))
            for off in blocks._offsets:
                nb = tuple(ip[d] + off[d] for d in range(3))
                if nb in blocks.blocks:
                    assert off not in wraps
                else:
                    assert wraps[off] == tuple(
                        (ip[d] + off[d]) % blocks.bpe for d in range(3))
