"""BlockMesh gravity wiring: compute_dt, Mesh equivalence, evolve, phi."""

import numpy as np
import pytest

from repro.core import BlockMesh, DistributedMesh, IdealGas, Mesh, evolve
from repro.core.hydro.solver import HydroOptions
from repro.core.scenario import equilibrium_star


def star_pair(n_poly=1.5):
    """A Lane-Emden star as a single Mesh and the same state in a 2^3 BlockMesh."""
    single = equilibrium_star(n=16, domain=4.0, n_poly=n_poly)
    block = BlockMesh(blocks_per_edge=2, domain=single.domain,
                      origin=single.origin, options=single.options,
                      bc=single.bc, self_gravity=True)
    block.load_interior(single.interior.copy())
    return single, block


class TestComputeDt:
    def test_matches_single_mesh(self):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        single = Mesh(n=16, domain=1.0, options=opts)
        x, y, z = single.cell_centers()
        single.load_primitives(1.0 + 0.3 * np.sin(2 * np.pi * x) + 0 * y,
                               0.1, -0.05, 0.02, 1.0 + 0.2 * np.cos(z))
        block = BlockMesh(blocks_per_edge=2, domain=1.0, options=opts)
        block.load_interior(single.interior.copy())
        # the CFL condition reads only interiors, so the min over blocks
        # is exactly the full-grid dt
        assert block.compute_dt() == single.compute_dt()

    def test_step_without_dt_uses_cfl(self):
        opts = HydroOptions(eos=IdealGas(gamma=1.4))
        single = Mesh(n=16, domain=1.0, options=opts)
        x, y, z = single.cell_centers()
        single.load_primitives(1.0 + 0 * x + 0 * y + 0 * z, 0.0, 0.0, 0.0,
                               1.0 + 0.1 * np.sin(2 * np.pi * x))
        block = BlockMesh(blocks_per_edge=2, domain=1.0, options=opts)
        block.load_interior(single.interior.copy())
        dt = block.compute_dt()
        taken = block.step()
        assert taken == dt
        assert block.time == dt


class TestMeshEquivalence:
    def test_self_gravitating_steps_bit_identical(self):
        single, block = star_pair()
        for _ in range(3):
            single.step()
            block.step()
        assert block.time == single.time
        assert np.array_equal(block.gather_interior(), single.interior)
        assert np.array_equal(block.phi, single.phi)

    def test_conserved_totals_match(self):
        single, block = star_pair()
        single.step()
        block.step()
        ts, tb = single.conserved_totals(), block.conserved_totals()
        assert tb["mass"] == ts["mass"]
        assert tb["etot"] == ts["etot"]
        assert np.array_equal(tb["momentum"], ts["momentum"])


class TestEvolve:
    def test_evolve_drives_blockmesh(self):
        """Regression: evolve() used to assume a single-block Mesh; it must
        drive a self-gravitating BlockMesh end to end."""
        _, block = star_pair()
        monitor = evolve(block, t_end=1.0, max_steps=2)
        assert block.steps == 2
        assert len(monitor.records) == 3
        drifts = monitor.report()
        assert drifts["mass"] < 1e-9
        assert np.isfinite(drifts["egas"])


class TestPhiFreshness:
    def test_phi_matches_fresh_solve_after_step(self):
        """Regression: ``mesh.phi`` used to lag one stage behind after
        ``step`` — it must equal a from-scratch solve of the final density."""
        mesh = equilibrium_star(n=16, domain=4.0)
        mesh.step()
        reference = equilibrium_star(n=16, domain=4.0)
        reference.interior[:] = mesh.interior
        reference.solve_gravity()
        assert np.array_equal(mesh.phi, reference.phi)

    def test_gravity_cache_survives_external_state_mutation(self):
        """A checkpoint restore rewrites U behind the mesh's back; the
        cached acceleration must not be reused for the restored density."""
        mesh = equilibrium_star(n=16, domain=4.0)
        saved = mesh.U.copy()
        mesh.step()
        mesh.U[:] = saved  # simulate CheckpointManager.restore
        acc = mesh._gravity_for_state()
        fresh = equilibrium_star(n=16, domain=4.0)
        assert np.array_equal(acc, fresh.solve_gravity())


class TestValidation:
    def test_gravity_requires_power_of_two_blocks(self):
        with pytest.raises(ValueError, match="power|2\\^k"):
            BlockMesh(blocks_per_edge=3, self_gravity=True)

    def test_solve_gravity_requires_flag(self):
        block = BlockMesh(blocks_per_edge=2)
        with pytest.raises(RuntimeError):
            block.solve_gravity()

    def test_distributed_mesh_alias(self):
        assert DistributedMesh is BlockMesh
