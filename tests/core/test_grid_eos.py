"""SubGrid state container and the dual-energy EOS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EGAS, LX, NF, NGHOST, RHO, SUBGRID_N, SX, SY, SZ,
                        TAU, IdealGas, SubGrid)


class TestSubGrid:
    def test_default_is_paper_geometry(self):
        g = SubGrid()
        assert g.n == SUBGRID_N == 8
        assert g.U.shape == (NF, 8 + 2 * NGHOST, 8 + 2 * NGHOST,
                             8 + 2 * NGHOST)

    def test_interior_view_is_writable_window(self):
        g = SubGrid()
        g.interior[RHO] = 2.0
        assert g.U[RHO, NGHOST, NGHOST, NGHOST] == 2.0
        assert g.U[RHO, 0, 0, 0] == 0.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            SubGrid(n=0)

    def test_cell_centers_inside_bounds(self):
        g = SubGrid(origin=(1.0, 2.0, 3.0), dx=0.5, n=4)
        x, y, z = g.cell_centers()
        assert x.min() == pytest.approx(1.25)
        assert z.max() == pytest.approx(3.0 + 3.5 * 0.5)

    def test_total_mass(self):
        g = SubGrid(dx=0.5, n=4)
        g.interior[RHO] = 2.0
        assert g.total_mass() == pytest.approx(2.0 * (4 * 0.5) ** 3)

    def test_total_momentum(self):
        g = SubGrid(dx=1.0, n=2)
        g.interior[SX] = 1.0
        g.interior[SY] = -2.0
        np.testing.assert_allclose(g.total_momentum(), [8.0, -16.0, 0.0])

    def test_angular_momentum_includes_spin(self):
        g = SubGrid(dx=1.0, n=2)
        g.interior[LX + 2] = 3.0
        L = g.total_angular_momentum()
        assert L[2] == pytest.approx(3.0 * 8.0)

    def test_angular_momentum_of_rotation(self):
        g = SubGrid(origin=(-2.0, -2.0, -2.0), dx=1.0, n=4)
        x, y, _z = g.cell_centers()
        g.interior[RHO] = 1.0
        g.interior[SX] = -y + 0.0 * x
        g.interior[SY] = x + 0.0 * y
        L = g.total_angular_momentum()
        expected = float((x * x + y * y + 0.0 * _z).sum())
        assert L[2] == pytest.approx(expected)
        assert abs(L[0]) < 1e-12 and abs(L[1]) < 1e-12

    def test_copy_is_deep(self):
        g = SubGrid()
        g.interior[RHO] = 1.0
        h = g.copy()
        h.interior[RHO] = 5.0
        assert g.interior[RHO].max() == 1.0


class TestIdealGas:
    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError):
            IdealGas(gamma=1.0)

    def test_pressure_relation(self):
        eos = IdealGas(gamma=5 / 3)
        assert eos.pressure(np.array(1.0), np.array(3.0)) \
            == pytest.approx(2.0)

    def test_sound_speed(self):
        eos = IdealGas(gamma=1.4)
        cs = eos.sound_speed(np.array(1.0), np.array(1.0))
        assert cs == pytest.approx(np.sqrt(1.4))

    @given(st.floats(1e-6, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_tau_roundtrip(self, eint):
        eos = IdealGas()
        tau = eos.tau_from_eint(np.array(eint))
        back = eos.eint_from_tau(tau)
        assert back == pytest.approx(eint, rel=1e-12)

    def test_internal_energy_from_total_when_reliable(self):
        eos = IdealGas()
        rho = np.array(1.0)
        s = np.array(0.1)
        egas = np.array(10.0)
        tau = eos.tau_from_eint(np.array(123.0))  # deliberately wrong
        eint = eos.internal_energy(rho, s, s * 0, s * 0, egas, tau)
        assert eint == pytest.approx(10.0 - 0.005)

    def test_internal_energy_from_tau_at_high_mach(self):
        """The dual-energy switch (Sec. 4.2): kinetic dwarfs internal."""
        eos = IdealGas()
        rho = np.array(1.0)
        s = np.array(100.0)       # kinetic = 5000
        true_eint = 1e-4
        egas = 0.5 * s * s / rho + true_eint
        tau = eos.tau_from_eint(np.array(true_eint))
        eint = eos.internal_energy(rho, s, s * 0, s * 0,
                                   np.array(egas), tau)
        assert eint == pytest.approx(true_eint, rel=1e-10)

    def test_sync_tau_updates_in_trusted_regime(self):
        eos = IdealGas()
        rho, s = np.array(1.0), np.array(0.0)
        egas = np.array(2.0)
        stale = eos.tau_from_eint(np.array(1.0))
        new = eos.sync_tau(rho, s, s, s, egas, stale)
        assert new == pytest.approx(eos.tau_from_eint(np.array(2.0)))

    def test_sync_tau_keeps_value_at_high_mach(self):
        eos = IdealGas()
        rho = np.array(1.0)
        s = np.array(100.0)
        egas = np.array(0.5 * 100.0 ** 2 + 1e-4)
        tau = eos.tau_from_eint(np.array(1e-4))
        assert eos.sync_tau(rho, s, s * 0, s * 0, egas, tau) \
            == pytest.approx(tau)

    @given(st.floats(1e-8, 1e3), st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_internal_energy_nonnegative(self, rho, v):
        eos = IdealGas()
        rhoa = np.array(rho)
        s = np.array(rho * v)
        egas = np.array(max(0.4 * rho * v * v, 1e-30))
        tau = np.array(0.0)
        assert eos.internal_energy(rhoa, s, s * 0, s * 0, egas, tau) >= 0.0
