"""Lane-Emden / SCF initial models and scenario builders."""

import numpy as np
import pytest

from repro.core import (EGAS, PASSIVE0, RHO, SX, IdealGas, Polytrope,
                        scf_single_star, sedov_blast, sod_tube,
                        solve_lane_emden)


class TestLaneEmden:
    def test_n0_analytic(self):
        """n = 0: theta = 1 - xi^2/6, surface at sqrt(6)."""
        le = solve_lane_emden(0.0)
        assert le.xi1 == pytest.approx(np.sqrt(6.0), rel=1e-6)

    def test_n1_analytic(self):
        """n = 1: theta = sin(xi)/xi, surface at pi."""
        le = solve_lane_emden(1.0)
        assert le.xi1 == pytest.approx(np.pi, rel=1e-6)

    def test_n15_literature_values(self):
        le = solve_lane_emden(1.5)
        assert le.xi1 == pytest.approx(3.65375, rel=1e-4)
        assert -le.xi1 ** 2 * le.dtheta_xi1 == pytest.approx(2.71406,
                                                             rel=1e-4)

    def test_theta_monotone_decreasing(self):
        le = solve_lane_emden(1.5)
        assert (np.diff(le.theta) <= 1e-12).all()

    def test_theta_at_clamps_outside_surface(self):
        le = solve_lane_emden(1.5)
        assert le.theta_at(np.array([le.xi1 * 2])) == 0.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            solve_lane_emden(-1.0)


class TestPolytrope:
    def test_mass_integral_matches(self):
        """Integrating the density profile recovers the requested mass."""
        star = Polytrope(n=1.5, radius=1.0, mass=2.0)
        r = np.linspace(1e-4, 1.0, 4000)
        rho, _p = star.profile(r)
        m = np.trapezoid(4 * np.pi * r ** 2 * rho, r)
        assert m == pytest.approx(2.0, rel=1e-3)

    def test_density_zero_outside(self):
        star = Polytrope(n=1.5, radius=1.0, mass=1.0)
        rho, p = star.profile(np.array([1.5]))
        assert rho[0] == 0.0 and p[0] == 0.0

    def test_central_density_scaling(self):
        a = Polytrope(n=1.5, radius=1.0, mass=1.0).central_density()
        b = Polytrope(n=1.5, radius=1.0, mass=2.0).central_density()
        assert b == pytest.approx(2 * a, rel=1e-10)


class TestScfSingle:
    def test_converges_and_matches_lane_emden(self):
        res = scf_single_star(M=16, domain=4.0, radius_eq=1.0,
                              max_iter=30, tol=1e-5)
        assert res.residuals[-1] < 1e-4
        assert res.omega == pytest.approx(0.0)
        # central density should be near the requested maximum
        assert res.rho.max() == pytest.approx(1.0, rel=0.05)
        # density is compactly supported well inside the box
        edge_mass = res.rho[0].sum() + res.rho[-1].sum()
        assert edge_mass < 1e-8

    def test_rotating_model_flattens(self):
        res = scf_single_star(M=16, domain=4.0, axis_ratio=0.85,
                              max_iter=30, tol=1e-4)
        assert res.omega > 0.0
        # oblate: more mass spread in the equatorial plane than the axis
        mid = 8
        eq_extent = (res.rho[:, :, mid].sum(axis=1) > 1e-6).sum()
        ax_extent = (res.rho[mid, mid, :] > 1e-6).sum()
        assert eq_extent >= ax_extent

    def test_bad_axis_ratio_rejected(self):
        with pytest.raises(ValueError):
            scf_single_star(axis_ratio=1.5)


class TestScenarios:
    def test_sod_tube_initial_state(self):
        mesh = sod_tube(n=(32, 8, 8))
        I = mesh.interior
        assert I[RHO][0, 0, 0] == pytest.approx(1.0)
        assert I[RHO][-1, 0, 0] == pytest.approx(0.125)
        # passive scalars tag the chambers
        assert I[PASSIVE0][0, 0, 0] > 0 and I[PASSIVE0][-1, 0, 0] == 0.0

    def test_sedov_energy_deposited(self):
        E = 0.7
        mesh = sedov_blast(n=16, E=E)
        total = mesh.conserved_totals()["egas"]
        ambient = 1e-6 / (IdealGas(gamma=1.4).gamma - 1.0)
        assert total == pytest.approx(E + ambient, rel=1e-6)

    def test_sedov_requires_resolvable_radius(self):
        with pytest.raises(ValueError):
            sedov_blast(n=16, r_init=1e-9)

    def test_sedov_is_centred(self):
        mesh = sedov_blast(n=16)
        I = mesh.interior
        peak = np.unravel_index(np.argmax(I[EGAS]), I[EGAS].shape)
        centre = ((np.array(peak) + 0.5) * mesh.dx)
        assert np.abs(centre - 0.5).max() <= 2.0 * mesh.dx
