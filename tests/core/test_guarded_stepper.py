"""GuardedStepper: post-stage guards, rollback/replay, dt halving."""

import numpy as np
import pytest

from repro.core import (ConservationMonitor, FaultRecoveryExhausted,
                        GuardViolation, GuardedStepper, NGHOST, RHO,
                        evolve, sedov_blast)
from repro.resilience import FaultInjector
from repro.runtime import CounterRegistry


def small_mesh():
    return sedov_blast(n=16)


class FakeMesh:
    """Duck-typed mesh whose step() plants guard violations on demand.

    ``bad`` maps a step index to a predicate of dt; while the predicate
    holds, stepping that index leaves the given ``poison`` value in the
    interior density — exercising the reject/halve path without the cost
    of a real solve.
    """

    def __init__(self, n=8, bad=None, poison=np.nan):
        side = n + 2 * NGHOST
        self.U = np.ones((4, side, side, side))
        self.time = 0.0
        self.steps = 0
        self.bad = bad or {}
        self.poison = poison
        self.dts = []

    def compute_dt(self):
        return 0.125

    def step(self, dt):
        self.dts.append((self.steps, dt))
        self.U += 1e-3  # deterministic, state-dependent progress
        pred = self.bad.get(self.steps)
        if pred is not None and pred(dt):
            g = NGHOST
            self.U[RHO, g, g, g] = self.poison
        self.time += dt
        self.steps += 1

    def conserved_totals(self):
        return {"mass": float(self.U[RHO].sum()),
                "momentum": np.zeros(3), "angular_momentum": np.zeros(3),
                "egas": 0.0}


class TestGuards:
    def test_clean_state_passes(self):
        reg = CounterRegistry()
        st = GuardedStepper(FakeMesh(), registry=reg)
        assert st.violation() is None
        assert reg.value("/resilience/steps/guard-checks") == 1.0

    def test_nan_and_inf_are_caught(self):
        for poison in (np.nan, np.inf):
            mesh = FakeMesh()
            mesh.U[2, 5, 5, 5] = poison  # any field, not just density
            assert GuardedStepper(
                mesh, registry=CounterRegistry()).violation() \
                == "non-finite state"

    def test_negative_density_is_caught(self):
        mesh = FakeMesh()
        mesh.U[RHO, 4, 4, 4] = -1e-12
        assert GuardedStepper(
            mesh, registry=CounterRegistry()).violation() \
            == "negative density"


class TestRecovery:
    def test_corruption_detected_and_replay_bit_identical(self):
        """Silent NaN corruption after step 2: the guard rejects, the
        checkpoint replays, and the final state matches a clean run."""
        clean, guarded = small_mesh(), small_mesh()
        mon_clean = evolve(clean, 0.05, max_steps=5)
        reg = CounterRegistry()
        inj = FaultInjector(seed=7, corrupt_at_steps=(2,), registry=reg)
        st = GuardedStepper(guarded, checkpoint_interval=1,
                            fault_injector=inj, registry=reg)
        mon = st.evolve(0.05, max_steps=5)
        assert inj.stats()["corruption"] == 1
        assert st.rejected == 1 and st.restores == 1 and st.halvings == 0
        assert np.array_equal(clean.U, guarded.U)
        assert mon_clean.report() == mon.report()
        snap = reg.snapshot()
        assert snap["/resilience/steps/rejected"] == 1.0
        assert snap.get("/resilience/steps/dt-halvings", 0.0) == 0.0

    def test_announced_step_fault_shares_restore_path(self):
        clean, guarded = small_mesh(), small_mesh()
        evolve(clean, 0.05, max_steps=4)
        inj = FaultInjector(seed=3, fail_at_steps=(1,),
                            registry=CounterRegistry())
        st = GuardedStepper(guarded, checkpoint_interval=1,
                            fault_injector=inj,
                            registry=CounterRegistry())
        st.evolve(0.05, max_steps=4)
        assert st.restores == 1 and st.rejected == 0
        assert np.array_equal(clean.U, guarded.U)

    def test_transient_violation_retried_at_same_dt(self):
        """One-shot corruption must NOT shrink the dt — budgets make the
        replay clean, and identical dts keep the run byte-identical."""
        fired = []

        def once(dt):
            if not fired:
                fired.append(dt)
                return True
            return False

        mesh = FakeMesh(bad={2: once})
        st = GuardedStepper(mesh, checkpoint_interval=1,
                            registry=CounterRegistry())
        st.evolve(t_end=1.0, max_steps=4)
        assert st.rejected == 1 and st.halvings == 0
        # step 2 ran twice (reject + replay), both at the full dt
        attempts = [dt for s, dt in mesh.dts if s == 2]
        assert attempts == [0.125, 0.125]

    def test_persistent_violation_halves_dt_until_it_passes(self):
        reg = CounterRegistry()
        # step 1 is "stiff": it only survives once dt < 0.04, which takes
        # two halvings of the base 0.125
        mesh = FakeMesh(bad={1: lambda dt: dt >= 0.04})
        st = GuardedStepper(mesh, checkpoint_interval=1, registry=reg)
        mon = st.evolve(t_end=1.0, max_steps=3)
        assert mesh.steps == 3
        assert st.halvings == 2 and st.rejected == 3
        attempts = [dt for s, dt in mesh.dts if s == 1]
        # same-dt retry first, then 0.5x, then 0.25x which passes
        assert attempts == [0.125, 0.125, 0.0625, 0.03125]
        assert reg.value("/resilience/steps/dt-halvings") == 2.0
        # the recovered run still produced monotone samples
        assert [r.step for r in mon.records] == [0, 1, 2, 3]

    def test_halving_state_resets_between_steps(self):
        calls = {1: [], 3: []}

        def stiff(step):
            def pred(dt):
                calls[step].append(dt)
                return dt >= 0.1
            return pred

        mesh = FakeMesh(bad={1: stiff(1), 3: stiff(3)})
        st = GuardedStepper(mesh, checkpoint_interval=1,
                            registry=CounterRegistry())
        st.evolve(t_end=1.0, max_steps=5)
        # each stiff step needed its own halving; neither inherited the
        # other's shrunken dt
        assert calls[1][0] == 0.125 and calls[3][0] == 0.125
        assert st.halvings == 2

    def test_guard_violation_when_halvings_exhausted(self):
        mesh = FakeMesh(bad={0: lambda dt: True})  # never passes
        st = GuardedStepper(mesh, checkpoint_interval=1, max_halvings=2,
                            max_restores=50, registry=CounterRegistry())
        with pytest.raises(GuardViolation, match="2 dt halvings"):
            st.evolve(t_end=1.0, max_steps=2)

    def test_restore_budget_fails_loudly(self):
        mesh = FakeMesh(bad={0: lambda dt: True})
        st = GuardedStepper(mesh, checkpoint_interval=1, max_restores=1,
                            max_halvings=50, registry=CounterRegistry())
        with pytest.raises(FaultRecoveryExhausted):
            st.evolve(t_end=1.0, max_steps=2)

    def test_monitor_truncated_on_rollback(self):
        """Rejected samples must not survive in the record stream."""
        mesh = FakeMesh(bad={1: lambda dt: dt >= 0.1})
        mon = ConservationMonitor()
        st = GuardedStepper(mesh, checkpoint_interval=1, monitor=mon,
                            registry=CounterRegistry())
        st.evolve(t_end=1.0, max_steps=3)
        steps = [r.step for r in mon.records]
        assert steps == sorted(set(steps))  # no duplicates, no rewinds

    def test_validation(self):
        with pytest.raises(ValueError):
            GuardedStepper(FakeMesh(), max_halvings=-1)
