"""Schedule explorer: determinism, replay, and bit-identity under churn."""

import threading

import numpy as np
import pytest

from repro.core import BlockMesh, ExecutionEngine
from repro.core.scenario import equilibrium_star
from repro.runtime import WorkStealingScheduler
from repro.runtime.counters import CounterRegistry
from repro.sanitize import schedules


@pytest.fixture
def no_explorer():
    """Guarantee a clean EXPLORER slot and restore whatever was there."""
    prev = schedules.EXPLORER
    schedules.uninstall()
    yield
    schedules.EXPLORER = prev


def decisions(seed, n=20, point="sched-post"):
    """One explorer's first ``n`` decisions at ``point`` on this thread."""
    exp = schedules.ScheduleExplorer(seed)
    return ([exp.pick(point, 100) for _ in range(n)],
            exp.permute(point, list(range(10))))


class TestDeterminism:
    def test_same_seed_same_decision_stream(self, no_explorer):
        assert decisions(42) == decisions(42)

    def test_different_seeds_diverge(self, no_explorer):
        # not guaranteed for any single draw, but 20 picks in [0,100)
        # colliding across seeds would be a broken PRNG derivation
        assert decisions(1) != decisions(2)

    def test_streams_are_per_thread(self, no_explorer):
        """Two threads draw from independent streams of one explorer, and
        those streams are themselves seed-deterministic."""

        def sample(seed):
            exp = schedules.ScheduleExplorer(seed)
            out = {}

            def worker():
                out["t"] = [exp.pick("steal", 50) for _ in range(10)]

            t = threading.Thread(target=worker, name="det-worker")
            t.start()
            t.join()
            out["main"] = [exp.pick("steal", 50) for _ in range(10)]
            return out

        a, b = sample(7), sample(7)
        assert a == b  # replayable per (point, thread-name)

    def test_pick_bounds(self, no_explorer):
        exp = schedules.ScheduleExplorer(3)
        assert exp.pick("steal", 1) == 0
        assert exp.pick("steal", 0) == 0
        assert all(0 <= exp.pick("steal", 5) < 5 for _ in range(50))

    def test_permute_preserves_elements(self, no_explorer):
        exp = schedules.ScheduleExplorer(9)
        items = list(range(17))
        out = exp.permute("sched-batch", items)
        assert sorted(out) == items
        assert items == list(range(17))  # input untouched


class TestLifecycle:
    def test_install_uninstall(self, no_explorer):
        exp = schedules.install(5, intensity=0.5)
        assert schedules.installed() is exp
        assert schedules.EXPLORER is exp
        assert exp.seed == 5 and exp.intensity == 0.5
        schedules.uninstall()
        assert schedules.installed() is None

    def test_install_from_env(self, no_explorer, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULE_SEED", raising=False)
        assert schedules.install_from_env() is None
        monkeypatch.setenv("REPRO_SCHEDULE_SEED", "123")
        exp = schedules.install_from_env()
        assert exp is not None and exp.seed == 123
        schedules.uninstall()

    def test_run_under_seeds_restores_and_collects(self, no_explorer):
        seen = []

        def body():
            seen.append(schedules.EXPLORER.seed)
            return schedules.EXPLORER.seed * 10

        results = schedules.run_under_seeds(body, [1, 2, 3])
        assert results == [10, 20, 30]
        assert seen == [1, 2, 3]
        assert schedules.EXPLORER is None  # restored

    def test_run_under_seeds_attaches_failing_seed(self, no_explorer,
                                                   capsys):
        def body():
            if schedules.EXPLORER.seed == 2:
                raise AssertionError("schedule-dependent failure")

        with pytest.raises(AssertionError) as exc_info:
            schedules.run_under_seeds(body, [1, 2, 3])
        assert exc_info.value.repro_schedule_seed == 2
        assert "REPRO_SCHEDULE_SEED=2" in capsys.readouterr().out
        assert schedules.EXPLORER is None

    def test_publish_counters(self, no_explorer):
        reg = CounterRegistry()
        schedules.publish_counters(reg)
        assert reg.snapshot()["/sanitize/schedules/active"] == 0.0
        schedules.install(77)
        schedules.EXPLORER.pause("sched-post")
        schedules.publish_counters(reg)
        snap = reg.snapshot()
        assert snap["/sanitize/schedules/active"] == 1.0
        assert snap["/sanitize/schedules/seed"] == 77.0
        schedules.uninstall()


class TestBitIdentityUnderSchedules:
    def test_futurized_map_ordering_survives_churn(self, no_explorer):
        """Future ordering is a contract, not a schedule accident: results
        come back in input order under every explored schedule."""

        def body():
            with WorkStealingScheduler(3) as sched:
                engine = ExecutionEngine(scheduler=sched, agg_slots=4)
                futs = engine.map(lambda x: x * x, [(i,) for i in range(40)])
                out = [f.get() for f in futs]
                engine.synchronize()
                return out

        for run in schedules.run_under_seeds(body, [11, 12, 13]):
            assert run == [i * i for i in range(40)]

    def test_solver_bits_identical_across_schedules(self, no_explorer):
        """The tentpole contract: futurized == serial, for every explored
        interleaving, to the last bit."""
        star = equilibrium_star(n=16, domain=4.0)

        def build(engine):
            mesh = BlockMesh(blocks_per_edge=2, domain=star.domain,
                             origin=star.origin, options=star.options,
                             bc=star.bc, engine=engine)
            mesh.load_interior(star.interior.copy())
            return mesh

        serial = build(None)
        for _ in range(2):
            serial.step()
        reference = serial.gather_interior()

        def body():
            with WorkStealingScheduler(3) as sched:
                mesh = build(ExecutionEngine(scheduler=sched))
                for _ in range(2):
                    mesh.step()
                out = mesh.gather_interior()
                sched.wait_idle()
                return out

        for run in schedules.run_under_seeds(body, [21, 22], intensity=1.0):
            np.testing.assert_array_equal(run, reference)
