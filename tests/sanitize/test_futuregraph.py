"""Adversarial tests for the future-graph watcher (injected deadlocks)."""

import threading
import time

import pytest

from repro.runtime.future import Promise, async_execute, dataflow, when_all
from repro.runtime.scheduler import WorkStealingScheduler


def test_unwrap_wait_cycle_reported(san):
    """A then-callback returning its own ancestor waits on itself."""
    p = Promise()
    with san.scope() as caught:
        holder = {}
        chained = p.get_future().then(lambda f: holder["result"])
        holder["result"] = chained
        p.set_value(1)  # unwrap wires chained <- chained: the cycle
    assert "wait-cycle" in [f.kind for f in caught]
    cycle = next(f for f in caught if f.kind == "wait-cycle")
    assert cycle.details["cycle_sites"]


def test_unwrap_cycle_through_intermediate(san):
    """Cycle via an intermediate future, not direct self-reference."""
    p = Promise()
    with san.scope() as caught:
        holder = {}
        a = p.get_future().then(lambda f: holder["b"])
        b = when_all([a]).then(lambda f: None)
        holder["b"] = b
        p.set_value(1)
    assert "wait-cycle" in [f.kind for f in caught]


def test_abandoned_future_reported_at_sweep(san):
    with san.scope() as caught:
        p = Promise()
        fut = p.get_future()  # producer "lost": never set
        found = san.sweep()
        assert [f.kind for f in found] == ["abandoned-future"]
        assert "test_futuregraph.py" in found[0].site
        del fut, p
    assert [f.kind for f in caught] == ["abandoned-future"]


def test_swallowed_exception_reported_at_sweep(san):
    with san.scope() as caught:
        p = Promise()
        fut = p.get_future()
        p.set_exception(ValueError("dropped on the floor"))
        found = san.sweep()
        assert [f.kind for f in found] == ["swallowed-exception"]
        assert "dropped on the floor" in found[0].message
        del fut
    assert [f.kind for f in caught] == ["swallowed-exception"]


def test_consumed_exception_is_clean(san):
    p = Promise()
    fut = p.get_future()
    p.set_exception(ValueError("seen"))
    with pytest.raises(ValueError):
        fut.get()
    assert san.sweep() == []
    assert san.finding_count() == 0


def test_cancelled_future_is_exempt(san):
    p = Promise()
    fut = p.get_future()
    assert fut.cancel()
    assert san.sweep() == []
    assert san.finding_count() == 0


def test_resolved_graph_is_clean(san):
    with WorkStealingScheduler(2) as sched:
        futs = [sched.submit(lambda x=i: x * x) for i in range(20)]
        total = when_all(futs).then(lambda f: sum(x.get() for x in f.get()))
        combo = dataflow(lambda a, b: a + b, futs[0], futs[1])
        assert total.get() == sum(i * i for i in range(20))
        assert combo.get() == 1
    assert san.sweep() == []
    assert san.finding_count() == 0


def test_blocked_worker_reported(san):
    """A worker stuck in an unbounded get() past the stall timeout."""
    san.configure(stall_timeout=0.1)
    try:
        p = Promise()
        inner = p.get_future()
        with san.scope() as caught:
            with WorkStealingScheduler(1) as sched:
                fut = sched.submit(lambda: inner.get())  # unbounded, on a worker
                time.sleep(0.4)  # past the stall timeout
                p.set_value(7)
                assert fut.get(timeout=5.0) == 7
        assert "blocked-worker" in [f.kind for f in caught]
        blocked = next(f for f in caught if f.kind == "blocked-worker")
        assert blocked.details["waited"] == pytest.approx(0.1)
    finally:
        san.configure(stall_timeout=5.0)


def test_bounded_get_on_worker_is_clean(san):
    san.configure(stall_timeout=0.1)
    try:
        p = Promise()
        inner = p.get_future()
        threading.Timer(0.3, p.set_value, args=(3,)).start()
        with WorkStealingScheduler(1) as sched:
            fut = sched.submit(lambda: inner.get(timeout=5.0))
            assert fut.get(timeout=5.0) == 3
        assert san.finding_count() == 0
    finally:
        san.configure(stall_timeout=5.0)


def test_async_execute_unwrap_is_tracked(san):
    """Legitimate unwrapping resolves and leaves a clean graph."""
    out = async_execute(lambda: async_execute(lambda: 41).then(
        lambda f: f.get() + 1))
    assert out.get() == 42
    assert san.sweep() == []
