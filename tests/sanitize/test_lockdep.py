"""Adversarial tests for the lock-order checker (injected inversions)."""

import threading

import pytest

from repro.sanitize import lockdep


def test_abba_inversion_reported(san):
    a = lockdep.TrackedLock("test.A")
    b = lockdep.TrackedLock("test.B")
    with san.scope() as caught:
        with a:
            with b:
                pass
        with b:
            with a:  # inversion: B -> A after A -> B
                pass
    kinds = [f.kind for f in caught]
    assert kinds == ["lock-order"]
    f = caught[0]
    assert "test.A" in f.message and "test.B" in f.message
    cycle = f.details["cycle"]
    assert cycle[0] == cycle[-1]  # a closed loop through both classes
    assert {"test.A", "test.B"} <= set(cycle)
    # both conflicting acquisition sites point at this test, not the runtime
    assert "test_lockdep.py" in f.details["acquire_site"]
    assert "test_lockdep.py" in f.details["first_edge_site"]


def test_inversion_detected_across_threads(san):
    """One A->B nesting and one B->A nesting never held concurrently."""
    a = lockdep.TrackedLock("test.T-A")
    b = lockdep.TrackedLock("test.T-B")
    with san.scope() as caught:
        def leg_ab():
            with a:
                with b:
                    pass

        t = threading.Thread(target=leg_ab)
        t.start()
        t.join()
        with b:
            with a:
                pass
    assert [f.kind for f in caught] == ["lock-order"]


def test_longer_cycle_through_three_classes(san):
    a = lockdep.TrackedLock("test.C1")
    b = lockdep.TrackedLock("test.C2")
    c = lockdep.TrackedLock("test.C3")
    with san.scope() as caught:
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:  # closes C1 -> C2 -> C3 -> C1
                pass
    assert [f.kind for f in caught] == ["lock-order"]
    assert len(caught[0].details["cycle"]) >= 3


def test_consistent_order_is_clean(san):
    a = lockdep.TrackedLock("test.ok-A")
    b = lockdep.TrackedLock("test.ok-B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert san.finding_count() == 0
    assert "test.ok-B" in lockdep.acquired_before_edges()["test.ok-A"]


def test_same_class_nesting_not_reported(san):
    """Instance nesting within one class is a documented blind spot."""
    a1 = lockdep.TrackedLock("test.same")
    a2 = lockdep.TrackedLock("test.same")
    with a1:
        with a2:
            pass
    with a2:
        with a1:
            pass
    assert san.finding_count() == 0


def test_blocking_self_reacquire_raises(san):
    lock = lockdep.TrackedLock("test.self")
    with san.scope() as caught:
        with lock:
            with pytest.raises(RuntimeError, match="self-deadlock"):
                lock.acquire()
    assert [f.kind for f in caught] == ["lock-recursion"]
    # the with-exit released the lock and the held stack stayed truthful
    assert not lock.locked()
    assert lockdep.held_classes() == []


def test_callback_under_lock_reported(san):
    lock = lockdep.TrackedLock("test.cb")
    with san.scope() as caught:
        with lock:
            lockdep.check_no_locks_held("unit-test dispatch")
    assert [f.kind for f in caught] == ["callback-under-lock"]
    assert caught[0].details["lock_class"] == "test.cb"
    # clean when nothing is held
    lockdep.check_no_locks_held("unit-test dispatch 2")
    assert len(caught) == 1


def test_condition_wait_keeps_held_stack_truthful(san):
    cond = lockdep.make_condition("test.cond")
    with cond:
        assert lockdep.held_classes() == ["test.cond"]
        cond.wait(timeout=0.01)  # releases + re-acquires through the wrapper
        assert lockdep.held_classes() == ["test.cond"]
    assert lockdep.held_classes() == []


def test_make_lock_is_plain_when_disabled(san):
    san.disable()
    try:
        lock = lockdep.make_lock("test.plain")
        assert not isinstance(lock, lockdep.TrackedLock)
    finally:
        san.enable()
    assert isinstance(lockdep.make_lock("test.tracked"),
                      lockdep.TrackedLock)
