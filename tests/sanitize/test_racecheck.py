"""Planted data races for the happens-before detector.

One fixture per hazard class the detector must catch (write-write on a
shared workspace buffer, read-write across an un-awaited future, a
channel-generation skip, aggregation-slot overlap, migrate-vs-halo),
each asserting an actionable two-access report; plus false-positive
guards for the legitimate patterns the runtime relies on (double-
buffered halos, ``_pool_out`` slot reuse, lease handoff) that must stay
silent.

Thread joins are deliberately *not* a happens-before edge here — the
detector models only the runtime's synchronization vocabulary — so the
planted fixtures are deterministic: a join serializes the accesses in
time, but without a future/channel/lease edge they are still unordered
to the detector, exactly like the schedule CI never sees.
"""

import threading

import numpy as np
import pytest

from repro.runtime.agas import AgasRuntime, Component
from repro.runtime.channel import Channel
from repro.runtime.cuda import CudaDevice, StreamPool
from repro.runtime.future import Promise, when_all
from repro.runtime.scheduler import WorkStealingScheduler
from repro.sanitize import racecheck


def on_thread(fn, name):
    """Run ``fn`` to completion on a named thread (join is NOT an HB edge)."""
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


class _Comp(Component):
    pass


# -- planted races: one per hazard class ---------------------------------------


class TestPlantedRaces:
    def test_write_write_on_shared_workspace(self, san):
        """Two tasks scribble on the same scratch buffer, no sync at all."""
        buf = np.zeros(32)
        with san.scope() as caught:
            on_thread(lambda: racecheck.access(buf, "w", owner="ws/flux"),
                      "worker-a")
            on_thread(lambda: racecheck.access(buf, "w", owner="ws/flux"),
                      "worker-b")
        assert [f.kind for f in caught] == ["data-race"]
        f = caught[0]
        # the report is actionable: buffer label, both sites, both threads
        assert "ws/flux" in f.message
        assert "worker-a" in f.details["prior_access"]
        assert "worker-b" in f.details["current_access"]
        assert "test_racecheck.py" in f.details["prior_access"]
        assert "test_racecheck.py" in f.details["current_access"]

    def test_read_write_across_unawaited_future(self, san):
        """Consumer reads the producer's output without awaiting its future."""
        buf = np.zeros(8)
        p = Promise()

        def producer():
            racecheck.access(buf, "w", owner="fut/out")
            buf[...] = 1.0
            p.set_value(None)

        with san.scope() as caught:
            on_thread(producer, "producer")
            # BUG: p.get_future().get() is missing — the read is unordered
            racecheck.access(buf, "r", owner="fut/out")
        assert [f.kind for f in caught] == ["data-race"]
        f = caught[0]
        assert "read" in f.details["current_access"]
        assert "write" in f.details["prior_access"]

    def test_channel_generation_skip(self, san):
        """Reading a halo payload having only consumed an older generation."""
        ch = Channel("halo")
        buf = np.zeros(8)

        def producer():
            racecheck.access(buf, "w", owner="halo/payload")
            ch.set("g0", generation=0)
            racecheck.access(buf, "w", owner="halo/payload")
            ch.set("g1", generation=1)

        with san.scope() as caught:
            on_thread(producer, "producer")
            ch.get(generation=0).get()
            # BUG: only generation 0 was consumed; the generation-1
            # overwrite of the payload is unordered with this read
            racecheck.access(buf, "r", owner="halo/payload")
        assert [f.kind for f in caught] == ["data-race"]
        assert "halo/payload" in caught[0].message

    def test_aggregation_slot_overlap(self, san):
        """Two aggregation slots share one output region (same slot index)."""
        out = np.zeros(64)

        def fill(tag):
            # both "slots" resolve to region 3 of the same pool buffer —
            # an indexing bug in the slot allocator
            racecheck.access(out, "w", owner="agg/slot-buffer", region=3)

        with san.scope() as caught:
            on_thread(lambda: fill("a"), "agg-worker-a")
            on_thread(lambda: fill("b"), "agg-worker-b")
        assert [f.kind for f in caught] == ["data-race"]
        assert "agg/slot-buffer" in caught[0].message

    def test_migrate_vs_halo_read(self, san):
        """Halo path reads component state without resolving the gid after
        a migration committed (resolve is the acquire edge)."""
        agas = AgasRuntime(n_localities=2)
        comp = _Comp()
        buf = np.zeros(8)
        gid = agas.register(comp, 0)

        def migrator():
            racecheck.access(buf, "w", owner="agas/component-state")
            agas.migrate(gid, 1)

        with san.scope() as caught:
            on_thread(migrator, "migrator")
            # BUG: no agas.resolve(gid) before touching the state
            racecheck.access(buf, "r", owner="agas/component-state")
        assert [f.kind for f in caught] == ["data-race"]

    def test_migrate_then_resolve_is_ordered(self, san):
        """Same shape as above, with the resolve edge: silent."""
        agas = AgasRuntime(n_localities=2)
        comp = _Comp()
        buf = np.zeros(8)
        gid = agas.register(comp, 0)

        def migrator():
            racecheck.access(buf, "w", owner="agas/component-state")
            agas.migrate(gid, 1)

        on_thread(migrator, "migrator")
        agas.resolve(gid)
        racecheck.access(buf, "r", owner="agas/component-state")
        assert san.finding_count() == 0


# -- the sync vocabulary orders the same shapes --------------------------------


class TestSyncVocabulary:
    def test_awaited_future_orders_the_read(self, san):
        buf = np.zeros(8)
        p = Promise()

        def producer():
            racecheck.access(buf, "w", owner="fut/out")
            p.set_value(None)

        on_thread(producer, "producer")
        p.get_future().get()
        racecheck.access(buf, "r", owner="fut/out")
        assert san.finding_count() == 0

    def test_consumed_generation_orders_the_read(self, san):
        ch = Channel("halo-ok")
        buf = np.zeros(8)

        def producer():
            racecheck.access(buf, "w", owner="halo/payload")
            ch.set("g0", generation=0)
            racecheck.access(buf, "w", owner="halo/payload")
            ch.set("g1", generation=1)

        on_thread(producer, "producer")
        ch.get(generation=0).get()
        ch.get(generation=1).get()
        racecheck.access(buf, "r", owner="halo/payload")
        assert san.finding_count() == 0

    def test_when_all_inherits_from_every_input(self, san):
        """The barrier join orders the continuation after ALL producers,
        not just the last resolver."""
        bufs = [np.zeros(4) for _ in range(3)]
        promises = [Promise() for _ in range(3)]

        def producer(i):
            racecheck.access(bufs[i], "w", owner=f"wa/buf{i}")
            promises[i].set_value(i)

        for i in range(3):
            on_thread(lambda i=i: producer(i), f"producer-{i}")
        when_all([p.get_future() for p in promises]).get()
        for i in range(3):
            racecheck.access(bufs[i], "r", owner=f"wa/buf{i}")
        assert san.finding_count() == 0

    def test_scheduler_drain_orders_task_writes(self, san):
        """wait_idle is a barrier: task writes are visible afterwards."""
        buf = np.zeros(16)
        with WorkStealingScheduler(2) as sched:
            sched.post_batch([
                (lambda i=i: racecheck.access(buf, "w", owner="sched/out",
                                              region=i))
                for i in range(4)
            ])
            sched.wait_idle()
            for i in range(4):
                racecheck.access(buf, "r", owner="sched/out", region=i)
        assert san.finding_count() == 0

    def test_lease_handoff_orders_successive_holders(self, san):
        """Regression for the lease-handoff HB gap: the only edge between
        two holders of the same stream is release → next acquire; scratch
        written under lease A must be safely reusable under lease B."""
        buf = np.zeros(8)
        with CudaDevice(n_streams=1, n_workers=1, name="lease-hb") as gpu:
            pool = StreamPool([gpu])

            def use():
                lease = pool.acquire()
                assert lease is not None
                try:
                    racecheck.access(buf, "w", owner="lease/scratch")
                finally:
                    lease.release()

            on_thread(use, "holder-a")
            on_thread(use, "holder-b")
        assert san.finding_count() == 0

    def test_stream_kernel_completion_orders_next_holder(self, san):
        """Enqueued work: the worker's completion (not just release) must
        publish before the next reserve of the same stream."""
        buf = np.zeros(8)
        with CudaDevice(n_streams=1, n_workers=1, name="lease-hb2") as gpu:
            pool = StreamPool([gpu])

            def kernel():
                racecheck.access(buf, "w", owner="stream/out")

            lease = pool.acquire()
            lease.enqueue(kernel).get()
            gpu.synchronize()

            def next_holder():
                lease2 = pool.acquire()
                assert lease2 is not None
                try:
                    racecheck.access(buf, "w", owner="stream/out")
                finally:
                    lease2.release()

            on_thread(next_holder, "holder-next")
        assert san.finding_count() == 0


# -- false-positive guards -----------------------------------------------------


class TestFalsePositiveGuards:
    def test_double_buffered_halo_stays_silent(self, san):
        """The real halo protocol: writer fills phase N while the reader
        drains phase N-1, with a data channel forward and an ack channel
        back before a buffer is rewritten.  Must not be flagged."""
        bufs = [np.zeros(8), np.zeros(8)]
        data = Channel("halo-data")
        ack = Channel("halo-ack")
        steps = 6

        def producer():
            for step in range(steps):
                if step >= 2:
                    # the buffer being rewritten was acked two steps ago
                    ack.get(generation=step - 2).get()
                racecheck.access(bufs[step % 2], "w",
                                 owner="halo/double-buffer")
                data.set(step, generation=step)

        t = threading.Thread(target=producer, name="halo-writer")
        t.start()
        for step in range(steps):
            data.get(generation=step).get()
            racecheck.access(bufs[step % 2], "r", owner="halo/double-buffer")
            ack.set(step, generation=step)
        t.join()
        assert san.finding_count() == 0

    def test_pool_slot_reuse_through_redispatch_stays_silent(self, san):
        """_pool_out-style reuse: each chunk's outputs are fully consumed
        (future get) before the slot is re-dispatched; the get + next post
        edges order every write against the previous reader."""
        buf = np.zeros(16)
        with WorkStealingScheduler(2) as sched:
            for _ in range(4):
                p = Promise()

                def task(p=p):
                    racecheck.access(buf, "w", owner="fmm/pair-out")
                    p.set_value(None)

                sched.post(task)
                p.get_future().get()
                racecheck.access(buf, "r", owner="fmm/pair-out")
        assert san.finding_count() == 0

    def test_region_discriminator_partitions_one_allocation(self, san):
        """Distinct slots of one pool allocation are declared independent
        via region=: concurrent writes to different slots are fine,
        the same slot still conflicts."""
        buf = np.zeros(64)
        on_thread(lambda: racecheck.access(buf, "w", owner="pool", region=0),
                  "slot-a")
        on_thread(lambda: racecheck.access(buf, "w", owner="pool", region=1),
                  "slot-b")
        assert san.finding_count() == 0
        with san.scope() as caught:
            on_thread(lambda: racecheck.access(buf, "w", owner="pool",
                                               region=1), "slot-c")
        assert [f.kind for f in caught] == ["data-race"]

    def test_concurrent_reads_never_race(self, san):
        buf = np.zeros(8)
        for i in range(3):
            on_thread(lambda: racecheck.access(buf, "r", owner="ro"),
                      f"reader-{i}")
        assert san.finding_count() == 0

    def test_read_share_promotion_still_catches_the_write(self, san):
        """After two concurrent readers promote the shadow to a read map,
        an unordered write must still be reported against a reader."""
        buf = np.zeros(8)
        on_thread(lambda: racecheck.access(buf, "r", owner="shared"),
                  "reader-a")
        on_thread(lambda: racecheck.access(buf, "r", owner="shared"),
                  "reader-b")
        with san.scope() as caught:
            racecheck.access(buf, "w", owner="shared")
        assert [f.kind for f in caught] == ["data-race"]
        assert "read" in caught[0].details["prior_access"]


# -- mechanics -----------------------------------------------------------------


class TestMechanics:
    def test_views_of_one_allocation_alias(self, san):
        base = np.zeros(32)
        view = base[:]
        with san.scope() as caught:
            on_thread(lambda: racecheck.access(base, "w", owner="aliased"),
                      "via-base")
            racecheck.access(view, "w", owner="aliased")
        assert [f.kind for f in caught] == ["data-race"]

    def test_duplicate_reports_are_deduped(self, san):
        buf = np.zeros(8)
        with san.scope() as caught:
            on_thread(lambda: racecheck.access(buf, "w", owner="dup",
                                               site="a.py:1 in w"),
                      "t-a")
            racecheck.access(buf, "w", owner="dup", site="b.py:2 in w")
            racecheck.access(buf, "w", owner="dup", site="b.py:2 in w")
        assert len(caught) == 1

    def test_retire_forgets_shadow_state(self, san):
        buf = np.zeros(8)
        on_thread(lambda: racecheck.access(buf, "w", owner="freed"),
                  "old-owner")
        racecheck.retire(buf)
        racecheck.access(buf, "w", owner="freed")  # fresh allocation reuse
        assert san.finding_count() == 0

    def test_disabled_detector_records_nothing(self, san):
        san.disable()
        try:
            before = racecheck.stats()
            buf = np.zeros(8)
            racecheck.access(buf, "w", owner="off")
            racecheck.send(("k",))
            racecheck.recv(("k",))
            snap = racecheck.stats()
            assert snap["accesses"] == before["accesses"]
            assert snap["buffers"] == before["buffers"]
        finally:
            san.enable()

    def test_invalid_mode_rejected(self, san):
        with pytest.raises(ValueError, match="mode"):
            racecheck.access(np.zeros(2), "rw")

    def test_wrap_callback_frees_its_token(self, san):
        before = racecheck.stats()["sync_objects"]
        cb = racecheck.wrap_callback(None, lambda: 42)
        assert cb() == 42
        after = racecheck.stats()["sync_objects"]
        assert after <= before + 1  # one-shot token was popped on invoke

    def test_stats_and_counters_published(self, san):
        from repro.runtime.counters import CounterRegistry
        buf = np.zeros(8)
        racecheck.access(buf, "w", owner="counted")
        racecheck.send(("k",))
        reg = CounterRegistry()
        racecheck.publish_counters(reg)
        snap = reg.snapshot()
        assert snap["/sanitize/race/accesses"] >= 1.0
        assert snap["/sanitize/race/hb-edges"] >= 1.0
        assert snap["/sanitize/race/races"] == 0.0
        assert snap["/sanitize/race/buffers-tracked"] >= 1.0

    def test_reset_drops_shadow_but_not_safety(self, san):
        buf = np.zeros(8)
        on_thread(lambda: racecheck.access(buf, "w", owner="pre"),
                  "pre-reset")
        racecheck.reset()
        assert racecheck.stats()["buffers"] == 0
        # post-reset accesses start from clean shadows: no stale report
        racecheck.access(buf, "w", owner="post")
        assert san.finding_count() == 0
