"""Adversarial tests for the lease/channel protocol checkers."""

import gc
import time

import pytest

from repro.runtime.channel import (Channel, ChannelClosed,
                                   ChannelGenerationError, ChannelReset)
from repro.runtime.cuda import CudaDevice, StreamPool


@pytest.fixture
def device():
    with CudaDevice(n_streams=4, n_workers=2, name="san-gpu") as dev:
        yield dev


def test_leaked_lease_reported_at_sweep(san, device):
    pool = StreamPool([device])
    with san.scope() as caught:
        lease = pool.acquire()
        assert lease is not None
        found = san.sweep()
        assert [f.kind for f in found] == ["lease-leak"]
        assert "test_protocol.py" in found[0].site
        lease.release()  # cleanup; already reported
    assert [f.kind for f in caught] == ["lease-leak"]


def test_gc_of_held_lease_reported(san, device):
    pool = StreamPool([device])
    with san.scope() as caught:
        lease = pool.acquire()
        assert lease is not None
        del lease
        gc.collect()
    assert [f.kind for f in caught] == ["lease-leak"]
    assert "dropped without" in caught[0].message


def test_lease_use_after_release_reported(san, device):
    pool = StreamPool([device])
    with san.scope() as caught:
        lease = pool.acquire()
        lease.release()
        fut = lease.enqueue(lambda: 5)  # reservation no longer ours
        assert fut.get(timeout=5.0) == 5
        device.synchronize()
    assert [f.kind for f in caught] == ["lease-reuse"]
    assert "released" in caught[0].message


def test_timeout_reclaim_reported(san, device):
    pool = StreamPool([device], lease_timeout=0.05)
    with san.scope() as caught:
        stale = pool.acquire()
        assert stale is not None
        time.sleep(0.1)
        # every stream idle but reserved-and-expired: the next acquire
        # reclaims the reservation some holder leaked
        leases = [pool.acquire() for _ in range(len(device.streams))]
        assert any(lease is not None for lease in leases)
        for lease in leases:
            if lease is not None:
                lease.release()
        stale.release()
    assert "lease-leak" in [f.kind for f in caught]
    assert any("reclaimed" in f.message for f in caught)


def test_clean_lease_lifecycles(san, device):
    pool = StreamPool([device])
    with pool.acquire() as lease:
        assert lease.enqueue(lambda: 1).get(timeout=5.0) == 1
    released = pool.acquire()
    released.release()
    device.synchronize()
    assert san.sweep() == []
    assert san.finding_count() == 0


def test_legacy_try_acquire_handoff_is_not_a_leak(san, device):
    """try_acquire drops the lease object by design — the reservation
    moves to the raw stream, and GC of the lease must not be a leak."""
    pool = StreamPool([device])
    stream = pool.try_acquire()
    assert stream is not None
    gc.collect()
    stream.release()
    assert san.sweep() == []
    assert san.finding_count() == 0


def test_double_set_reported_and_typed(san):
    ch = Channel("san-halo")
    ch.set(10, generation=0)
    with san.scope() as caught:
        with pytest.raises(ChannelGenerationError, match="already set"):
            ch.set(11, generation=0)
    assert [f.kind for f in caught] == ["channel-reset-generation"]
    assert caught[0].details["generation"] == 0


def test_reset_consumed_generation_reported(san):
    ch = Channel("san-halo2")
    ch.set(1, generation=3)
    assert ch.get(3).get() == 1
    with san.scope() as caught:
        with pytest.raises(ChannelGenerationError, match="already consumed"):
            ch.set(2, generation=3)
    assert [f.kind for f in caught] == ["channel-reset-generation"]
    assert caught[0].details["channel"] == "san-halo2"


def test_set_after_close_reported_and_typed(san):
    ch = Channel("san-halo3")
    ch.close()
    with san.scope() as caught:
        with pytest.raises(ChannelClosed, match="never be delivered"):
            ch.set(1, generation=0)
    assert [f.kind for f in caught] == ["channel-closed-set"]


def test_channel_reset_is_sanctioned_reuse(san):
    """reset() is the rollback path: generation reuse afterwards is clean."""
    ch = Channel("san-halo4")
    ch.set(1, generation=0)
    assert ch.get(0).get() == 1
    pending = ch.get(7)
    ch.reset()
    with pytest.raises(ChannelReset):
        pending.get()
    ch.set(2, generation=0)  # re-used generation, no finding
    assert ch.get(0).get() == 2
    assert san.finding_count() == 0
