"""Whole-locality failure: evacuation, invalidation, recovery."""

import pytest

from repro.runtime import AgasRuntime, Component, LocalityFailed


class Cell(Component):
    def __init__(self):
        super().__init__()
        self.moves = []
        self.value = 0

    def add(self, n):
        self.value += n
        return self.value

    def on_migrate(self, old, new):
        self.moves.append((old, new))


class PinnedCell(Cell):
    migratable = False


class TestLocalityFailure:
    def test_migratable_components_are_evacuated(self):
        ag = AgasRuntime(4)
        gids = [ag.register(Cell(), 2) for _ in range(5)]
        out = ag.fail_locality(2)
        assert sorted(out["migrated"]) == sorted(gids)
        assert out["lost"] == []
        for gid in gids:
            # GID stays valid (the AGAS promise outlives the node) and the
            # new home is a surviving locality
            assert ag.locality_of(gid) != 2
            assert ag.async_action(gid, "add", 1).get() == 1

    def test_evacuation_spreads_over_survivors(self):
        ag = AgasRuntime(3)
        gids = [ag.register(Cell(), 1) for _ in range(6)]
        ag.fail_locality(1)
        homes = {ag.locality_of(g) for g in gids}
        assert homes == {0, 2}

    def test_migration_hook_fires_on_evacuation(self):
        ag = AgasRuntime(2)
        c = Cell()
        ag.register(c, 1)
        ag.fail_locality(1)
        assert c.moves == [(1, 0)]

    def test_pinned_components_are_lost_with_distinct_error(self):
        ag = AgasRuntime(2)
        gid = ag.register(PinnedCell(), 1)
        out = ag.fail_locality(1)
        assert out["lost"] == [gid]
        with pytest.raises(LocalityFailed, match="lost when locality 1"):
            ag.resolve(gid)
        fut = ag.async_action(gid, "add", 1)
        assert fut.has_exception()
        with pytest.raises(LocalityFailed):
            fut.get()

    def test_last_locality_failure_loses_everything(self):
        ag = AgasRuntime(1)
        gid = ag.register(Cell(), 0)
        out = ag.fail_locality(0)
        assert out["migrated"] == [] and out["lost"] == [gid]

    def test_failed_locality_rejects_register_and_migrate(self):
        ag = AgasRuntime(2)
        gid = ag.register(Cell(), 0)
        ag.fail_locality(1)
        with pytest.raises(LocalityFailed):
            ag.register(Cell(), 1)
        with pytest.raises(LocalityFailed):
            ag.migrate(gid, 1)

    def test_failure_is_idempotent(self):
        ag = AgasRuntime(2)
        ag.register(Cell(), 1)
        first = ag.fail_locality(1)
        second = ag.fail_locality(1)
        assert len(first["migrated"]) == 1
        assert second == {"migrated": [], "lost": []}

    def test_recovery_reopens_locality_but_lost_stays_lost(self):
        ag = AgasRuntime(2)
        lost = ag.register(PinnedCell(), 1)
        ag.fail_locality(1)
        ag.recover_locality(1)
        assert ag.failed_localities == set()
        new = ag.register(Cell(), 1)
        assert ag.locality_of(new) == 1
        with pytest.raises(LocalityFailed):
            ag.resolve(lost)

    def test_resilience_counters_published(self):
        from repro.runtime import default_registry
        reg = default_registry()
        before = reg.snapshot().get("/resilience/agas/localities-failed", 0.0)
        ag = AgasRuntime(2)
        ag.register(Cell(), 1)
        ag.register(PinnedCell(), 1)
        ag.fail_locality(1)
        snap = reg.snapshot()
        assert snap["/resilience/agas/localities-failed"] == before + 1
        assert snap["/resilience/agas/components-migrated"] >= 1
        assert snap["/resilience/agas/components-lost"] >= 1
