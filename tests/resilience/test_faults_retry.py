"""Fault injection determinism and resilient parcel delivery."""

import pytest

from repro.resilience import (FaultInjector, ResilientParcelSender,
                              RetryBudgetExhausted, RetryPolicy,
                              SimulationFault, TransientActionFault)
from repro.runtime import (AgasRuntime, Component, CounterRegistry, Parcel,
                           ParcelHandler)

class Adder(Component):
    def __init__(self):
        super().__init__()
        self.value = 0

    def add(self, n):
        self.value += n
        return self.value


def make_target(fault_injector=None):
    ag = AgasRuntime(2)
    comp = Adder()
    gid = ag.register(comp)
    return comp, gid, ParcelHandler(ag, fault_injector=fault_injector)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=42, loss_rate=0.3, registry=CounterRegistry())
        b = FaultInjector(seed=42, loss_rate=0.3, registry=CounterRegistry())
        assert [a.drop_message() for _ in range(100)] == \
            [b.drop_message() for _ in range(100)]

    def test_budget_makes_faults_transient(self):
        inj = FaultInjector(seed=0, loss_rate=1.0, max_losses=3,
                            registry=CounterRegistry())
        drops = [inj.drop_message() for _ in range(10)]
        assert drops == [True] * 3 + [False] * 7

    def test_step_fault_fires_once_at_scheduled_step(self):
        inj = FaultInjector(seed=0, fail_at_steps=(5,),
                            registry=CounterRegistry())
        inj.maybe_step_fault(4)
        with pytest.raises(SimulationFault):
            inj.maybe_step_fault(5)
        inj.maybe_step_fault(5)  # consumed: no second failure
        assert inj.stats()["step"] == 1

    def test_locality_failure_schedule(self):
        inj = FaultInjector(seed=0, fail_locality_at=(3, 1),
                            registry=CounterRegistry())
        assert inj.locality_failure_due(2) is None
        assert inj.locality_failure_due(3) == 1
        assert inj.locality_failure_due(4) is None  # fires once

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(loss_rate=1.5)

    def test_injected_counters_published(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=0, loss_rate=1.0, registry=reg)
        inj.drop_message()
        assert reg.value("/resilience/injected/loss") == 1.0


class TestResilientSend:
    def test_lossless_delivery_is_passthrough(self):
        comp, gid, handler = make_target()
        sender = ResilientParcelSender(handler, sleep=lambda _t: None)
        assert sender.send(Parcel(gid, "add", (5,))).get() == 5
        assert comp.value == 5

    def test_retry_recovers_from_loss(self):
        reg = CounterRegistry()
        comp, gid, handler = make_target()
        inj = FaultInjector(seed=7, loss_rate=0.4, registry=reg)
        sender = ResilientParcelSender(
            handler, injector=inj, registry=reg,
            policy=RetryPolicy(max_attempts=10, base_backoff=1e-6),
            sleep=lambda _t: None)
        for _ in range(30):
            assert not sender.send(Parcel(gid, "add", (1,))).has_exception()
        assert comp.value == 30
        assert reg.value("/resilience/parcels/retries") > 0
        assert reg.value("/resilience/parcels/recovered") > 0
        assert reg.value("/resilience/parcels/acked") == 30

    def test_retry_exhaustion_is_exceptional_future_not_hang(self):
        """Acceptance: budget exhaustion surfaces as an exceptional
        future; the send returns promptly (pytest-timeout guards CI)."""
        reg = CounterRegistry()
        comp, gid, handler = make_target()
        inj = FaultInjector(seed=1, loss_rate=1.0, registry=reg)
        sender = ResilientParcelSender(
            handler, injector=inj, registry=reg,
            policy=RetryPolicy(max_attempts=3, base_backoff=1e-6),
            sleep=lambda _t: None)
        fut = sender.send(Parcel(gid, "add", (1,)))
        assert fut.is_ready() and fut.has_exception()
        with pytest.raises(RetryBudgetExhausted, match="3 attempts"):
            fut.get()
        assert comp.value == 0
        assert reg.value("/resilience/parcels/exhausted") == 1.0
        assert reg.value("/resilience/parcels/attempts") == 3.0

    def test_transient_action_faults_are_retried(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=3, action_fault_rate=1.0,
                            max_action_faults=2, registry=reg)
        comp, gid, handler = make_target(fault_injector=inj)
        sender = ResilientParcelSender(
            handler, registry=reg,
            policy=RetryPolicy(max_attempts=5, base_backoff=1e-6),
            sleep=lambda _t: None)
        assert sender.send(Parcel(gid, "add", (4,))).get() == 4
        assert handler.stats()["action_faults"] == 2
        assert reg.value("/resilience/parcels/action-faults") == 2.0

    def test_non_transient_errors_not_retried(self):
        """Application exceptions propagate; resends would not help."""
        class Failing(Component):
            calls = 0

            def boom(self):
                Failing.calls += 1
                raise ValueError("app bug")

        ag = AgasRuntime(1)
        gid = ag.register(Failing())
        sender = ResilientParcelSender(ParcelHandler(ag),
                                       sleep=lambda _t: None)
        fut = sender.send(Parcel(gid, "boom"))
        with pytest.raises(ValueError, match="app bug"):
            fut.get()
        assert Failing.calls == 1

    def test_delay_within_ack_window_still_delivers(self):
        reg = CounterRegistry()
        comp, gid, handler = make_target()
        inj = FaultInjector(seed=5, delay_rate=1.0, max_delay=1e-4,
                            registry=reg)
        waits = []
        sender = ResilientParcelSender(handler, injector=inj, registry=reg,
                                       sleep=waits.append)
        assert sender.send(Parcel(gid, "add", (2,))).get() == 2
        assert reg.value("/resilience/parcels/delayed") == 1.0
        assert waits and waits[0] <= 1e-4

    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=6, base_backoff=1e-3,
                             backoff_factor=2.0, max_backoff=3e-3)
        assert [policy.backoff(k) for k in range(1, 5)] == \
            pytest.approx([1e-3, 2e-3, 3e-3, 3e-3])

    def test_expected_attempts_matches_capped_geometric(self):
        policy = RetryPolicy(max_attempts=4)
        assert policy.expected_attempts(0.0) == 1.0
        p = 0.5
        assert policy.expected_attempts(p) == \
            pytest.approx(sum(p ** k for k in range(4)))
        assert policy.delivery_probability(p) == pytest.approx(1 - p ** 4)


class TestDecorrelatedJitter:
    """Seeded decorrelated jitter desynchronizes correlated retry storms
    without giving up determinism."""

    def lossy_sender(self, jitter_seed, policy, waits):
        _comp, gid, handler = make_target()
        inj = FaultInjector(seed=7, loss_rate=1.0,
                            registry=CounterRegistry())
        sender = ResilientParcelSender(
            handler, injector=inj, policy=policy,
            registry=CounterRegistry(), sleep=waits.append,
            jitter_seed=jitter_seed)
        return sender, gid

    def test_correlated_failures_desynchronize(self):
        """Two senders whose sends fail at the same instants must not
        back off in lockstep: distinct seeds, distinct wait schedules."""
        policy = RetryPolicy(max_attempts=6, base_backoff=1e-3,
                             max_backoff=1.0, jitter=True)
        waits_a, waits_b = [], []
        sender_a, gid_a = self.lossy_sender(1, policy, waits_a)
        sender_b, gid_b = self.lossy_sender(2, policy, waits_b)
        with pytest.raises(RetryBudgetExhausted):
            sender_a.send(Parcel(gid_a, "add", (1,))).get()
        with pytest.raises(RetryBudgetExhausted):
            sender_b.send(Parcel(gid_b, "add", (1,))).get()
        assert len(waits_a) == len(waits_b) == policy.max_attempts - 1
        assert waits_a != waits_b
        # every wait stays inside [base, cap] and the draws are real
        # waits, not the deterministic exponential anchor
        for waits in (waits_a, waits_b):
            assert all(policy.base_backoff <= w <= policy.max_backoff
                       for w in waits)

    def test_same_seed_reproduces_the_schedule_exactly(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=1e-3,
                             max_backoff=1.0, jitter=True)
        runs = []
        for _ in range(2):
            waits = []
            sender, gid = self.lossy_sender(1309, policy, waits)
            with pytest.raises(RetryBudgetExhausted):
                sender.send(Parcel(gid, "add", (1,))).get()
            runs.append(waits)
        assert runs[0] == runs[1]

    def test_jitter_seed_defaults_to_the_injector_seed(self):
        policy = RetryPolicy(max_attempts=5, base_backoff=1e-3,
                             max_backoff=1.0, jitter=True)
        implicit, explicit = [], []
        _c, gid, handler = make_target()
        inj = FaultInjector(seed=7, loss_rate=1.0,
                            registry=CounterRegistry())
        sender = ResilientParcelSender(handler, injector=inj, policy=policy,
                                       registry=CounterRegistry(),
                                       sleep=implicit.append)
        with pytest.raises(RetryBudgetExhausted):
            sender.send(Parcel(gid, "add", (1,))).get()
        sender2, gid2 = self.lossy_sender(7, policy, explicit)
        with pytest.raises(RetryBudgetExhausted):
            sender2.send(Parcel(gid2, "add", (1,))).get()
        assert implicit == explicit

    def test_no_jitter_keeps_the_deterministic_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=1e-3,
                             backoff_factor=2.0, max_backoff=1.0)
        waits = []
        sender, gid = self.lossy_sender(1, policy, waits)
        with pytest.raises(RetryBudgetExhausted):
            sender.send(Parcel(gid, "add", (1,))).get()
        assert waits == [policy.backoff(k) for k in (1, 2, 3)]

    def test_jittered_backoff_grows_from_previous_wait(self):
        import random
        policy = RetryPolicy(base_backoff=1e-3, max_backoff=0.5,
                             jitter=True)
        rng = random.Random(0)
        prev = policy.base_backoff
        for _ in range(50):
            wait = policy.jittered_backoff(prev, rng)
            assert policy.base_backoff <= wait \
                <= min(policy.max_backoff, max(3 * prev,
                                               policy.base_backoff))
            prev = wait
