"""Checkpoint/restore of mesh state and fault-tolerant evolve()."""

import threading

import numpy as np
import pytest

from repro.core import (BlockMesh, ConservationMonitor,
                        FaultRecoveryExhausted, equilibrium_star, evolve,
                        sedov_blast)
from repro.resilience import (CheckpointError, CheckpointManager,
                              FaultInjector, SimulationFault)
from repro.runtime import CounterRegistry


def small_mesh():
    return sedov_blast(n=16)


def small_blockmesh():
    star = equilibrium_star(n=16, domain=4.0)
    block = BlockMesh(blocks_per_edge=2, domain=star.domain,
                      origin=star.origin, options=star.options,
                      bc=star.bc, self_gravity=True)
    block.load_interior(star.interior.copy())
    return block


class TestCheckpointManager:
    def test_round_trip_is_bit_exact(self):
        reg = CounterRegistry()
        mesh = small_mesh()
        mon = ConservationMonitor()
        mon.sample(mesh)
        mgr = CheckpointManager(interval=1, registry=reg)
        mgr.save(mesh, mon)
        saved_U = mesh.U.copy()
        saved_t, saved_steps = mesh.time, mesh.steps
        for _ in range(2):
            mesh.step(1e-3)
            mon.sample(mesh)
        mgr.restore_latest(mesh, mon)
        assert np.array_equal(mesh.U, saved_U)
        assert mesh.time == saved_t and mesh.steps == saved_steps
        assert len(mon.records) == 1
        assert reg.value("/resilience/checkpoint/saves") == 1.0
        assert reg.value("/resilience/checkpoint/restores") == 1.0

    def test_keeps_only_latest_n(self):
        mesh = small_mesh()
        mgr = CheckpointManager(interval=1, keep=2,
                                registry=CounterRegistry())
        for _ in range(4):
            mesh.step(1e-3)
            mgr.save(mesh)
        assert len(mgr) == 2
        assert mgr.latest.step == 4

    def test_maybe_save_respects_interval(self):
        mesh = small_mesh()
        mgr = CheckpointManager(interval=3, registry=CounterRegistry())
        assert mgr.maybe_save(mesh) is not None     # first is always taken
        for _ in range(2):
            mesh.step(1e-3)
            assert mgr.maybe_save(mesh) is None
        mesh.step(1e-3)
        assert mgr.maybe_save(mesh) is not None

    def test_restore_without_checkpoint_raises(self):
        mgr = CheckpointManager(registry=CounterRegistry())
        with pytest.raises(CheckpointError):
            mgr.restore_latest(small_mesh())

    def test_concurrent_maybe_save_saves_exactly_once(self):
        """The interval check and the step claim are one atomic operation:
        many threads reaching the same step produce exactly one save."""
        mesh = small_mesh()
        for trial in range(10):
            mgr = CheckpointManager(interval=1, registry=CounterRegistry())
            n = 8
            barrier = threading.Barrier(n, timeout=5.0)
            results = [None] * n

            def worker(i):
                barrier.wait()
                results[i] = mgr.maybe_save(mesh)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            saved = [r for r in results if r is not None]
            assert len(saved) == 1, f"trial {trial}: {len(saved)} saves"
            assert mgr.saves == 1 and len(mgr) == 1


class TestBlockMeshCheckpoint:
    def test_round_trip_is_bit_exact(self):
        reg = CounterRegistry()
        mesh = small_blockmesh()
        mon = ConservationMonitor()
        mon.sample(mesh)
        mgr = CheckpointManager(interval=1, registry=reg)
        cp = mgr.save(mesh, mon)
        assert cp.U is None and set(cp.blocks) == set(mesh.blocks)
        assert cp.nbytes == sum(b.nbytes for b in mesh.blocks.values())
        saved = {ip: blk.copy() for ip, blk in mesh.blocks.items()}
        saved_t, saved_steps = mesh.time, mesh.steps
        for _ in range(2):
            mesh.step()
            mon.sample(mesh)
        assert any(not np.array_equal(saved[ip], mesh.blocks[ip])
                   for ip in saved)  # the steps actually moved state
        mgr.restore_latest(mesh, mon)
        for ip, blk in saved.items():
            assert np.array_equal(mesh.blocks[ip], blk)
        assert mesh.time == saved_t and mesh.steps == saved_steps
        assert len(mon.records) == 1

    def test_restore_then_replay_is_bit_identical(self):
        """Restoring mid-run and replaying reproduces the uninterrupted
        run exactly — including re-driving the halo channels whose
        generation numbers restarted (the ``on_restore`` hook)."""
        straight, replayed = small_blockmesh(), small_blockmesh()
        for _ in range(3):
            straight.step()
        mgr = CheckpointManager(interval=1, registry=CounterRegistry())
        replayed.step()
        mgr.save(replayed)
        for _ in range(2):
            replayed.step()
        mgr.restore_latest(replayed)  # back to steps=1
        for _ in range(2):
            replayed.step()  # reuses generations 1..2 after the reset
        assert replayed.steps == straight.steps
        for ip in straight.blocks:
            assert np.array_equal(straight.blocks[ip],
                                  replayed.blocks[ip])
        assert replayed.time == straight.time


class TestFaultTolerantEvolve:
    def test_faulty_run_replays_fault_free_run_exactly(self):
        """Acceptance: with an injected mid-run failure and periodic
        checkpoints, the evolution completes and reproduces the
        fault-free conservation drifts bit for bit (Sec. 4.2/4.3)."""
        clean, faulty = small_mesh(), small_mesh()
        mon_clean = evolve(clean, 0.05, max_steps=6)
        inj = FaultInjector(seed=11, fail_at_steps=(3,),
                            registry=CounterRegistry())
        mon_faulty = evolve(faulty, 0.05, max_steps=6,
                            checkpoint_interval=2, fault_injector=inj)
        assert inj.stats()["step"] == 1                # the fault fired
        assert np.array_equal(clean.U, faulty.U)       # bitwise replay
        assert faulty.steps == clean.steps
        assert mon_clean.report() == mon_faulty.report()

    def test_probabilistic_faults_with_fixed_seed_complete(self):
        mesh = small_mesh()
        inj = FaultInjector(seed=2, step_fault_rate=0.3, max_step_faults=4,
                            registry=CounterRegistry())
        mgr = CheckpointManager(interval=1, registry=CounterRegistry())
        evolve(mesh, 0.05, max_steps=6, checkpoints=mgr, fault_injector=inj)
        assert mesh.steps == 6
        assert mgr.restores == inj.stats()["step"] > 0

    def test_fault_without_checkpointing_propagates(self):
        inj = FaultInjector(seed=0, fail_at_steps=(1,),
                            registry=CounterRegistry())
        with pytest.raises(SimulationFault):
            evolve(small_mesh(), 0.05, max_steps=4, fault_injector=inj)

    def test_restore_budget_fails_loudly_not_forever(self):
        inj = FaultInjector(seed=0, step_fault_rate=1.0,
                            registry=CounterRegistry())
        with pytest.raises(FaultRecoveryExhausted):
            evolve(small_mesh(), 0.05, max_steps=4, checkpoint_interval=1,
                   fault_injector=inj, max_restores=3)
