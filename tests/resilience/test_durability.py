"""Durable recovery: buddy-replicated shards, global rollback, elastic
restart — and every checkpoint-store fault class aimed at the manager."""

import numpy as np
import pytest

from repro.core import (BlockMesh, ConservationMonitor, DistBlockMesh,
                        equilibrium_star, slab_partition)
from repro.resilience import (BuddyReplicatedStore, CheckpointError,
                              CheckpointManager, FaultInjector,
                              RecoveryCoordinator)
from repro.runtime import CounterRegistry


def star_interior():
    return equilibrium_star(n=16, domain=4.0)


def dist_mesh(n_localities=4, registry=None):
    star = star_interior()
    mesh = DistBlockMesh(2, n_localities=n_localities, port="libfabric",
                         domain=star.domain, origin=star.origin,
                         options=star.options, bc=star.bc,
                         self_gravity=True,
                         registry=registry or CounterRegistry())
    mesh.load_interior(star.interior.copy())
    return mesh


def wired(mesh, reg, **mgr_kwargs):
    """Manager + store with the commit hook connected (no coordinator)."""
    mgr = CheckpointManager(interval=1, registry=reg, **mgr_kwargs)
    store = BuddyReplicatedStore(mesh, keep=mgr_kwargs.get("keep", 4),
                                 registry=reg)
    mgr.on_commit = store.replicate
    return mgr, store


class TestBuddyReplicatedStore:
    def test_every_block_lands_on_owner_and_buddy(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr, store = wired(mesh, reg)
        cp = mgr.save(mesh)
        owners = mesh.owners()
        alive = sorted(store.alive)
        for ip in mesh.blocks:
            owner = owners[ip]
            buddy = store._buddy_of(owner, alive)
            assert (cp.generation, ip) in store.holdings(owner)
            assert (cp.generation, ip) in store.holdings(buddy)
        n = len(mesh.blocks)
        assert reg.value("/resilience/ckpt/replicas") == n
        assert reg.value("/resilience/ckpt/replica-bytes") == sum(
            b.nbytes for b in mesh.blocks.values())

    def test_replication_is_charged_like_halo_traffic(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr, store = wired(mesh, reg)
        before = mesh.transport.stats.onesided_msgs
        mgr.save(mesh)
        st = mesh.transport.stats
        # one buddy put per block plus the manifest broadcast (the
        # origin's own manifest copy is a local fast path — uncharged)
        assert st.onesided_msgs == before + len(mesh.blocks) \
            + len(store.alive) - 1
        assert mesh.transport.reconciles()

    def test_torn_saves_are_never_replicated(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        inj = FaultInjector(seed=7, torn_write_at_saves=(0,), registry=reg)
        mgr, store = wired(mesh, reg, injector=inj)
        mgr.save(mesh)
        assert store.replicated == 0
        mgr.save(mesh)
        assert store.replicated == 1

    def test_replicas_are_independent_copies(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr, store = wired(mesh, reg)
        cp = mgr.save(mesh)
        ip = sorted(mesh.blocks)[0]
        owner = mesh.owners()[ip]
        assert store.damage_copy(cp.generation, ip, owner)
        man, holders = store.recovery_plan()
        # the plan routes around the rotten replica to the buddy's copy
        assert man.generation == cp.generation
        assert holders[ip] != owner
        # the generation still qualified: no corrupt-generation tally
        assert reg.snapshot().get("/resilience/ckpt/corrupt", 0.0) == 0.0
        assert reg.value("/resilience/ckpt/verified") == 1.0

    def test_locality_loss_wipes_the_shard_idempotently(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr, store = wired(mesh, reg)
        mgr.save(mesh)
        dropped = store.locality_lost(1)
        assert dropped > 0
        assert store.holdings(1) == []
        assert 1 not in store.alive
        assert store.locality_lost(1) == 0  # idempotent
        assert reg.value("/resilience/ckpt/replicas-lost") == dropped

    def test_plan_falls_back_past_a_fully_damaged_generation(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr, store = wired(mesh, reg)
        good = mgr.save(mesh)
        bad = mgr.save(mesh)
        owners = mesh.owners()
        alive = sorted(store.alive)
        for ip in mesh.blocks:  # both copies of every newest-gen block rot
            owner = owners[ip]
            store.damage_copy(bad.generation, ip, owner)
            store.damage_copy(bad.generation, ip,
                              store._buddy_of(owner, alive))
        man, holders = store.recovery_plan()
        assert man.generation == good.generation
        assert reg.value("/resilience/ckpt/fallback") == 1.0
        assert reg.value("/resilience/ckpt/corrupt") == 1.0
        assert reg.value("/resilience/ckpt/verified") == 1.0

    def test_plan_raises_when_no_generation_survives(self):
        reg = CounterRegistry()
        mesh = dist_mesh(n_localities=2, registry=reg)
        mgr, store = wired(mesh, reg)
        mgr.save(mesh)
        store.locality_lost(0)
        store.locality_lost(1)
        with pytest.raises(CheckpointError, match="no globally-consistent"):
            store.recovery_plan()

    def test_prune_retains_only_keep_generations(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr = CheckpointManager(interval=1, keep=2, registry=reg)
        store = BuddyReplicatedStore(mesh, keep=2, registry=reg)
        mgr.on_commit = store.replicate
        cps = [mgr.save(mesh) for _ in range(4)]
        gens = {gk[0] for loc in store.alive for gk in store.holdings(loc)}
        assert gens == {cps[-2].generation, cps[-1].generation}


class TestRecoveryCoordinator:
    def test_construction_wires_the_commit_hook(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr = CheckpointManager(interval=1, registry=reg)
        coord = RecoveryCoordinator(mesh, mgr, registry=reg)
        assert mgr.on_commit == coord.store.replicate
        mgr.save(mesh)
        assert coord.store.replicated == 1

    def test_policy_thresholds(self):
        reg = CounterRegistry()
        mesh = dist_mesh(registry=reg)
        mgr = CheckpointManager(interval=1, registry=reg)
        coord = RecoveryCoordinator(mesh, mgr, evacuation_capacity=1,
                                    registry=reg)
        assert not coord.needs_global_recovery(0)
        assert not coord.needs_global_recovery(1)  # evacuation absorbs one
        assert coord.needs_global_recovery(2)      # ...but not two at once
        # a lost last-copy forces global recovery regardless of the count
        mesh.fail_locality(1, evacuate=False)
        assert coord.lost_blocks() == sorted(mesh.lost_blocks)
        assert coord.needs_global_recovery(0)

    def test_recover_restores_byte_identical_state_on_survivors(self):
        reg = CounterRegistry()
        mesh = dist_mesh(n_localities=4, registry=reg)
        mgr = CheckpointManager(interval=1, registry=reg)
        coord = RecoveryCoordinator(mesh, mgr, registry=reg)
        mon = ConservationMonitor()
        mon.sample(mesh)
        cp = mgr.save(mesh, mon)
        saved = {ip: blk.copy() for ip, blk in mesh.blocks.items()}
        saved_t, saved_steps = mesh.time, mesh.steps
        for _ in range(2):
            mesh.step()
            mon.sample(mesh)

        # correlated, non-adjacent dual kill: GIDs lost with the memory
        for victim in (1, 3):
            mesh.fail_locality(victim, evacuate=False)
        for ip in mesh.lost_blocks:
            mesh.blocks[ip][...] = np.nan
        assert coord.needs_global_recovery(2)

        report = coord.recover(mon)
        assert report.generation == cp.generation
        assert report.survivors == [0, 2]
        assert report.blocks_fetched == len(mesh.blocks)
        # the victims' 4 blocks are resurrected; the survivors' blocks
        # already sit where the 2-locality slab partition puts them
        assert report.components_restored == 4
        assert report.components_migrated == 0
        for ip, blk in saved.items():
            assert np.array_equal(mesh.blocks[ip], blk)
        assert mesh.time == saved_t and mesh.steps == saved_steps
        assert len(mon.records) == cp.monitor_len
        assert mesh.lost_blocks == set()
        # ownership remapped over the survivors only
        ips = sorted(mesh.blocks)
        for i, ip in enumerate(ips):
            assert mesh.owners()[ip] == \
                [0, 2][slab_partition(i, len(ips), 2)]
        # the dead timeline's records are gone; durability is re-seeded
        assert len(mgr) == 1
        assert mgr.latest.step == saved_steps
        assert reg.value("/recovery/global-rollbacks") == 1.0
        assert reg.value("/recovery/elastic-restarts") == 1.0
        assert reg.value("/recovery/blocks-fetched") == len(mesh.blocks)
        assert reg.value("/recovery/localities-remaining") == 2.0
        assert mesh.transport.reconciles()

    def test_recover_then_replay_matches_a_straight_run(self):
        """The elastic restart finishes byte-identical: replaying on two
        survivors reproduces a 4-locality run that never failed (the
        partition-independence contract)."""
        straight = dist_mesh(n_localities=4)
        for _ in range(3):
            straight.step()

        reg = CounterRegistry()
        mesh = dist_mesh(n_localities=4, registry=reg)
        mgr = CheckpointManager(interval=1, registry=reg)
        coord = RecoveryCoordinator(mesh, mgr, registry=reg)
        mesh.step()
        mgr.save(mesh)
        for _ in range(2):
            mesh.step()
        for victim in (1, 3):
            mesh.fail_locality(victim, evacuate=False)
        for ip in mesh.lost_blocks:
            mesh.blocks[ip][...] = np.nan
        report = coord.recover()
        assert mesh.steps == 1 and report.components_restored > 0
        for _ in range(2):
            mesh.step()
        assert mesh.steps == straight.steps
        for ip in straight.blocks:
            assert np.array_equal(straight.blocks[ip], mesh.blocks[ip])
        assert mesh.time == straight.time

    def test_recover_raises_when_no_locality_survives(self):
        reg = CounterRegistry()
        mesh = dist_mesh(n_localities=2, registry=reg)
        mgr = CheckpointManager(interval=1, registry=reg)
        coord = RecoveryCoordinator(mesh, mgr, registry=reg)
        mgr.save(mesh)
        mesh.fail_locality(0, evacuate=False)
        mesh.fail_locality(1, evacuate=False)
        with pytest.raises(CheckpointError, match="no locality survives"):
            coord.recover()


class TestCheckpointStoreFaults:
    """Every FaultInjector checkpoint-fault class aimed at the manager:
    ``restore_latest`` always lands on the newest *verified* generation,
    and :class:`CheckpointError` fires only when none survives."""

    def small_mesh(self):
        star = star_interior()
        mesh = BlockMesh(2, domain=star.domain, origin=star.origin,
                         options=star.options, bc=star.bc,
                         self_gravity=True)
        mesh.load_interior(star.interior.copy())
        return mesh

    def saves_and_steps(self, mgr, mesh, n):
        """n saves at distinct steps; returns the state at each save."""
        states = []
        for _ in range(n):
            states.append(({ip: b.copy() for ip, b in mesh.blocks.items()},
                           mesh.steps))
            mgr.save(mesh)
            mesh.step()
        return states

    def assert_restored(self, mesh, state):
        blocks, steps = state
        for ip, blk in blocks.items():
            assert np.array_equal(mesh.blocks[ip], blk)
        assert mesh.steps == steps

    def test_scheduled_torn_write_falls_back_one_generation(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=3, torn_write_at_saves=(1,), registry=reg)
        mgr = CheckpointManager(interval=1, keep=3, registry=reg,
                                injector=inj)
        mesh = self.small_mesh()
        states = self.saves_and_steps(mgr, mesh, 2)
        assert inj.stats()["torn-write"] == 1
        assert not mgr.latest.committed
        mgr.restore_latest(mesh)
        self.assert_restored(mesh, states[0])  # save #1 was torn
        assert reg.value("/resilience/ckpt/torn") == 1.0
        assert reg.value("/resilience/ckpt/fallback") == 1.0
        assert reg.value("/resilience/ckpt/verified") == 1.0

    def test_scheduled_corruption_falls_back_one_generation(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=3, corrupt_ckpt_at_saves=(1,),
                            registry=reg)
        mgr = CheckpointManager(interval=1, keep=3, registry=reg,
                                injector=inj)
        mesh = self.small_mesh()
        states = self.saves_and_steps(mgr, mesh, 2)
        assert inj.stats()["ckpt-corruption"] == 1
        assert mgr.latest.committed          # the save looked successful...
        assert not mgr.latest.verify()       # ...but the content rotted
        mgr.restore_latest(mesh)
        self.assert_restored(mesh, states[0])
        assert reg.value("/resilience/ckpt/corrupt") == 1.0
        assert reg.value("/resilience/ckpt/verified") == 1.0

    def test_rate_based_faults_land_on_newest_verified(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=5, torn_write_rate=0.5,
                            ckpt_corruption_rate=0.5, max_torn_writes=2,
                            max_ckpt_corruptions=2, registry=reg)
        mgr = CheckpointManager(interval=1, keep=6, registry=reg,
                                injector=inj)
        mesh = self.small_mesh()
        states = self.saves_and_steps(mgr, mesh, 6)
        stats = inj.stats()
        assert stats["torn-write"] + stats["ckpt-corruption"] > 0
        expected = mgr.latest_verified
        assert expected is not None
        restored = mgr.restore_latest(mesh)
        assert restored is expected
        self.assert_restored(mesh, states[restored.step])
        # everything newer than the restored record failed verification
        # and was dropped on the way down
        assert reg.snapshot().get("/resilience/ckpt/fallback", 0.0) \
            == 5 - restored.step

    def test_mixed_schedule_skips_both_fault_kinds(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=9, torn_write_at_saves=(2,),
                            corrupt_ckpt_at_saves=(1,), registry=reg)
        mgr = CheckpointManager(interval=1, keep=4, registry=reg,
                                injector=inj)
        mesh = self.small_mesh()
        states = self.saves_and_steps(mgr, mesh, 3)
        mgr.restore_latest(mesh)
        self.assert_restored(mesh, states[0])  # #1 corrupt, #2 torn
        assert reg.value("/resilience/ckpt/fallback") == 2.0

    def test_error_only_when_no_verified_generation_survives(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=1, corrupt_ckpt_at_saves=(0, 1),
                            torn_write_at_saves=(2,), registry=reg)
        mgr = CheckpointManager(interval=1, keep=3, registry=reg,
                                injector=inj)
        mesh = self.small_mesh()
        self.saves_and_steps(mgr, mesh, 3)
        assert mgr.latest_verified is None
        with pytest.raises(CheckpointError, match="no verified checkpoint"):
            mgr.restore_latest(mesh)
        assert reg.value("/resilience/ckpt/fallback") == 3.0
        # a later good save makes restore work again
        good = mgr.save(mesh)
        assert mgr.restore_latest(mesh) is good

    def test_wiring_the_injector_does_not_perturb_other_schedules(self):
        """rate=0 checkpoint checks must not consume RNG draws — the
        pre-existing seeded step/loss schedules stay byte-identical."""
        a = FaultInjector(seed=42, loss_rate=0.5,
                          registry=CounterRegistry())
        b = FaultInjector(seed=42, loss_rate=0.5,
                          registry=CounterRegistry())
        for _ in range(12):
            b.torn_write_due()           # the manager asks every save...
            b.checkpoint_corruption_due()  # ...rate 0 => no RNG draw
            assert a.drop_message() == b.drop_message()
