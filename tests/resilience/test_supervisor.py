"""SupervisedEngine: bounded re-execution of transiently failing tasks."""

import threading

import numpy as np
import pytest

from repro.core.exec import ExecutionEngine
from repro.resilience import (FaultInjector, SupervisedEngine,
                              TransientActionFault)
from repro.runtime import CounterRegistry, WorkStealingScheduler


class TestSupervisedExecution:
    def test_plain_execution_passes_through(self):
        reg = CounterRegistry()
        eng = SupervisedEngine(registry=reg)
        futs = eng.map(lambda x: x + 1, [(i,) for i in range(5)])
        assert [f.get() for f in futs] == [1, 2, 3, 4, 5]
        snap = reg.snapshot()
        assert snap["/resilience/tasks/submitted"] == 5.0
        assert snap.get("/resilience/tasks/retried", 0.0) == 0.0

    def test_transient_faults_are_retried_to_success(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=11, action_fault_rate=1.0,
                            max_action_faults=4, registry=reg)
        eng = SupervisedEngine(injector=inj, max_retries=5, registry=reg)
        futs = eng.map(lambda x: x * x, [(i,) for i in range(8)])
        assert [f.get(timeout=5.0) for f in futs] == [i * i
                                                     for i in range(8)]
        snap = reg.snapshot()
        assert snap["/resilience/tasks/retried"] == 4.0
        assert snap["/resilience/tasks/recovered"] >= 1.0
        assert snap.get("/resilience/tasks/gave-up", 0.0) == 0.0
        assert inj.stats()["action"] == 4

    def test_retry_happens_on_scheduler_too(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=5, action_fault_rate=1.0,
                            max_action_faults=3, registry=reg)
        with WorkStealingScheduler(2) as sched:
            eng = SupervisedEngine(scheduler=sched, injector=inj,
                                   max_retries=4, registry=reg)
            futs = eng.map(lambda x: -x, [(i,) for i in range(12)])
            assert [f.get(timeout=10.0) for f in futs] == \
                [-i for i in range(12)]
        assert reg.snapshot()["/resilience/tasks/retried"] == 3.0

    def test_gives_up_after_budget(self):
        reg = CounterRegistry()
        eng = SupervisedEngine(max_retries=2, registry=reg)

        def always_fails():
            raise TransientActionFault("permanent transient")

        fut = eng.submit(always_fails)
        with pytest.raises(TransientActionFault):
            fut.get(timeout=5.0)
        snap = reg.snapshot()
        assert snap["/resilience/tasks/retried"] == 2.0  # attempts = 3
        assert snap["/resilience/tasks/gave-up"] == 1.0

    def test_application_errors_are_not_retried(self):
        reg = CounterRegistry()
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("a real bug")

        eng = SupervisedEngine(max_retries=5, registry=reg)
        with pytest.raises(ValueError, match="a real bug"):
            eng.submit(boom).get(timeout=5.0)
        assert len(calls) == 1
        assert reg.snapshot().get("/resilience/tasks/retried", 0.0) == 0.0

    def test_retried_results_bit_identical_to_unsupervised(self):
        """Supervision must not change the numbers, only their delivery."""
        rng = np.random.default_rng(3)
        batches = [(rng.standard_normal(64),) for _ in range(6)]

        def kernel(x):
            return np.sort(x) * 2.0 + 1.0

        plain = [f.get() for f in
                 ExecutionEngine().map(kernel, batches)]
        reg = CounterRegistry()
        inj = FaultInjector(seed=2, action_fault_rate=0.8,
                            max_action_faults=5, registry=reg)
        eng = SupervisedEngine(injector=inj, max_retries=8, registry=reg)
        supervised = [f.get(timeout=10.0) for f in
                      eng.map(kernel, batches)]
        for a, b in zip(plain, supervised):
            assert np.array_equal(a, b)
        assert reg.snapshot()["/resilience/tasks/retried"] >= 1.0

    def test_results_keep_input_order_under_concurrency(self):
        reg = CounterRegistry()
        inj = FaultInjector(seed=9, action_fault_rate=0.3,
                            max_action_faults=10, registry=reg)
        barrier = threading.Barrier(2, timeout=5.0)

        def slow_id(i):
            # stagger execution so completion order differs from input
            if i % 2 == 0:
                try:
                    barrier.wait()
                except threading.BrokenBarrierError:
                    pass
            return i

        with WorkStealingScheduler(4) as sched:
            eng = SupervisedEngine(scheduler=sched, injector=inj,
                                   max_retries=6, registry=reg)
            futs = eng.map(slow_id, [(i,) for i in range(16)])
            assert [f.get(timeout=10.0) for f in futs] == list(range(16))

    def test_engine_surface_is_passed_through(self):
        with WorkStealingScheduler(1) as sched:
            inner = ExecutionEngine(scheduler=sched)
            eng = SupervisedEngine(inner)
            assert eng.scheduler is sched
            assert eng.pool is None
            assert eng.devices == []
            assert eng.gpu_fraction == 0.0
            eng.synchronize()

    def test_rejects_engine_plus_resources(self):
        with pytest.raises(ValueError):
            SupervisedEngine(ExecutionEngine(), device=object())

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            SupervisedEngine(max_retries=-1)
