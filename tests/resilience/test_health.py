"""Phi-accrual failure detection on the simulated clock."""

import math

import pytest

from repro.resilience import FailureDetector
from repro.runtime import AgasRuntime, Component, CounterRegistry
from repro.simulator.events import EventQueue

_LOG10_E = math.log10(math.e)


def make_world(n_localities=4, components_per_locality=2, registry=None):
    registry = registry or CounterRegistry()
    agas = AgasRuntime(n_localities, registry=registry)
    gids = []
    for loc in range(n_localities):
        for _ in range(components_per_locality):
            gids.append(agas.register(Component(), loc))
    return agas, gids, registry


class TestFailureDetector:
    def test_no_false_positives_while_heartbeats_flow(self):
        agas, _gids, reg = make_world()
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0, registry=reg)
        det.start()
        ev.run(until=200.0)
        assert det.declared_failed == set()
        assert agas.failed_localities == set()
        assert det.max_phi < 3.0
        assert reg.snapshot()["/resilience/health/heartbeats"] > 100

    def test_silent_locality_is_detected_and_evacuated(self):
        agas, gids, reg = make_world()
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0, registry=reg)
        det.start()
        ev.run(until=10.0)
        det.silence(2)
        ev.run(until=60.0)
        assert det.declared_failed == {2}
        # AGAS was told automatically — nobody called fail_locality
        assert agas.failed_localities == {2}
        # every component kept a valid GID on a surviving locality
        for gid in gids:
            assert agas.locality_of(gid) != 2
        snap = reg.snapshot()
        assert snap["/resilience/health/detected"] == 1.0
        assert snap["/resilience/health/evacuated"] == 2.0
        assert snap["/resilience/health/silenced"] == 1.0

    def test_detection_time_matches_phi_model(self):
        """phi = elapsed/mean * log10(e) crosses the threshold at
        elapsed = threshold * interval / log10(e); detection lands within
        one sweep period after that."""
        agas, _gids, reg = make_world()
        ev = EventQueue()
        interval, threshold = 0.5, 4.0
        det = FailureDetector(agas, ev, heartbeat_interval=interval,
                              phi_threshold=threshold, registry=reg)
        det.start()
        ev.run(until=20.0)
        det.silence(1)
        last_beat = 20.0  # heartbeats are on the 0.5 grid
        ev.run(until=100.0)
        assert det.declared_failed == {1}
        expected = threshold * interval / _LOG10_E
        detect_delay = ev.now  # not the detection instant; bound it instead
        assert detect_delay >= last_beat + expected - interval
        # phi at detection must have crossed the threshold
        assert det.max_phi >= threshold

    def test_two_silent_localities_both_detected(self):
        agas, gids, _reg = make_world(n_localities=4)
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0)
        det.start()
        ev.run(until=5.0)
        det.silence(0)
        det.silence(3)
        ev.run(until=80.0)
        assert det.declared_failed == {0, 3}
        assert agas.failed_localities == {0, 3}
        for gid in gids:
            assert agas.locality_of(gid) in (1, 2)

    def test_on_failure_callback_fires(self):
        agas, _gids, _reg = make_world()
        ev = EventQueue()
        seen = []
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0,
                              on_failure=lambda loc, res: seen.append(
                                  (loc, len(res["migrated"]))))
        det.start()
        det.silence(1)
        ev.run(until=60.0)
        assert seen == [(1, 2)]

    def test_phi_grows_while_silent(self):
        agas, _gids, _reg = make_world(n_localities=2)
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=50.0)  # never triggers
        det.start()
        ev.run(until=10.0)
        det.silence(1)
        values = []
        for t in (12.0, 16.0, 24.0):
            ev.run(until=t)
            values.append(det.phi(1))
        assert values == sorted(values)
        assert values[-1] > values[0] > 0.0
        assert det.suspicion_levels()[0] < values[0]

    def test_stop_halts_rescheduling(self):
        agas, _gids, _reg = make_world(n_localities=2)
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0)
        det.start()
        ev.run(until=3.0)
        det.stop()
        ev.run()  # queue must drain instead of self-perpetuating
        assert ev.empty

    def test_parameter_validation(self):
        agas, _gids, _reg = make_world(n_localities=2)
        ev = EventQueue()
        with pytest.raises(ValueError):
            FailureDetector(agas, ev, heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            FailureDetector(agas, ev, phi_threshold=0.0)


class TestStaleHeartbeatGate:
    """A declared locality must never flap back: suspect -> evacuate ->
    late heartbeat is the exact ordering the one-way gate defends."""

    def test_suspect_evacuate_then_stale_heartbeat_is_dropped(self):
        agas, gids, reg = make_world()
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0, registry=reg)
        det.start()
        ev.run(until=10.0)
        det.silence(2)                       # the node dies...
        ev.run(until=60.0)
        assert det.declared_failed == {2}    # ...is suspected, declared,
        homes = {gid: agas.locality_of(gid) for gid in gids}
        assert all(loc != 2 for loc in homes.values())  # ...and evacuated

        # a heartbeat emitted before death crawls out of a congested
        # switch now: it must not refresh liveness or touch AGAS
        assert det.receive_heartbeat(2) is False
        snap = reg.snapshot()
        assert snap["/resilience/health/stale-heartbeats"] == 1.0
        assert agas.failed_localities == {2}
        assert det.declared_failed == {2}
        assert {gid: agas.locality_of(gid) for gid in gids} == homes
        # the gate is permanent, not probabilistic
        assert det.receive_heartbeat(2) is False
        assert reg.snapshot()["/resilience/health/stale-heartbeats"] == 2.0

    def test_out_of_band_beat_before_declaration_counts(self):
        agas, _gids, reg = make_world()
        ev = EventQueue()
        det = FailureDetector(agas, ev, heartbeat_interval=1.0,
                              phi_threshold=3.0, registry=reg)
        det.start()
        ev.run(until=5.0)
        det.silence(1)          # silenced but not yet declared
        ev.run(until=6.0)
        assert 1 not in det.declared_failed
        before = det.phi(1)
        assert det.receive_heartbeat(1) is True   # arrives pre-verdict
        assert det.phi(1) < before                # liveness refreshed
        assert "/resilience/health/stale-heartbeats" not in reg.snapshot()

    def test_unmonitored_locality_is_ignored(self):
        agas, _gids, reg = make_world()
        ev = EventQueue()
        det = FailureDetector(agas, ev, localities=[0, 1], registry=reg)
        det.start()
        assert det.receive_heartbeat(3) is False
        assert "/resilience/health/stale-heartbeats" not in reg.snapshot()
