"""Structural V1309 tree (Table 4) and workload profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (TABLE4_PAPER_COUNTS, WorkloadProfile,
                             morton_encode, profile_tree, v1309_tree)
from repro.simulator.treemodel import (RefinementRegion, build_tree,
                                       v1309_regions)


@pytest.fixture(scope="module")
def tree14():
    return v1309_tree(14)


@pytest.fixture(scope="module")
def profile14(tree14):
    return profile_tree(tree14)


class TestTreeStructure:
    def test_background_levels_fully_refined(self, tree14):
        """Levels 0..4 are uniformly refined (the envelope base grid)."""
        for lvl in range(5):
            assert len(tree14.levels[lvl]) == 8 ** lvl
            assert tree14.refined[lvl].all() or lvl == 4

    def test_total_counts_consistent(self, tree14):
        assert tree14.total_subgrids == \
            sum(len(c) for c in tree14.levels)
        assert tree14.n_interior + tree14.n_leaves == tree14.total_subgrids

    def test_children_come_in_eights(self, tree14):
        for lvl in range(len(tree14.levels) - 1):
            n_children = len(tree14.levels[lvl + 1])
            n_refined = int(tree14.refined[lvl].sum())
            assert n_children == 8 * n_refined

    def test_max_level_respected(self, tree14):
        assert len(tree14.levels) - 1 <= 14

    def test_deterministic(self):
        a = v1309_tree(13)
        b = v1309_tree(13)
        assert a.total_subgrids == b.total_subgrids
        for la, lb in zip(a.levels, b.levels):
            assert np.array_equal(la, lb)

    def test_leaf_centers_cover_all_leaves(self, tree14):
        assert len(tree14.leaf_centers()) == tree14.n_leaves


class TestTable4Reproduction:
    @pytest.mark.parametrize("level", [13, 14, 15])
    def test_subgrid_counts_match_paper_within_25pct(self, level):
        tree = v1309_tree(level)
        paper, _mem = TABLE4_PAPER_COUNTS[level]
        assert tree.total_subgrids == pytest.approx(paper, rel=0.25)

    @pytest.mark.parametrize("level", [13, 14, 15])
    def test_memory_matches_paper_within_30pct(self, level):
        tree = v1309_tree(level)
        _paper, mem = TABLE4_PAPER_COUNTS[level]
        assert tree.memory_gb() == pytest.approx(mem, rel=0.30)

    def test_growth_ratio_below_octree_factor(self):
        """Table 4 growth is sub-x8 (density-threshold refinement)."""
        a = v1309_tree(14).total_subgrids
        b = v1309_tree(15).total_subgrids
        assert 2.0 < b / a < 8.0

    def test_regions_shift_with_level(self):
        r13 = {r.name: r for r in v1309_regions(13)}
        r14 = {r.name: r for r in v1309_regions(14)}
        assert r14["donor_core"].target_level == \
            r13["donor_core"].target_level + 1
        assert r14["accretor"].radius < r13["accretor"].radius

    def test_empty_region_tree_is_base_grid(self):
        tree = build_tree([], max_level=6, base_level=3)
        assert tree.total_subgrids == 1 + 8 + 64 + 512


class TestMorton:
    def test_zero_maps_to_zero(self):
        assert morton_encode(np.array([0]), np.array([0]),
                             np.array([0]))[0] == 0

    def test_axis_bit_positions(self):
        x = morton_encode(np.array([1]), np.array([0]), np.array([0]))[0]
        y = morton_encode(np.array([0]), np.array([1]), np.array([0]))[0]
        z = morton_encode(np.array([0]), np.array([0]), np.array([1]))[0]
        assert (int(x), int(y), int(z)) == (4, 2, 1)

    @given(st.lists(st.tuples(st.integers(0, 2 ** 15 - 1),
                              st.integers(0, 2 ** 15 - 1),
                              st.integers(0, 2 ** 15 - 1)),
                    min_size=2, max_size=50, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_injective(self, coords):
        arr = np.array(coords, dtype=np.int64)
        keys = morton_encode(arr[:, 0], arr[:, 1], arr[:, 2])
        assert len(np.unique(keys)) == len(coords)


class TestWorkloadProfile:
    def test_counts_match_tree(self, tree14, profile14):
        assert profile14.n_subgrids == tree14.total_subgrids
        assert profile14.n_interior == tree14.n_interior

    def test_pairs_reference_valid_subgrids(self, profile14):
        assert profile14.pair_a.min() >= 0
        assert profile14.pair_b.max() < profile14.n_subgrids
        # unordered pairs listed once
        assert (profile14.pair_a < profile14.pair_b).all()

    def test_partition_covers_all_subgrids_contiguously(self, profile14):
        owner = profile14.partition(16)
        assert owner.min() == 0 and owner.max() == 15
        assert (np.diff(owner) >= 0).all()     # SFC blocks

    def test_partition_single_node(self, profile14):
        assert (profile14.partition(1) == 0).all()

    def test_remote_traffic_zero_on_one_node(self, profile14):
        msgs, byts, pr, pc = profile14.remote_traffic(
            profile14.partition(1))
        assert msgs.sum() == 0 and byts.sum() == 0

    def test_remote_traffic_grows_with_nodes(self, profile14):
        m8 = profile14.remote_traffic(profile14.partition(8))[0].sum()
        m64 = profile14.remote_traffic(profile14.partition(64))[0].sum()
        assert m64 > m8 > 0

    def test_remote_counts_both_endpoints(self, profile14):
        owner = profile14.partition(4)
        msgs, _b, pr, pc = profile14.remote_traffic(owner)
        remote_pairs = (owner[profile14.pair_a]
                        != owner[profile14.pair_b]).sum()
        assert msgs.sum() == 2 * remote_pairs
        assert pc.sum() == remote_pairs
