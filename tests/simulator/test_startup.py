"""Start-up (restart refinement) model: the Sec. 6.3 order-of-magnitude
claim."""

import pytest

from repro.network import PARCELPORTS
from repro.simulator import startup_speedup, startup_time

LF = PARCELPORTS["libfabric"]
MPI = PARCELPORTS["mpi"]


class TestStartup:
    def test_target_below_restart_rejected(self):
        with pytest.raises(ValueError):
            startup_time(12, 64, LF)

    def test_more_nodes_refine_faster(self):
        assert startup_time(16, 2048, LF) < startup_time(16, 256, LF)

    def test_higher_levels_cost_more(self):
        assert startup_time(17, 1024, LF) > startup_time(16, 1024, LF)

    def test_order_of_magnitude_gain(self):
        """'Start-up timings ... were in fact reduced by an order of
        magnitude using the libfabric parcelport' (Sec. 6.3)."""
        for level, nodes in ((16, 1024), (17, 2048)):
            ratio = startup_speedup(level, nodes, (MPI, LF))
            assert 7.0 < ratio < 20.0, f"L{level}@{nodes}: {ratio}"

    def test_storm_flag_drives_the_gap(self):
        """Without the unexpected-message storm, the ports are within
        ~3x — the pathology is specific to the start-up pattern."""
        calm_mpi = MPI.message_cost(256, storm=False)
        storm_mpi = MPI.message_cost(256, storm=True)
        assert storm_mpi.receiver_cpu > 3.0 * calm_mpi.receiver_cpu
        calm_lf = LF.message_cost(256, storm=False)
        storm_lf = LF.message_cost(256, storm=True)
        assert storm_lf.receiver_cpu == pytest.approx(
            calm_lf.receiver_cpu)
