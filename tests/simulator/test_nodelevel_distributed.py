"""Node-level DES (Table 2) and the distributed scaling model (Figs 2/3)."""

import pytest

from repro.analysis import (MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS,
                            parallel_efficiency, speedup)
from repro.network import PARCELPORTS
from repro.simulator import (PIZ_DAINT, PIZ_DAINT_CPU, StepModel,
                             TABLE2_CONFIGS, XEON_E5_2660V3_10C,
                             XEON_E5_2660V3_20C, measure_node,
                             simulate_gravity_solve, with_gpus)
from repro.simulator.platforms import V100
from repro.simulator.scaling import cached_profile, reference_rate

LF = PARCELPORTS["libfabric"]
MPI = PARCELPORTS["mpi"]


class TestNodeLevel:
    def test_cpu_only_rate_is_kernel_rate(self):
        """Sec. 6.1.1: on the CPU each kernel runs on one core; measured
        GFLOP/s is exactly cores x per-core kernel rate."""
        r = measure_node(XEON_E5_2660V3_10C)
        expected = XEON_E5_2660V3_10C.cores \
            * XEON_E5_2660V3_10C.fmm_core_rate()
        assert r.gflops == pytest.approx(expected, rel=1e-12)

    def test_cpu_20c_doubles_10c(self):
        a = measure_node(XEON_E5_2660V3_10C)
        b = measure_node(XEON_E5_2660V3_20C)
        assert b.gflops == pytest.approx(2 * a.gflops, rel=1e-12)

    def test_gpu_beats_cpu_by_order_of_magnitude(self):
        cpu = measure_node(PIZ_DAINT_CPU)
        gpu = measure_node(PIZ_DAINT)
        assert gpu.gflops > 4 * cpu.gflops

    def test_flop_accounting_uses_paper_constants(self):
        r = simulate_gravity_solve(PIZ_DAINT_CPU, n_interior=10,
                                   n_leaves=90)
        assert r.kernel_flops == pytest.approx(
            10 * MULTIPOLE_KERNEL_FLOPS + 90 * MONOPOLE_KERNEL_FLOPS)

    def test_gpu_launch_fraction_high(self):
        """Sec. 6.1.2: >90% of kernels launch on the GPU."""
        r = measure_node(PIZ_DAINT)
        assert r.gpu_fraction > 0.85

    def test_starvation_inversion_one_gpu(self):
        """Table 2: 10 cores + 1 V100 outperforms 20 cores + 1 V100."""
        ten = measure_node(with_gpus(XEON_E5_2660V3_10C, V100))
        twenty = measure_node(with_gpus(XEON_E5_2660V3_20C, V100))
        assert ten.gflops > twenty.gflops
        assert ten.gpu_fraction > twenty.gpu_fraction

    def test_two_gpus_need_enough_cores(self):
        """Table 2: 20c + 2 V100 beats 10c + 2 V100."""
        ten = measure_node(with_gpus(XEON_E5_2660V3_10C, V100, V100))
        twenty = measure_node(with_gpus(XEON_E5_2660V3_20C, V100, V100))
        assert twenty.gflops > ten.gflops

    def test_fraction_of_peak_in_paper_band(self):
        """All GPU rows land between 10% and 45% of device peak."""
        for name, node in TABLE2_CONFIGS:
            r = measure_node(node)
            assert 0.10 < r.fraction_of_peak < 0.45, name

    def test_stalled_simulation_detected(self):
        with pytest.raises(ValueError):
            simulate_gravity_solve(PIZ_DAINT, n_interior=-1, n_leaves=-1)


class TestScalingModel:
    @pytest.fixture(scope="class")
    def model14(self):
        return StepModel(cached_profile(14), PIZ_DAINT)

    def test_single_node_has_no_messages(self, model14):
        res = model14.step_time(1, LF)
        assert res.total_messages == 0
        assert res.t_comm_cpu_max == 0.0

    def test_two_nodes_speed_up(self, model14):
        r1 = model14.step_time(1, LF)
        r2 = model14.step_time(2, LF)
        assert r2.subgrids_per_second > 1.5 * r1.subgrids_per_second

    def test_strong_scaling_efficiency_decays(self, model14):
        ref = reference_rate()
        effs = [parallel_efficiency(
            model14.step_time(n, LF).subgrids_per_second, n, ref)
            for n in (2, 32, 512)]
        assert effs[0] > effs[1] > effs[2]

    def test_weak_scaling_near_ideal(self):
        """Fig. 2: 'Weak scaling is clearly very good' — constant work
        per node along the level/node diagonal."""
        ref = reference_rate()
        m15 = StepModel(cached_profile(15), PIZ_DAINT)
        rate = m15.step_time(4, LF).subgrids_per_second
        eff = parallel_efficiency(rate, 4, ref)
        assert eff > 0.75

    def test_libfabric_wins_at_scale(self):
        """Fig. 3: the ratio grows well above 1 for large runs."""
        m = StepModel(cached_profile(15), PIZ_DAINT)
        lf = m.step_time(1024, LF).subgrids_per_second
        mpi = m.step_time(1024, MPI).subgrids_per_second
        assert lf / mpi > 1.5

    def test_libfabric_dips_at_small_scale(self):
        """Fig. 3: 'a slight reduction in performance for lower node
        counts'."""
        m = StepModel(cached_profile(14), PIZ_DAINT)
        lf = m.step_time(2, LF).subgrids_per_second
        mpi = m.step_time(2, MPI).subgrids_per_second
        assert lf / mpi < 1.02

    def test_speedup_arithmetic(self):
        assert speedup(200.0, 100.0) == 2.0
        assert parallel_efficiency(200.0, 4, 100.0) == 0.5
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0, 1.0)


class TestDegradedNetworkModel:
    """StepModel charges the resilience layer's retry cost (PR 2)."""

    def test_loss_slows_the_step(self):
        prof = cached_profile(14)
        clean = StepModel(prof, PIZ_DAINT).step_time(128, LF)
        lossy = StepModel(prof, PIZ_DAINT,
                          loss_rate=0.05).step_time(128, LF)
        assert lossy.t_step > clean.t_step
        assert lossy.total_messages > clean.total_messages  # retransmissions

    def test_single_node_unaffected_by_loss(self):
        prof = cached_profile(14)
        clean = StepModel(prof, PIZ_DAINT).step_time(1, LF)
        lossy = StepModel(prof, PIZ_DAINT, loss_rate=0.2).step_time(1, LF)
        assert lossy.t_step == clean.t_step

    def test_penalty_grows_with_loss_rate(self):
        prof = cached_profile(14)
        steps = [StepModel(prof, PIZ_DAINT, loss_rate=p).step_time(256, LF)
                 for p in (0.0, 0.05, 0.2)]
        times = [s.t_step for s in steps]
        assert times == sorted(times)

    def test_retry_gauges_published(self):
        from repro.runtime import CounterRegistry
        reg = CounterRegistry()
        m = StepModel(cached_profile(14), PIZ_DAINT, loss_rate=0.1,
                      registry=reg)
        m.step_time(64, LF)
        snap = reg.snapshot()
        assert snap["/simulator/step/libfabric/retry-attempts-per-msg"] > 1.0
        assert snap["/simulator/step/libfabric/retry-messages"] > 0.0
        assert 0.0 < snap["/simulator/step/libfabric/delivery-probability"] <= 1.0

    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            StepModel(cached_profile(14), PIZ_DAINT, loss_rate=1.0)
