"""DES event queue and hardware model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import EventQueue, GpuSpec, NodeSpec, SimulationError
from repro.simulator.platforms import (PIZ_DAINT, PIZ_DAINT_CPU, V100,
                                       XEON_E5_2660V3_10C, XEON_PHI_7210)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        for t in (3.0, 1.0, 2.0):
            q.schedule(t, fired.append, t)
        q.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(1.0, fired.append, i)
        q.run()
        assert fired == list(range(5))

    def test_clock_advances_to_event_time(self):
        q = EventQueue()
        q.schedule(2.5, lambda: None)
        q.run()
        assert q.now == 2.5

    def test_handlers_can_schedule_more_events(self):
        q = EventQueue()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 5:
                q.schedule(1.0, cascade, depth + 1)

        q.schedule(0.0, cascade, 0)
        q.run()
        assert fired == list(range(6))
        assert q.now == 5.0

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(1.0, lambda: None)

    def test_run_until_horizon(self):
        q = EventQueue()
        fired = []
        for t in (1.0, 2.0, 3.0):
            q.schedule(t, fired.append, t)
        q.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert len(q) == 1

    def test_event_budget_guards_runaway(self):
        q = EventQueue()

        def forever():
            q.schedule(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert not EventQueue().step()

    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                    max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_processed_times_always_nondecreasing(self, delays):
        q = EventQueue()
        seen = []
        for d in delays:
            q.schedule(d, lambda: seen.append(q.now))
        q.run()
        assert seen == sorted(seen)
        assert q.processed == len(delays)


class TestNodeSpec:
    def test_avx2_peak_formula(self):
        """Table 2 accounting: cores x clock x 16 flops/cycle on AVX2."""
        assert XEON_E5_2660V3_10C.cpu_peak_gflops == pytest.approx(384.0)

    def test_knl_peak_formula(self):
        assert XEON_PHI_7210.cpu_peak_gflops == pytest.approx(2662.4)

    def test_piz_daint_cpu_peak(self):
        assert PIZ_DAINT_CPU.cpu_peak_gflops == pytest.approx(499.2)

    def test_piz_daint_has_one_p100(self):
        assert PIZ_DAINT.has_gpu
        assert len(PIZ_DAINT.gpus) == 1
        assert PIZ_DAINT.gpu_peak_gflops == pytest.approx(4700.0)

    def test_streams_per_gpu_default(self):
        """Sec. 5.1: 'usually 128 per GPU'."""
        assert V100.n_streams == 128
        assert PIZ_DAINT.total_streams == 128

    def test_cpu_fmm_rate_matches_measured_fraction(self):
        node = XEON_E5_2660V3_10C
        total = node.cores * node.fmm_core_rate()
        assert total == pytest.approx(
            node.cpu_peak_gflops * node.cpu_kernel_efficiency)

    def test_gpu_rate_positive(self):
        assert PIZ_DAINT.fmm_gpu_rate(PIZ_DAINT.gpus[0]) > 0
