"""Futures: HPX semantics — readiness, continuations, combinators."""

import threading

import pytest

from repro.runtime import (Future, FutureError, Promise, async_execute,
                           dataflow, make_exceptional_future,
                           make_ready_future, when_all, when_any)


class TestBasics:
    def test_ready_future_returns_value(self):
        assert make_ready_future(42).get() == 42

    def test_ready_future_is_ready(self):
        assert make_ready_future(1).is_ready()

    def test_default_value_is_none(self):
        assert make_ready_future().get() is None

    def test_pending_future_not_ready(self):
        assert not Promise().get_future().is_ready()

    def test_exceptional_future_raises_on_get(self):
        f = make_exceptional_future(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            f.get()

    def test_exceptional_future_reports_exception(self):
        assert make_exceptional_future(RuntimeError()).has_exception()

    def test_get_timeout_raises(self):
        f = Promise().get_future()
        with pytest.raises(FutureError, match="timed out"):
            f.get(timeout=0.01)

    def test_wait_returns_false_on_timeout(self):
        assert not Promise().get_future().wait(timeout=0.01)

    def test_wait_returns_true_when_ready(self):
        assert make_ready_future(0).wait(timeout=0.01)


class TestPromise:
    def test_set_value_satisfies_future(self):
        p = Promise()
        f = p.get_future()
        p.set_value("x")
        assert f.get() == "x"

    def test_set_exception_propagates(self):
        p = Promise()
        p.set_exception(KeyError("k"))
        with pytest.raises(KeyError):
            p.get_future().get()

    def test_double_set_value_raises(self):
        p = Promise()
        p.set_value(1)
        with pytest.raises(FutureError):
            p.set_value(2)

    def test_set_value_after_exception_raises(self):
        p = Promise()
        p.set_exception(ValueError())
        with pytest.raises(FutureError):
            p.set_value(1)

    def test_cross_thread_completion(self):
        p = Promise()
        threading.Timer(0.01, p.set_value, args=("done",)).start()
        assert p.get_future().get(timeout=2.0) == "done"


class TestThen:
    def test_continuation_receives_ready_future(self):
        out = make_ready_future(10).then(lambda f: f.get() + 1)
        assert out.get() == 11

    def test_continuation_on_pending_future(self):
        p = Promise()
        out = p.get_future().then(lambda f: f.get() * 2)
        p.set_value(21)
        assert out.get() == 42

    def test_chain_of_continuations(self):
        f = make_ready_future(1)
        for _ in range(10):
            f = f.then(lambda fut: fut.get() + 1)
        assert f.get() == 11

    def test_exception_in_continuation_propagates(self):
        out = make_ready_future(0).then(lambda f: 1 / f.get())
        with pytest.raises(ZeroDivisionError):
            out.get()

    def test_continuation_sees_input_exception(self):
        src = make_exceptional_future(ValueError("inner"))
        out = src.then(lambda f: "handled" if f.has_exception() else "no")
        assert out.get() == "handled"

    def test_future_returning_continuation_unwraps(self):
        out = make_ready_future(5).then(
            lambda f: make_ready_future(f.get() + 5))
        assert out.get() == 10


class TestWhenAll:
    def test_empty_input_is_ready(self):
        assert when_all([]).get() == []

    def test_all_ready_inputs(self):
        futs = [make_ready_future(i) for i in range(5)]
        got = when_all(futs).get()
        assert [f.get() for f in got] == list(range(5))

    def test_waits_for_pending(self):
        ps = [Promise() for _ in range(3)]
        combined = when_all([p.get_future() for p in ps])
        assert not combined.is_ready()
        for i, p in enumerate(ps):
            p.set_value(i)
        assert [f.get() for f in combined.get()] == [0, 1, 2]

    def test_exceptional_input_does_not_short_circuit(self):
        futs = [make_ready_future(1), make_exceptional_future(ValueError())]
        got = when_all(futs).get()
        assert got[0].get() == 1
        assert got[1].has_exception()


class TestWhenAny:
    def test_requires_input(self):
        with pytest.raises(ValueError):
            when_any([])

    def test_first_ready_wins(self):
        p0, p1 = Promise(), Promise()
        combined = when_any([p0.get_future(), p1.get_future()])
        p1.set_value("second slot")
        idx, fut = combined.get()
        assert idx == 1
        assert fut.get() == "second slot"

    def test_tolerates_multiple_completions(self):
        futs = [make_ready_future(i) for i in range(4)]
        idx, fut = when_any(futs).get()
        assert fut.get() == idx


class TestDataflow:
    def test_mixes_futures_and_values(self):
        out = dataflow(lambda a, b, c: a + b + c,
                       make_ready_future(1), 2, make_ready_future(3))
        assert out.get() == 6

    def test_fires_after_all_inputs(self):
        p = Promise()
        out = dataflow(lambda a, b: a * b, p.get_future(), 3)
        assert not out.is_ready()
        p.set_value(14)
        assert out.get() == 42

    def test_input_exception_propagates_without_calling(self):
        called = []

        def fn(a):
            called.append(a)
            return a

        out = dataflow(fn, make_exceptional_future(RuntimeError("x")))
        with pytest.raises(RuntimeError):
            out.get()
        assert called == []

    def test_unwraps_future_result(self):
        out = dataflow(lambda a: make_ready_future(a + 1),
                       make_ready_future(1))
        assert out.get() == 2

    def test_no_future_arguments(self):
        assert dataflow(lambda: "const").get() == "const"


class TestAsyncExecute:
    def test_sync_execution_without_executor(self):
        assert async_execute(lambda x: x * 2, 4).get() == 8

    def test_exception_captured(self):
        out = async_execute(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            out.get()

    def test_with_executor(self):
        ran = []

        def executor(thunk):
            ran.append(True)
            thunk()

        assert async_execute(lambda: 7, executor=executor).get() == 7
        assert ran == [True]
