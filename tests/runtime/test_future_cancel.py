"""Cancellation, deadlines and typed timeouts on futures."""

import time

import pytest

from repro.runtime import (CancelledError, FutureError, FutureTimeout,
                           Promise, dataflow, make_ready_future, when_all)


class TestCancel:
    def test_cancel_pending_future(self):
        p = Promise()
        f = p.get_future()
        assert f.cancel("no longer needed")
        assert f.cancelled()
        assert f.is_ready() and f.has_exception()
        with pytest.raises(CancelledError, match="no longer needed"):
            f.get()

    def test_cancel_loses_race_with_producer(self):
        p = Promise()
        f = p.get_future()
        p.set_value(42)
        assert not f.cancel()
        assert not f.cancelled()
        assert f.get() == 42

    def test_late_completion_after_cancel_is_swallowed(self):
        p = Promise()
        f = p.get_future()
        assert f.cancel()
        # the abandoned producer finishing later must not raise nor
        # resurrect the future
        p.set_value("late")
        with pytest.raises(CancelledError):
            f.get()
        p2 = Promise()
        f2 = p2.get_future()
        assert f2.cancel()
        p2.set_exception(RuntimeError("late failure"))
        with pytest.raises(CancelledError):
            f2.get()

    def test_double_set_still_raises_without_cancel(self):
        p = Promise()
        p.set_value(1)
        with pytest.raises(FutureError):
            p.set_value(2)

    def test_cancel_runs_callbacks(self):
        p = Promise()
        f = p.get_future()
        seen = []
        f.then(lambda fut: seen.append(fut.has_exception()))
        f.cancel()
        assert seen == [True]

    def test_cancelled_error_is_future_error(self):
        assert issubclass(CancelledError, FutureError)


class TestTimeouts:
    def test_get_timeout_raises_typed_exception(self):
        f = Promise().get_future()
        with pytest.raises(FutureTimeout):
            f.get(timeout=0.0)

    def test_future_timeout_is_future_error(self):
        # existing callers catching FutureError keep working
        assert issubclass(FutureTimeout, FutureError)

    def test_ready_future_ignores_timeout(self):
        assert make_ready_future(5).get(timeout=0.0) == 5


class TestDeadlines:
    def test_expired_deadline_bounds_get(self):
        f = Promise().get_future()
        f.set_deadline(time.monotonic() - 1.0)
        t0 = time.monotonic()
        with pytest.raises(FutureTimeout):
            f.get()  # no explicit timeout: the deadline bounds the wait
        assert time.monotonic() - t0 < 0.5

    def test_deadline_keeps_earliest(self):
        f = Promise().get_future()
        early = time.monotonic() + 1.0
        f.set_deadline(early)
        f.set_deadline(early + 100.0)
        assert f.deadline == early

    def test_deadline_clamps_explicit_timeout(self):
        f = Promise().get_future()
        f.set_deadline(time.monotonic())  # already due
        t0 = time.monotonic()
        with pytest.raises(FutureTimeout):
            f.get(timeout=30.0)
        assert time.monotonic() - t0 < 0.5

    def test_wait_respects_deadline(self):
        f = Promise().get_future()
        f.set_deadline(time.monotonic() + 0.01)
        assert f.wait() is False

    def test_then_inherits_deadline(self):
        p = Promise()
        f = p.get_future()
        dl = time.monotonic() + 50.0
        f.set_deadline(dl)
        g = f.then(lambda fut: fut.get() + 1)
        assert g.deadline == dl

    def test_when_all_inherits_earliest_deadline(self):
        p1, p2 = Promise(), Promise()
        f1, f2 = p1.get_future(), p2.get_future()
        dl1 = time.monotonic() + 10.0
        dl2 = time.monotonic() + 20.0
        f1.set_deadline(dl1)
        f2.set_deadline(dl2)
        combined = when_all([f1, f2])
        assert combined.deadline == dl1

    def test_dataflow_inherits_deadline(self):
        p = Promise()
        f = p.get_future()
        dl = time.monotonic() + 10.0
        f.set_deadline(dl)
        out = dataflow(lambda a: a, f)
        assert out.deadline == dl

    def test_deadline_in_future_does_not_block_ready_value(self):
        p = Promise()
        f = p.get_future()
        f.set_deadline(time.monotonic() + 100.0)
        p.set_value("ok")
        assert f.get() == "ok"
