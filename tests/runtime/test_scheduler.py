"""Work-stealing scheduler: execution, stealing, error isolation."""

import sys
import threading
import time

import pytest

from repro.runtime import CounterRegistry, WorkStealingScheduler, when_all


@pytest.fixture
def fast_switching():
    """Shrink the GIL switch interval so thread races interleave densely."""
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(old)


class TestLifecycle:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(0)

    def test_context_manager_shuts_down(self):
        with WorkStealingScheduler(2) as s:
            assert s.submit(lambda: 1).get() == 1
        with pytest.raises(RuntimeError):
            s.post(lambda: None)

    def test_double_shutdown_is_safe(self):
        s = WorkStealingScheduler(1)
        s.shutdown()
        s.shutdown()

    def test_n_workers(self):
        with WorkStealingScheduler(3) as s:
            assert s.n_workers == 3


class TestExecution:
    def test_submit_returns_result(self):
        with WorkStealingScheduler(2) as s:
            assert s.submit(pow, 2, 10).get() == 1024

    def test_many_tasks_all_complete(self):
        with WorkStealingScheduler(4) as s:
            futs = [s.submit(lambda i=i: i * i) for i in range(300)]
            total = sum(f.get() for f in futs)
        assert total == sum(i * i for i in range(300))

    def test_parallel_execution_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(3, timeout=5.0)

        def task():
            seen.add(threading.get_ident())
            barrier.wait()

        with WorkStealingScheduler(3) as s:
            futs = [s.submit(task) for _ in range(3)]
            when_all(futs).get(timeout=5.0)
        assert len(seen) == 3

    def test_nested_submission(self):
        with WorkStealingScheduler(2) as s:
            def outer():
                inner = [s.submit(lambda i=i: i) for i in range(10)]
                return sum(f.get() for f in inner)

            assert s.submit(outer).get() == 45

    def test_wait_idle(self):
        with WorkStealingScheduler(2) as s:
            for _ in range(50):
                s.post(lambda: time.sleep(0.001))
            assert s.wait_idle(timeout=10.0)

    def test_recursive_fanout_via_continuations(self):
        """Task trees compose through futures (continuation style, not
        blocking waits — blocking a worker inside a task on a child task's
        future can exhaust the pool, unlike HPX's suspendable threads)."""
        from repro.runtime import dataflow, when_all

        with WorkStealingScheduler(4) as s:
            def spawn_tree(depth):
                if depth == 0:
                    return s.submit(lambda: 1)
                kids = [spawn_tree(depth - 1) for _ in range(2)]
                return dataflow(
                    lambda a, b: a + b, *kids, executor=s.post)

            assert spawn_tree(6).get(timeout=30.0) == 64
            assert s.stats.executed >= 2 ** 6


class TestErrors:
    def test_submit_error_goes_to_future(self):
        with WorkStealingScheduler(2) as s:
            f = s.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                f.get()
            # a failed task must not kill the worker
            assert s.submit(lambda: "alive").get() == "alive"

    def test_posted_error_recorded_not_fatal(self):
        with WorkStealingScheduler(1) as s:
            s.post(lambda: 1 / 0)
            s.wait_idle(timeout=5.0)
            assert any(isinstance(e, ZeroDivisionError) for e in s.errors)
            assert s.submit(lambda: 3).get() == 3


class TestShutdownRace:
    """Regression: a post racing shutdown() must execute or raise — never
    land behind the shutdown sentinels and be silently dropped."""

    def test_post_racing_shutdown_never_drops_tasks(self, fast_switching):
        for _ in range(60):
            s = WorkStealingScheduler(2)
            stop = threading.Event()
            accepted = [0] * 4

            def hammer(slot):
                # bursts with gaps, so the queue drains between bursts and
                # shutdown() can slip into the race window
                while not stop.is_set():
                    for _ in range(50):
                        try:
                            s.post(lambda: None)
                        except RuntimeError:
                            return
                        accepted[slot] += 1
                    time.sleep(0.001)

            posters = [threading.Thread(target=hammer, args=(i,))
                       for i in range(len(accepted))]
            for t in posters:
                t.start()
            time.sleep(0.004)
            s.shutdown()
            stop.set()
            for t in posters:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in posters)
            # every accepted post ran; every rejected one raised
            assert s.stats.posted == sum(accepted)
            assert s.stats.executed == s.stats.posted

    def test_draining_tasks_may_still_post(self):
        """Continuations spawned by tasks caught in the drain are accepted."""
        s = WorkStealingScheduler(2)
        ran = threading.Event()

        def parent():
            time.sleep(0.01)
            s.post(lambda: ran.set())  # posted from a worker mid-drain

        s.post(parent)
        s.shutdown()
        assert ran.wait(timeout=5.0)
        assert s.stats.executed == s.stats.posted == 2


class TestStress:
    def test_concurrent_post_steal_shutdown_loses_nothing(self, fast_switching):
        """Hammer post (external + nested) against steal + shutdown; every
        accepted task must execute exactly once."""
        for _ in range(8):
            s = WorkStealingScheduler(4)
            ran = [0]
            lock = threading.Lock()

            def work():
                with lock:
                    ran[0] += 1

            def nested():
                with lock:
                    ran[0] += 1
                try:
                    s.post(work)  # racing the drain: accept and reject both fine
                except RuntimeError:
                    pass

            start = threading.Event()

            def hammer():
                start.wait()
                i = 0
                while True:
                    try:
                        s.post(nested if i % 3 == 0 else work)
                    except RuntimeError:
                        return
                    i += 1

            posters = [threading.Thread(target=hammer) for _ in range(3)]
            for t in posters:
                t.start()
            start.set()
            time.sleep(0.005)
            s.shutdown()
            for t in posters:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in posters)
            assert s.stats.executed == s.stats.posted
            assert ran[0] == s.stats.executed
            assert not s.errors


class TestIdleSignaling:
    def test_idle_workers_block_instead_of_polling(self):
        """Perf fix: idle workers sleep on the condition until post()
        signals them; a 1 ms poll would log ~100 sleeps/worker here."""
        with WorkStealingScheduler(4) as s:
            futs = [s.submit(lambda: None) for _ in range(16)]
            when_all(futs).get(timeout=5.0)
            assert s.wait_idle(timeout=5.0)
            before = s.stats.idle_sleeps
            time.sleep(0.4)
            after = s.stats.idle_sleeps
            # at most one settling sleep + one fallback wakeup per worker
            assert after - before <= 2 * s.n_workers
            # and the new counter is visible through the registry
            reg = CounterRegistry()
            s.publish_counters(reg)
            assert reg.value("/threads/idle-rate") <= 1.0
            assert reg.value("/threads/executed") >= 16

    def test_posts_wake_sleeping_workers_promptly(self):
        with WorkStealingScheduler(2) as s:
            s.wait_idle(timeout=5.0)
            time.sleep(0.05)  # both workers asleep on the condition
            t0 = time.perf_counter()
            assert s.submit(lambda: "pong").get(timeout=5.0) == "pong"
            # far below the 0.5 s fallback timeout: a real wakeup happened
            assert time.perf_counter() - t0 < 0.3


class TestCounters:
    def test_publish_counters_names(self):
        with WorkStealingScheduler(2) as s:
            futs = [s.submit(lambda: None) for _ in range(10)]
            when_all(futs).get(timeout=5.0)
            s.wait_idle(timeout=5.0)
            reg = CounterRegistry()
            s.publish_counters(reg)
        names = set(reg.names())
        for expect in ("/threads/executed", "/threads/posted",
                       "/threads/stolen", "/threads/idle-sleeps",
                       "/threads/idle-rate", "/threads/steal-rate",
                       "/threads/worker/0/executed",
                       "/threads/worker/1/executed"):
            assert expect in names
        assert reg.value("/threads/executed") == \
            reg.value("/threads/worker/0/executed") + \
            reg.value("/threads/worker/1/executed")


class TestStats:
    def test_counts_posted_and_executed(self):
        with WorkStealingScheduler(2) as s:
            futs = [s.submit(lambda: None) for _ in range(20)]
            when_all(futs).get(timeout=5.0)
            s.wait_idle(timeout=5.0)
            snap = s.stats.snapshot()
        assert snap["posted"] >= 20
        assert snap["executed"] >= 20
        assert sum(snap["per_worker"]) == snap["executed"]
