"""Work-stealing scheduler: execution, stealing, error isolation."""

import threading
import time

import pytest

from repro.runtime import WorkStealingScheduler, when_all


class TestLifecycle:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(0)

    def test_context_manager_shuts_down(self):
        with WorkStealingScheduler(2) as s:
            assert s.submit(lambda: 1).get() == 1
        with pytest.raises(RuntimeError):
            s.post(lambda: None)

    def test_double_shutdown_is_safe(self):
        s = WorkStealingScheduler(1)
        s.shutdown()
        s.shutdown()

    def test_n_workers(self):
        with WorkStealingScheduler(3) as s:
            assert s.n_workers == 3


class TestExecution:
    def test_submit_returns_result(self):
        with WorkStealingScheduler(2) as s:
            assert s.submit(pow, 2, 10).get() == 1024

    def test_many_tasks_all_complete(self):
        with WorkStealingScheduler(4) as s:
            futs = [s.submit(lambda i=i: i * i) for i in range(300)]
            total = sum(f.get() for f in futs)
        assert total == sum(i * i for i in range(300))

    def test_parallel_execution_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(3, timeout=5.0)

        def task():
            seen.add(threading.get_ident())
            barrier.wait()

        with WorkStealingScheduler(3) as s:
            futs = [s.submit(task) for _ in range(3)]
            when_all(futs).get(timeout=5.0)
        assert len(seen) == 3

    def test_nested_submission(self):
        with WorkStealingScheduler(2) as s:
            def outer():
                inner = [s.submit(lambda i=i: i) for i in range(10)]
                return sum(f.get() for f in inner)

            assert s.submit(outer).get() == 45

    def test_wait_idle(self):
        with WorkStealingScheduler(2) as s:
            for _ in range(50):
                s.post(lambda: time.sleep(0.001))
            assert s.wait_idle(timeout=10.0)

    def test_recursive_fanout_via_continuations(self):
        """Task trees compose through futures (continuation style, not
        blocking waits — blocking a worker inside a task on a child task's
        future can exhaust the pool, unlike HPX's suspendable threads)."""
        from repro.runtime import dataflow, when_all

        with WorkStealingScheduler(4) as s:
            def spawn_tree(depth):
                if depth == 0:
                    return s.submit(lambda: 1)
                kids = [spawn_tree(depth - 1) for _ in range(2)]
                return dataflow(
                    lambda a, b: a + b, *kids, executor=s.post)

            assert spawn_tree(6).get(timeout=30.0) == 64
            assert s.stats.executed >= 2 ** 6


class TestErrors:
    def test_submit_error_goes_to_future(self):
        with WorkStealingScheduler(2) as s:
            f = s.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                f.get()
            # a failed task must not kill the worker
            assert s.submit(lambda: "alive").get() == "alive"

    def test_posted_error_recorded_not_fatal(self):
        with WorkStealingScheduler(1) as s:
            s.post(lambda: 1 / 0)
            s.wait_idle(timeout=5.0)
            assert any(isinstance(e, ZeroDivisionError) for e in s.errors)
            assert s.submit(lambda: 3).get() == 3


class TestStats:
    def test_counts_posted_and_executed(self):
        with WorkStealingScheduler(2) as s:
            futs = [s.submit(lambda: None) for _ in range(20)]
            when_all(futs).get(timeout=5.0)
            s.wait_idle(timeout=5.0)
            snap = s.stats.snapshot()
        assert snap["posted"] >= 20
        assert snap["executed"] >= 20
        assert sum(snap["per_worker"]) == snap["executed"]
