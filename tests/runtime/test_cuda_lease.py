"""Stream-lease lifecycle: no leaks, timeout reclaim, stale releases."""

import time

import pytest

from repro.runtime import (CudaDevice, StreamLease, StreamPool,
                           DEFAULT_LEASE_TIMEOUT_S)
from repro.runtime.counters import default_registry


@pytest.fixture
def gpu():
    with CudaDevice(n_streams=1, n_workers=1, name="lease-gpu") as dev:
        yield dev


class TestStreamLease:
    def test_acquire_returns_lease_and_reserves(self, gpu):
        pool = StreamPool([gpu])
        lease = pool.acquire()
        assert isinstance(lease, StreamLease)
        assert lease.stream.busy()
        assert pool.acquire() is None
        lease.release()
        assert not lease.stream.busy()

    def test_enqueue_consumes_lease(self, gpu):
        pool = StreamPool([gpu])
        lease = pool.acquire()
        fut = lease.enqueue(lambda: 7)
        assert fut.get() == 7
        # release after consumption must not free someone else's claim
        lease.release()
        again = pool.acquire()
        assert again is not None
        again.release()

    def test_context_manager_releases_on_exception(self, gpu):
        pool = StreamPool([gpu])
        with pytest.raises(RuntimeError):
            with pool.acquire():
                raise RuntimeError("holder crashed before enqueue")
        # the reservation came back immediately, not after the timeout
        lease = pool.acquire()
        assert lease is not None
        lease.release()

    def test_context_manager_keeps_consumed_lease(self, gpu):
        pool = StreamPool([gpu])
        with pool.acquire() as lease:
            assert lease.enqueue(lambda: 1).get() == 1
        gpu.synchronize()
        assert not gpu.streams[0].busy()

    def test_expired_lease_is_reclaimed_and_counted(self, gpu):
        reg = default_registry()
        reg.reset()
        pool = StreamPool([gpu], lease_timeout=0.05)
        leaked = pool.acquire()
        assert leaked is not None
        assert pool.acquire() is None  # still within the lease
        time.sleep(0.08)
        lease = pool.acquire()  # reclaims the leaked reservation
        assert lease is not None
        assert reg.snapshot().get("/cuda/leases-reclaimed") == 1.0
        lease.release()

    def test_stale_release_cannot_clobber_new_holder(self, gpu):
        pool = StreamPool([gpu], lease_timeout=0.05)
        leaked = pool.acquire()
        time.sleep(0.08)
        current = pool.acquire()
        assert current is not None
        leaked.release()  # late release of the reclaimed token: no-op
        assert gpu.streams[0].busy()
        assert pool.acquire() is None
        current.release()

    def test_legacy_try_acquire_release_roundtrip(self, gpu):
        pool = StreamPool([gpu])
        s = pool.try_acquire()
        assert s is gpu.streams[0]
        assert pool.try_acquire() is None
        s.release()
        assert pool.try_acquire() is s

    def test_pool_validates_lease_timeout(self, gpu):
        with pytest.raises(ValueError):
            StreamPool([gpu], lease_timeout=0.0)
        assert StreamPool([gpu]).lease_timeout == DEFAULT_LEASE_TIMEOUT_S
