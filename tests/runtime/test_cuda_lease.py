"""Stream-lease lifecycle: no leaks, timeout reclaim, stale releases."""

import threading
import time

import pytest

from repro.runtime import (CudaDevice, StreamLease, StreamPool,
                           DEFAULT_LEASE_TIMEOUT_S)
from repro.runtime.counters import default_registry


@pytest.fixture
def gpu():
    with CudaDevice(n_streams=1, n_workers=1, name="lease-gpu") as dev:
        yield dev


class TestStreamLease:
    def test_acquire_returns_lease_and_reserves(self, gpu):
        pool = StreamPool([gpu])
        lease = pool.acquire()
        assert isinstance(lease, StreamLease)
        assert lease.stream.busy()
        assert pool.acquire() is None
        lease.release()
        assert not lease.stream.busy()

    def test_enqueue_consumes_lease(self, gpu):
        pool = StreamPool([gpu])
        lease = pool.acquire()
        fut = lease.enqueue(lambda: 7)
        assert fut.get() == 7
        # release after consumption must not free someone else's claim
        lease.release()
        again = pool.acquire()
        assert again is not None
        again.release()

    def test_context_manager_releases_on_exception(self, gpu):
        pool = StreamPool([gpu])
        with pytest.raises(RuntimeError):
            with pool.acquire():
                raise RuntimeError("holder crashed before enqueue")
        # the reservation came back immediately, not after the timeout
        lease = pool.acquire()
        assert lease is not None
        lease.release()

    def test_context_manager_keeps_consumed_lease(self, gpu):
        pool = StreamPool([gpu])
        with pool.acquire() as lease:
            assert lease.enqueue(lambda: 1).get() == 1
        gpu.synchronize()
        assert not gpu.streams[0].busy()

    @pytest.mark.sanitize_tolerated

    def test_expired_lease_is_reclaimed_and_counted(self, gpu):
        reg = default_registry()
        reg.reset()
        pool = StreamPool([gpu], lease_timeout=0.05)
        leaked = pool.acquire()
        assert leaked is not None
        assert pool.acquire() is None  # still within the lease
        time.sleep(0.08)
        lease = pool.acquire()  # reclaims the leaked reservation
        assert lease is not None
        assert reg.snapshot().get("/cuda/leases-reclaimed") == 1.0
        lease.release()

    @pytest.mark.sanitize_tolerated

    def test_stale_release_cannot_clobber_new_holder(self, gpu):
        pool = StreamPool([gpu], lease_timeout=0.05)
        leaked = pool.acquire()
        time.sleep(0.08)
        current = pool.acquire()
        assert current is not None
        leaked.release()  # late release of the reclaimed token: no-op
        assert gpu.streams[0].busy()
        assert pool.acquire() is None
        current.release()

    def test_legacy_try_acquire_release_roundtrip(self, gpu):
        pool = StreamPool([gpu])
        s = pool.try_acquire()
        assert s is gpu.streams[0]
        assert pool.try_acquire() is None
        s.release()
        assert pool.try_acquire() is s

    def test_pool_validates_lease_timeout(self, gpu):
        with pytest.raises(ValueError):
            StreamPool([gpu], lease_timeout=0.0)
        assert StreamPool([gpu]).lease_timeout == DEFAULT_LEASE_TIMEOUT_S


class TestLeaseReclaimUnderFaults:
    @pytest.mark.sanitize_tolerated
    def test_faulting_holders_cannot_pin_streams(self):
        """Many threads crash between acquire and enqueue (holding their
        lease forever) while others run kernels that themselves raise.
        No stream may stay pinned, and every abandoned reservation is
        reclaimed — exactly once — under ``/cuda/leases-reclaimed``."""
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=2, n_workers=2, name="stress-gpu",
                        quarantine_threshold=None) as dev:
            pool = StreamPool([dev], lease_timeout=0.05)
            leaks = []
            leak_lock = threading.Lock()
            completed = []

            def worker(tid):
                for it in range(10):
                    deadline = time.monotonic() + 5.0
                    lease = None
                    while lease is None:
                        lease = pool.acquire()
                        if lease is None:
                            if time.monotonic() > deadline:
                                return
                            time.sleep(0.002)
                    if it % 3 == 0:
                        # holder dies between acquire and enqueue: the
                        # lease is abandoned, never released
                        with leak_lock:
                            leaks.append(lease)
                        continue
                    if it % 3 == 1:
                        fut = lease.enqueue(_bad_kernel)
                        fut.wait(5.0)
                        assert fut.has_exception()
                    else:
                        fut = lease.enqueue(lambda v=tid * 100 + it: v)
                        completed.append(fut.get(timeout=5.0))

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
                assert not t.is_alive()
            assert leaks and completed  # both behaviours really happened

            # every abandoned reservation expires and is reclaimable:
            # after the lease timeout both streams can be acquired again
            time.sleep(0.06)
            drained = []
            deadline = time.monotonic() + 5.0
            while len(drained) < 2 and time.monotonic() < deadline:
                lease = pool.acquire()
                if lease is None:
                    time.sleep(0.002)
                    continue
                drained.append(lease)
            assert len(drained) == 2  # no stream stayed pinned
            dev.synchronize()
            for lease in drained:
                lease.release()

            # each leak sets the reservation that only a reclaim (counted)
            # clears — the tallies must agree exactly
            reclaimed = reg.snapshot().get("/cuda/leases-reclaimed", 0.0)
            assert reclaimed == float(len(leaks))


def _bad_kernel():
    raise RuntimeError("kernel fault while holding the stream")
