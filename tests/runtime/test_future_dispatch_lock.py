"""Regression: future callbacks must never run under runtime locks.

The module-level ``_dispatch_lock`` in :mod:`repro.runtime.future` guards
the continuation tally; an earlier design held it (and the future's own
lock) across callback invocation, which inverts against every lock a
continuation may take — continuations legitimately complete other
futures, post to the scheduler, and touch channels.  The audit fixed the
invariant: every resolution path swaps the callback list out under the
lock, releases, and only then dispatches.  These tests pin that down by
observing the lockdep held-stack from inside real callbacks, for every
path that can invoke one.
"""

import pytest

from repro.runtime.future import (Promise, async_execute, make_ready_future,
                                  when_all)
from repro.runtime.scheduler import WorkStealingScheduler
from repro.sanitize import lockdep


def _observe(seen):
    """Callback recording the lock classes held at dispatch time."""
    def cb(fut):
        seen.append(list(lockdep.held_classes()))
    return cb


def test_no_locks_held_when_set_value_dispatches(san):
    seen = []
    p = Promise()
    p.get_future().then(_observe(seen))
    p.set_value(1)
    assert seen == [[]]
    assert san.finding_count() == 0


def test_no_locks_held_when_set_exception_dispatches(san):
    seen = []
    p = Promise()
    fut = p.get_future()
    fut.then(_observe(seen))
    p.set_exception(ValueError("x"))
    with pytest.raises(ValueError):
        fut.get()
    assert seen == [[]]
    assert san.finding_count() == 0


def test_no_locks_held_when_cancel_dispatches(san):
    seen = []
    p = Promise()
    fut = p.get_future()
    fut.then(_observe(seen))
    assert fut.cancel()
    assert seen and all(held == [] for held in seen)
    assert san.finding_count() == 0


def test_no_locks_held_on_already_ready_then(san):
    seen = []
    make_ready_future(3).then(_observe(seen))
    assert seen == [[]]
    assert san.finding_count() == 0


def test_callback_may_resolve_other_futures(san):
    """A continuation completing another future must not self-deadlock."""
    p, q = Promise(), Promise()
    p.get_future().then(lambda f: q.set_value(f.get() + 1))
    out = q.get_future().then(lambda f: f.get() * 10)
    p.set_value(4)
    assert out.get(timeout=5.0) == 50
    assert san.finding_count() == 0


def test_no_locks_held_via_scheduler_executor(san):
    seen = []
    with WorkStealingScheduler(2) as sched:
        futs = [async_execute(lambda x=i: x, executor=sched.post)
                for i in range(8)]
        gathered = when_all(futs)
        gathered.then(_observe(seen))
        gathered.wait(timeout=5.0)
        sched.wait_idle(timeout=5.0)
    assert seen and all(held == [] for held in seen)
    assert san.finding_count() == 0


def test_dispatch_tally_still_counts(san):
    """The audited lock still does its actual job (the counter)."""
    from repro.runtime.future import continuations_dispatched
    before = continuations_dispatched()
    p = Promise()
    p.get_future().then(lambda f: None)
    p.set_value(0)
    assert continuations_dispatched() > before
