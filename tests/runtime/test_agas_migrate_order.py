"""Regression: racing migrations must deliver ``on_migrate`` in order.

The old ``AgasRuntime.migrate`` committed the home-table move under the
lock but invoked ``comp.on_migrate`` after dropping it, so two racing
migrations of the same gid could deliver their callbacks out of order —
the component ends up believing in a stale home.  The fixed runtime
queues notifications under the lock (per-gid FIFO) and drains them
serially, in commit order.
"""

import threading

import pytest

from repro.runtime.agas import AgasRuntime, Component


class _Recorder(Component):
    """Records (old, new) after an optional block on the first call."""

    def __init__(self, gate: threading.Event | None = None):
        super().__init__()
        self.calls: list[tuple[int, int]] = []
        self._gate = gate
        self._blocked_once = False

    def on_migrate(self, old_locality: int, new_locality: int) -> None:
        if self._gate is not None and not self._blocked_once:
            self._blocked_once = True
            assert self._gate.wait(timeout=5.0)
        self.calls.append((old_locality, new_locality))


class TestMigrationNotificationOrder:
    def test_racing_migrations_deliver_in_commit_order(self):
        """First mover's callback stalls; second mover's must still be
        delivered *after* it (the old code delivered it first)."""
        agas = AgasRuntime(n_localities=4)
        gate = threading.Event()
        comp = _Recorder(gate)
        gid = agas.register(comp, 0)

        t1 = threading.Thread(target=agas.migrate, args=(gid, 1))
        t1.start()
        # wait until t1 is inside the blocked callback
        deadline = threading.Event()
        for _ in range(500):
            if comp._blocked_once:
                break
            deadline.wait(0.01)
        assert comp._blocked_once

        agas.migrate(gid, 2)  # must queue behind t1's pending delivery
        gate.set()
        t1.join(timeout=5.0)
        assert not t1.is_alive()

        assert comp.calls == [(0, 1), (1, 2)]
        assert agas.locality_of(gid) == 2
        assert agas.migrations == 2

    def test_evacuation_callbacks_share_the_fifo(self):
        """A migrate racing a ``fail_locality`` evacuation of the same
        gid must observe the evacuation's callback first."""
        agas = AgasRuntime(n_localities=4)
        gate = threading.Event()
        comp = _Recorder(gate)
        gid = agas.register(comp, 0)

        t1 = threading.Thread(target=agas.fail_locality, args=(0,))
        t1.start()
        for _ in range(500):
            if comp._blocked_once:
                break
            threading.Event().wait(0.01)
        assert comp._blocked_once

        # evacuation (round-robin) moved the gid to locality 1; race a
        # further migration while its callback is still in flight
        agas.migrate(gid, 3)
        gate.set()
        t1.join(timeout=5.0)
        assert not t1.is_alive()

        assert comp.calls == [(0, 1), (1, 3)]
        assert agas.locality_of(gid) == 3

    def test_raising_callback_does_not_strand_the_queue(self):
        class _Bomb(Component):
            def __init__(self):
                super().__init__()
                self.calls: list[tuple[int, int]] = []
                self.raised = False

            def on_migrate(self, old, new):
                self.calls.append((old, new))
                if not self.raised:
                    self.raised = True
                    raise RuntimeError("boom")

        agas = AgasRuntime(n_localities=3)
        comp = _Bomb()
        gid = agas.register(comp, 0)
        with pytest.raises(RuntimeError, match="boom"):
            agas.migrate(gid, 1)
        # the move itself committed, and the FIFO is clean for the next
        agas.migrate(gid, 2)
        assert comp.calls == [(0, 1), (1, 2)]
        assert agas.locality_of(gid) == 2

    def test_single_migration_still_notifies_inline(self):
        agas = AgasRuntime(n_localities=2)
        comp = _Recorder()
        gid = agas.register(comp, 0)
        agas.migrate(gid, 1)
        assert comp.calls == [(0, 1)]
