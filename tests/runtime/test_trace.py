"""Trace recording: spans, toggling, Chrome trace-event export."""

import json
import threading

import pytest

from repro.runtime import (CudaDevice, LaunchPolicy, StreamPool,
                           WorkStealingScheduler, trace, when_all)


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts disabled with an empty default recorder."""
    trace.disable()
    trace.clear()
    yield
    trace.disable()
    trace.clear()


class TestToggle:
    def test_disabled_by_default_records_nothing(self):
        with trace.span("quiet", "test"):
            pass
        trace.instant("quiet-instant")
        assert len(trace.default_recorder()) == 0

    def test_enable_disable_flag(self):
        assert not trace.is_enabled()
        trace.enable()
        assert trace.is_enabled() and trace.TRACING
        trace.disable()
        assert not trace.is_enabled()

    def test_disabled_span_is_shared_noop(self):
        # near-zero cost when off: no allocation per span
        assert trace.span("a") is trace.span("b")

    def test_toggle_mid_run(self):
        trace.enable()
        with trace.span("kept", "test"):
            pass
        trace.disable()
        with trace.span("dropped", "test"):
            pass
        names = [e["name"] for e in trace.default_recorder().events()
                 if e["ph"] == "X"]
        assert names == ["kept"]


class TestRecording:
    def test_span_records_name_category_duration_tid(self):
        trace.enable()
        with trace.span("work", "unit", detail=3):
            pass
        evs = [e for e in trace.default_recorder().events()
               if e["ph"] == "X"]
        assert len(evs) == 1
        ev = evs[0]
        assert ev["name"] == "work" and ev["cat"] == "unit"
        assert ev["dur"] >= 0.0 and ev["ts"] >= 0.0
        assert ev["tid"] == threading.get_ident()
        assert ev["args"] == {"detail": 3}

    def test_begin_complete_pair(self):
        trace.enable()
        t0 = trace.begin()
        trace.complete("hot-path", "test", t0, worker=7)
        ev = [e for e in trace.default_recorder().events()
              if e["ph"] == "X"][0]
        assert ev["name"] == "hot-path" and ev["args"]["worker"] == 7

    def test_instants_are_thread_scoped(self):
        trace.enable()
        trace.instant("marker", "test")
        ev = [e for e in trace.default_recorder().events()
              if e["ph"] == "i"][0]
        assert ev["s"] == "t" and ev["name"] == "marker"

    def test_events_sorted_by_timestamp(self):
        trace.enable()
        for i in range(5):
            with trace.span(f"s{i}", "test"):
                pass
        ts = [e["ts"] for e in trace.default_recorder().events()
              if e["ph"] == "X"]
        assert ts == sorted(ts)

    def test_multithreaded_recording_keeps_all_events(self):
        trace.enable()

        barrier = threading.Barrier(4, timeout=5.0)

        def record(n):
            for _ in range(n):
                with trace.span("t", "test"):
                    pass
            barrier.wait()  # keep all four alive so tids are not reused

        threads = [threading.Thread(target=record, args=(50,))
                   for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5.0)
        evs = [e for e in trace.default_recorder().events()
               if e["ph"] == "X"]
        assert len(evs) == 200
        assert len({e["tid"] for e in evs}) == 4

    def test_clear(self):
        trace.enable()
        with trace.span("gone", "test"):
            pass
        trace.clear()
        assert len(trace.default_recorder()) == 0


class TestExport:
    def test_export_chrome_is_valid_json(self, tmp_path):
        trace.enable()
        with trace.span("exported", "test"):
            trace.instant("inner")
        path = tmp_path / "trace.json"
        n = trace.export_chrome(str(path))
        assert n >= 2
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "i", "M"} <= phases
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "thread_name" for e in meta)


class TestRuntimeIntegration:
    def test_scheduler_emits_task_spans(self):
        trace.enable()
        with WorkStealingScheduler(2) as s:
            futs = [s.submit(lambda: None) for _ in range(10)]
            when_all(futs).get(timeout=5.0)
            s.wait_idle(timeout=5.0)
        cats = {e["cat"] for e in trace.default_recorder().events()
                if e["ph"] == "X"}
        assert "task" in cats

    def test_cuda_emits_kernel_spans_with_stream_args(self):
        trace.enable()
        with CudaDevice(n_streams=2, n_workers=1, name="tgpu") as dev:
            pol = LaunchPolicy(StreamPool([dev]))
            futs = [pol.launch(lambda: 1) for _ in range(6)]
            for f in futs:
                f.get(timeout=5.0)
            dev.synchronize()
        kernels = [e for e in trace.default_recorder().events()
                   if e["ph"] == "X" and e["cat"] == "cuda"]
        assert kernels
        gpu_kernels = [e for e in kernels
                       if e["args"].get("device") == "tgpu"]
        for e in gpu_kernels:
            assert e["args"]["stream"] in (0, 1)

    def test_continuation_spans(self):
        from repro.runtime import make_ready_future
        trace.enable()
        make_ready_future(1).then(lambda f: f.get() + 1).get(timeout=5.0)
        names = [e["name"] for e in trace.default_recorder().events()
                 if e["ph"] == "X"]
        assert "continuation" in names
