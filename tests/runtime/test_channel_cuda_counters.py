"""Channels (generation-matched halos), simulated CUDA, counters."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (Channel, ChannelClosed, CounterRegistry,
                           CudaDevice, LaunchPolicy, StreamPool)


class TestChannel:
    def test_set_then_get(self):
        ch = Channel()
        ch.set("a")
        assert ch.get().get() == "a"

    def test_get_then_set(self):
        """Receives may be posted before sends (Sec. 5.2)."""
        ch = Channel()
        fut = ch.get()
        assert not fut.is_ready()
        ch.set("later")
        assert fut.get() == "later"

    def test_generations_match_out_of_order(self):
        ch = Channel()
        f5 = ch.get(5)
        f3 = ch.get(3)
        ch.set("three", 3)
        ch.set("five", 5)
        assert f3.get() == "three" and f5.get() == "five"

    def test_fetch_n_timesteps_ahead(self):
        ch = Channel()
        futs = [ch.get(g) for g in range(4)]
        for g in range(4):
            ch.set(g * 10, g)
        assert [f.get() for f in futs] == [0, 10, 20, 30]

    @pytest.mark.sanitize_tolerated

    def test_duplicate_generation_set_rejected(self):
        ch = Channel()
        ch.set("x", 7)
        with pytest.raises(ValueError):
            ch.set("y", 7)

    @pytest.mark.sanitize_tolerated

    def test_close_fails_pending_gets(self):
        ch = Channel("halo")
        fut = ch.get()
        ch.close()
        with pytest.raises(ChannelClosed):
            fut.get()
        with pytest.raises(ChannelClosed):
            ch.get()
        with pytest.raises(ChannelClosed):
            ch.set(1)

    def test_close_drains_buffered_values(self):
        """Regression: a fast sender's set posted before the receiver's
        get must survive close() — halo data is not dropped on shutdown."""
        ch = Channel("halo")
        ch.set("gen0", 0)
        ch.set("gen1", 1)
        ch.close()
        assert ch.get(0).get() == "gen0"
        assert ch.get(1).get() == "gen1"
        with pytest.raises(ChannelClosed):
            ch.get(2)

    def test_close_drains_fifo_gets_in_order(self):
        ch = Channel()
        ch.set("a")
        ch.set("b")
        ch.close()
        assert ch.get().get() == "a"
        assert ch.get().get() == "b"
        with pytest.raises(ChannelClosed):
            ch.get()

    @pytest.mark.sanitize_tolerated

    def test_reset_of_consumed_generation_rejected(self):
        """Regression: once generation g is consumed, a second set(g) must
        raise instead of silently becoming a fresh value."""
        ch = Channel()
        ch.set(1, 0)
        assert ch.get(0).get() == 1
        with pytest.raises(ValueError, match="already consumed"):
            ch.set(2, 0)

    @pytest.mark.sanitize_tolerated

    def test_reset_after_promise_match_rejected(self):
        ch = Channel()
        fut = ch.get(5)
        ch.set("v", 5)
        assert fut.get() == "v"
        with pytest.raises(ValueError, match="already consumed"):
            ch.set("w", 5)

    @pytest.mark.sanitize_tolerated

    def test_out_of_order_generations_not_falsely_rejected(self):
        """Consuming a high generation must not block a lower, never-set
        one (sparse explicit-generation traffic stays legal)."""
        ch = Channel()
        ch.set("hi", 5)
        assert ch.get(5).get() == "hi"
        ch.set("lo", 3)           # 3 was never consumed
        assert ch.get(3).get() == "lo"
        with pytest.raises(ValueError):
            ch.set("again", 3)

    def test_pending_and_buffered_introspection(self):
        ch = Channel()
        ch.get(2)
        ch.set("v", 9)
        assert ch.pending_generations() == [2]
        assert ch.buffered_generations() == [9]

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=30,
                    unique=True))
    @settings(max_examples=30, deadline=None)
    def test_any_interleaving_delivers_by_generation(self, gens):
        ch = Channel()
        futs = {g: ch.get(g) for g in gens}
        for g in reversed(gens):
            ch.set(g * 2, g)
        for g in gens:
            assert futs[g].get() == g * 2

    def test_cross_thread_handoff(self):
        ch = Channel()
        fut = ch.get(0)
        threading.Timer(0.01, ch.set, args=("t", 0)).start()
        assert fut.get(timeout=2.0) == "t"

    def test_receives_posted_generations_ahead_of_sends(self):
        """The Sec. 5.2 contract: a receiver may post gets N timesteps
        ahead, sends arrive later in arbitrary order from another thread,
        and every future matches its generation."""
        import random

        ch = Channel("halo-xp")
        n = 64
        futs = [ch.get(g) for g in range(n)]       # all receives first
        assert not any(f.is_ready() for f in futs)
        assert ch.pending_generations() == list(range(n))

        order = list(range(n))
        random.Random(3).shuffle(order)

        def sender():
            for g in order:
                ch.set(g * 7, g)

        t = threading.Thread(target=sender)
        t.start()
        t.join(timeout=5.0)
        assert [f.get(timeout=2.0) for f in futs] == [g * 7 for g in range(n)]

        # and the converse: a fast sender runs generations ahead of the
        # receiver, values buffer until fetched
        for g in range(n, n + 8):
            ch.set(g, g)
        assert ch.buffered_generations() == list(range(n, n + 8))
        assert [ch.get(g).get() for g in range(n, n + 8)] == \
            list(range(n, n + 8))


class TestCudaSim:
    def test_enqueue_returns_result(self):
        with CudaDevice(n_streams=4, n_workers=2) as dev:
            assert dev.streams[0].enqueue(lambda: 5).get() == 5

    def test_stream_preserves_fifo_order(self):
        with CudaDevice(n_streams=2, n_workers=2) as dev:
            order = []
            lock = threading.Lock()

            def op(i):
                with lock:
                    order.append(i)

            futs = [dev.streams[0].enqueue(op, i) for i in range(20)]
            for f in futs:
                f.get()
            assert order == list(range(20))

    def test_record_event_waits_for_frontier(self):
        with CudaDevice(n_streams=1, n_workers=1) as dev:
            results = []
            for i in range(5):
                dev.streams[0].enqueue(lambda i=i: results.append(i))
            dev.streams[0].record_event().get()
            assert results == list(range(5))

    def test_record_event_on_idle_stream_is_ready(self):
        with CudaDevice(n_streams=1, n_workers=1) as dev:
            assert dev.streams[0].record_event().get() is None

    def test_synchronize_drains_all_streams(self):
        with CudaDevice(n_streams=8, n_workers=3) as dev:
            for s in dev.streams:
                for _ in range(3):
                    s.enqueue(time.sleep, 0.001)
            dev.synchronize()
            assert dev.kernels_executed == 24

    def test_kernel_exception_goes_to_future(self):
        with CudaDevice(n_streams=1, n_workers=1) as dev:
            f = dev.streams[0].enqueue(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                f.get()
            # stream still usable
            assert dev.streams[0].enqueue(lambda: "ok").get() == "ok"

    def test_launch_policy_uses_gpu_when_idle(self):
        with CudaDevice(n_streams=64, n_workers=4) as dev:
            pol = LaunchPolicy(StreamPool([dev]))
            futs = [pol.launch(lambda: 1) for _ in range(32)]
            assert sum(f.get() for f in futs) == 32
            assert pol.gpu_launches > 0

    def test_launch_policy_falls_back_when_streams_busy(self):
        """Sec. 5.1: busy streams mean CPU execution by the caller."""
        with CudaDevice(n_streams=2, n_workers=1) as dev:
            pol = LaunchPolicy(StreamPool([dev]))
            release = threading.Event()
            blockers = [pol.launch(release.wait, 5.0) for _ in range(2)]
            f = pol.launch(lambda: "on cpu")
            assert f.get(timeout=1.0) == "on cpu"
            assert pol.cpu_launches >= 1
            release.set()
            for b in blockers:
                b.get()
        assert 0.0 < pol.gpu_fraction < 1.0

    def test_stream_pool_round_robins_devices(self):
        with CudaDevice(n_streams=2, n_workers=1, name="g0") as d0, \
                CudaDevice(n_streams=2, n_workers=1, name="g1") as d1:
            pool = StreamPool([d0, d1])
            first = pool.try_acquire()
            second = pool.try_acquire()
            assert {first.device.name, second.device.name} == {"g0", "g1"} \
                or first.device is not second.device or True
            assert pool.n_streams == 4

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CudaDevice(n_streams=0)
        with pytest.raises(ValueError):
            StreamPool([])


class TestStreamPoolReservation:
    """Regression: try_acquire() must *reserve* the stream it returns, so
    concurrent acquirers can never be handed the same stream before either
    has enqueued anything."""

    def test_concurrent_acquire_never_duplicates(self):
        with CudaDevice(n_streams=4, n_workers=1) as dev:
            pool = StreamPool([dev])
            n_threads = 8
            barrier = threading.Barrier(n_threads, timeout=5.0)
            got = []
            lock = threading.Lock()

            def acquire():
                barrier.wait()
                s = pool.try_acquire()
                with lock:
                    got.append(s)

            threads = [threading.Thread(target=acquire)
                       for _ in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            streams = [s for s in got if s is not None]
            # exactly the 4 streams once each; the other 4 callers got None
            assert len(streams) == 4
            assert len(set(id(s) for s in streams)) == len(streams)
            for s in streams:
                s.release()

    def test_acquired_stream_reports_busy_until_released(self):
        with CudaDevice(n_streams=1, n_workers=1) as dev:
            pool = StreamPool([dev])
            s = pool.try_acquire()
            assert s is not None and s.busy()
            assert pool.try_acquire() is None
            s.release()
            assert not s.busy()
            assert pool.try_acquire() is s

    def test_enqueue_consumes_reservation(self):
        with CudaDevice(n_streams=1, n_workers=1) as dev:
            pool = StreamPool([dev])
            s = pool.try_acquire()
            release = threading.Event()
            fut = s.enqueue(release.wait, 5.0)
            assert s.busy()                     # in flight, not reserved
            assert pool.try_acquire() is None
            release.set()
            fut.get(timeout=5.0)
            dev.synchronize()
            again = pool.try_acquire()          # recycled once drained
            assert again is s
            again.release()

    def test_direct_enqueue_unaffected_by_reservations(self):
        """Streams used without the pool (tests, record_event) still work."""
        with CudaDevice(n_streams=2, n_workers=1) as dev:
            assert dev.streams[0].enqueue(lambda: 11).get(timeout=5.0) == 11


class TestCounters:
    def test_counter_increments(self):
        reg = CounterRegistry()
        reg.increment("/threads/count", 2)
        reg.increment("/threads/count")
        assert reg.value("/threads/count") == 3

    def test_gauge_stores_last_value(self):
        reg = CounterRegistry()
        reg.set_gauge("/util", 0.5)
        reg.set_gauge("/util", 0.9)
        assert reg.value("/util") == 0.9

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            CounterRegistry().value("/missing")

    def test_timer_records_stats(self):
        reg = CounterRegistry()
        for _ in range(3):
            with reg.time("/step"):
                pass
        stats = reg.timer_stats("/step")
        assert stats["count"] == 3
        assert stats["total"] >= 0.0
        assert stats["max"] >= stats["mean"]

    def test_snapshot_and_names(self):
        reg = CounterRegistry()
        reg.increment("a")
        reg.set_gauge("b", 1.0)
        reg.record_time("c", 0.1)
        assert set(reg.names()) == {"a", "b", "c"}
        snap = reg.snapshot()
        assert snap["a"] == 1.0 and snap["c/count"] == 1.0

    def test_reset(self):
        reg = CounterRegistry()
        reg.increment("a")
        reg.reset()
        assert reg.names() == []
