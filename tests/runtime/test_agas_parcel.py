"""AGAS registry, migration, actions; parcels and their handler."""

import numpy as np
import pytest

from repro.runtime import (AgasError, AgasRuntime, Component,
                           EAGER_THRESHOLD, Parcel, ParcelHandler,
                           WorkStealingScheduler, serialized_size)


class Counter(Component):
    def __init__(self):
        super().__init__()
        self.value = 0
        self.moves = []

    def add(self, n):
        self.value += n
        return self.value

    def fail(self):
        raise RuntimeError("action failed")

    def on_migrate(self, old, new):
        self.moves.append((old, new))


class TestAgasRegistry:
    def test_register_assigns_gid(self):
        ag = AgasRuntime(2)
        gid = ag.register(Counter(), locality=1)
        assert gid.msb == 1

    def test_gids_are_unique(self):
        ag = AgasRuntime(1)
        gids = {ag.register(Counter()) for _ in range(100)}
        assert len(gids) == 100

    def test_resolve_returns_component_and_home(self):
        ag = AgasRuntime(3)
        c = Counter()
        gid = ag.register(c, locality=2)
        comp, loc = ag.resolve(gid)
        assert comp is c and loc == 2

    def test_resolve_unknown_gid_raises(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        ag.unregister(gid)
        with pytest.raises(AgasError):
            ag.resolve(gid)

    def test_bad_locality_rejected(self):
        ag = AgasRuntime(2)
        with pytest.raises(AgasError):
            ag.register(Counter(), locality=5)

    def test_components_on_locality(self):
        ag = AgasRuntime(2)
        a = ag.register(Counter(), 0)
        b = ag.register(Counter(), 1)
        assert ag.components_on(0) == [a]
        assert ag.components_on(1) == [b]


class TestMigration:
    def test_gid_survives_migration(self):
        """Sec. 5.2: migrated components stay addressable."""
        ag = AgasRuntime(4)
        c = Counter()
        gid = ag.register(c, 0)
        ag.migrate(gid, 3)
        assert ag.locality_of(gid) == 3
        assert ag.async_action(gid, "add", 1).get() == 1

    def test_migration_hook_called(self):
        ag = AgasRuntime(2)
        c = Counter()
        gid = ag.register(c, 0)
        ag.migrate(gid, 1)
        assert c.moves == [(0, 1)]

    def test_migration_counter(self):
        ag = AgasRuntime(2)
        gid = ag.register(Counter(), 0)
        for _ in range(5):
            ag.migrate(gid, 1)
            ag.migrate(gid, 0)
        assert ag.migrations == 10


class TestActions:
    def test_sync_action(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        assert ag.async_action(gid, "add", 5).get() == 5
        assert ag.async_action(gid, "add", 5).get() == 10

    def test_unknown_action_is_exceptional_future(self):
        """Regression: Sec. 4.1 equivalence — failures arrive through the
        future, never as a synchronous raise."""
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        fut = ag.async_action(gid, "nonexistent")
        assert fut.has_exception()
        with pytest.raises(AgasError, match="no action"):
            fut.get()

    def test_unknown_gid_is_exceptional_future(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        ag.unregister(gid)
        fut = ag.async_action(gid, "add", 1)
        assert fut.has_exception()
        with pytest.raises(AgasError, match="unknown gid"):
            fut.get()

    def test_apply_swallows_and_counts_errors(self):
        """Regression: fire-and-forget must not leak exceptions."""
        from repro.runtime import default_registry
        reg = default_registry()
        before = reg.snapshot().get("/agas/apply-errors", 0.0)
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        ag.unregister(gid)
        ag.apply(gid, "add", 1)          # unknown gid: swallowed
        gid2 = ag.register(Counter())
        ag.apply(gid2, "fail")           # action raises: swallowed
        ag.apply(gid2, "add", 3)         # success still executes
        comp, _ = ag.resolve(gid2)
        assert comp.value == 3
        assert reg.snapshot()["/agas/apply-errors"] == before + 2

    def test_action_exception_in_future(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        with pytest.raises(RuntimeError, match="action failed"):
            ag.async_action(gid, "fail").get()

    def test_async_action_on_scheduler(self):
        with WorkStealingScheduler(2) as sched:
            ag = AgasRuntime(1, executor=sched.post)
            gid = ag.register(Counter())
            futs = [ag.async_action(gid, "add", 1) for _ in range(50)]
            for f in futs:
                f.get()
            comp, _ = ag.resolve(gid)
            assert comp.value == 50


class TestParcels:
    def test_small_parcel_is_eager(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        p = Parcel(gid, "add", (1,))
        assert p.is_eager and not p.uses_rma

    def test_large_array_uses_rma(self):
        """Sec. 5.2: buffers above the eager threshold go through RMA."""
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        big = np.zeros(EAGER_THRESHOLD, dtype=np.float64)
        p = Parcel(gid, "add", (big,))
        assert p.uses_rma and not p.is_eager

    def test_serialized_size_counts_array_bytes(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert serialized_size((arr,)) >= arr.nbytes

    def test_parcel_sequence_numbers_increase(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        a = Parcel(gid, "add", (1,))
        b = Parcel(gid, "add", (1,))
        assert b.seq > a.seq

    def test_handler_delivers_and_counts(self):
        ag = AgasRuntime(1)
        gid = ag.register(Counter())
        h = ParcelHandler(ag)
        assert h.deliver(Parcel(gid, "add", (3,))).get() == 3
        assert h.deliver(Parcel(gid, "add", (4,))).get() == 7
        stats = h.stats()
        assert stats["received"] == 2
        assert stats["per_action"] == {"add": 2}
        assert stats["bytes_received"] > 0
