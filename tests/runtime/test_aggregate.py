"""Work aggregation: slot buffers, flush triggers, launch accounting."""

import pytest

from repro.runtime import (AggregatedOp, AggregationRegion, CudaDevice,
                           StreamPool)
from repro.runtime.counters import default_registry


def make_pool(gpu):
    return StreamPool([gpu])


class TestFlushTriggers:
    def test_buffer_full_auto_flushes(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=2, n_workers=1, name="agg-gpu") as gpu:
            region = AggregationRegion(make_pool(gpu), slots=3)
            futs = [region.submit(lambda x=x: x * 10) for x in range(3)]
            # the third push filled the buffer: launched without flush()
            assert [f.get(timeout=5.0) for f in futs] == [0, 10, 20]
            gpu.synchronize()
        snap = reg.snapshot()
        assert snap.get("/cuda/agg-flush/full") == 1.0
        assert snap.get("/cuda/agg-launches") == 1.0
        assert snap.get("/cuda/agg-tasks") == 3.0

    def test_exit_flushes_the_remainder(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=2, n_workers=1, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=16) as region:
                futs = [region.submit(lambda x=x: -x) for x in range(5)]
            assert [f.get(timeout=5.0) for f in futs] == [0, -1, -2, -3, -4]
            gpu.synchronize()
        snap = reg.snapshot()
        assert snap.get("/cuda/agg-flush/exit") == 1.0
        assert snap.get("/cuda/aggregated-per-launch", None) is None  # gauge
        assert region.launches == 1
        assert region.gpu_tasks == 5

    def test_explicit_flush_and_synchronize(self):
        with CudaDevice(n_streams=2, n_workers=1, name="agg-gpu") as gpu:
            region = AggregationRegion(make_pool(gpu), slots=16)
            f1 = region.submit(lambda: "a")
            region.flush()
            f2 = region.submit(lambda: "b")
            region.synchronize(timeout=5.0)
            assert f1.get(timeout=0.0) == "a"
            assert f2.get(timeout=0.0) == "b"
            assert region.launches == 2
            gpu.synchronize()

    def test_empty_flush_is_a_noop(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=4) as region:
                region.flush()
            region.synchronize()
        assert region.launches == 0
        assert reg.snapshot().get("/cuda/agg-launches", 0.0) == 0.0

    def test_slots_validation(self):
        with pytest.raises(ValueError):
            AggregationRegion(None, slots=0)


class TestOrderingAndIdentity:
    def test_futures_resolve_in_slot_order_across_flushes(self):
        """Determinism contract: per-kernel futures map 1:1 onto slots,
        in push order, however the buffer was cut into launches."""
        with CudaDevice(n_streams=4, n_workers=2, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=4) as region:
                futs = [region.submit(lambda i=i: i) for i in range(11)]
            got = [f.get(timeout=5.0) for f in futs]
            gpu.synchronize()
        assert got == list(range(11))

    def test_cpu_region_runs_inline_in_order(self):
        order = []

        def record(i):
            order.append(i)
            return i

        with AggregationRegion(None, slots=4) as region:
            futs = [region.submit(record, i) for i in range(10)]
        assert [f.get(timeout=0.0) for f in futs] == list(range(10))
        assert order == list(range(10))
        assert region.cpu_tasks == 10
        assert region.launches == 0

    def test_slot_exception_is_isolated(self):
        def boom():
            raise ValueError("slot 1 crashed")

        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=8) as region:
                ok1 = region.submit(lambda: 1)
                bad = region.submit(boom)
                ok2 = region.submit(lambda: 2)
            assert ok1.get(timeout=5.0) == 1
            with pytest.raises(ValueError, match="slot 1"):
                bad.get(timeout=5.0)
            assert ok2.get(timeout=5.0) == 2
            gpu.synchronize()


class TestLaunchAccounting:
    def test_aggregated_launch_counts_every_slot(self):
        """kernels-executed advances by the slot count, not by 1."""
        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=8) as region:
                futs = [region.submit(lambda: None) for _ in range(6)]
            for f in futs:
                f.wait(5.0)
            gpu.synchronize()
            assert gpu.kernels_executed == 6

    def test_on_flush_reports_gpu_and_cpu_placements(self):
        events = []
        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu") as gpu:
            with AggregationRegion(make_pool(gpu), slots=2,
                                   on_flush=lambda g, n: events.append((g, n))
                                   ) as region:
                futs = [region.submit(lambda: 0) for _ in range(2)]
            for f in futs:
                f.wait(5.0)
            gpu.synchronize()
        assert events == [(True, 2)]
        with AggregationRegion(None, slots=2,
                               on_flush=lambda g, n: events.append((g, n))
                               ) as region:
            region.submit(lambda: 0).wait(1.0)
        assert events == [(True, 2), (False, 1)]

    def test_failed_enqueue_falls_back_to_cpu_uncounted(self):
        """A faulting enqueue must not count as a GPU launch (the
        launch-accounting bug this PR fixes): the buffer overflows to
        the CPU and the kernels still complete."""
        reg = default_registry()
        reg.reset()

        class RevokedLease:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def enqueue_aggregated(self, items):
                raise RuntimeError("stream revoked mid-flush")

        class RevokedPool:
            def acquire(self):
                return RevokedLease()

        events = []
        with AggregationRegion(RevokedPool(), slots=4,
                               on_flush=lambda g, n: events.append((g, n))
                               ) as region:
            futs = [region.submit(lambda x=x: x + 1) for x in range(3)]
        assert [f.get(timeout=1.0) for f in futs] == [1, 2, 3]
        assert events == [(False, 3)]  # CPU placement, no GPU launch
        assert region.launches == 0 and region.gpu_tasks == 0
        snap = reg.snapshot()
        assert snap.get("/cuda/agg-enqueue-failed") == 1.0
        assert snap.get("/cuda/agg-launches", 0.0) == 0.0


class TestStreamHealth:
    def test_poison_drawn_per_slot_not_per_launch(self):
        """A sick stream faults individual slots; healthy slots of the
        same aggregated launch still compute."""
        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu",
                        quarantine_threshold=None) as gpu:
            gpu.streams[0].poison(count=2)
            with AggregationRegion(make_pool(gpu), slots=8) as region:
                futs = [region.submit(lambda i=i: i) for i in range(4)]
            outcomes = []
            for f in futs:
                f.wait(5.0)
                outcomes.append(not f.has_exception())
            gpu.synchronize()
        # first two slots drew the poison, the rest computed
        assert outcomes == [False, False, True, True]
        assert futs[2].get(timeout=0.0) == 2

    def test_aggregated_faults_quarantine_the_stream(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="agg-gpu",
                        quarantine_threshold=2,
                        quarantine_period=60.0) as gpu:
            gpu.streams[0].poison()  # permanent
            pool = make_pool(gpu)
            with AggregationRegion(pool, slots=4) as region:
                futs = [region.submit(lambda: 1) for _ in range(2)]
            for f in futs:
                f.wait(5.0)
            gpu.synchronize()
            assert gpu.streams[0].quarantined()
            assert pool.acquire() is None
        assert reg.snapshot().get("/cuda/quarantined") == 1.0


class TestAggregatedOp:
    def test_len_and_trace_name(self):
        op = AggregatedOp([(lambda: 1, ()), (lambda: 2, ())])
        assert len(op) == 2
        assert getattr(op, "__name__") == "aggregated-op"
