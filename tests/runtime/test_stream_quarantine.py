"""Stream health: fault streaks, quarantine, probation, poison."""

import time

import pytest

from repro.core.exec import ExecutionEngine
from repro.resilience.faults import TransientActionFault
from repro.runtime import CudaDevice, StreamPool
from repro.runtime.counters import default_registry


def run_kernel(pool, fn):
    """Acquire-enqueue-wait one kernel through the pool; returns future."""
    lease = pool.acquire()
    assert lease is not None
    with lease:
        fut = lease.enqueue(fn)
    fut.wait(5.0)
    return fut


def boom():
    raise RuntimeError("kernel crashed")


class TestQuarantine:
    def test_consecutive_faults_quarantine_the_stream(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=2,
                        quarantine_period=60.0) as gpu:
            pool = StreamPool([gpu])
            for _ in range(2):
                assert run_kernel(pool, boom).has_exception()
            gpu.synchronize()
            assert gpu.streams[0].quarantined()
            assert pool.acquire() is None  # the only stream is sick
            assert reg.snapshot()["/cuda/quarantined"] == 1.0

    def test_success_resets_the_streak(self):
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=2,
                        quarantine_period=60.0) as gpu:
            pool = StreamPool([gpu])
            assert run_kernel(pool, boom).has_exception()
            assert run_kernel(pool, lambda: 1).get() == 1  # streak broken
            assert run_kernel(pool, boom).has_exception()
            gpu.synchronize()
            assert not gpu.streams[0].quarantined()

    def test_probation_readmits_then_requarantines_on_one_fault(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=2,
                        quarantine_period=0.05) as gpu:
            pool = StreamPool([gpu])
            for _ in range(2):
                run_kernel(pool, boom)
            gpu.synchronize()
            assert pool.acquire() is None
            time.sleep(0.08)  # quarantine served: probation re-admission
            fut = run_kernel(pool, boom)  # ONE fault on probation
            assert fut.has_exception()
            gpu.synchronize()
            assert gpu.streams[0].quarantined()
            snap = reg.snapshot()
            assert snap["/cuda/quarantined"] == 2.0
            assert snap["/cuda/readmitted"] == 1.0

    def test_probation_success_restores_full_threshold(self):
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=2,
                        quarantine_period=0.05) as gpu:
            pool = StreamPool([gpu])
            for _ in range(2):
                run_kernel(pool, boom)
            gpu.synchronize()
            time.sleep(0.08)
            assert run_kernel(pool, lambda: "ok").get() == "ok"
            # back to the full threshold: one fault is not enough
            run_kernel(pool, boom)
            gpu.synchronize()
            assert not gpu.streams[0].quarantined()

    def test_quarantined_stream_overflows_to_cpu(self):
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=1,
                        quarantine_period=60.0) as gpu:
            eng = ExecutionEngine(device=gpu)
            eng.submit(boom).wait(5.0)
            gpu.synchronize()
            # the only stream is now quarantined: work still completes,
            # via the CPU-overflow half of the launch policy
            assert eng.submit(lambda: 5).get(timeout=5.0) == 5
            assert eng.cpu_launches >= 1

    def test_threshold_none_disables_tracking(self):
        with CudaDevice(n_streams=1, n_workers=1, name="q-gpu",
                        quarantine_threshold=None) as gpu:
            pool = StreamPool([gpu])
            for _ in range(5):
                run_kernel(pool, boom)
            gpu.synchronize()
            assert not gpu.streams[0].quarantined()
            lease = pool.acquire()
            assert lease is not None
            lease.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            CudaDevice(n_streams=1, quarantine_threshold=0)
        with pytest.raises(ValueError):
            CudaDevice(n_streams=1, quarantine_period=0.0)


class TestPoison:
    def test_poison_count_surfaces_transient_faults(self):
        with CudaDevice(n_streams=1, n_workers=1, name="p-gpu",
                        quarantine_threshold=None) as gpu:
            gpu.streams[0].poison(count=2)
            pool = StreamPool([gpu])
            for _ in range(2):
                fut = run_kernel(pool, lambda: 1)
                with pytest.raises(TransientActionFault):
                    fut.get()
            # poison exhausted: the stream computes again
            assert run_kernel(pool, lambda: 1).get() == 1

    def test_permanent_poison_quarantines(self):
        reg = default_registry()
        reg.reset()
        with CudaDevice(n_streams=2, n_workers=1, name="p-gpu",
                        quarantine_threshold=2,
                        quarantine_period=60.0) as gpu:
            gpu.streams[0].poison()  # forever
            eng = ExecutionEngine(device=gpu)
            # keep submitting; the poisoned stream faults its way into
            # quarantine while stream 1 and the CPU absorb the work
            results = []
            for i in range(12):
                fut = eng.submit(lambda i=i: i)
                try:
                    results.append(fut.get(timeout=5.0))
                except TransientActionFault:
                    pass
            gpu.synchronize()
            assert gpu.streams[0].quarantined()
            assert not gpu.streams[1].quarantined()
            assert reg.snapshot()["/cuda/quarantined"] == 1.0

    def test_custom_poison_exception(self):
        with CudaDevice(n_streams=1, n_workers=1, name="p-gpu",
                        quarantine_threshold=None) as gpu:
            gpu.streams[0].poison(
                count=1, exc_factory=lambda: OSError("xid error"))
            pool = StreamPool([gpu])
            fut = run_kernel(pool, lambda: 0)
            with pytest.raises(OSError, match="xid"):
                fut.get()
