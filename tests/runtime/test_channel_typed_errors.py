"""Typed channel error hierarchy and close/reset semantics."""

import pytest

from repro.runtime import (Channel, ChannelClosed, ChannelError,
                           ChannelGenerationError, ChannelReset)


def test_error_hierarchy():
    assert issubclass(ChannelClosed, ChannelError)
    assert issubclass(ChannelReset, ChannelClosed)
    assert issubclass(ChannelGenerationError, ChannelError)
    # backwards compatibility: generic handlers keep working
    assert issubclass(ChannelError, RuntimeError)
    assert issubclass(ChannelGenerationError, ValueError)


@pytest.mark.sanitize_tolerated


def test_set_after_close_is_typed_and_descriptive():
    ch = Channel("halo-x")
    ch.close()
    with pytest.raises(ChannelClosed) as exc:
        ch.set(1, generation=4)
    assert "halo-x" in str(exc.value)
    assert "generation=4" in str(exc.value)


@pytest.mark.sanitize_tolerated


def test_double_set_raises_generation_error():
    ch = Channel("halo-y")
    ch.set(1, generation=0)
    with pytest.raises(ChannelGenerationError, match="already set"):
        ch.set(2, generation=0)
    # legacy callers catching ValueError still work
    with pytest.raises(ValueError):
        ch.set(2, generation=0)


def test_reset_delivers_channel_reset_not_plain_closed():
    ch = Channel("halo-z")
    pending = ch.get(3)
    ch.reset()
    with pytest.raises(ChannelReset):
        pending.get()
    # reset reopened the channel: generation reuse is sanctioned
    ch.set(9, generation=3)
    assert ch.get(3).get() == 9


def test_close_delivers_closed_not_reset():
    ch = Channel("halo-w")
    pending = ch.get(0)
    ch.close()
    with pytest.raises(ChannelClosed) as exc:
        pending.get()
    assert not isinstance(exc.value, ChannelReset)
    with pytest.raises(ChannelClosed):
        ch.get(1)


def test_close_still_drains_buffered_generations():
    ch = Channel("halo-v")
    ch.set(5, generation=0)
    ch.close()
    assert ch.get(0).get() == 5
