"""Regression: a failed ``Channel.get`` must not burn a generation.

The old ``get()`` advanced ``_next_get`` before the closed-channel check
raised, so a get that failed with :class:`ChannelClosed` consumed its
generation number anyway — and a later default-generation get skipped
past a value still buffered at a lower generation, never draining it.
"""

import pytest

from repro.runtime.channel import Channel, ChannelClosed


class TestClosedGetDoesNotBurnGeneration:
    def test_buffered_value_still_drains_after_failed_explicit_get(self):
        ch = Channel(name="halo")
        ch.set("a", generation=0)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.get(generation=7)
        # the old code had advanced the cursor to 8 here, so this default
        # get asked for generation 8 and raised forever; the buffered
        # value at generation 0 was unreachable
        assert ch.get().get() == "a"

    def test_default_cursor_unmoved_by_failed_get(self):
        ch = Channel(name="halo")
        ch.set("late", generation=1)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.get()  # default generation 0 is unmatched -> closed
        # generation 1 must still be the next drainable value
        assert ch.get(generation=1).get() == "late"

    def test_repeated_failed_gets_stay_at_same_generation(self):
        ch = Channel(name="halo")
        ch.close()
        for _ in range(3):
            with pytest.raises(ChannelClosed):
                ch.get()
        ch.reset()
        ch.set("fresh")  # default set: generation 0
        assert ch.get().get() == "fresh"

    def test_successful_gets_still_advance_in_order(self):
        ch = Channel(name="halo")
        ch.set("a", generation=0)
        ch.set("b", generation=1)
        ch.close()
        assert ch.get().get() == "a"
        assert ch.get().get() == "b"
        with pytest.raises(ChannelClosed):
            ch.get()
