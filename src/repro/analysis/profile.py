"""Counter-snapshot aggregation and the runnable profiling harness.

APEX gives Octo-Tiger "access to performance data, such as core
utilization, task overheads, and network throughput" (Sec. 4.1).  This
module is the reporting end of our substitute: it turns a
:class:`~repro.runtime.counters.CounterRegistry` snapshot into the
utilization / GPU-launch-percentage tables EXPERIMENTS.md quotes, and
bundles a runnable scenario so

    python -m repro.analysis.profile

exercises the whole instrumented runtime stack (work-stealing scheduler,
futures, simulated CUDA streams + launch policy, parcelport cost models,
distributed step model), then writes ``trace.json`` (Chrome trace-event
format, loadable in ``chrome://tracing`` / Perfetto) and prints the
counters report.
"""

from __future__ import annotations

import argparse
import os
from typing import Any

import numpy as np

from ..runtime import trace
from ..runtime import future as future_mod
from ..runtime.counters import CounterRegistry, default_registry
from .tables import format_table

__all__ = ["group_snapshot", "format_report", "run_example_scenario", "main"]


def group_snapshot(snapshot: dict[str, float]) -> dict[str, dict[str, float]]:
    """Group a flat registry snapshot by top-level counter prefix.

    ``{"/threads/executed": 10, "/cuda/launch/gpu": 3}`` becomes
    ``{"threads": {"executed": 10}, "cuda": {"launch/gpu": 3}}``.
    """
    groups: dict[str, dict[str, float]] = {}
    for name, value in snapshot.items():
        parts = name.lstrip("/").split("/", 1)
        head = parts[0]
        tail = parts[1] if len(parts) > 1 else ""
        groups.setdefault(head, {})[tail] = value
    return groups


def _pct(x: float) -> str:
    return f"{100.0 * x:.2f}%"


def format_report(registry: CounterRegistry | None = None) -> str:
    """Render the counters of ``registry`` as the EXPERIMENTS-style tables."""
    registry = registry or default_registry()
    snap = registry.snapshot()
    groups = group_snapshot(snap)
    sections: list[str] = []

    threads = groups.get("threads")
    if threads:
        rows = []
        for key in ("posted", "executed", "stolen", "rejected",
                    "idle-sleeps"):
            if key in threads:
                rows.append([key, int(threads[key])])
        if "steal-rate" in threads:
            rows.append(["steal-rate", _pct(threads["steal-rate"])])
        if "idle-rate" in threads:
            rows.append(["idle-rate", _pct(threads["idle-rate"])])
        sections.append(format_table(
            ["counter", "value"], rows, title="scheduler (/threads)"))
        workers = sorted((k, v) for k, v in threads.items()
                         if k.startswith("worker/"))
        if workers:
            total = max(sum(v for _, v in workers), 1.0)
            rows = [[k.split("/")[1], int(v), _pct(v / total)]
                    for k, v in workers]
            sections.append(format_table(
                ["worker", "executed", "share"], rows,
                title="per-worker utilization"))

    cuda = groups.get("cuda")
    if cuda:
        launch = {k.split("/", 1)[1]: v for k, v in cuda.items()
                  if k.startswith("launch/")}
        if launch:
            rows = [["gpu", int(launch.get("gpu", 0))],
                    ["cpu-fallback", int(launch.get("cpu", 0))],
                    ["gpu-launch %", _pct(launch.get("gpu-fraction", 0.0))]]
            sections.append(format_table(
                ["launch target", "count"], rows,
                title="kernel launch policy (/cuda/launch) — "
                      "the Sec. 6.1.2 statistic"))
        launched = {k.split("/", 1)[1]: v for k, v in cuda.items()
                    if k.startswith("launched/")}
        if launched:
            gpu = launched.get("gpu", 0.0)
            cpu = launched.get("cpu", 0.0)
            total = gpu + cpu
            rows = [["gpu stream", int(gpu)],
                    ["cpu overflow", int(cpu)],
                    ["gpu-launch %", _pct(gpu / total if total else 0.0)]]
            if "leases-reclaimed" in cuda:
                rows.append(["leases reclaimed",
                             int(cuda["leases-reclaimed"])])
            sections.append(format_table(
                ["placement", "count"], rows,
                title="execution engine placement (/cuda/launched) — "
                      "live-solve launch ratio"))
        if "agg-launches" in cuda or "aggregated-per-launch" in cuda:
            rows = [
                ["aggregated launches", int(cuda.get("agg-launches", 0))],
                ["kernels carried", int(cuda.get("agg-tasks", 0))],
                ["tasks per launch",
                 f"{cuda.get('aggregated-per-launch', 0.0):.1f}"],
                ["buffer-full flushes", int(cuda.get("agg-flush/full", 0))],
                ["region-exit flushes", int(cuda.get("agg-flush/exit", 0))],
                ["enqueue failures", int(cuda.get("agg-enqueue-failed", 0))],
            ]
            sections.append(format_table(
                ["counter", "value"], rows,
                title="work aggregation (/cuda) — slot-buffer coalescing "
                      "(arXiv 2210.06438)"))
        health_keys = ("quarantined", "readmitted", "leases-reclaimed")
        if any(k in cuda for k in health_keys):
            rows = [[k, int(cuda.get(k, 0))] for k in health_keys]
            sections.append(format_table(
                ["event", "count"], rows,
                title="stream health (/cuda) — quarantine & lease "
                      "reclamation"))
        devices = sorted({k.split("/")[0] for k in cuda
                          if not k.startswith(("launch/", "launched/",
                                               "agg-flush/"))
                          and "/" in k})
        rows = []
        for dev in devices:
            rows.append([dev,
                         int(cuda.get(f"{dev}/kernels-executed", 0)),
                         int(cuda.get(f"{dev}/streams", 0))])
        if rows:
            sections.append(format_table(
                ["device", "kernels", "streams"], rows,
                title="devices (/cuda)"))

    parcels = groups.get("parcels")
    if parcels:
        ports = sorted({k.split("/")[0] for k in parcels})
        rows = []
        for port in ports:
            def get(key: str, port: str = port) -> float:
                return parcels.get(f"{port}/{key}", 0.0)
            rows.append([
                port, int(get("messages")), int(get("bytes")),
                _pct(get("eager-fraction")),
                int(get("rendezvous")), int(get("rma")),
                get("sender_cpu"), get("wire"), get("receiver_cpu"),
            ])
        sections.append(format_table(
            ["port", "messages", "bytes", "eager", "rendezvous", "rma",
             "sender-cpu s", "wire s", "receiver-cpu s"], rows,
            title="parcelport cost components (/parcels)"))

    dmesh = groups.get("distmesh")
    if dmesh:
        locs = sorted((k, v) for k, v in dmesh.items()
                      if k.startswith("blocks/"))
        if locs:
            rows = [[k.split("/")[1], int(v)] for k, v in locs]
            if "localities" in dmesh:
                rows.append(["localities", int(dmesh["localities"])])
            if "migrations" in dmesh or "block-migrations" in dmesh:
                rows.append(["block migrations",
                             int(dmesh.get("block-migrations",
                                           dmesh.get("migrations", 0)))])
            sections.append(format_table(
                ["locality", "blocks"], rows,
                title="block placement (/distmesh/blocks) — AGAS-sharded "
                      "sub-grids"))
        halo_rows = []
        for key in ("sets", "gets", "local-msgs", "local-bytes",
                    "remote-msgs", "remote-bytes", "onesided-msgs",
                    "onesided-bytes", "eager", "rendezvous", "rma",
                    "reordered"):
            full = f"halo/{key}"
            if full in dmesh:
                halo_rows.append([key, int(dmesh[full])])
        if halo_rows:
            sections.append(format_table(
                ["counter", "value"], halo_rows,
                title="distributed halo traffic (/distmesh/halo) — "
                      "local fast path vs parcelport-charged"))

    res = groups.get("resilience")
    if res:
        subgroups: dict[str, list[list]] = {}
        for key, value in sorted(res.items()):
            head, _, tail = key.partition("/")
            if not tail:  # top-level counter like /resilience/backoff-seconds
                head, tail = "(misc)", head
            subgroups.setdefault(head, []).append([tail, round(value, 6)])
        order = ("injected", "parcels", "tasks", "steps", "health",
                 "checkpoint", "ckpt", "agas")
        rows = []
        for head in sorted(subgroups, key=lambda h: (
                order.index(h) if h in order else len(order), h)):
            for name, value in subgroups[head]:
                rows.append([head, name, value])
        sections.append(format_table(
            ["layer", "counter", "value"], rows,
            title="resilience (/resilience) — injected faults and "
                  "recoveries"))

    recovery = groups.get("recovery")
    if recovery:
        rows = []
        for key in ("global-rollbacks", "elastic-restarts",
                    "components-migrated", "components-restored",
                    "blocks-fetched", "bytes-fetched", "generation",
                    "localities-remaining"):
            if key in recovery:
                rows.append([key, int(recovery[key])])
        for key, value in sorted(recovery.items()):
            if not any(row[0] == key for row in rows):
                rows.append([key, round(value, 6)])
        sections.append(format_table(
            ["counter", "value"], rows,
            title="global rollback & elastic restart (/recovery) — "
                  "verified-generation restore over the survivors"))

    futures = groups.get("futures")
    if futures:
        rows = [[k, int(v)] for k, v in sorted(futures.items())]
        sections.append(format_table(
            ["counter", "value"], rows, title="futures (/futures)"))

    sim = groups.get("simulator")
    if sim:
        rows = [[k, v] for k, v in sorted(sim.items())]
        sections.append(format_table(
            ["counter", "value"], rows, title="step model (/simulator)"))

    san = groups.get("sanitize")
    if san:
        race = {k.split("/", 1)[1]: v for k, v in san.items()
                if k.startswith("race/")}
        sched = {k.split("/", 1)[1]: v for k, v in san.items()
                 if k.startswith("schedules/")}
        findings = {k: v for k, v in san.items()
                    if not k.startswith(("race/", "schedules/"))}
        if findings:
            rows = [[k, int(v)] for k, v in sorted(findings.items())]
            sections.append(format_table(
                ["counter", "value"], rows,
                title="sanitizers (/sanitize) — findings by hazard kind"))
        if race:
            rows = [[k, int(race[k])] for k in
                    ("accesses", "hb-edges", "races", "buffers-tracked")
                    if k in race]
            rows += [[k, int(v)] for k, v in sorted(race.items())
                     if not any(r[0] == k for r in rows)]
            sections.append(format_table(
                ["counter", "value"], rows,
                title="race detector (/sanitize/race) — shadow accesses "
                      "vs happens-before edges"))
        if sched:
            rows = [[k, int(sched[k])] for k in
                    ("active", "seed", "perturbations", "permutations")
                    if k in sched]
            rows += [[k, int(v)] for k, v in sorted(sched.items())
                     if not any(r[0] == k for r in rows)]
            sections.append(format_table(
                ["counter", "value"], rows,
                title="schedule explorer (/sanitize/schedules) — seeded "
                      "perturbations (replay: REPRO_SCHEDULE_SEED)"))

    if not sections:
        return "(no counters recorded)"
    return "\n\n".join(sections)


# -- the runnable scenario ---------------------------------------------------

def _call_kernel(kernel):
    """Invoke a prepared zero-argument kernel (engine task body)."""
    return kernel()


def run_example_scenario(registry: CounterRegistry | None = None,
                         n_kernels: int = 192, n_streams: int = 16,
                         n_gpu_workers: int = 4, n_cpu_workers: int = 4,
                         pair_batch: int = 2000,
                         step_nodes: tuple[int, ...] = (2, 16, 64),
                         tree_level: int = 13,
                         seed: int = 1) -> dict[str, Any]:
    """Run the quickstart profiling scenario through the full runtime stack.

    A batch of monopole FMM kernels is launched through the paper's
    GPU-else-CPU policy with continuation chaining on a work-stealing
    scheduler (the Sec. 5.1 node model); the same kernels are then
    re-dispatched through an :class:`~repro.core.exec.ExecutionEngine`,
    whose aggregation regions coalesce them into slot-buffer launches
    (the ``/cuda/aggregated-per-launch`` statistic of the report);
    finally the distributed step model evaluates a few node counts over
    both parcelports (the Sec. 6.3 cost model).  All components publish
    their counters into ``registry``.
    """
    from ..core.exec import ExecutionEngine
    from ..core.gravity.kernels import p2p_pair
    from ..network.parcelport import PARCELPORTS
    from ..network import parcelport as parcelport_mod
    from ..runtime import (CudaDevice, LaunchPolicy, StreamPool,
                           WorkStealingScheduler, when_all)
    from ..simulator.distributed import StepModel
    from ..simulator.scaling import cached_profile
    from ..simulator.platforms import PIZ_DAINT

    registry = registry or default_registry()
    rng = np.random.default_rng(seed)

    def make_kernel():
        dR = rng.normal(size=(pair_batch, 3)) * 6 + 5
        mA = rng.uniform(0.5, 2.0, pair_batch)
        mB = rng.uniform(0.5, 2.0, pair_batch)

        def fmm_monopole_kernel():
            return p2p_pair(dR, mA, mB)[0].sum()
        return fmm_monopole_kernel

    kernels = [make_kernel() for _ in range(n_kernels)]

    with CudaDevice(n_streams=n_streams, n_workers=n_gpu_workers,
                    name="sim-gpu") as gpu, \
            WorkStealingScheduler(n_cpu_workers) as cpu:
        policy = LaunchPolicy(StreamPool([gpu]))
        with trace.span("gravity-solve", "phase"):
            sends = []
            for i, kern in enumerate(kernels):
                fut = policy.launch(kern)
                sends.append(fut.then(lambda f, i=i: (i, f.get()),
                                      executor=cpu.post))
            results = when_all(sends).get()
            total = sum(f.get()[1] for f in results)
        cpu.wait_idle(timeout=30.0)
        engine = ExecutionEngine(scheduler=cpu, device=gpu,
                                 registry=registry)
        with trace.span("aggregated-solve", "phase"):
            agg_futs = engine.map(_call_kernel, [(k,) for k in kernels])
            agg_total = sum(f.get(timeout=30.0) for f in agg_futs)
        engine.synchronize()
        cpu.publish_counters(registry)
        gpu.publish_counters(registry)
        policy.publish_counters(registry)
        engine.publish_counters(registry)

    with trace.span("step-model", "phase"):
        profile = cached_profile(tree_level)
        model = StepModel(profile, PIZ_DAINT, registry=registry)
        step_results = {}
        for port_name, port in PARCELPORTS.items():
            for n in step_nodes:
                step_results[(port_name, n)] = model.step_time(n, port)

    future_mod.publish_counters(registry)
    parcelport_mod.publish_counters(registry)
    from .. import sanitize
    if sanitize.enabled():
        sanitize.publish_counters(registry)
    return {
        "kernel_sum": float(total),
        "aggregated_sum": float(agg_total),
        "gpu_launches": policy.gpu_launches,
        "cpu_launches": policy.cpu_launches,
        "aggregated_launches": engine.agg_launches,
        "aggregated_per_launch": engine.aggregated_per_launch,
        "step_results": step_results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.profile",
        description="Run the instrumented quickstart scenario; write a "
                    "Chrome trace and print the counters report.")
    parser.add_argument("--out", default=".",
                        help="output directory for trace.json (default: .)")
    parser.add_argument("--kernels", type=int, default=192,
                        help="FMM kernel launches in the node phase")
    parser.add_argument("--level", type=int, default=13,
                        help="octree refinement level for the step model")
    parser.add_argument("--no-trace", action="store_true",
                        help="skip span recording (counters only)")
    args = parser.parse_args(argv)

    registry = default_registry()
    registry.reset()
    if not args.no_trace:
        trace.clear()
        trace.enable()
    try:
        outcome = run_example_scenario(registry, n_kernels=args.kernels,
                                       tree_level=args.level)
    finally:
        trace.disable()

    report = format_report(registry)
    print(report)
    print()
    from .. import sanitize
    if sanitize.enabled():
        sanitize.sweep()
        print(sanitize.report())
        print()
    print(f"gravity phase: {outcome['gpu_launches']} GPU / "
          f"{outcome['cpu_launches']} CPU kernel launches, "
          f"reduction = {outcome['kernel_sum']:.3f}")
    print(f"aggregated phase: {outcome['aggregated_launches']} slot-buffer "
          f"launches, {outcome['aggregated_per_launch']:.1f} kernels per "
          f"launch (/cuda/aggregated-per-launch)")

    if not args.no_trace:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "trace.json")
        n_events = trace.export_chrome(path)
        print(f"wrote {n_events} trace events to {path} "
              "(load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
