"""FMM kernel flop accounting — the paper's own constants (Sec. 4.3).

"Each kernel launch applies a 1074 element stencil for each cell of the
octree's sub-grid.  As we have N^3 = 512 cells per sub-grid, this results
in 549 888 interactions per kernel launch. ... For monopole-monopole
interactions we execute 12 floating point operations per interaction, and
for multipole-multipole/monopole interaction 455 floating point
operations."

These constants drive both the Table 2 GFLOP/s methodology (count kernel
launches, multiply by constant flops, divide by measured kernel time) and
the scaling simulator's per-sub-grid work model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "STENCIL_SIZE", "CELLS_PER_SUBGRID", "INTERACTIONS_PER_LAUNCH",
    "FLOPS_PER_MONOPOLE_INTERACTION", "FLOPS_PER_MULTIPOLE_INTERACTION",
    "MONOPOLE_KERNEL_FLOPS", "MULTIPOLE_KERNEL_FLOPS",
    "OTHER_FLOPS_PER_SUBGRID", "KernelCounts", "fmm_flops_per_solve",
]

#: same-level interaction stencil size (Sec. 4.3)
STENCIL_SIZE = 1074
#: 8^3 cells per octree sub-grid
CELLS_PER_SUBGRID = 512
#: 512 x 1074
INTERACTIONS_PER_LAUNCH = CELLS_PER_SUBGRID * STENCIL_SIZE
assert INTERACTIONS_PER_LAUNCH == 549_888

FLOPS_PER_MONOPOLE_INTERACTION = 12
FLOPS_PER_MULTIPOLE_INTERACTION = 455

#: flops of one monopole-monopole kernel launch (6.6 MFlop)
MONOPOLE_KERNEL_FLOPS = INTERACTIONS_PER_LAUNCH * FLOPS_PER_MONOPOLE_INTERACTION
#: flops of one multipole-multipole/monopole kernel launch (250.2 MFlop)
MULTIPOLE_KERNEL_FLOPS = INTERACTIONS_PER_LAUNCH * FLOPS_PER_MULTIPOLE_INTERACTION

#: calibrated non-FMM (hydro + tree traversal + reconstruction) work per
#: sub-grid per gravity solve, chosen so the FMM's share of total runtime
#: lands at the paper's ~40% on AVX2 CPUs (Sec. 4.3, Table 2)
OTHER_FLOPS_PER_SUBGRID = 8.75e6


@dataclass(frozen=True)
class KernelCounts:
    """Kernel launches for one gravity solve over a tree.

    Interior (refined) sub-grids hold multipoles and launch the combined
    multipole kernel; leaves hold monopoles and launch the monopole-
    monopole kernel.  The monopole-multipole kernel is ~2% of runtime and
    ignored, as in the paper.
    """

    multipole_launches: int
    monopole_launches: int

    @property
    def total_launches(self) -> int:
        return self.multipole_launches + self.monopole_launches

    @property
    def flops(self) -> float:
        return (self.multipole_launches * MULTIPOLE_KERNEL_FLOPS
                + self.monopole_launches * MONOPOLE_KERNEL_FLOPS)


def fmm_flops_per_solve(n_interior: int, n_leaves: int) -> float:
    """Total FMM flops for one gravity solve over a tree."""
    return KernelCounts(n_interior, n_leaves).flops
