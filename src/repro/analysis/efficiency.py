"""Speedup and parallel-efficiency arithmetic for the scaling study."""

from __future__ import annotations

__all__ = ["speedup", "parallel_efficiency", "weak_efficiency"]


def speedup(rate: float, reference_rate: float) -> float:
    """Throughput ratio w.r.t. the single-node reference (Fig. 2 y-axis)."""
    if reference_rate <= 0:
        raise ValueError("reference rate must be positive")
    return rate / reference_rate


def parallel_efficiency(rate: float, n_nodes: int,
                        reference_rate: float) -> float:
    """rate / (N x reference); the paper's '% of the efficiency of the
    reference value of level 14 on 1 node' (Sec. 6.3)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    return speedup(rate, reference_rate) / n_nodes

weak_efficiency = parallel_efficiency
