"""Repo-specific AST lint pass (the static prong of the sanitizers).

Generic linters cannot know that this codebase's scheduler deadlocks when
a worker blocks on an unbounded ``Future.get``, or that counter names
must live under a registered section.  This module encodes those
invariants as AST rules and runs them over the source tree::

    python -m repro.analysis.lint src          # exit 0 when clean
    python -m repro.analysis.lint --rules      # rule catalogue

Rules
-----

REPRO001 *blocking-get-in-task*
    An unbounded ``.get()`` / ``.result()`` call inside a thunk posted to
    the scheduler (``post`` / ``post_batch`` / ``submit``).  A worker
    blocking on an unresolved future is a lost core at best and — when
    every worker does it — a deadlock; compose with ``then`` /
    ``dataflow`` or pass a timeout instead.  (Checked on inline lambdas;
    a thunk defined elsewhere is out of static reach — the dynamic
    ``blocked-worker`` checker covers it at runtime.)

REPRO002 *unguarded-lease*
    A ``StreamPool.acquire()`` result bound to a name that is neither
    used as a context manager nor released in a ``finally`` block in the
    same function.  An exception between acquire and enqueue then leaks
    the reservation until the lease timeout reclaims it.

REPRO003 *nondeterminism-in-kernel*
    Wall-clock (``time.time`` / ``time.time_ns``) or random-number calls
    in ``core/`` — the solver layer is bit-identical by contract
    (futurized and serial executions must produce the same bits), so
    kernels must not read nondeterministic sources.

REPRO004 *unknown-counter-section*
    A counter-name literal ``/section/...`` whose first component is not
    registered in :data:`repro.runtime.counters.KNOWN_SECTIONS`.  A typo
    such as ``/thread/executed`` silently creates a parallel section no
    dashboard aggregates; new sections must be registered deliberately.

REPRO005 *bare-except*
    A bare ``except:`` in ``runtime/`` or ``resilience/``.  The runtime
    redistributes failures on purpose (futures carry exceptions, the
    supervisor replays tasks); a bare except also traps
    ``KeyboardInterrupt``/``SystemExit`` and turns shutdown into a hang.
    Catch a concrete type, or ``BaseException`` *with* re-dispatch.

REPRO006 *unaggregated-enqueue*
    A direct ``lease.enqueue(...)`` / ``stream.enqueue_aggregated(...)``
    call in ``core/``.  Solver-layer kernel launches must go through an
    :class:`repro.runtime.aggregate.AggregationRegion` (usually via
    :meth:`repro.core.exec.ExecutionEngine.map`) so they are coalesced
    into aggregated launches and counted by the engine's placement
    accounting; a bypassing enqueue is an unaggregated, uncounted launch.

REPRO007 *unaccounted-channel-set*
    A direct ``Channel.set(...)`` in a ``core/`` module that imports from
    ``repro.network``.  Such a module is distribution-aware: its halos may
    cross localities, and a direct set bypasses the
    :class:`repro.network.transport.HaloTransport` local/remote split —
    the parcelport is never charged, and the ``/distmesh/*`` vs
    ``/parcels/*`` reconciliation silently rots.  Route every send
    through the transport (``transport.send(channel, ...)``).  The
    node-level ``core/mesh.py`` does not import the network layer and is
    deliberately out of scope.

REPRO008 *alloc-in-hot-kernel*
    An ``np.empty`` / ``np.zeros`` / ``np.empty_like`` /
    ``np.zeros_like`` / ``np.concatenate`` call in a ``core/gravity/``
    or ``core/hydro/`` function that takes an ``out=`` or ``ws``
    (workspace) parameter, outside any branch conditioned on those
    parameters.  Such functions are the per-step hot kernels: when the
    caller supplies scratch, allocating anyway reintroduces exactly the
    per-stage churn the workspace plumbing removed.  Allocation is fine
    in the fallback branch for workspace-less callers (``if ws is
    None: ...`` / ``x if out is not None else np.empty(...)``) — the
    rule only fires on unconditional allocations.  Reference kernels
    without an ``out=``/``ws`` parameter are out of scope by
    construction.

REPRO009 *unverified-checkpoint-record*
    Checkpoint records must round-trip through the verified store API of
    ``resilience/checkpoint.py``: constructing a ``MeshCheckpoint``
    directly bypasses checksum stamping (the record would never fail
    verification, however damaged), and mutating a manager's
    ``_checkpoints`` list — append/pop/assignment/deletion — bypasses
    the write-then-commit protocol and the fallback accounting.  Both
    are flagged everywhere outside ``resilience/checkpoint.py``;
    snapshot through ``CheckpointManager.save`` and restore through
    ``restore_latest``.

REPRO010 *unsanitized-task-buffer-write*
    A ``core/`` function that is dispatched as an engine/scheduler task
    (its name appears as the callable argument of some ``.map(...)`` /
    ``.submit(...)`` call anywhere in the linted tree) mutates an
    engine-owned buffer — an ``out``/``outs`` parameter, a buffer taken
    from a workspace (``ws.take(...)``, ``self._ws...``) or the
    futurized output pool (``_pool_out``), or any local alias of one —
    via subscript assignment, in-place ``+=``, or ``np.copyto``,
    without declaring a single shadow access
    (:func:`repro.sanitize.racecheck.access`) anywhere in its body.
    Such writes run concurrently on worker threads; without the paired
    ``sanitize.access`` declaration the race detector is blind to them,
    so an aliasing bug between two tasks would ship silently.  Declaring
    one access in the function (``_racecheck.access(buf, "w", ...)``)
    brings every buffer it touches under the happens-before check and
    silences the rule.  (Collection is a two-pass affair: ``lint_paths``
    first gathers dispatched-callable names over the whole tree, then
    lints each file against that set; single-file ``lint_source`` runs
    collect the same-file dispatches only.)
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..runtime.counters import KNOWN_SECTIONS

__all__ = ["Violation", "RULES", "lint_source", "lint_file", "lint_paths",
           "main"]


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and what to do about it."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


#: rule id -> (slug, one-line description) — the ``--rules`` catalogue
RULES: dict[str, tuple[str, str]] = {
    "REPRO001": ("blocking-get-in-task",
                 "unbounded .get()/.result() inside a thunk posted to the "
                 "scheduler stalls a worker; use then/dataflow or a timeout"),
    "REPRO002": ("unguarded-lease",
                 "StreamPool.acquire() result must be guarded by `with` or "
                 "released in a finally block"),
    "REPRO003": ("nondeterminism-in-kernel",
                 "core/ kernels are bit-identical by contract: no wall-clock "
                 "or random-number reads"),
    "REPRO004": ("unknown-counter-section",
                 "counter names are /section/name with a registered section "
                 "(see repro.runtime.counters.KNOWN_SECTIONS)"),
    "REPRO005": ("bare-except",
                 "bare `except:` in runtime/ or resilience/ swallows "
                 "shutdown signals; name the exception type"),
    "REPRO006": ("unaggregated-enqueue",
                 "direct lease/stream enqueue in core/ bypasses the work-"
                 "aggregation region; route kernels through "
                 "ExecutionEngine.map / AggregationRegion"),
    "REPRO007": ("unaccounted-channel-set",
                 "direct Channel.set in a network-aware core/ module "
                 "bypasses the parcelport accounting; send halos through "
                 "HaloTransport.send"),
    "REPRO008": ("alloc-in-hot-kernel",
                 "core/gravity/ and core/hydro/ kernels taking out=/ws "
                 "must not allocate unconditionally via np.empty/np.zeros/"
                 "np.concatenate; allocate only in the no-workspace branch"),
    "REPRO009": ("unverified-checkpoint-record",
                 "checkpoint records round-trip through the verified store: "
                 "no MeshCheckpoint construction or _checkpoints mutation "
                 "outside resilience/checkpoint.py"),
    "REPRO010": ("unsanitized-task-buffer-write",
                 "core/ task bodies mutating engine-owned buffers (out=/ws/"
                 "_pool_out and aliases) must declare sanitize.access so the "
                 "race detector sees the write"),
}

#: scheduler entry points whose callable arguments become task bodies
_POST_METHODS = {"post", "post_batch", "submit"}

#: registry methods / module-level helpers taking a counter-name literal
_COUNTER_METHODS = {"increment", "set_gauge", "record_time", "timer_stats",
                    "value", "time"}
_COUNTER_FUNCS = {"counter", "gauge", "timer"}

#: wall-clock / randomness calls banned from core/ (REPRO003)
_NONDET_TIME = {"time", "time_ns"}

#: numpy allocators banned from unconditional hot-kernel paths (REPRO008)
_ALLOC_FUNCS = {"empty", "zeros", "empty_like", "zeros_like", "concatenate"}
#: parameter names that mark a function as workspace-aware
_SCRATCH_PARAMS = {"out", "ws"}

#: list methods that mutate a checkpoint store in place (REPRO009)
_CKPT_MUTATORS = {"append", "pop", "clear", "extend", "insert", "remove"}

#: call methods whose first positional argument is dispatched as a task
#: body on worker threads (REPRO010 collection pass)
_DISPATCH_METHODS = {"map", "submit"}
#: parameter names that hand a function an engine-owned output buffer
_ENGINE_BUFFER_PARAMS = {"out", "outs", "rhs"}
#: receiver spellings that mark a call result as workspace/pool-backed
_WS_RECEIVERS = {"ws", "_ws"}


def _collect_task_names(tree: ast.AST) -> set[str]:
    """Names of callables handed to ``.map(...)`` / ``.submit(...)``.

    The terminal identifier is collected for both ``engine.map(fn, ...)``
    (yields ``fn``) and ``engine.map(self._kernel, ...)`` (yields
    ``_kernel``); lambdas and other expressions are out of static reach.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_METHODS and node.args):
            fn = node.args[0]
            if isinstance(fn, ast.Name):
                names.add(fn.id)
            elif isinstance(fn, ast.Attribute):
                names.add(fn.attr)
    return names


def _is_unbounded_get(node: ast.Call) -> bool:
    """A zero-argument ``x.get()`` / ``x.result()`` call."""
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "result")
            and not node.args and not node.keywords)


def _counter_name_literal(node: ast.expr) -> str | None:
    """The literal prefix of a counter-name argument, if statically known.

    Handles plain strings and f-strings whose *first* chunk is a literal
    (``f"/cuda/{name}/busy"`` yields ``"/cuda/"``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _imports_network(tree: ast.AST) -> bool:
    """Does the module import from the ``network`` package (any spelling:
    ``repro.network...``, ``from ..network... import``)?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any("network" in alias.name.split(".")
                   for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            parts = (node.module or "").split(".")
            if "network" in parts:
                return True
            if node.level and any(alias.name == "network"
                                  for alias in node.names):
                return True
    return False


def _looks_like_channel(expr: ast.expr) -> bool:
    """Heuristic: does this receiver expression name a channel?"""
    tail = ast.unparse(expr).lower().split(".")[-1]
    return tail == "ch" or "chan" in tail


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, rel: str, imports_network: bool = False,
                 task_names: set[str] | None = None):
        self.path = path
        #: repo-relative path with forward slashes, for scoped rules
        self.rel = rel.replace("\\", "/")
        self.violations: list[Violation] = []
        self.in_core = "/core/" in f"/{self.rel}"
        self.guarded_scope = ("/runtime/" in f"/{self.rel}"
                              or "/resilience/" in f"/{self.rel}")
        #: per-step hot-kernel directories (REPRO008 scope)
        self.hot_kernel_scope = ("/core/gravity/" in f"/{self.rel}"
                                 or "/core/hydro/" in f"/{self.rel}")
        #: the module pulls in the network layer, so its channel traffic
        #: may cross localities (REPRO007 scope)
        self.imports_network = imports_network
        #: everywhere except the verified store itself (REPRO009 scope)
        self.outside_ckpt_store = not self.rel.endswith(
            "resilience/checkpoint.py")
        #: engine-dispatched callable names from the collection pass
        #: (REPRO010 scope: core/ functions with one of these names)
        self.task_names = task_names or set()

    def _hit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, getattr(node, "lineno", 0), rule, message))

    # -- REPRO001 ---------------------------------------------------------

    def _check_task_body(self, fn: ast.expr) -> None:
        if not isinstance(fn, ast.Lambda):
            return
        for sub in ast.walk(fn.body):
            if isinstance(sub, ast.Call) and _is_unbounded_get(sub):
                self._hit(sub, "REPRO001",
                          f"unbounded .{sub.func.attr}() inside a task "
                          "posted to the scheduler can stall a worker; "
                          "chain with then/dataflow or pass a timeout")

    # -- REPRO002 ---------------------------------------------------------

    @staticmethod
    def _is_pool_acquire(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and "pool" in ast.unparse(node.func.value).lower())

    def _check_lease_guards(self, fn: ast.AST) -> None:
        """Every ``x = <pool>.acquire()`` needs ``with x`` or a finally."""
        acquired: dict[str, ast.AST] = {}
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Assign) and self._is_pool_acquire(sub.value)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)):
                acquired[sub.targets[0].id] = sub
        if not acquired:
            return
        guarded: set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, ast.With):
                for item in sub.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name):
                        guarded.add(expr.id)
            elif isinstance(sub, ast.Try) and sub.finalbody:
                for stmt in sub.finalbody:
                    for call in ast.walk(stmt):
                        if (isinstance(call, ast.Call)
                                and isinstance(call.func, ast.Attribute)
                                and call.func.attr == "release"
                                and isinstance(call.func.value, ast.Name)):
                            guarded.add(call.func.value.id)
        for name, node in acquired.items():
            if name not in guarded:
                self._hit(node, "REPRO002",
                          f"lease {name!r} from StreamPool.acquire() is "
                          "neither used as a context manager nor released "
                          "in a finally block; an exception here leaks the "
                          "stream until the lease timeout")

    # -- REPRO008 ---------------------------------------------------------

    @staticmethod
    def _is_np_alloc(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ALLOC_FUNCS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("np", "numpy"))

    def _check_hot_kernel_allocs(self, fn) -> None:
        """REPRO008: unconditional numpy allocations in out=/ws kernels.

        Only functions that *take* an ``out`` or ``ws`` parameter are in
        scope; an allocation is tolerated anywhere lexically inside an
        ``if``/conditional expression whose test mentions one of those
        parameters (the fallback branch for callers without scratch).
        Nested function definitions are checked independently against
        their own signatures.
        """
        if not self.hot_kernel_scope:
            return
        args = fn.args
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
        scratch = params & _SCRATCH_PARAMS
        if not scratch:
            return

        def test_mentions_scratch(test: ast.expr) -> bool:
            return any(isinstance(sub, ast.Name) and sub.id in scratch
                       for sub in ast.walk(test))

        def walk(node: ast.AST, guarded: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue                # judged by its own signature
                g = guarded
                if (isinstance(child, (ast.If, ast.IfExp))
                        and test_mentions_scratch(child.test)):
                    g = True
                if not g and self._is_np_alloc(child):
                    names = "/".join(sorted(scratch))
                    self._hit(child, "REPRO008",
                              f"np.{child.func.attr}() in a hot kernel "
                              f"that takes {names}: write into the "
                              "caller's scratch, or allocate only in a "
                              f"branch conditioned on {names}")
                walk(child, g)

        walk(fn, False)

    # -- REPRO010 ---------------------------------------------------------

    @staticmethod
    def _root_name(expr: ast.expr) -> str | None:
        """The base ``Name`` under any chain of subscripts/attributes."""
        while isinstance(expr, (ast.Subscript, ast.Attribute)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def _is_engine_buffer(self, value: ast.expr, owned: set[str]) -> bool:
        """Does this assignment RHS yield an engine-owned buffer?

        True for aliases of already-owned names (``x = out``,
        ``x = out[sl]``), either arm of a conditional alias
        (``out if out is not None else ...``), and workspace/pool
        allocations (``ws.take(...)``, ``self._ws.buf(...)``,
        ``self._pool_out(...)``).
        """
        if isinstance(value, (ast.Name, ast.Subscript)):
            return self._root_name(value) in owned
        if isinstance(value, ast.IfExp):
            return (self._is_engine_buffer(value.body, owned)
                    or self._is_engine_buffer(value.orelse, owned))
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)):
            if value.func.attr == "_pool_out":
                return True
            tail = ast.unparse(value.func.value).split(".")[-1]
            return tail in _WS_RECEIVERS
        return False

    def _check_task_buffer_writes(self, fn) -> None:
        """REPRO010: engine-task writes invisible to the race detector.

        Scope: ``core/`` functions whose name was collected as a
        dispatched callable.  A single ``.access(...)`` call anywhere in
        the body exempts the whole function — it participates in the
        shadow-access contract, and the dynamic detector takes over from
        there.
        """
        if not self.in_core or fn.name not in self.task_names:
            return
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "access"):
                return
        args = fn.args
        owned = {a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)
                 if a.arg in _ENGINE_BUFFER_PARAMS}
        # alias propagation to a fixpoint: ws/pool allocations seed new
        # owned names, plain/conditional aliases spread them
        changed = True
        while changed:
            changed = False
            for sub in ast.walk(fn):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Name)):
                    continue
                tgt = sub.targets[0].id
                if tgt not in owned and self._is_engine_buffer(sub.value,
                                                               owned):
                    owned.add(tgt)
                    changed = True
        if not owned:
            return

        def hit(node: ast.AST, what: str, name: str) -> None:
            self._hit(node, "REPRO010",
                      f"{what} engine-owned buffer {name!r} in task body "
                      f"{fn.name!r} without a sanitize.access declaration; "
                      "the race detector cannot see this write — declare "
                      f"racecheck.access({name}, \"w\", owner=...) in the "
                      "function")

        for sub in ast.walk(fn):
            if isinstance(sub, ast.Assign):
                for t in sub.targets:
                    if isinstance(t, ast.Subscript):
                        name = self._root_name(t)
                        if name in owned:
                            hit(sub, "subscript assignment to", name)
            elif isinstance(sub, ast.AugAssign):
                t = sub.target
                name = (self._root_name(t)
                        if isinstance(t, (ast.Subscript, ast.Name))
                        else None)
                if name in owned:
                    hit(sub, "in-place update of", name)
            elif (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "copyto"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in ("np", "numpy") and sub.args):
                name = self._root_name(sub.args[0])
                if name in owned:
                    hit(sub, "np.copyto into", name)

    # -- visitors ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # REPRO001: thunks handed to the scheduler
        if (isinstance(func, ast.Attribute) and func.attr in _POST_METHODS):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._check_task_body(arg)
                # post_batch takes an iterable of thunks
                if isinstance(arg, (ast.List, ast.Tuple, ast.ListComp,
                                    ast.GeneratorExp)):
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            self._check_task_body(sub)
        # REPRO003: nondeterminism in core kernels
        if self.in_core and isinstance(func, ast.Attribute):
            base = ast.unparse(func.value)
            if base == "time" and func.attr in _NONDET_TIME:
                self._hit(node, "REPRO003",
                          f"time.{func.attr}() in core/ breaks bit-identical "
                          "execution; take timestamps in the runtime layer")
            elif base in ("random", "np.random", "numpy.random"):
                self._hit(node, "REPRO003",
                          f"{base}.{func.attr}() in core/ breaks "
                          "bit-identical execution; inject a seeded "
                          "generator from the caller instead")
        # REPRO006: kernel enqueues in core/ must go through aggregation
        if (self.in_core and isinstance(func, ast.Attribute)
                and func.attr in ("enqueue", "enqueue_aggregated")):
            base = ast.unparse(func.value).lower()
            if "lease" in base or "stream" in base:
                self._hit(node, "REPRO006",
                          f"direct {func.attr}() on {ast.unparse(func.value)!r} "
                          "in core/ bypasses the aggregation region (and its "
                          "launch accounting); use ExecutionEngine.map or an "
                          "AggregationRegion")
        # REPRO007: channel sends in network-aware core/ modules must be
        # routed (and charged) through the halo transport
        if (self.in_core and self.imports_network
                and isinstance(func, ast.Attribute) and func.attr == "set"
                and _looks_like_channel(func.value)):
            self._hit(node, "REPRO007",
                      f"direct {ast.unparse(func.value)}.set() in a "
                      "network-aware core/ module bypasses the parcelport "
                      "accounting (local/remote split, eager/rendezvous "
                      "tally); send through HaloTransport.send instead")
        # REPRO009: checkpoint records must round-trip through the store
        if self.outside_ckpt_store:
            ctor = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if ctor == "MeshCheckpoint":
                self._hit(node, "REPRO009",
                          "constructing MeshCheckpoint outside "
                          "resilience/checkpoint.py bypasses checksum "
                          "stamping (the record could never fail "
                          "verification); snapshot through "
                          "CheckpointManager.save")
            if (isinstance(func, ast.Attribute)
                    and func.attr in _CKPT_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "_checkpoints"):
                self._hit(node, "REPRO009",
                          f"{func.attr}() on a manager's _checkpoints list "
                          "bypasses the write-then-commit protocol and the "
                          "fallback accounting; go through "
                          "CheckpointManager.save / restore_latest")
        # REPRO004: counter-name sections
        name_arg = None
        if (isinstance(func, ast.Attribute) and func.attr in _COUNTER_METHODS
                and node.args):
            name_arg = node.args[0]
        elif (isinstance(func, ast.Name) and func.id in _COUNTER_FUNCS
                and node.args):
            name_arg = node.args[0]
        if name_arg is not None:
            literal = _counter_name_literal(name_arg)
            if literal is not None and literal.startswith("/"):
                section = literal.split("/")[1] if "/" in literal[1:] else ""
                if section and section not in KNOWN_SECTIONS:
                    self._hit(name_arg, "REPRO004",
                              f"counter section {section!r} (in "
                              f"{literal!r}) is not registered in "
                              "repro.runtime.counters.KNOWN_SECTIONS")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_lease_guards(node)
        self._check_hot_kernel_allocs(node)
        self._check_task_buffer_writes(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_lease_guards(node)
        self._check_hot_kernel_allocs(node)
        self._check_task_buffer_writes(node)
        self.generic_visit(node)

    # REPRO009: assignment / deletion targets that rewrite a checkpoint
    # store in place (``mgr._checkpoints = ...``, ``mgr._checkpoints[i] =``,
    # ``del mgr._checkpoints[:]``, ``mgr._checkpoints += ...``)

    def _check_ckpt_store_target(self, target: ast.AST) -> None:
        if not self.outside_ckpt_store:
            return
        for sub in ast.walk(target):
            if isinstance(sub, ast.Attribute) and sub.attr == "_checkpoints":
                self._hit(sub, "REPRO009",
                          "rewriting a manager's _checkpoints list bypasses "
                          "the write-then-commit protocol and the fallback "
                          "accounting; go through CheckpointManager.save / "
                          "restore_latest / reset")
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_ckpt_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_ckpt_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_ckpt_store_target(target)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.guarded_scope and node.type is None:
            self._hit(node, "REPRO005",
                      "bare `except:` traps KeyboardInterrupt/SystemExit "
                      "and hides faults from the supervisor; catch a "
                      "concrete exception type")
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                rel: str | None = None,
                task_names: set[str] | None = None) -> list[Violation]:
    """Lint one source string; ``rel`` scopes the path-dependent rules.

    ``task_names`` extends the REPRO010 collection set with dispatched
    callables found elsewhere in the tree; same-file dispatches are
    always collected.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "REPRO000",
                          f"syntax error: {exc.msg}")]
    names = _collect_task_names(tree) | (task_names or set())
    linter = _Linter(path, rel if rel is not None else path,
                     imports_network=_imports_network(tree),
                     task_names=names)
    linter.visit(tree)
    return sorted(linter.violations, key=lambda v: (v.line, v.rule))


def lint_file(path: Path, root: Path | None = None,
              task_names: set[str] | None = None) -> list[Violation]:
    rel = str(path.relative_to(root)) if root else str(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rel,
                       task_names=task_names)


def _iter_files(paths: Iterable[str]) -> Iterator[tuple[Path, Path]]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                yield f, p
        elif p.suffix == ".py":
            yield p, p.parent


def lint_paths(paths: Iterable[str]) -> list[Violation]:
    files = list(_iter_files(paths))
    # pass 1 (REPRO010): gather dispatched-callable names over the whole
    # tree, so a core/ kernel is matched against dispatches anywhere
    task_names: set[str] = set()
    for f, _root in files:
        try:
            task_names |= _collect_task_names(
                ast.parse(f.read_text(encoding="utf-8"), filename=str(f)))
        except SyntaxError:
            pass  # pass 2 reports it as REPRO000
    out: list[Violation] = []
    for f, root in files:
        out.extend(lint_file(f, root, task_names=task_names))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="repo-specific AST lint pass (REPRO001..REPRO010)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)
    if args.rules:
        for rule_id, (slug, desc) in sorted(RULES.items()):
            print(f"{rule_id}  {slug}: {desc}")
        return 0
    violations = lint_paths(args.paths)
    for v in violations:
        print(v)
    print(f"{len(violations)} violation(s) in "
          f"{len(set(v.path for v in violations))} file(s)"
          if violations else "clean")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
