"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers: list[str], rows: list[list], title: str = ""
                 ) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1e5 or abs(c) < 1e-3:
            return f"{c:.3e}"
        return f"{c:,.2f}" if abs(c) >= 10 else f"{c:.4g}"
    return str(c)
