"""Measurement, flop accounting and table formatting for the benchmarks.

Also home of the repo-specific static lint pass
(``python -m repro.analysis.lint`` / :mod:`repro.analysis.lint`), the
static prong of the sanitizer subsystem (:mod:`repro.sanitize`).
"""

from .flops import (STENCIL_SIZE, CELLS_PER_SUBGRID, INTERACTIONS_PER_LAUNCH,
                    FLOPS_PER_MONOPOLE_INTERACTION,
                    FLOPS_PER_MULTIPOLE_INTERACTION,
                    MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS,
                    OTHER_FLOPS_PER_SUBGRID, KernelCounts,
                    fmm_flops_per_solve)
from .efficiency import speedup, parallel_efficiency, weak_efficiency
from .lint import RULES, Violation, lint_paths, lint_source
from .profile import format_report, group_snapshot, run_example_scenario
from .tables import format_table

__all__ = ["STENCIL_SIZE", "CELLS_PER_SUBGRID", "INTERACTIONS_PER_LAUNCH",
           "FLOPS_PER_MONOPOLE_INTERACTION", "FLOPS_PER_MULTIPOLE_INTERACTION",
           "MONOPOLE_KERNEL_FLOPS", "MULTIPOLE_KERNEL_FLOPS",
           "OTHER_FLOPS_PER_SUBGRID", "KernelCounts", "fmm_flops_per_solve",
           "speedup", "parallel_efficiency", "weak_efficiency",
           "format_table",
           "format_report", "group_snapshot", "run_example_scenario",
           "RULES", "Violation", "lint_paths", "lint_source"]
