"""Measurement, flop accounting and table formatting for the benchmarks."""

from .flops import (STENCIL_SIZE, CELLS_PER_SUBGRID, INTERACTIONS_PER_LAUNCH,
                    FLOPS_PER_MONOPOLE_INTERACTION,
                    FLOPS_PER_MULTIPOLE_INTERACTION,
                    MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS,
                    OTHER_FLOPS_PER_SUBGRID, KernelCounts,
                    fmm_flops_per_solve)
from .efficiency import speedup, parallel_efficiency, weak_efficiency
from .profile import format_report, group_snapshot, run_example_scenario
from .tables import format_table

__all__ = ["STENCIL_SIZE", "CELLS_PER_SUBGRID", "INTERACTIONS_PER_LAUNCH",
           "FLOPS_PER_MONOPOLE_INTERACTION", "FLOPS_PER_MULTIPOLE_INTERACTION",
           "MONOPOLE_KERNEL_FLOPS", "MULTIPOLE_KERNEL_FLOPS",
           "OTHER_FLOPS_PER_SUBGRID", "KernelCounts", "fmm_flops_per_solve",
           "speedup", "parallel_efficiency", "weak_efficiency",
           "format_table",
           "format_report", "group_snapshot", "run_example_scenario"]
