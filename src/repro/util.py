"""Small shared utilities: Morton (Z-order) encoding.

Octo-Tiger distributes octree nodes along a space-filling curve (Sec. 4.2)
and our FMM levels index cells by Morton key; both use these helpers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spread_bits", "morton_encode", "morton_key"]


def spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x so they occupy every third bit."""
    x = np.asarray(x).astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three non-negative integer coordinates into Morton keys."""
    return (spread_bits(ix) << np.uint64(2)) \
        | (spread_bits(iy) << np.uint64(1)) | spread_bits(iz)


def morton_key(coords: np.ndarray) -> np.ndarray:
    """Morton keys for an (n, 3) integer coordinate array."""
    coords = np.asarray(coords)
    return morton_encode(coords[..., 0], coords[..., 1], coords[..., 2])
