"""repro: a reproduction of "From Piz Daint to the Stars" (SC 2019).

Octo-Tiger-style octree-AMR hydrodynamics with momentum-conserving FMM
gravity on an HPX-semantics asynchronous many-task runtime, plus a
discrete-event cluster simulator reproducing the paper's node-level and
full-system evaluation (see DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results).

Subpackages
-----------
``repro.core``
    The physics: sub-grids, octree AMR, PPM/KT hydro with the
    Despres-Labourasse angular-momentum machinery, the cell-based FMM,
    Lane-Emden/SCF initial models, scenario builders.
``repro.runtime``
    HPX-semantics futures, work-stealing scheduler, AGAS, parcels,
    channels, simulated CUDA streams, performance counters.
``repro.network``
    MPI and libfabric parcelport cost models and the dragonfly topology.
``repro.simulator``
    Discrete-event models of the paper's platforms and of Piz Daint,
    the structural V1309 tree (Table 4), and the scaling drivers.
``repro.validation``
    Analytic references (Sod, Sedov-Taylor) for the verification suite.
"""

__version__ = "1.0.0"

from . import analysis, core, network, runtime, simulator, validation
from .util import morton_encode, morton_key

__all__ = ["analysis", "core", "network", "runtime", "simulator",
           "validation", "morton_encode", "morton_key", "__version__"]
