"""Discrete-event simulation core: clock + ordered event queue.

A minimal, deterministic DES kernel: events are ``(time, seq, fn, args)``
tuples in a heap; ties in time break by insertion order so runs are
reproducible.  Event handlers may schedule further events; ``run`` drains
the queue (optionally up to a time horizon or event budget).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

__all__ = ["EventQueue", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling into the past or exceeding the event budget."""


class EventQueue:
    """Priority queue of timestamped callbacks with a simulation clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.processed = 0

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), fn, args))

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule at an absolute time (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} < current time {self.now}")
        heapq.heappush(self._heap, (when, next(self._seq), fn, args))

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, fn, args = heapq.heappop(self._heap)
        self.now = when
        self.processed += 1
        fn(*args)
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        """Drain the queue; returns the final simulation time.

        ``until`` stops once the next event would exceed that time;
        ``max_events`` bounds total processed events (guards runaway models).
        """
        budget = max_events
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if budget is not None:
                if budget == 0:
                    raise SimulationError(
                        f"exceeded event budget of {max_events}")
                budget -= 1
            self.step()
        return self.now

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap
