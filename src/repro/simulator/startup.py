"""Start-up (restart refinement) time model — the Sec. 6.3 side claim.

"Start-up timings of the main solver at refinement level 16 and 17 were
in fact reduced by an order of magnitude using the libfabric parcelport,
increasing the efficiency of refining the initial restart file of level 13
to the desired level of resolution."

Start-up refines the level-13 restart to the target level: every sub-grid
created above level 13 receives its payload (prolonged state + tree
wiring) over the network as it is instantiated and redistributed along
the SFC.  Unlike the overlapped solver steps, this phase is a latency-
bound storm of small-to-medium messages with little computation to hide
behind, which is why the parcelport choice dominates it: we model it as
one payload + a handful of tree-protocol messages per created sub-grid,
all charged at the port's unoverlapped cost.
"""

from __future__ import annotations

from ..network.parcelport import Parcelport
from .machine import NodeSpec
from .platforms import PIZ_DAINT
from .treemodel import TABLE4_PAPER_COUNTS

__all__ = ["startup_time", "startup_speedup"]

#: payload of one sub-grid moving to its owner: 8^3 cells x 15 fields x 8 B
SUBGRID_PAYLOAD = 8 ** 3 * 15 * 8
#: tree-protocol round trips per created sub-grid (parent notify, AGAS
#: registration, neighbour discovery)
PROTOCOL_MSGS = 6


def startup_time(level: int, n_nodes: int, port: Parcelport,
                 node: NodeSpec = PIZ_DAINT,
                 restart_level: int = 13) -> float:
    """Model wall time to refine the level-13 restart to ``level``."""
    if level < restart_level:
        raise ValueError("target level below the restart level")
    created = TABLE4_PAPER_COUNTS[level][0] - \
        TABLE4_PAPER_COUNTS[restart_level][0]
    per_node = created / n_nodes
    # per created sub-grid: one payload + protocol messages, unoverlapped;
    # the startup phase leaves workers idle, so the idle-contention and
    # (for MPI) interference terms apply at full strength
    payload = port.message_cost(SUBGRID_PAYLOAD, hops=3,
                                concurrent_senders=node.cores,
                                busy_fraction=0.1, comm_intensity=0.9,
                                storm=True)
    proto = port.message_cost(256, hops=3,
                              concurrent_senders=node.cores,
                              busy_fraction=0.1, comm_intensity=0.9,
                              storm=True)
    per_subgrid = payload.total + PROTOCOL_MSGS * proto.total
    # prolongation compute is trivially parallel and tiny
    compute = per_node * 2e-5
    return per_node * per_subgrid + compute


def startup_speedup(level: int, n_nodes: int,
                    ports: tuple[Parcelport, Parcelport]) -> float:
    """MPI-over-libfabric start-up time ratio (paper: ~an order of
    magnitude at levels 16-17)."""
    slow, fast = ports
    return startup_time(level, n_nodes, slow) / \
        startup_time(level, n_nodes, fast)
