"""Workload profile of one Octo-Tiger timestep over a (structural) octree.

Turns a :class:`~repro.simulator.treemodel.ScenarioTree` into exactly what
the scaling model needs:

* a global space-filling-curve (Morton) order over all sub-grids — the
  paper's distribution scheme ("these octree nodes are distributed onto
  the compute nodes using a space filling curve", Sec. 4.2);
* same-level neighbour pairs (the 26-stencil) for halo-message counting,
  with unmatched neighbours falling back to the parent level (AMR
  boundaries);
* per-sub-grid work classification (interior -> multipole kernel,
  leaf -> monopole kernel).

Everything is vectorized NumPy; the level-17 tree (1.4M sub-grids, ~37M
candidate neighbour links) profiles in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .treemodel import ScenarioTree

__all__ = ["morton_encode", "WorkloadProfile", "profile_tree"]

_NEIGHBOR_OFFSETS = np.array(
    [(i, j, k) for i in (-1, 0, 1) for j in (-1, 0, 1) for k in (-1, 0, 1)
     if (i, j, k) != (0, 0, 0)], dtype=np.int64)

#: halo bytes for one neighbour exchange, by |offset| (face/edge/corner):
#: 8x8x3 ghost cells x 15 fields x 8 B for faces, shrinking to edges/corners
_HALO_BYTES = {1: 8 * 8 * 3 * 15 * 8, 2: 8 * 3 * 3 * 15 * 8,
               3: 3 * 3 * 3 * 15 * 8}


def _spread_bits(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of x so they occupy every third bit."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_encode(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave three integer coordinates into Morton (Z-order) keys."""
    return (_spread_bits(np.asarray(ix)) << np.uint64(2)) \
        | (_spread_bits(np.asarray(iy)) << np.uint64(1)) \
        | _spread_bits(np.asarray(iz))


@dataclass
class WorkloadProfile:
    """Per-step workload of a tree, in global SFC sub-grid order.

    Attributes
    ----------
    n_subgrids, n_interior, n_leaves:
        Tree composition (interior sub-grids launch the multipole kernel,
        leaves the monopole kernel).
    is_interior:
        Bool array over sub-grids in global SFC order.
    pair_a, pair_b:
        Same-level (or AMR parent-level) neighbour pairs as global SFC
        indices, each unordered pair listed once.
    pair_bytes:
        Halo payload per pair per exchange (bytes).
    """

    n_subgrids: int
    n_interior: int
    n_leaves: int
    is_interior: np.ndarray
    pair_a: np.ndarray
    pair_b: np.ndarray
    pair_bytes: np.ndarray

    def partition(self, n_nodes: int) -> np.ndarray:
        """SFC block partition: owner rank of each sub-grid."""
        if n_nodes < 1:
            raise ValueError("need at least one node")
        idx = np.arange(self.n_subgrids, dtype=np.int64)
        return (idx * n_nodes) // self.n_subgrids

    def remote_traffic(self, owner: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                         np.ndarray, np.ndarray]:
        """Message statistics for a partition.

        Returns ``(msgs_per_node, bytes_per_node, pair_ranks, pair_counts)``
        where the first two are per-rank totals counting both directions of
        every remote halo exchange, and the last two describe distinct
        communicating rank pairs (for topology hop lookups).
        """
        n_nodes = int(owner.max()) + 1 if len(owner) else 1
        oa = owner[self.pair_a]
        ob = owner[self.pair_b]
        remote = oa != ob
        oa, ob = oa[remote], ob[remote]
        nbytes = self.pair_bytes[remote]
        msgs = np.bincount(oa, minlength=n_nodes) + np.bincount(
            ob, minlength=n_nodes)
        byts = (np.bincount(oa, weights=nbytes, minlength=n_nodes)
                + np.bincount(ob, weights=nbytes, minlength=n_nodes))
        lo = np.minimum(oa, ob)
        hi = np.maximum(oa, ob)
        key = lo * np.int64(n_nodes) + hi
        uniq, counts = np.unique(key, return_counts=True)
        pair_ranks = np.stack([uniq // n_nodes, uniq % n_nodes], axis=1)
        return msgs, byts, pair_ranks, counts


def profile_tree(tree: ScenarioTree) -> WorkloadProfile:
    """Build the workload profile of a structural tree.

    The global order is the depth-first tree SFC Octo-Tiger distributes by:
    a sub-grid's key is its Morton code scaled to the deepest level, with
    parents ordered immediately before their first child.  This keeps
    parents, children and fine-level neighbours on nearby ranks.
    """
    max_level = len(tree.levels) - 1
    level_icoords: list[np.ndarray] = []
    level_sorted_keys: list[np.ndarray] = []
    level_global: list[np.ndarray] = []     # global index per sorted-slot
    interior_all: list[np.ndarray] = []
    scaled_all: list[np.ndarray] = []
    levels_all: list[np.ndarray] = []
    edge = tree.domain_edge
    for lvl, (centers, refined) in enumerate(zip(tree.levels, tree.refined)):
        width = edge / (2.0 ** lvl)
        icoord = np.floor((centers + edge / 2.0) / width).astype(np.int64)
        icoord = np.clip(icoord, 0, (1 << lvl) - 1 if lvl else 0)
        keys = morton_encode(icoord[:, 0], icoord[:, 1], icoord[:, 2])
        order = np.argsort(keys, kind="stable")
        level_icoords.append(icoord[order])
        level_sorted_keys.append(keys[order])
        interior_all.append(refined[order])
        scaled_all.append(keys[order] << np.uint64(3 * (max_level - lvl)))
        levels_all.append(np.full(len(centers), lvl, dtype=np.int64))

    scaled = np.concatenate(scaled_all) if scaled_all else np.empty(0, np.uint64)
    lvls = np.concatenate(levels_all) if levels_all else np.empty(0, np.int64)
    interior_sorted = (np.concatenate(interior_all) if interior_all
                       else np.empty(0, dtype=bool))
    # depth-first preorder: scaled key major, level minor (parent first)
    dfs = np.lexsort((lvls, scaled))
    n_total = len(dfs)
    global_of_slot = np.empty(n_total, dtype=np.int64)
    global_of_slot[dfs] = np.arange(n_total, dtype=np.int64)
    is_interior = np.empty(n_total, dtype=bool)
    is_interior[global_of_slot] = interior_sorted
    # per-level: map sorted-slot within level -> global DFS index
    base = 0
    for lvl in range(len(tree.levels)):
        n = len(tree.levels[lvl])
        level_global.append(global_of_slot[base:base + n])
        base += n

    pa_parts: list[np.ndarray] = []
    pb_parts: list[np.ndarray] = []
    bytes_parts: list[np.ndarray] = []
    for lvl in range(len(tree.levels)):
        icoord = level_icoords[lvl]                     # Morton-sorted
        n = len(icoord)
        if n == 0:
            continue
        max_c = (1 << lvl) - 1
        my_global = level_global[lvl]
        for off in _NEIGHBOR_OFFSETS:
            nb = icoord + off
            valid = ((nb >= 0) & (nb <= max_c)).all(axis=1)
            if not valid.any():
                continue
            nb_v = nb[valid]
            src = my_global[valid]
            keys = morton_encode(nb_v[:, 0], nb_v[:, 1], nb_v[:, 2])
            pos = np.searchsorted(level_sorted_keys[lvl], keys)
            pos = np.clip(pos, 0, n - 1)
            found = level_sorted_keys[lvl][pos] == keys
            # same-level matches: count unordered pairs once (src < dst)
            dst = level_global[lvl][pos[found]]
            s = src[found]
            keep = s < dst
            halo = _HALO_BYTES[int(np.abs(off).sum())]
            if keep.any():
                pa_parts.append(s[keep])
                pb_parts.append(dst[keep])
                bytes_parts.append(np.full(keep.sum(), halo, dtype=np.int64))
            # AMR boundary: unmatched neighbours exchange with the parent
            # level; count each such link once (from the finer side)
            if lvl > 0 and (~found).any():
                nb_p = nb_v[~found] >> 1
                src_p = src[~found]
                pkeys = morton_encode(nb_p[:, 0], nb_p[:, 1], nb_p[:, 2])
                ppos = np.searchsorted(level_sorted_keys[lvl - 1], pkeys)
                ppos = np.clip(ppos, 0, len(level_sorted_keys[lvl - 1]) - 1)
                pfound = level_sorted_keys[lvl - 1][ppos] == pkeys
                if pfound.any():
                    pa_parts.append(src_p[pfound])
                    pb_parts.append(level_global[lvl - 1][ppos[pfound]])
                    bytes_parts.append(
                        np.full(int(pfound.sum()), halo, dtype=np.int64))

    if pa_parts:
        pair_a = np.concatenate(pa_parts)
        pair_b = np.concatenate(pb_parts)
        pair_bytes = np.concatenate(bytes_parts)
        # normalize: unordered pairs stored with pair_a < pair_b
        lo = np.minimum(pair_a, pair_b)
        hi = np.maximum(pair_a, pair_b)
        pair_a, pair_b = lo, hi
    else:
        pair_a = np.empty(0, dtype=np.int64)
        pair_b = np.empty(0, dtype=np.int64)
        pair_bytes = np.empty(0, dtype=np.int64)

    n_interior = int(is_interior.sum())
    return WorkloadProfile(
        n_subgrids=n_total, n_interior=n_interior,
        n_leaves=n_total - n_interior, is_interior=is_interior,
        pair_a=pair_a, pair_b=pair_b, pair_bytes=pair_bytes)
