"""Drivers for the paper's evaluation sweeps (Table 2, Table 4, Figs. 2/3).

These functions produce exactly the rows/series the paper reports; the
benchmark harness under ``benchmarks/`` prints them.  Workload profiles
are cached per refinement level because building the level-17 tree takes
a few seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..network.parcelport import PARCELPORTS, Parcelport
from .distributed import StepModel
from .machine import NodeSpec
from .nodelevel import NodeLevelResult, measure_node
from .platforms import PIZ_DAINT, TABLE2_CONFIGS
from .taskgraph import WorkloadProfile, profile_tree
from .treemodel import ScenarioTree, v1309_tree

__all__ = [
    "cached_profile", "cached_tree", "node_level_table", "subgrid_table",
    "ScalingPoint", "scaling_sweep", "parcelport_ratio",
    "PAPER_NODE_COUNTS", "reference_rate",
]

#: the node counts of Fig. 2: powers of two up to 4096, plus the 5400-node
#: full system
PAPER_NODE_COUNTS = [2 ** k for k in range(13)] + [5400]


@lru_cache(maxsize=None)
def cached_tree(level: int) -> ScenarioTree:
    return v1309_tree(level)


@lru_cache(maxsize=None)
def cached_profile(level: int) -> WorkloadProfile:
    return profile_tree(cached_tree(level))


@lru_cache(maxsize=None)
def _cached_model(level: int, node: NodeSpec) -> StepModel:
    return StepModel(cached_profile(level), node)


# -- Table 2 -----------------------------------------------------------------

def node_level_table() -> list[tuple[str, NodeLevelResult]]:
    """Simulate all nine Table 2 platform configurations."""
    return [(name, measure_node(node)) for name, node in TABLE2_CONFIGS]


# -- Table 4 ------------------------------------------------------------------

def subgrid_table(levels: tuple[int, ...] = (13, 14, 15, 16, 17)
                  ) -> list[tuple[int, int, float]]:
    """(level, sub-grids, memory GB) rows of Table 4 from the tree model."""
    return [(lvl, cached_tree(lvl).total_subgrids,
             cached_tree(lvl).memory_gb()) for lvl in levels]


# -- Figs. 2 and 3 ----------------------------------------------------------------


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the Fig. 2 speedup graph."""

    level: int
    n_nodes: int
    parcelport: str
    subgrids_per_second: float
    speedup: float
    efficiency: float


def reference_rate(node: NodeSpec = PIZ_DAINT,
                   port: Parcelport | None = None) -> float:
    """Sub-grids/second of level 14 on one node — the Fig. 2 reference."""
    port = port or PARCELPORTS["libfabric"]
    return _cached_model(14, node).step_time(1, port).subgrids_per_second


def _node_counts(level: int, max_nodes: int,
                 min_subgrids_per_node: int = 2) -> list[int]:
    profile = cached_profile(level)
    return [n for n in PAPER_NODE_COUNTS
            if n <= max_nodes and profile.n_subgrids / n >= min_subgrids_per_node]


def scaling_sweep(levels: tuple[int, ...] = (14, 15, 16, 17),
                  max_nodes: int = 5400,
                  ports: tuple[str, ...] = ("mpi", "libfabric"),
                  node: NodeSpec = PIZ_DAINT) -> list[ScalingPoint]:
    """The Fig. 2 sweep: speedup w.r.t. sub-grids/s of level 14 on 1 node."""
    ref = reference_rate(node)
    points: list[ScalingPoint] = []
    for level in levels:
        model = _cached_model(level, node)
        for port_name in ports:
            port = PARCELPORTS[port_name]
            for n in _node_counts(level, max_nodes):
                rate = model.step_time(n, port).subgrids_per_second
                points.append(ScalingPoint(
                    level=level, n_nodes=n, parcelport=port_name,
                    subgrids_per_second=rate, speedup=rate / ref,
                    efficiency=rate / (n * ref)))
    return points


def parcelport_ratio(levels: tuple[int, ...] = (14, 15, 16),
                     max_nodes: int = 5400,
                     node: NodeSpec = PIZ_DAINT
                     ) -> list[tuple[int, int, float]]:
    """Fig. 3: (level, nodes, libfabric-rate / MPI-rate) series."""
    lf = PARCELPORTS["libfabric"]
    mpi = PARCELPORTS["mpi"]
    out: list[tuple[int, int, float]] = []
    for level in levels:
        model = _cached_model(level, node)
        for n in _node_counts(level, max_nodes):
            if n < 2:
                continue
            r_lf = model.step_time(n, lf).subgrids_per_second
            r_mpi = model.step_time(n, mpi).subgrids_per_second
            out.append((level, n, r_lf / r_mpi))
    return out
