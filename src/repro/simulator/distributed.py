"""Distributed scaling model for the Fig. 2 / Fig. 3 experiments.

Combines a workload profile (real tree structure + SFC partition), a node
hardware model, and a parcelport cost model into a per-step time for an
N-node run.  The efficiency-loss mechanisms are the ones Sec. 6.2/6.3 name:

* **per-message CPU overheads** — transport work (injection, matching,
  completion handling) is *not* spread across all worker cores: "the
  receipt of data ... must be performed by polling of completion queues.
  This can only take place in-between the execution of other tasks", so it
  is charged to a small number of effective progress cores.  The MPI
  progress-interference and libfabric polling terms live in
  :mod:`repro.network.parcelport`; they produce the parcelport gap that
  "increases with higher node counts and refinement level";
* **load imbalance** — the step ends when the *slowest* node finishes.
  Sub-grids are distributed along the SFC weighted by estimated work (HPX
  load balancing), but surface (message) imbalance remains;
* **device starvation** — "Strong scaling tails off as the amount of
  sub-grids for each level becomes too small to generate sufficient work
  for all CPUs/GPUs": the GPU duty factor degrades when a rank holds too
  few sub-grids to keep 128 streams busy;
* **NIC serialization, rendezvous round-trips and wire time**, partially
  overlapped with compute (futurization hides communication when there is
  enough work);
* a **collective** (dt reduction / tree handshake) growing with log N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.flops import (MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS,
                              OTHER_FLOPS_PER_SUBGRID)
from ..network.parcelport import Parcelport
from ..network.topology import DragonflyTopology
from ..resilience.retry import NETWORK_RETRY_POLICY, RetryPolicy
from ..runtime.counters import CounterRegistry
from .machine import NodeSpec
from .taskgraph import WorkloadProfile

__all__ = ["StepModel", "StepResult"]

#: messages per remote neighbour pair per timestep (one hydro halo plus one
#: gravity multipole/Taylor buffer per direction, batched per exchange)
MSGS_PER_PAIR_PER_STEP = 2
#: sub-grid count at which a rank's GPU reaches half duty (starvation knee)
GPU_STARVATION_KNEE = 8.0
#: fraction of communication time hidden by futurization overlap
OVERLAP = 0.85
#: effective cores doing transport work (polling happens between tasks)
NETWORK_PARALLELISM = 2.0


@dataclass(frozen=True)
class StepResult:
    """Per-step timing of one configuration."""

    n_nodes: int
    t_step: float
    t_compute_max: float
    t_comm_cpu_max: float
    subgrids: int
    total_messages: int

    @property
    def subgrids_per_second(self) -> float:
        return self.subgrids / self.t_step


class StepModel:
    """Evaluate the per-step time of a workload on N nodes over a transport."""

    def __init__(self, profile: WorkloadProfile, node: NodeSpec,
                 gpu_duty: float = 0.70,
                 msgs_per_pair: int = MSGS_PER_PAIR_PER_STEP,
                 network_parallelism: float = NETWORK_PARALLELISM,
                 overlap: float = OVERLAP,
                 starvation_knee: float = GPU_STARVATION_KNEE,
                 registry: CounterRegistry | None = None,
                 loss_rate: float = 0.0,
                 retry_policy: "RetryPolicy | None" = None):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.profile = profile
        self.node = node
        #: degraded-network model: iid parcel loss recovered by the
        #: resilience layer; the *expected* retry cost (extra sends on CPU
        #: and wire, backoff stalls) is charged below so faulty-machine
        #: scaling curves can be produced alongside the Fig. 2/3 ones
        self.loss_rate = loss_rate
        self.retry_policy = retry_policy or NETWORK_RETRY_POLICY
        #: optional APEX-style counter sink; every step_time() publishes
        #: /simulator/step/... gauges into it (per-message cost components
        #: are tallied by the parcelport module itself)
        self.registry = registry
        self.gpu_duty = gpu_duty
        self.msgs_per_pair = msgs_per_pair
        self.network_parallelism = network_parallelism
        self.overlap = overlap
        self.starvation_knee = starvation_knee
        self._fmm_flops = np.where(profile.is_interior,
                                   MULTIPOLE_KERNEL_FLOPS,
                                   MONOPOLE_KERNEL_FLOPS).astype(np.float64)
        self._owner_cache: dict[int, np.ndarray] = {}

    # -- partitioning -----------------------------------------------------------

    def _subgrid_time_estimate(self) -> np.ndarray:
        """Estimated wall time one sub-grid costs its owner per step."""
        node = self.node
        if node.has_gpu:
            fmm_rate = sum(node.fmm_gpu_rate(g) for g in node.gpus) \
                * self.gpu_duty * 1e9
        else:
            fmm_rate = node.cores * node.fmm_core_rate() * 1e9
        return (self._fmm_flops / fmm_rate
                + OTHER_FLOPS_PER_SUBGRID / (node.other_rate() * 1e9))

    def _partition(self, n_nodes: int) -> np.ndarray:
        """Time-weighted SFC block partition (HPX load balancing, Sec. 4.1)."""
        cached = self._owner_cache.get(n_nodes)
        if cached is not None:
            return cached
        weights = self._subgrid_time_estimate()
        cum = np.cumsum(weights)
        total = cum[-1]
        owner = np.minimum(
            ((cum - weights / 2.0) * n_nodes / total).astype(np.int64),
            n_nodes - 1)
        self._owner_cache[n_nodes] = owner
        return owner

    # -- per-node compute time ------------------------------------------------

    def _compute_times(self, owner: np.ndarray, n_nodes: int) -> np.ndarray:
        node = self.node
        counts = np.bincount(owner, minlength=n_nodes).astype(np.float64)
        fmm_flops = np.bincount(owner, weights=self._fmm_flops,
                                minlength=n_nodes)
        other_flops = counts * OTHER_FLOPS_PER_SUBGRID
        if node.has_gpu:
            duty = self.gpu_duty * counts / (counts + self.starvation_knee)
            gpu_rate = sum(node.fmm_gpu_rate(g) for g in node.gpus) * 1e9
            fmm_rate = np.maximum(gpu_rate * duty,
                                  node.cores * node.fmm_core_rate() * 1e9)
        else:
            fmm_rate = np.full(n_nodes, node.cores * node.fmm_core_rate() * 1e9)
        other_rate = node.other_rate() * 1e9
        with np.errstate(invalid="ignore", divide="ignore"):
            t = np.where(counts > 0,
                         fmm_flops / fmm_rate + other_flops / other_rate, 0.0)
        return t

    # -- full step ------------------------------------------------------------

    def step_time(self, n_nodes: int, port: Parcelport) -> StepResult:
        profile = self.profile
        owner = self._partition(n_nodes)
        t_comp = self._compute_times(owner, n_nodes)

        if n_nodes == 1:
            result = StepResult(1, float(t_comp[0]), float(t_comp[0]), 0.0,
                                profile.n_subgrids, 0)
            self._publish(result, port)
            return result

        msgs, byts, pair_ranks, pair_counts = profile.remote_traffic(owner)
        per_pair = self.msgs_per_pair / 2.0   # remote_traffic counts both ends
        msgs = msgs.astype(np.float64) * per_pair
        byts = byts.astype(np.float64) * per_pair

        # degraded network: every logical message costs E[attempts] physical
        # sends (budget-capped geometric) plus the expected backoff stall,
        # which overlaps with compute exactly like wire time does
        attempts = self.retry_policy.expected_attempts(self.loss_rate)
        backoff_per_msg = self.retry_policy.expected_backoff(self.loss_rate)
        t_backoff = msgs * backoff_per_msg
        logical_msgs = msgs.sum()
        msgs = msgs * attempts
        byts = byts * attempts

        topo = DragonflyTopology(n_nodes)
        hops = np.fromiter(
            (topo.hops(int(a), int(b)) for a, b in pair_ranks),
            dtype=np.float64, count=len(pair_ranks))
        mean_hops = (float(np.average(hops, weights=pair_counts))
                     if len(hops) else 1.0)

        mean_size = byts / np.maximum(msgs, 1.0)
        # two-pass estimate: busy fraction drives the libfabric polling
        # penalty, comm intensity drives the MPI progress interference
        busy = np.ones(n_nodes)
        intensity = np.zeros(n_nodes)
        t_step_nodes = t_comp.copy()
        t_comm_cpu = np.zeros(n_nodes)
        for _ in range(3):
            cost = [port.message_cost(int(s), hops=max(int(round(mean_hops)), 1),
                                      concurrent_senders=self.node.cores,
                                      busy_fraction=float(b),
                                      comm_intensity=float(ci))
                    for s, b, ci in zip(mean_size, busy, intensity)]
            sender = np.array([c.sender_cpu for c in cost])
            recver = np.array([c.receiver_cpu for c in cost])
            wire = np.array([c.wire for c in cost])
            # transport CPU time, concentrated on the polling/progress cores
            t_comm_cpu = msgs * (sender + recver) / self.network_parallelism
            # NIC serialization + exposed wire time after overlap
            t_nic = byts / port.bandwidth + msgs * 0.2e-6 + t_backoff
            t_wire_exposed = np.maximum(
                0.0, t_nic + wire - self.overlap * (t_comp + t_comm_cpu))
            t_step_nodes = t_comp + t_comm_cpu + t_wire_exposed
            total = np.maximum(t_step_nodes, 1e-30)
            busy = np.clip(t_comp / total, 0.0, 1.0)
            intensity = np.clip(t_comm_cpu / total, 0.0, 1.0)

        collective = 2.0 * np.log2(max(n_nodes, 2)) * (port.latency + 3e-6)
        t_step = float(t_step_nodes.max() + collective)
        result = StepResult(
            n_nodes=n_nodes, t_step=t_step,
            t_compute_max=float(t_comp.max()),
            t_comm_cpu_max=float(t_comm_cpu.max()),
            subgrids=profile.n_subgrids,
            total_messages=int(msgs.sum()))
        self._publish(result, port, logical_msgs=float(logical_msgs))
        return result

    def _publish(self, result: StepResult, port: Parcelport,
                 logical_msgs: float = 0.0) -> None:
        if self.registry is None:
            return
        r = self.registry
        r.increment("/simulator/steps-evaluated")
        prefix = f"/simulator/step/{port.name}"
        if self.loss_rate > 0.0:
            policy = self.retry_policy
            r.set_gauge(f"{prefix}/loss-rate", self.loss_rate)
            r.set_gauge(f"{prefix}/retry-attempts-per-msg",
                        policy.expected_attempts(self.loss_rate))
            r.set_gauge(f"{prefix}/retry-messages",
                        logical_msgs
                        * (policy.expected_attempts(self.loss_rate) - 1.0))
            r.set_gauge(f"{prefix}/retry-backoff-per-msg",
                        policy.expected_backoff(self.loss_rate))
            r.set_gauge(f"{prefix}/delivery-probability",
                        policy.delivery_probability(self.loss_rate))
        r.set_gauge(f"{prefix}/n-nodes", float(result.n_nodes))
        r.set_gauge(f"{prefix}/t-step", result.t_step)
        r.set_gauge(f"{prefix}/t-compute-max", result.t_compute_max)
        r.set_gauge(f"{prefix}/t-comm-cpu-max", result.t_comm_cpu_max)
        r.set_gauge(f"{prefix}/messages", float(result.total_messages))
        r.set_gauge(f"{prefix}/subgrids-per-second",
                    result.subgrids_per_second)
