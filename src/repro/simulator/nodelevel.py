"""Node-level FMM performance simulator (Table 2, Sec. 6.1).

A discrete-event model of one compute node running the gravity solver of
the level-14 V1309 scenario, reproducing the paper's measurement setup:

* **workers** (CPU cores) prepare FMM kernels (tree traversal, halo
  staging) and then launch them;
* each worker owns an equal share of the node's CUDA streams ("Each CPU
  thread manages a certain number of CUDA streams"); a kernel goes to the
  GPU iff the worker holds an idle stream, *otherwise the worker executes
  it on the CPU* — the launch policy of Sec. 5.1;
* the GPU executes up to ``SMs/8`` kernels concurrently (each kernel uses
  8 blocks, Sec. 5.1), so a kernel's service time is constant and the
  device saturates when all kernel slots are busy;
* a completed stream is only recycled when its owning worker reaches its
  next scheduling point — a worker stuck in a long CPU fallback freezes
  its streams, the starvation mechanism Sec. 6.1.2 describes.

Outputs follow the paper's methodology: count kernel launches x constant
flops per kernel, divide by the measured FMM makespan, compare against the
device's theoretical peak.  CPU-only configurations pack kernels perfectly
across cores (each FMM kernel runs on one core, Sec. 6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.flops import MONOPOLE_KERNEL_FLOPS, MULTIPOLE_KERNEL_FLOPS
from .events import EventQueue
from .machine import GpuSpec, NodeSpec

__all__ = ["NodeLevelResult", "simulate_gravity_solve", "measure_node"]

#: worker time to prepare one kernel launch in a GPU run, split into a CPU
#: part (tree traversal, halo staging) and a PCIe/driver part that
#: parallelizes across GPUs (calibrated, see EXPERIMENTS.md)
FEED_CPU_SECONDS = 78e-6
FEED_PCIE_SECONDS = 76e-6
#: each kernel occupies 8 SMs (8 blocks x 64 threads)
SMS_PER_KERNEL = 8
#: streaming multiprocessors per GPU model (P100: 56, V100: 80)
_GPU_SMS = {"NVIDIA P100 (PCI-E)": 56, "NVIDIA V100 (PCI-E)": 80}


@dataclass
class NodeLevelResult:
    """Outcome of one simulated gravity solve on one node."""

    node: NodeSpec
    fmm_seconds: float
    kernel_flops: float
    gpu_launches: int
    cpu_launches: int

    @property
    def gflops(self) -> float:
        return self.kernel_flops / self.fmm_seconds / 1e9

    @property
    def gpu_fraction(self) -> float:
        total = self.gpu_launches + self.cpu_launches
        return self.gpu_launches / total if total else 0.0

    @property
    def reference_peak_gflops(self) -> float:
        """Peak of the device class doing the FMM (the paper's denominator)."""
        if self.node.has_gpu:
            return self.node.gpu_peak_gflops
        return self.node.cpu_peak_gflops

    @property
    def fraction_of_peak(self) -> float:
        return self.gflops / self.reference_peak_gflops


class _Gpu:
    """Multi-server kernel executor: one per physical GPU."""

    def __init__(self, spec: GpuSpec, queue: EventQueue):
        self.spec = spec
        self.queue = queue
        sms = _GPU_SMS.get(spec.name, 56)
        self.slots = max(sms // SMS_PER_KERNEL, 1)
        self.rate = spec.peak_gflops * spec.kernel_efficiency * 1e9 / self.slots
        self.active = 0
        self.backlog: list[tuple[float, "_Stream"]] = []

    def submit(self, flops: float, stream: "_Stream") -> None:
        if self.active < self.slots:
            self.active += 1
            self.queue.schedule(flops / self.rate, self._complete, stream)
        else:
            self.backlog.append((flops, stream))

    def _complete(self, stream: "_Stream") -> None:
        stream.completed = True
        stream.sim.on_gpu_completion(stream)
        if self.backlog:
            flops, nxt = self.backlog.pop(0)
            self.queue.schedule(flops / self.rate, self._complete, nxt)
        else:
            self.active -= 1


class _Stream:
    __slots__ = ("gpu", "owner", "busy", "completed", "sim")

    def __init__(self, gpu: _Gpu, owner: int, sim: "_Simulation"):
        self.gpu = gpu
        self.owner = owner
        self.busy = False
        self.completed = False
        self.sim = sim


class _Simulation:
    """One gravity solve: workers launch a fixed shuffled kernel list."""

    def __init__(self, node: NodeSpec, kernel_flops_list: np.ndarray,
                 feed_seconds: float | None = None):
        self.node = node
        self.queue = EventQueue()
        self.tasks = list(kernel_flops_list)
        self.task_idx = 0
        if feed_seconds is None:
            n_gpus = max(len(node.gpus), 1)
            feed_seconds = FEED_CPU_SECONDS + FEED_PCIE_SECONDS / n_gpus
        self.feed = feed_seconds
        self.gpus = [_Gpu(g, self.queue) for g in node.gpus]
        self.streams: dict[int, list[_Stream]] = {w: [] for w in range(node.cores)}
        for gi, (gpu, spec) in enumerate(zip(self.gpus, node.gpus)):
            for s in range(spec.n_streams):
                owner = (s + gi * spec.n_streams) % node.cores
                self.streams[owner].append(_Stream(gpu, owner, self))
        self.gpu_launches = 0
        self.cpu_launches = 0
        self.kernels_done = 0
        self.n_kernels = len(self.tasks)
        self.finish_time = 0.0
        self.core_fmm_rate = node.fmm_core_rate() * 1e9

    def run(self) -> None:
        for w in range(self.node.cores):
            self.queue.schedule(0.0, self._decision, w)
        self.queue.run(max_events=20_000_000)

    # -- event handlers -----------------------------------------------------

    def on_gpu_completion(self, stream: _Stream) -> None:
        self.kernels_done += 1
        self.finish_time = self.queue.now
        # if the owner is idle (out of tasks), recycle immediately
        # (otherwise the owner recycles at its next decision point)

    def _recycle(self, worker: int) -> None:
        for s in self.streams[worker]:
            if s.completed:
                s.completed = False
                s.busy = False

    def _decision(self, worker: int) -> None:
        self._recycle(worker)
        if self.task_idx >= self.n_kernels:
            return
        flops = self.tasks[self.task_idx]
        self.task_idx += 1
        # preparation happens before the launch decision
        idle = next((s for s in self.streams[worker]
                     if not s.busy and self.node.has_gpu), None)
        if idle is not None:
            idle.busy = True
            self.gpu_launches += 1
            overhead = idle.gpu.spec.launch_overhead
            self.queue.schedule(self.feed + overhead, self._launch, idle, flops)
            self.queue.schedule(self.feed + overhead, self._decision, worker)
        else:
            # execute on this worker (the Sec. 5.1 fallback)
            self.cpu_launches += 1
            dur = self.feed + flops / self.core_fmm_rate
            self.queue.schedule(dur, self._cpu_done, worker)

    def _launch(self, stream: _Stream, flops: float) -> None:
        stream.gpu.submit(flops, stream)

    def _cpu_done(self, worker: int) -> None:
        self.kernels_done += 1
        self.finish_time = self.queue.now
        self._decision(worker)


#: an interior sub-grid's multipole kernel becomes ready when the M2M
#: upward pass of its subtree completes, so multipole launches arrive in
#: waves of roughly one sibling group (8) rather than uniformly at random
MULTIPOLE_WAVE = 4


def _kernel_list(n_interior: int, n_leaves: int, seed: int = 7) -> np.ndarray:
    """Kernel launch order of one gravity solve: monopole (leaf) kernels
    interleaved with clustered waves of multipole (interior) kernels."""
    rng = np.random.default_rng(seed)
    n_waves = max(n_interior // MULTIPOLE_WAVE, 1)
    slots = np.concatenate([
        np.zeros(n_leaves, dtype=np.int64),       # 0 = one monopole kernel
        np.ones(n_waves, dtype=np.int64)])        # 1 = one multipole wave
    rng.shuffle(slots)
    out = np.empty(n_leaves + n_interior, dtype=np.float64)
    pos = 0
    remaining_mult = n_interior
    waves_left = n_waves
    for kind in slots:
        if kind == 0:
            out[pos] = MONOPOLE_KERNEL_FLOPS
            pos += 1
        else:
            take = remaining_mult // waves_left
            out[pos:pos + take] = MULTIPOLE_KERNEL_FLOPS
            pos += take
            remaining_mult -= take
            waves_left -= 1
    assert pos == n_leaves + n_interior and remaining_mult == 0
    return out


#: dependency barriers inside one gravity solve (the three FMM passes and
#: the AMR-boundary sub-phases synchronize the kernel stream); a CPU
#: fallback of a 20 ms multipole kernel shortly before a barrier is fully
#: exposed in the makespan — the "large performance impact" of Sec. 6.1.2
SOLVE_PHASES = 3


def simulate_gravity_solve(node: NodeSpec, n_interior: int, n_leaves: int,
                           feed_seconds: float | None = None,
                           seed: int = 7,
                           phases: int = SOLVE_PHASES) -> NodeLevelResult:
    """Simulate one gravity solve; returns the Table 2 measurements."""
    kernels = _kernel_list(n_interior, n_leaves, seed)
    total_flops = float(kernels.sum())
    if not node.has_gpu:
        # CPU-only: each kernel runs on one core, all cores packed (Sec 6.1.1)
        fmm_seconds = total_flops / (node.cores * node.fmm_core_rate() * 1e9)
        return NodeLevelResult(node, fmm_seconds, total_flops, 0, len(kernels))
    elapsed = 0.0
    gpu_l = cpu_l = 0
    for chunk in np.array_split(kernels, max(phases, 1)):
        if not len(chunk):
            continue
        sim = _Simulation(node, chunk, feed_seconds)
        sim.run()
        if sim.kernels_done != len(chunk):
            raise RuntimeError(
                f"simulation stalled: {sim.kernels_done}/{len(chunk)} kernels")
        elapsed += sim.finish_time
        gpu_l += sim.gpu_launches
        cpu_l += sim.cpu_launches
    return NodeLevelResult(node, elapsed, total_flops, gpu_l, cpu_l)


def measure_node(node: NodeSpec, n_interior: int = 1449,
                 n_leaves: int = 10144,
                 feed_seconds: float | None = None) -> NodeLevelResult:
    """Table 2 measurement for one node on the level-14 tree composition."""
    return simulate_gravity_solve(node, n_interior, n_leaves, feed_seconds)
