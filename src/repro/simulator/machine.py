"""Compute-node hardware models.

A :class:`NodeSpec` captures what the Table 2 measurement methodology
needs: CPU peak (cores x clock x flops/cycle), GPU peaks, the measured
fraction-of-peak the FMM kernels reach on each device class, and CUDA
stream counts.  Peak formulas follow the paper's own accounting ("We have
assumed the base (unthrottled) clock rate ... for calculating the
theoretical peak performance", Sec. 6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GpuSpec", "NodeSpec"]


@dataclass(frozen=True)
class GpuSpec:
    """A GPU model: nominal double-precision peak and stream capacity."""

    name: str
    peak_gflops: float
    n_streams: int = 128           # "usually 128 per GPU" (Sec. 5.1)
    #: fraction of peak the FMM multipole kernel itself sustains when the
    #: device is saturated (intrinsic kernel efficiency, before starvation)
    kernel_efficiency: float = 0.45
    #: host-side cost to launch one kernel + stage its buffers (s)
    launch_overhead: float = 12e-6


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: CPU + zero or more GPUs."""

    name: str
    cores: int
    clock_ghz: float
    flops_per_cycle: int           # 16 for AVX2 FMA, 32 for AVX512/KNL
    #: fraction of CPU peak the vectorized FMM kernels sustain (Table 2
    #: measures ~0.30 on AVX2, ~0.17 on KNL, ~0.31 on Haswell-12c)
    cpu_kernel_efficiency: float = 0.30
    #: relative speed of the non-FMM (hydro, tree) part of Octo-Tiger on
    #: this CPU, as a fraction of peak; the paper notes this code is less
    #: vectorized, which is why KNL's FMM share drops to 20% (Sec. 6.1.2)
    cpu_other_efficiency: float = 0.06
    gpus: tuple[GpuSpec, ...] = field(default_factory=tuple)
    ram_gb: float = 64.0

    @property
    def cpu_peak_gflops(self) -> float:
        return self.cores * self.clock_ghz * self.flops_per_cycle

    @property
    def core_peak_gflops(self) -> float:
        return self.clock_ghz * self.flops_per_cycle

    @property
    def gpu_peak_gflops(self) -> float:
        return sum(g.peak_gflops for g in self.gpus)

    @property
    def total_streams(self) -> int:
        return sum(g.n_streams for g in self.gpus)

    @property
    def has_gpu(self) -> bool:
        return bool(self.gpus)

    def fmm_core_rate(self) -> float:
        """GFLOP/s one CPU core sustains inside an FMM kernel."""
        return self.core_peak_gflops * self.cpu_kernel_efficiency

    def fmm_gpu_rate(self, gpu: GpuSpec) -> float:
        """GFLOP/s one GPU sustains on back-to-back FMM kernels."""
        return gpu.peak_gflops * gpu.kernel_efficiency

    def other_rate(self) -> float:
        """Node-aggregate GFLOP/s on the non-FMM part of a timestep."""
        return self.cpu_peak_gflops * self.cpu_other_efficiency
