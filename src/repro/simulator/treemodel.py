"""Structural octree model of the V1309 scenario (Table 4).

The scaling experiments need the tree *shape* at refinement levels 13-17
(sub-grid counts, leaf/interior split, spatial distribution for the SFC
partition) without paying for 2.3 TB of physics state.  This module grows
the octree geometrically from the scenario description in Sec. 6:

* cubic domain with 1.02e3 R_sun edges, binary separation 6.37 R_sun;
* "both stars are refined down to 12 levels, with the core of the accretor
  and donor refined to 13 and 14 levels respectively" for the level-14 run,
  "the 15, 16, and 17 level runs are successively refined one more level in
  each refinement regime";
* a base level keeps the envelope/domain resolved everywhere.

Region radii are calibrated so total node counts match Table 4 (see
EXPERIMENTS.md); the generator is fully vectorized (level-at-a-time NumPy
expansion) so even the 1.5M-sub-grid level-17 tree builds in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RefinementRegion", "ScenarioTree", "v1309_tree",
           "TABLE4_PAPER_COUNTS", "MEMORY_GB_PER_SUBGRID"]

#: paper Table 4: level of refinement -> (sub-grids, memory GB)
TABLE4_PAPER_COUNTS: dict[int, tuple[int, float]] = {
    13: (5_417, 8.0),
    14: (10_928, 16.37),
    15: (42_947, 56.92),
    16: (224_000, 271.94),
    17: (1_500_000, 2_305.92),
}

#: empirical bytes-per-sub-grid constant implied by Table 4 (~1.45 MB:
#: 8^3 cells x ~15 fields x 8 B plus halos, multipole buffers, workspace)
MEMORY_GB_PER_SUBGRID = 1.45e-3

#: domain edge in R_sun (Sec. 6)
DOMAIN_EDGE = 1.02e3
#: binary separation in R_sun
SEPARATION = 6.37
#: component masses in M_sun -> centre-of-mass offsets along x
M_PRIMARY, M_SECONDARY = 1.54, 0.17
_X1 = SEPARATION * M_SECONDARY / (M_PRIMARY + M_SECONDARY)   # accretor
_X2 = -SEPARATION * M_PRIMARY / (M_PRIMARY + M_SECONDARY)    # donor


@dataclass(frozen=True)
class RefinementRegion:
    """A sphere that forces refinement down to ``target_level``."""

    name: str
    center: tuple[float, float, float]
    radius: float
    target_level: int


@dataclass
class ScenarioTree:
    """A structural octree: per-level sub-grid centres, no physics state.

    ``levels[l]`` is an (n, 3) array of sub-grid centres at octree level l;
    ``refined[l]`` is a matching bool mask (True = has children).
    """

    max_level: int
    domain_edge: float = DOMAIN_EDGE
    levels: list[np.ndarray] = field(default_factory=list)
    refined: list[np.ndarray] = field(default_factory=list)

    @property
    def total_subgrids(self) -> int:
        return sum(len(c) for c in self.levels)

    @property
    def n_interior(self) -> int:
        return int(sum(r.sum() for r in self.refined))

    @property
    def n_leaves(self) -> int:
        return self.total_subgrids - self.n_interior

    def subgrids_at(self, level: int) -> int:
        return len(self.levels[level]) if level < len(self.levels) else 0

    def memory_gb(self) -> float:
        return self.total_subgrids * MEMORY_GB_PER_SUBGRID

    def leaf_centers(self) -> np.ndarray:
        """Centres of all leaf sub-grids, ordered coarse-to-fine."""
        parts = [c[~r] for c, r in zip(self.levels, self.refined) if len(c)]
        return np.vstack(parts) if parts else np.empty((0, 3))


def _cube_sphere_intersects(centers: np.ndarray, half: float,
                            sphere_c: np.ndarray, radius: float) -> np.ndarray:
    """Vectorized cube-sphere overlap test for sub-grid cubes."""
    d = np.abs(centers - sphere_c)
    clamped = np.maximum(d - half, 0.0)
    return np.einsum("ij,ij->i", clamped, clamped) <= radius * radius


def build_tree(regions: list[RefinementRegion], max_level: int,
               base_level: int = 4, domain_edge: float = DOMAIN_EDGE,
               nesting_margin: float = 0.05) -> ScenarioTree:
    """Grow the octree: a sub-grid refines while any region demands it.

    ``nesting_margin`` inflates each region test by a fraction of the
    sub-grid half-width, emulating Octo-Tiger's proper-nesting padding.
    """
    tree = ScenarioTree(max_level=max_level, domain_edge=domain_edge)
    centers = np.zeros((1, 3))
    for level in range(max_level + 1):
        half = domain_edge / (2.0 ** (level + 1))
        refine = np.zeros(len(centers), dtype=bool)
        if level < max_level:
            if level < base_level:
                refine[:] = True
            else:
                pad = half * (1.0 + nesting_margin)
                for region in regions:
                    if level >= region.target_level:
                        continue
                    hit = _cube_sphere_intersects(
                        centers, pad, np.asarray(region.center), region.radius)
                    refine |= hit
                    if refine.all():
                        break
        tree.levels.append(centers)
        tree.refined.append(refine)
        if not refine.any():
            break
        parents = centers[refine]
        child_half = half / 2.0
        offsets = np.array([(i, j, k) for i in (-1, 1)
                            for j in (-1, 1) for k in (-1, 1)], dtype=float)
        centers = (parents[:, None, :]
                   + offsets[None, :, :] * child_half).reshape(-1, 3)
    return tree


#: Calibrated V1309 region radii (R_sun) at the level-13 baseline run.
#: Octo-Tiger refines on density, so at higher run levels the deepest
#: refinement hugs an ever-steeper density contour: ``shrink`` scales a
#: region's radius by that factor per run level above 13, which is what
#: produces Table 4's sub-octree growth ratios (x3.9, x5.2, x6.7 < x8).
V1309_REGIONS_SPEC = {
    "accretor": {"center": (_X1, 0.0, 0.0), "radius": 2.20,
                 "level_offset": 2, "shrink": 0.965},
    "donor": {"center": (_X2, 0.0, 0.0), "radius": 0.90,
              "level_offset": 2, "shrink": 0.965},
    "accretor_core": {"center": (_X1, 0.0, 0.0), "radius": 0.24,
                      "level_offset": 1, "shrink": 0.965},
    "donor_core": {"center": (_X2, 0.0, 0.0), "radius": 0.20,
                   "level_offset": 0, "shrink": 0.965},
    "atmosphere": {"center": (0.0, 0.0, 0.0), "radius": 3.0,
                   "level_offset": 5, "shrink": 1.0},
}


def v1309_regions(level: int) -> list[RefinementRegion]:
    """Refinement regions for the level-``level`` V1309 run (Sec. 6).

    ``level_offset`` is subtracted from the run's maximum level: stars
    refine to L-2, the accretor core to L-1, the donor core to L, the
    common atmosphere stays five levels coarser.
    """
    return [
        RefinementRegion(
            name, tuple(spec["center"]),
            spec["radius"] * spec["shrink"] ** (level - 13),
            level - spec["level_offset"])
        for name, spec in V1309_REGIONS_SPEC.items()
    ]


def v1309_tree(level: int, base_level: int = 4) -> ScenarioTree:
    """The structural V1309 octree for a level-``level`` run (Table 4)."""
    if level < base_level:
        raise ValueError(f"scenario level {level} below base level {base_level}")
    return build_tree(v1309_regions(level), max_level=level,
                      base_level=base_level)
