"""Catalogue of the paper's evaluation platforms (Tables 2 and 3).

CPU peak accounting follows the paper: cores x base clock x flops/cycle
with 16 flops/cycle on AVX2 (2 FMA units x 4 doubles x 2) and 32 on
AVX512/KNL.  Spot checks against Table 2's "fraction of peak" column:

* E5-2660 v3, 10 cores: 10 x 2.4 x 16 = 384 GF -> 125 GF/s is 32.6%
  (the paper rounds to 30%);
* E5-2690 v3, 12 cores: 12 x 2.6 x 16 = 499 GF -> 157 GF/s is 31%;
* Xeon Phi 7210: 64 x 1.3 x 32 = 2662 GF -> 459 GF/s is 17%.

GPU peaks: P100 (PCIe) 4.7 TF, V100 (PCIe) 7.0 TF double precision.
"""

from __future__ import annotations

from .machine import GpuSpec, NodeSpec

__all__ = [
    "V100", "P100",
    "XEON_E5_2660V3_10C", "XEON_E5_2660V3_20C", "XEON_PHI_7210",
    "PIZ_DAINT_CPU", "PIZ_DAINT", "with_gpus", "TABLE2_CONFIGS",
]

V100 = GpuSpec(name="NVIDIA V100 (PCI-E)", peak_gflops=7000.0,
               kernel_efficiency=0.37, launch_overhead=11e-6)
P100 = GpuSpec(name="NVIDIA P100 (PCI-E)", peak_gflops=4700.0,
               kernel_efficiency=0.26, launch_overhead=13e-6)

XEON_E5_2660V3_10C = NodeSpec(
    name="Intel Xeon E5-2660 v3, 2.4 GHz, 10 cores",
    cores=10, clock_ghz=2.4, flops_per_cycle=16,
    cpu_kernel_efficiency=0.326, cpu_other_efficiency=0.055)

XEON_E5_2660V3_20C = NodeSpec(
    name="Intel Xeon E5-2660 v3, 2.4 GHz, 20 cores",
    cores=20, clock_ghz=2.4, flops_per_cycle=16,
    cpu_kernel_efficiency=0.326, cpu_other_efficiency=0.055)

XEON_PHI_7210 = NodeSpec(
    name="Intel Xeon Phi 7210, 1.3 GHz, 64 cores",
    cores=64, clock_ghz=1.3, flops_per_cycle=32,
    cpu_kernel_efficiency=0.172,
    # "the other less optimized parts ... make fewer use of the SIMD
    # capabilities that the Xeon Phi offers" (Sec. 6.1.2)
    cpu_other_efficiency=0.016)

PIZ_DAINT_CPU = NodeSpec(
    name="Intel Xeon E5-2690 v3, 2.6 GHz, 12 cores",
    cores=12, clock_ghz=2.6, flops_per_cycle=16,
    cpu_kernel_efficiency=0.315, cpu_other_efficiency=0.055)

#: One Piz Daint XC50 node (Table 3): 12-core Haswell + one P100, 64 GB
PIZ_DAINT = NodeSpec(
    name="Piz Daint node (Xeon E5-2690 v3 + P100)",
    cores=PIZ_DAINT_CPU.cores, clock_ghz=PIZ_DAINT_CPU.clock_ghz,
    flops_per_cycle=16,
    cpu_kernel_efficiency=PIZ_DAINT_CPU.cpu_kernel_efficiency,
    cpu_other_efficiency=PIZ_DAINT_CPU.cpu_other_efficiency,
    gpus=(P100,), ram_gb=64.0)

#: full system size used in Sec. 6.2
PIZ_DAINT_TOTAL_NODES = 5400


def with_gpus(cpu: NodeSpec, *gpus: GpuSpec) -> NodeSpec:
    """Attach GPUs to a CPU spec (builds the Table 2 GPU rows)."""
    return NodeSpec(
        name=f"{cpu.name} + {len(gpus)}x {gpus[0].name}" if gpus else cpu.name,
        cores=cpu.cores, clock_ghz=cpu.clock_ghz,
        flops_per_cycle=cpu.flops_per_cycle,
        cpu_kernel_efficiency=cpu.cpu_kernel_efficiency,
        cpu_other_efficiency=cpu.cpu_other_efficiency,
        gpus=tuple(gpus), ram_gb=cpu.ram_gb)


#: the nine rows of Table 2, in paper order
TABLE2_CONFIGS: list[tuple[str, NodeSpec]] = [
    ("E5-2660v3 10c, CPU-only", XEON_E5_2660V3_10C),
    ("E5-2660v3 10c + 1x V100", with_gpus(XEON_E5_2660V3_10C, V100)),
    ("E5-2660v3 10c + 2x V100", with_gpus(XEON_E5_2660V3_10C, V100, V100)),
    ("E5-2660v3 20c, CPU-only", XEON_E5_2660V3_20C),
    ("E5-2660v3 20c + 1x V100", with_gpus(XEON_E5_2660V3_20C, V100)),
    ("E5-2660v3 20c + 2x V100", with_gpus(XEON_E5_2660V3_20C, V100, V100)),
    ("Xeon Phi 7210 64c", XEON_PHI_7210),
    ("Piz Daint node, CPU-only", PIZ_DAINT_CPU),
    ("Piz Daint node + 1x P100", PIZ_DAINT),
]
