"""Discrete-event cluster simulator: the "Piz Daint" substrate (DESIGN.md §2).

Provides the event queue, node hardware models, the paper's evaluation
platforms, the structural V1309 octree (Table 4), workload profiling,
the node-level FMM performance DES (Table 2) and the distributed scaling
model (Figs. 2 and 3).
"""

from .events import EventQueue, SimulationError
from .machine import GpuSpec, NodeSpec
from .platforms import (V100, P100, XEON_E5_2660V3_10C, XEON_E5_2660V3_20C,
                        XEON_PHI_7210, PIZ_DAINT_CPU, PIZ_DAINT, with_gpus,
                        TABLE2_CONFIGS)
from .treemodel import (RefinementRegion, ScenarioTree, build_tree,
                        v1309_tree, v1309_regions, TABLE4_PAPER_COUNTS,
                        MEMORY_GB_PER_SUBGRID)
from .taskgraph import WorkloadProfile, profile_tree, morton_encode
from .distributed import StepModel, StepResult
from .nodelevel import NodeLevelResult, simulate_gravity_solve, measure_node
from .scaling import (cached_profile, cached_tree, node_level_table,
                      subgrid_table, ScalingPoint, scaling_sweep,
                      parcelport_ratio, reference_rate, PAPER_NODE_COUNTS)
from .startup import startup_time, startup_speedup

__all__ = [
    "EventQueue", "SimulationError", "GpuSpec", "NodeSpec",
    "V100", "P100", "XEON_E5_2660V3_10C", "XEON_E5_2660V3_20C",
    "XEON_PHI_7210", "PIZ_DAINT_CPU", "PIZ_DAINT", "with_gpus",
    "TABLE2_CONFIGS",
    "RefinementRegion", "ScenarioTree", "build_tree", "v1309_tree",
    "v1309_regions", "TABLE4_PAPER_COUNTS", "MEMORY_GB_PER_SUBGRID",
    "WorkloadProfile", "profile_tree", "morton_encode",
    "StepModel", "StepResult",
    "NodeLevelResult", "simulate_gravity_solve", "measure_node",
    "cached_profile", "cached_tree", "node_level_table", "subgrid_table",
    "ScalingPoint", "scaling_sweep", "parcelport_ratio", "reference_rate",
    "PAPER_NODE_COUNTS", "startup_time", "startup_speedup",
]
