"""Active-message parcels.

"Active messages are used to transfer data and trigger a function on a
remote node; we refer to the triggering of remote functions with bound
arguments as *actions* and the messages containing the serialized data and
remote function as *parcels*" (Sec. 5.2).

A :class:`Parcel` carries a destination GID, an action name, pickled
arguments and bookkeeping for the transport layer (serialized size, whether
any argument is large enough to go through the RMA path — the paper's
"user/packed data buffers larger than the eager message size threshold are
encoded as pointers and exchanged ... using one-sided RMA put/get").

:class:`ParcelHandler` decodes parcels and invokes the action through AGAS,
recording per-action statistics.  The cost of moving a parcel across a
network is the business of :mod:`repro.network`.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..sanitize import racecheck as _racecheck
from ..sanitize import schedules as _schedules
from ..sanitize import state as _sanitize_state
from .agas import AgasRuntime, Gid
from .future import Future

__all__ = ["Parcel", "ParcelHandler", "EAGER_THRESHOLD", "serialized_size"]

#: Messages at or below this many bytes travel in the eager path; larger
#: payloads use rendezvous (MPI model) or RMA get (libfabric model).
EAGER_THRESHOLD = 4096


def serialized_size(args: tuple[Any, ...]) -> int:
    """Approximate wire size of an argument tuple in bytes.

    ndarray payloads count their buffer size (they would be RMA'd, not
    pickled, in the real transport); everything else is measured by pickle.
    """
    total = 0
    plain: list[Any] = []
    for a in args:
        if isinstance(a, np.ndarray):
            total += a.nbytes
        else:
            plain.append(a)
    if plain:
        total += len(pickle.dumps(plain, protocol=pickle.HIGHEST_PROTOCOL))
    return total


@dataclass
class Parcel:
    """A serialized action invocation in flight."""

    destination: Gid
    action: str
    args: tuple[Any, ...] = ()
    #: filled in by __post_init__
    size_bytes: int = field(default=0)
    #: True when at least one buffer exceeds the eager threshold
    uses_rma: bool = field(default=False)
    #: per-parcel sequence number, useful for tracing/tests
    seq: int = field(default=-1)

    _counter = 0
    _counter_lock = threading.Lock()

    def __post_init__(self) -> None:
        self.size_bytes = serialized_size(self.args) + self._header_bytes()
        self.uses_rma = any(
            isinstance(a, np.ndarray) and a.nbytes > EAGER_THRESHOLD
            for a in self.args)
        with Parcel._counter_lock:
            Parcel._counter += 1
            self.seq = Parcel._counter
        if _sanitize_state.ACTIVE:
            # send edge: the sender's writes to the payload happen-before
            # delivery (the handler recvs on this parcel's seq)
            _racecheck.send(("parcel", self.seq))

    def _header_bytes(self) -> int:
        # GID (16) + action name + framing, mirroring HPX parcel headers
        return 16 + len(self.action) + 32

    @property
    def is_eager(self) -> bool:
        return self.size_bytes <= EAGER_THRESHOLD


class ParcelHandler:
    """Receives parcels and executes their actions through AGAS.

    ``fault_injector`` (any object with a ``maybe_action_fault(parcel)``
    method, e.g. :class:`repro.resilience.faults.FaultInjector`) models
    receive-side failures: when it returns an exception the action is not
    run and the exception comes back through the returned future, where a
    resilient sender can spot the transient fault and resend.
    """

    def __init__(self, agas: AgasRuntime, fault_injector: Any | None = None):
        self.agas = agas
        self.fault_injector = fault_injector
        self._lock = threading.Lock()
        self.received = 0
        self.bytes_received = 0
        self.action_faults = 0
        self.per_action: dict[str, int] = {}

    def deliver(self, parcel: Parcel) -> Future:
        """Decode and run the parcel's action; returns the action's future."""
        exp = _schedules.EXPLORER
        if exp is not None:
            exp.pause("parcel-deliver")
        if _sanitize_state.ACTIVE:
            _racecheck.recv(("parcel", parcel.seq))
        with self._lock:
            self.received += 1
            self.bytes_received += parcel.size_bytes
            self.per_action[parcel.action] = self.per_action.get(parcel.action, 0) + 1
        if self.fault_injector is not None:
            exc = self.fault_injector.maybe_action_fault(parcel)
            if exc is not None:
                with self._lock:
                    self.action_faults += 1
                from .future import make_exceptional_future
                return make_exceptional_future(exc)
        return self.agas.async_action(parcel.destination, parcel.action, *parcel.args)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "received": self.received,
                "bytes_received": self.bytes_received,
                "action_faults": self.action_faults,
                "per_action": dict(self.per_action),
            }
