"""HPX channels.

"The asynchronous send/receive abstraction in HPX has been extended with
the concept of a channel that the receiving end may fetch futures from (for
N timesteps ahead if desired) and the sending end may push data into as it
is generated" (Sec. 5.2).

Octo-Tiger uses one channel per neighbour direction per sub-grid for halo
exchange; the key property is that *receives may be posted before sends*
(the future is handed out immediately and satisfied later) and values are
matched strictly by generation number, so a fast neighbour can run several
timesteps ahead without overwriting anything.

Protocol violations raise typed errors (the :class:`ChannelError`
hierarchy) and — when the sanitizers are enabled — are additionally
recorded as findings by :mod:`repro.sanitize.protocol`, so a caller that
swallows the exception cannot also swallow the report.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar

from ..sanitize import lockdep as _sanitize_lockdep
from ..sanitize import protocol as _sanitize_protocol
from ..sanitize import racecheck as _racecheck
from ..sanitize import schedules as _schedules
from ..sanitize import state as _sanitize_state
from .future import Future, Promise

__all__ = ["Channel", "ChannelError", "ChannelClosed", "ChannelReset",
           "ChannelGenerationError"]

T = TypeVar("T")


class ChannelError(RuntimeError):
    """Base class for channel protocol violations."""


class ChannelClosed(ChannelError):
    """Raised when interacting with a closed channel."""


class ChannelReset(ChannelClosed):
    """Raised into gets outstanding when :meth:`Channel.reset` discards them.

    A subclass of :class:`ChannelClosed` so existing handlers that treat a
    reset like a close keep working, while rollback-aware callers can tell
    the two apart (a reset channel is open again; a closed one is not).
    """


class ChannelGenerationError(ChannelError, ValueError):
    """Raised on a re-``set`` of a generation (already set or consumed).

    Also a :class:`ValueError` for backwards compatibility with callers
    (and tests) written against the untyped error this used to be.
    """


class Channel(Generic[T]):
    """A generation-indexed single-producer mailbox of futures.

    ``set(value, generation)`` fulfils the matching ``get(generation)``;
    either side may go first.  Without explicit generations the channel
    behaves as a FIFO pipe (auto-incrementing counters on each side).

    **Generation protocol.**  Each generation number moves through at most
    three states, in order: *unset* → *set* (a value is buffered or an
    outstanding get is fulfilled) → *consumed* (the value was matched to a
    get).  The transitions are single-shot:

    * a generation may be ``set`` at most once —
      :class:`ChannelGenerationError` on a re-set, whether the first value
      is still buffered ("already set") or was already matched ("already
      consumed").  Halo exchange relies on this: a double-set means two
      timesteps computed the same boundary, and silently keeping either
      value would hide the divergence;
    * ``set`` after :meth:`close` raises :class:`ChannelClosed` — the
      value could never be delivered;
    * :meth:`close` fails *unmatched* gets with :class:`ChannelClosed`
      but lets already-set generations drain;
    * :meth:`reset` (checkpoint rollback) is the one sanctioned way to
      re-use generation numbers: it discards all generation state, fails
      outstanding gets with :class:`ChannelReset`, and reopens the
      channel for the replay.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = _sanitize_lockdep.make_lock("channel.Channel")
        self._promises: dict[int, Promise] = {}
        self._ready: dict[int, Any] = {}
        self._next_get = 0
        self._next_set = 0
        self._closed = False
        # consumed-generation tracking: a contiguous floor (every
        # generation below it has been matched) plus the sparse set of
        # matched generations at or above it — bounded for in-order
        # traffic, exact for out-of-order explicit generations.
        self._consumed_floor = 0
        self._consumed: set[int] = set()

    def get(self, generation: int | None = None) -> Future:
        """Future for the value of ``generation`` (default: next in order).

        After :meth:`close`, generations whose value was already ``set``
        still drain normally; only unmatched gets raise
        :class:`ChannelClosed`.

        The get cursor (``_next_get``) advances only when a get actually
        succeeds: a get that raises :class:`ChannelClosed` must not burn
        its generation number, or a later default get would skip past a
        value still buffered at a lower generation and never drain it.
        """
        with self._lock:
            if generation is None:
                generation = self._next_get
            if generation in self._ready:
                value = self._ready.pop(generation)
                self._next_get = max(self._next_get, generation + 1)
                self._mark_consumed(generation)
                if _sanitize_state.ACTIVE:
                    # the fresh promise below resolves on *this* thread,
                    # so the sender -> getter edge must come from the
                    # channel generation itself
                    _racecheck.recv(("chan", id(self), generation))
                p = Promise()
                p.set_value(value)
                return p.get_future()
            if self._closed:
                raise ChannelClosed(f"channel {self.name!r} is closed")
            self._next_get = max(self._next_get, generation + 1)
            promise = self._promises.get(generation)
            if promise is None:
                promise = Promise()
                self._promises[generation] = promise
            return promise.get_future()

    def set(self, value: T, generation: int | None = None) -> None:
        """Publish ``value`` for ``generation`` (default: next in order)."""
        exp = _schedules.EXPLORER
        if exp is not None:
            exp.pause("channel-set")
        with self._lock:
            if self._closed:
                if _sanitize_state.ACTIVE:
                    _sanitize_protocol.channel_closed_set(
                        self.name, generation)
                raise ChannelClosed(
                    f"set on closed channel {self.name!r} "
                    f"(generation={generation}); the value can never be "
                    "delivered")
            if generation is None:
                generation = self._next_set
                self._next_set += 1
            else:
                self._next_set = max(self._next_set, generation + 1)
            if generation in self._ready:
                if _sanitize_state.ACTIVE:
                    _sanitize_protocol.channel_reset_generation(
                        self.name, generation, "already set")
                raise ChannelGenerationError(
                    f"generation {generation} already set on channel {self.name!r}")
            if (generation < self._consumed_floor
                    or generation in self._consumed):
                if _sanitize_state.ACTIVE:
                    _sanitize_protocol.channel_reset_generation(
                        self.name, generation, "already consumed")
                raise ChannelGenerationError(
                    f"generation {generation} already consumed on channel "
                    f"{self.name!r}; refusing to re-set")
            if _sanitize_state.ACTIVE:
                # sender release edge for this generation (paired with
                # the recv in the buffered-get path; the promise path
                # additionally gets the future's own resolution edge)
                _racecheck.send(("chan", id(self), generation))
            promise = self._promises.pop(generation, None)
            if promise is None:
                self._ready[generation] = value
                return
            self._mark_consumed(generation)
        promise.set_value(value)

    def close(self) -> None:
        """Close the channel; *unmatched* gets receive :class:`ChannelClosed`.

        Values already ``set`` but not yet fetched stay buffered and drain
        through later ``get`` calls — a receiver that posts its get after
        a fast sender's set must not lose halo data on shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._promises.values())
            self._promises.clear()
        exc = ChannelClosed(f"channel {self.name!r} closed while waiting")
        for p in pending:
            p.set_exception(exc)

    def reset(self) -> None:
        """Forget all generation state (rollback support).

        A checkpoint restore rewinds the step counter, so halo generations
        derived from it will be re-used; without a reset, :meth:`set` would
        reject them as already consumed.  Outstanding gets are failed with
        :class:`ChannelReset` (their step is being discarded), buffered
        values are dropped, and the channel is reopened for the replay.
        """
        with self._lock:
            pending = list(self._promises.values())
            self._promises.clear()
            self._ready.clear()
            self._next_get = 0
            self._next_set = 0
            self._consumed_floor = 0
            self._consumed.clear()
            self._closed = False
        exc = ChannelReset(f"channel {self.name!r} reset while waiting")
        for p in pending:
            p.set_exception(exc)

    def _mark_consumed(self, generation: int) -> None:
        """Record a matched generation (caller holds the lock)."""
        self._consumed.add(generation)
        while self._consumed_floor in self._consumed:
            self._consumed.remove(self._consumed_floor)
            self._consumed_floor += 1

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending_generations(self) -> list[int]:
        """Generations with an outstanding (unmatched) get."""
        with self._lock:
            return sorted(self._promises)

    def buffered_generations(self) -> list[int]:
        """Generations set but not yet fetched."""
        with self._lock:
            return sorted(self._ready)
