"""APEX-style performance counters.

"HPX provides a performance counter and adaptive tuning framework that
allows users to access performance data, such as core utilization, task
overheads, and network throughput; these diagnostic tools were instrumental
in scaling Octo-Tiger to the full machine" (Sec. 4.1).

Counters are named hierarchically (``/threads/count/cumulative``-style
paths).  Three kinds exist: monotonically increasing counters, gauges
(last-value), and timers (count + total + max).  A global default registry
serves the common case; components may carry their own registry.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["CounterRegistry", "default_registry", "counter", "gauge", "timer",
           "KNOWN_SECTIONS"]

#: Registered top-level counter sections.  Counter names are hierarchical
#: paths ``/section/name[/sub...]``; the first component must be one of
#: these.  The lint pass (``python -m repro.analysis.lint``, rule
#: REPRO004) enforces this against every counter-name literal in the
#: source tree, so a typo like ``/thread/executed`` cannot silently
#: create a parallel section that dashboards never aggregate.  Extend the
#: set here when introducing a genuinely new subsystem.
KNOWN_SECTIONS = frozenset({
    "agas",        # global address space (runtime/agas.py)
    "cuda",        # device/stream/launch statistics (runtime/cuda.py)
    "distmesh",    # distributed block mesh (core/distmesh.py)
    "exec",        # futurized execution engine (core/exec.py)
    "fmm",         # fast multipole gravity solver (core/gravity/fmm.py)
    "futures",     # future/continuation dispatch (runtime/future.py)
    "hydro",       # hydrodynamics kernels (core/mesh.py)
    "parcels",     # parcelport traffic (network/parcelport.py)
    "recovery",    # global rollback / elastic restart (resilience/durability.py)
    "resilience",  # faults, retry, checkpoints, supervision
    "sanitize",    # sanitizer findings (sanitize/state.py)
    "simulator",   # distributed-run simulator (simulator/distributed.py)
    "threads",     # work-stealing scheduler (runtime/scheduler.py)
})


class _Timer:
    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CounterRegistry:
    """Thread-safe registry of named counters, gauges and timers."""

    def __init__(self) -> None:
        # Deliberately a *plain* lock, not a sanitize.make_lock: the
        # registry is a leaf — the sanitizers themselves bump counters
        # while recording findings, so a tracked lock here would recurse
        # into the checker.  Nothing may call out of the registry while
        # holding this lock.
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, _Timer] = {}

    # -- counters -------------------------------------------------------------

    def increment(self, name: str, by: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + by

    def value(self, name: str) -> float:
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            if name in self._gauges:
                return self._gauges[name]
            raise KeyError(name)

    # -- gauges -----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    # -- timers ---------------------------------------------------------------------

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._timers.setdefault(name, _Timer()).record(elapsed)

    def record_time(self, name: str, elapsed: float) -> None:
        with self._lock:
            self._timers.setdefault(name, _Timer()).record(elapsed)

    def timer_stats(self, name: str) -> dict[str, float]:
        with self._lock:
            t = self._timers.get(name)
            if t is None:
                raise KeyError(name)
            return {"count": t.count, "total": t.total,
                    "mean": t.mean, "max": t.max}

    # -- enumeration ---------------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._gauges)
                          | set(self._timers))

    def snapshot(self) -> dict[str, float]:
        """Flat view: counters + gauges + timer totals (``name/total``)."""
        with self._lock:
            out: dict[str, float] = dict(self._counters)
            out.update(self._gauges)
            for name, t in self._timers.items():
                out[f"{name}/count"] = float(t.count)
                out[f"{name}/total"] = t.total
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


_default = CounterRegistry()


def default_registry() -> CounterRegistry:
    return _default


def counter(name: str, by: float = 1.0) -> None:
    """Increment a counter in the default registry."""
    _default.increment(name, by)


def gauge(name: str, value: float) -> None:
    _default.set_gauge(name, value)


def timer(name: str):
    """Context manager timing a block into the default registry."""
    return _default.time(name)
