"""HPX-style futures with continuation chaining.

This module reproduces the semantics of ``hpx::future`` / ``hpx::promise``
that Octo-Tiger relies on for *futurization* (Sec. 4.1 of the paper):

* a :class:`Future` represents a value that may not exist yet;
* ``then`` attaches a continuation that is scheduled when the value becomes
  ready (continuation-passing style — the paper's "dataflow execution
  trees");
* :func:`when_all` / :func:`when_any` compose futures;
* :func:`dataflow` schedules a callable once all of its future arguments
  are ready, passing the *unwrapped* values.

Unlike ``concurrent.futures``, continuations here are scheduled through a
pluggable executor (by default the calling thread, in tests and in the
scheduler a work-stealing pool), which mirrors HPX's behaviour of running
continuations as ordinary tasks rather than on a dedicated callback thread.

Two extensions underpin the supervision layer of
:mod:`repro.resilience.supervisor`:

* **cancellation** — :meth:`Future.cancel` resolves a pending future with
  :class:`CancelledError` and, crucially, turns any *late* completion by
  the producer into a silent no-op instead of a double-set error, so a
  task that has been given up on cannot crash its worker or leak a
  pending future;
* **deadlines** — :meth:`Future.set_deadline` attaches an absolute
  ``time.monotonic`` deadline that propagates through ``then`` /
  ``when_all`` / ``dataflow`` derived futures; ``get``/``wait`` never
  block past it (``get`` raises :class:`FutureTimeout`).

When :mod:`repro.sanitize` is enabled at creation time, every future is
registered with the future-graph watcher (creation site, dependency
edges through ``then``/``when_all``/``dataflow``/unwrapping, resolution
and error-consumption events) and every lock is order-checked by the
lockdep layer; disabled, the hooks reduce to one module-attribute read.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Sequence

from . import trace
from ..sanitize import futuregraph as _sanitize_graph
from ..sanitize import lockdep as _sanitize_lockdep
from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state

__all__ = [
    "Future",
    "Promise",
    "FutureError",
    "FutureTimeout",
    "CancelledError",
    "make_ready_future",
    "make_exceptional_future",
    "when_all",
    "when_any",
    "dataflow",
    "async_execute",
    "continuations_dispatched",
    "publish_counters",
]

# Continuation-dispatch tally for the /futures/... counters.  This lock
# guards *only* the integer bump in _dispatch — it must never be held
# while a callback/thunk runs (audited; the sanitizer's
# callback-under-lock checker enforces it at runtime when enabled, and
# tests/runtime/test_future_dispatch_lock.py regresses it).
_dispatch_lock = _sanitize_lockdep.make_lock("future.dispatch-tally")
_dispatched = 0


def continuations_dispatched() -> int:
    """Total continuations dispatched through any future so far."""
    with _dispatch_lock:
        return _dispatched


def publish_counters(registry=None) -> None:
    """Publish ``/futures/...`` gauges into ``registry`` (default global)."""
    from .counters import default_registry
    registry = registry or default_registry()
    registry.set_gauge("/futures/continuations-dispatched",
                       float(continuations_dispatched()))


class FutureError(RuntimeError):
    """Raised on invalid future usage (double-set, get-before-ready, ...)."""


class FutureTimeout(FutureError):
    """``get`` gave up waiting (explicit timeout or deadline expiry).

    Distinct from a *stored* exception: a :class:`FutureTimeout` raised by
    ``get`` means the future is still pending — the resilience layers use
    the type (never message sniffing) to classify the outcome as
    transient and retry.
    """


class CancelledError(FutureError):
    """The future was cancelled before a value arrived."""


_PENDING = "pending"
_READY = "ready"
_EXCEPTIONAL = "exceptional"


class Future:
    """A single-assignment container for an eventual value.

    Futures are created either ready (:func:`make_ready_future`), through a
    :class:`Promise`, or as the result of ``then``/``when_all``/``dataflow``.
    """

    __slots__ = ("_lock", "_cond", "_state", "_value", "_exception",
                 "_callbacks", "_executor", "_cancelled", "_deadline",
                 "_san_seq", "__weakref__")

    def __init__(self, executor: Callable[[Callable[[], None]], None] | None = None):
        self._lock = _sanitize_lockdep.make_lock("future.Future")
        self._cond = threading.Condition(self._lock)
        self._state = _PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] = []
        self._executor = executor
        self._cancelled = False
        self._deadline: float | None = None
        self._san_seq: int | None = None
        if _sanitize_state.ACTIVE:
            _sanitize_graph.register_future(self)

    # -- state inspection -------------------------------------------------

    def is_ready(self) -> bool:
        """True when a value or exception has been stored."""
        with self._lock:
            return self._state != _PENDING

    def has_exception(self) -> bool:
        with self._lock:
            return self._state == _EXCEPTIONAL

    def cancelled(self) -> bool:
        """True when :meth:`cancel` resolved this future."""
        with self._lock:
            return self._cancelled

    # -- deadlines ---------------------------------------------------------

    @property
    def deadline(self) -> float | None:
        """Absolute ``time.monotonic`` deadline, or ``None``."""
        with self._lock:
            return self._deadline

    def set_deadline(self, deadline: float | None) -> "Future":
        """Attach an absolute monotonic deadline; returns ``self``.

        ``get``/``wait`` never block past the deadline, and futures derived
        through ``then``/``recover`` inherit it, so an entire continuation
        chain is bounded by one supervision decision.  An earlier deadline
        already present is kept.
        """
        with self._lock:
            if deadline is not None and (self._deadline is None
                                         or deadline < self._deadline):
                self._deadline = deadline
        return self

    def _clamp_timeout(self, timeout: float | None) -> float | None:
        """Effective wait bound: the smaller of ``timeout`` and deadline."""
        with self._lock:
            deadline = self._deadline
        if deadline is None:
            return timeout
        remaining = max(deadline - time.monotonic(), 0.0)
        return remaining if timeout is None else min(timeout, remaining)

    # -- cancellation ------------------------------------------------------

    def cancel(self, reason: str = "") -> bool:
        """Resolve a pending future with :class:`CancelledError`.

        Returns True when the cancellation won the race with the producer.
        After a successful cancel, a late ``set_value``/``set_exception``
        from the producer is silently dropped — the abandoned task cannot
        crash its worker thread or resurrect the future.
        """
        with self._cond:
            if self._state != _PENDING:
                return False
            self._cancelled = True
            self._exception = CancelledError(reason or "future cancelled")
            self._state = _EXCEPTIONAL
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        if self._san_seq is not None:
            _sanitize_graph.on_resolved(self, self._exception, cancelled=True)
            _racecheck.send(("fut", self._san_seq))
        self._run_callbacks(callbacks)
        return True

    # -- completion (used by Promise and combinators) ----------------------

    def _set_value(self, value: Any) -> None:
        with self._cond:
            if self._state != _PENDING:
                if self._cancelled:
                    return  # late completion of a cancelled future
                raise FutureError("future already satisfied")
            self._value = value
            self._state = _READY
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        if self._san_seq is not None:
            _sanitize_graph.on_resolved(self)
            # release edge: everything the producer did happens-before
            # any consumer that observes readiness (get/wait/callbacks)
            _racecheck.send(("fut", self._san_seq))
        self._run_callbacks(callbacks)

    def _set_exception(self, exc: BaseException) -> None:
        with self._cond:
            if self._state != _PENDING:
                if self._cancelled:
                    return  # late failure of a cancelled future
                raise FutureError("future already satisfied")
            self._exception = exc
            self._state = _EXCEPTIONAL
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        if self._san_seq is not None:
            _sanitize_graph.on_resolved(self, exc)
            _racecheck.send(("fut", self._san_seq))
        self._run_callbacks(callbacks)

    def _run_callbacks(self, callbacks: Sequence[Callable[[Future], None]]) -> None:
        # INVARIANT (enforced by the sanitizer's callback-under-lock
        # checker): every caller releases this future's lock *and* any
        # module lock before invoking callbacks — a continuation may
        # complete other futures, post to the scheduler, or touch
        # channels, and doing that under a runtime lock inverts against
        # every lock those subsystems take.
        for cb in callbacks:
            self._dispatch(lambda cb=cb: cb(self))

    def _dispatch(self, thunk: Callable[[], None]) -> None:
        global _dispatched
        with _dispatch_lock:
            # tally only — never widen this critical section around the
            # thunk below: a synchronous thunk runs arbitrary user code
            _dispatched += 1
        if _sanitize_state.ACTIVE and self._executor is None:
            # the thunk will run user code on *this* thread, right now
            _sanitize_lockdep.check_no_locks_held("future callback dispatch")
        if trace.TRACING:
            inner = thunk

            def thunk() -> None:
                t0 = time.perf_counter()
                try:
                    inner()
                finally:
                    trace.default_recorder().complete(
                        "continuation", "future", t0, time.perf_counter())
        if self._executor is not None:
            self._executor(thunk)
        else:
            thunk()

    # -- retrieval ---------------------------------------------------------

    def get(self, timeout: float | None = None) -> Any:
        """Block until ready; return the value or raise the stored exception.

        Raises :class:`FutureTimeout` when ``timeout`` (or the future's
        deadline) expires first — the future itself stays pending.
        """
        bound = self._clamp_timeout(timeout)
        with self._cond:
            if self._state == _PENDING:
                if (_sanitize_state.ACTIVE and bound is None
                        and _sanitize_graph.on_scheduler_worker()):
                    # stall detector: an *unbounded* wait on a scheduler
                    # worker is the dynamic face of lint rule REPRO001 —
                    # give the future a grace period, then report
                    stall = _sanitize_state.config.stall_timeout
                    if not self._cond.wait_for(
                            lambda: self._state != _PENDING, stall):
                        _sanitize_graph.record_blocked_worker(self, stall)
                if not self._cond.wait_for(
                        lambda: self._state != _PENDING, bound):
                    raise FutureTimeout(
                        f"timed out waiting for future after {bound}s")
            if self._state == _EXCEPTIONAL:
                assert self._exception is not None
                if _sanitize_state.ACTIVE and self._san_seq is not None:
                    _sanitize_graph.mark_error_consumed(self)
                    _racecheck.recv(("fut", self._san_seq))
                raise self._exception
            value = self._value
        # acquire edge: the producer's writes happen-before this return
        if _sanitize_state.ACTIVE and self._san_seq is not None:
            _racecheck.recv(("fut", self._san_seq))
        return value

    def wait(self, timeout: float | None = None) -> bool:
        """Block until ready without consuming the value. Returns readiness.

        Never blocks past the future's deadline (if one is set).
        """
        bound = self._clamp_timeout(timeout)
        with self._cond:
            ready = self._cond.wait_for(lambda: self._state != _PENDING, bound)
        if ready and _sanitize_state.ACTIVE and self._san_seq is not None:
            _racecheck.recv(("fut", self._san_seq))
        return ready

    # -- composition ---------------------------------------------------------

    def then(self, fn: Callable[["Future"], Any],
             executor: Callable[[Callable[[], None]], None] | None = None) -> "Future":
        """Attach a continuation receiving *this future* once it is ready.

        Returns a new future holding ``fn``'s result.  If ``fn`` returns a
        future itself the result is unwrapped (monadic bind), matching
        ``hpx::future::then`` + automatic unwrapping.  The derived future
        inherits this future's deadline.
        """
        result = Future(executor=executor or self._executor)
        result.set_deadline(self.deadline)
        if _sanitize_state.ACTIVE:
            _sanitize_graph.add_dependency(result, self)

        def run(fut: "Future") -> None:
            try:
                out = fn(fut)
            except BaseException as exc:  # propagate into the result future
                result._set_exception(exc)
                return
            if isinstance(out, Future):
                # monadic unwrap: the result now waits on the returned
                # future — the one edge wired at *run* time, so a callback
                # returning its own result (or an ancestor of it) closes a
                # wait-for cycle the sanitizer can flag
                if _sanitize_state.ACTIVE:
                    _sanitize_graph.add_dependency(result, out)
                out.then(lambda f: _forward(f, result))
            else:
                result._set_value(out)

        self._on_ready(run)
        return result

    def recover(self, fn: Callable[[BaseException], Any],
                executor: Callable[[Callable[[], None]], None] | None = None
                ) -> "Future":
        """Map an exceptional outcome through ``fn``; values pass through.

        The error-path dual of :meth:`then` — the building block for
        retry/fallback logic in :mod:`repro.resilience`.
        """
        def handler(fut: "Future") -> Any:
            if fut.has_exception():
                try:
                    fut.get()
                except BaseException as exc:
                    return fn(exc)
            return fut.get()

        return self.then(handler, executor=executor)

    def _on_ready(self, cb: Callable[["Future"], None]) -> None:
        if _sanitize_state.ACTIVE and self._san_seq is not None:
            # registrar -> callback and resolver -> callback edges
            cb = _racecheck.wrap_callback(("fut", self._san_seq), cb)
        with self._lock:
            if self._state == _PENDING:
                self._callbacks.append(cb)
                return
        self._dispatch(lambda: cb(self))


def _forward(src: Future, dst: Future) -> None:
    """Copy the outcome of ``src`` into ``dst``."""
    if src.has_exception():
        try:
            src.get()
        except BaseException as exc:
            dst._set_exception(exc)
    else:
        dst._set_value(src.get())


class Promise:
    """The producing side of a :class:`Future` (``hpx::promise``)."""

    __slots__ = ("_future",)

    def __init__(self, executor: Callable[[Callable[[], None]], None] | None = None):
        self._future = Future(executor=executor)

    def get_future(self) -> Future:
        return self._future

    def set_value(self, value: Any = None) -> None:
        self._future._set_value(value)

    def set_exception(self, exc: BaseException) -> None:
        self._future._set_exception(exc)


def make_ready_future(value: Any = None) -> Future:
    """A future that is already satisfied with ``value``."""
    f = Future()
    f._set_value(value)
    return f


def make_exceptional_future(exc: BaseException) -> Future:
    f = Future()
    f._set_exception(exc)
    return f


def when_all(futures: Iterable[Future]) -> Future:
    """Future of the list of input futures, ready when all inputs are.

    Mirrors ``hpx::when_all``: the result holds the (now ready) futures
    themselves so exceptional inputs do not short-circuit composition.
    """
    futs = list(futures)
    result = Future()
    for f in futs:
        result.set_deadline(f.deadline)  # earliest input deadline wins
        if _sanitize_state.ACTIVE:
            _sanitize_graph.add_dependency(result, f)
    if not futs:
        result._set_value([])
        return result
    remaining = [len(futs)]
    lock = threading.Lock()
    # the counter lock is the real barrier join: every done() below is
    # ordered by it, so publishing clocks under it (send) and joining
    # them in the firing thread (recv) makes the firing thread inherit
    # happens-before from *all* inputs, not just the last to resolve
    wa_key = _racecheck.new_token() if _sanitize_state.ACTIVE else None

    def arm(f: Future) -> None:
        def done(_: Future) -> None:
            with lock:
                remaining[0] -= 1
                fire = remaining[0] == 0
                if wa_key is not None:
                    _racecheck.send(wa_key)
            if fire:
                if wa_key is not None:
                    _racecheck.recv(wa_key)
                result._set_value(futs)
        f._on_ready(done)

    for f in futs:
        arm(f)
    return result


def when_any(futures: Iterable[Future]) -> Future:
    """Future of ``(index, future)`` for the first input to become ready."""
    futs = list(futures)
    if not futs:
        raise ValueError("when_any requires at least one future")
    result = Future()
    fired = threading.Event()

    def arm(i: int, f: Future) -> None:
        def done(fut: Future) -> None:
            if not fired.is_set():
                fired.set()
                try:
                    result._set_value((i, fut))
                except FutureError:
                    pass  # lost a benign race with another input
        f._on_ready(done)

    for i, f in enumerate(futs):
        arm(i, f)
    return result


def dataflow(fn: Callable[..., Any], *args: Any,
             executor: Callable[[Callable[[], None]], None] | None = None) -> Future:
    """Run ``fn`` once every future among ``args`` is ready.

    Future arguments are replaced by their values; plain arguments pass
    through.  An exceptional input propagates to the result without calling
    ``fn`` — HPX ``dataflow`` semantics, the building block of Octo-Tiger's
    solver coupling (Sec. 2: "HPX's futurization technique makes this
    coupling straightforward").
    """
    fut_args = [a for a in args if isinstance(a, Future)]
    result = Future(executor=executor)
    for a in fut_args:
        result.set_deadline(a.deadline)
        if _sanitize_state.ACTIVE:
            _sanitize_graph.add_dependency(result, a)

    def fire(_: Future) -> None:
        try:
            values = [a.get() if isinstance(a, Future) else a for a in args]
            out = fn(*values)
        except BaseException as exc:
            result._set_exception(exc)
            return
        if isinstance(out, Future):
            if _sanitize_state.ACTIVE:
                _sanitize_graph.add_dependency(result, out)
            out.then(lambda f: _forward(f, result))
        else:
            result._set_value(out)

    when_all(fut_args)._on_ready(fire)
    return result


def async_execute(fn: Callable[..., Any], *args: Any,
                  executor: Callable[[Callable[[], None]], None] | None = None) -> Future:
    """Schedule ``fn(*args)`` through ``executor`` and return its future.

    With no executor the call runs synchronously (``hpx::launch::sync``).
    """
    result = Future(executor=executor)

    def run() -> None:
        try:
            out = fn(*args)
        except BaseException as exc:
            result._set_exception(exc)
            return
        if isinstance(out, Future):
            if _sanitize_state.ACTIVE:
                _sanitize_graph.add_dependency(result, out)
            out.then(lambda f: _forward(f, result))
        else:
            result._set_value(out)

    if executor is None:
        run()
    else:
        if _sanitize_state.ACTIVE:
            # submitter -> task edge for non-scheduler executors
            run = _racecheck.wrap_callback(None, run)
        executor(run)
    return result
