"""Work-stealing lightweight task scheduler.

Models the HPX thread-scheduling subsystem the paper leans on (Sec. 4.1:
"a work-stealing lightweight task scheduler that enables finer-grained
parallelization and synchronization and automatic load balancing across all
local compute resources").

Each worker owns a deque; it pushes and pops tasks LIFO at its own end
(cache-friendly depth-first descent of the task tree) and steals FIFO from
the opposite end of a victim's deque (breadth-first steal of large work
items) — the classic Blumofe–Leiserson discipline HPX implements.

The scheduler doubles as a *future executor*: pass ``scheduler.post`` as the
``executor`` argument of the :mod:`repro.runtime.future` combinators and
continuations become ordinary stealable tasks.

Idle workers block on ``_idle_cond`` until :meth:`WorkStealingScheduler.post`
signals new work; a generation counter (``_wake_seq``, bumped under the
condition for every enqueue) closes the scan-then-sleep race without the
1 ms polling loop earlier revisions used.  Shutdown is two-phase: the
``_shutdown`` flag flips under ``_idle_cond`` (atomically with respect to
``post``, which rejects from then on), pending work drains, and only then
are the ``_SHUTDOWN`` sentinels enqueued — so an accepted task can never
land behind a sentinel and be silently dropped.
"""

from __future__ import annotations

import collections
import random
import threading
import time
from typing import Any, Callable

from . import trace
from ..sanitize import lockdep as _sanitize_lockdep
from ..sanitize import racecheck as _racecheck
from ..sanitize import schedules as _schedules
from ..sanitize import state as _sanitize_state
from .counters import CounterRegistry, default_registry
from .future import Future, async_execute

__all__ = ["WorkStealingScheduler", "TaskStats"]

#: safety-net wait timeout for idle workers; wakeups are signalled, the
#: timeout only guards against an (unexpected) lost notify
_IDLE_FALLBACK_S = 0.5


class TaskStats:
    """Counters mirroring HPX/APEX scheduler diagnostics."""

    __slots__ = ("executed", "stolen", "posted", "rejected", "idle_sleeps",
                 "per_worker")

    def __init__(self, n_workers: int):
        self.executed = 0
        self.stolen = 0
        self.posted = 0
        self.rejected = 0
        self.idle_sleeps = 0
        self.per_worker = [0] * n_workers

    def snapshot(self) -> dict[str, Any]:
        return {
            "executed": self.executed,
            "stolen": self.stolen,
            "posted": self.posted,
            "rejected": self.rejected,
            "idle_sleeps": self.idle_sleeps,
            "per_worker": list(self.per_worker),
        }


class _Worker(threading.Thread):
    def __init__(self, sched: "WorkStealingScheduler", index: int):
        super().__init__(name=f"repro-worker-{index}", daemon=True)
        self.sched = sched
        self.index = index
        self.deque: collections.deque = collections.deque()
        self.rng = random.Random(0xC0FFEE ^ index)

    def run(self) -> None:
        _TLS.worker = self
        sched = self.sched
        while True:
            # Snapshot the wake generation *before* scanning: any post that
            # lands after this read bumps the counter under _idle_cond, so
            # the equality check below refuses to sleep through it.
            seq = sched._wake_seq
            task = self._next_task()
            if task is _SHUTDOWN:
                return
            if task is not None:
                self._execute(task)
                continue
            with sched._idle_cond:
                sched._idle_workers += 1
                # (wait_idle waiters are signalled by _execute when
                # _pending hits zero; notifying here would wake the other
                # idle workers and ping-pong them forever)
                if sched._wake_seq == seq:
                    with sched._stats_lock:
                        sched.stats.idle_sleeps += 1
                    if trace.TRACING:
                        t0 = trace.begin()
                        sched._idle_cond.wait(timeout=_IDLE_FALLBACK_S)
                        trace.complete("idle", "scheduler", t0,
                                       worker=self.index)
                    else:
                        sched._idle_cond.wait(timeout=_IDLE_FALLBACK_S)
                sched._idle_workers -= 1

    def _next_task(self) -> Any:
        # Own deque first (LIFO), then the shared inbox, then steal (FIFO).
        try:
            return self.deque.pop()
        except IndexError:
            pass
        try:
            return self.sched._inbox.popleft()
        except IndexError:
            pass
        return self._steal()

    def _steal(self) -> Any:
        workers = self.sched._workers
        n = len(workers)
        exp = _schedules.EXPLORER
        if exp is not None:
            start = exp.pick("steal", n)  # seeded victim-scan steering
        else:
            start = self.rng.randrange(n)
        for k in range(n):
            victim = workers[(start + k) % n]
            if victim is self:
                continue
            try:
                task = victim.deque.popleft()
            except IndexError:
                continue
            with self.sched._stats_lock:
                self.sched.stats.stolen += 1
            if trace.TRACING:
                trace.instant("steal", "scheduler",
                              thief=self.index, victim=victim.index)
            return task
        return None

    def _execute(self, task: Callable[[], None]) -> None:
        sched = self.sched
        exp = _schedules.EXPLORER
        if exp is not None:
            exp.pause("task-begin")  # PCT-style churn: perturb who runs next
        t0 = time.perf_counter() if trace.TRACING else 0.0
        if _sanitize_state.ACTIVE:
            # a worker must enter user code lock-free: anything it still
            # held here would be pinned for the whole task body
            _sanitize_lockdep.check_no_locks_held("scheduler task body")
        try:
            task()
        except BaseException as exc:  # tasks must not kill workers
            sched._record_error(exc)
        finally:
            if trace.TRACING:
                trace.default_recorder().complete(
                    getattr(task, "__name__", "task"), "task",
                    t0, time.perf_counter(), worker=self.index)
            with sched._stats_lock:
                sched.stats.executed += 1
                sched.stats.per_worker[self.index] += 1
            with sched._idle_cond:
                sched._pending -= 1
                if sched._pending == 0:
                    sched._idle_cond.notify_all()


_SHUTDOWN = object()
_TLS = threading.local()


class WorkStealingScheduler:
    """A pool of work-stealing workers executing fire-and-forget tasks.

    Usage::

        with WorkStealingScheduler(4) as sched:
            fut = sched.submit(expensive, arg)
            value = fut.get()

    ``post`` schedules a bare thunk (used as a future executor); ``submit``
    wraps the callable in a :class:`Future`.
    """

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._inbox: collections.deque = collections.deque()
        self._workers = [_Worker(self, i) for i in range(n_workers)]
        self._stats_lock = _sanitize_lockdep.make_lock("scheduler.stats")
        self.stats = TaskStats(n_workers)
        self._idle_cond = _sanitize_lockdep.make_condition("scheduler.idle")
        self._idle_workers = 0
        self._pending = 0
        self._wake_seq = 0
        self._errors: list[BaseException] = []
        self._shutdown = False   # post() rejects from here on
        self._stopped = False    # sentinels enqueued, workers exiting
        for w in self._workers:
            w.start()

    # -- scheduling --------------------------------------------------------

    def post(self, task: Callable[[], None]) -> None:
        """Fire-and-forget a thunk. Current-worker tasks go on the local deque.

        The shutdown check happens under ``_idle_cond`` — atomically with
        :meth:`shutdown` flipping the flag — so a post either lands before
        the drain (and is guaranteed to execute) or raises ``RuntimeError``.
        Tasks posted *by a worker of this scheduler* while the drain is in
        progress are still accepted (continuations spawned by draining
        tasks must be allowed to run).
        """
        if _sanitize_state.ACTIVE:
            # poster -> task edge now; task end -> wait_idle drain edge
            task = _racecheck.wrap_callback(
                None, task, drain_key=("sched-drain", id(self)))
        exp = _schedules.EXPLORER
        if exp is not None:
            exp.pause("sched-post")
        worker = getattr(_TLS, "worker", None)
        local = worker is not None and worker.sched is self
        with self._idle_cond:
            if self._shutdown and not (local and not self._stopped):
                with self._stats_lock:
                    self.stats.rejected += 1
                raise RuntimeError("scheduler is shut down")
            self._pending += 1
            self._wake_seq += 1
            if local:
                worker.deque.append(task)
            else:
                self._inbox.append(task)
            self._idle_cond.notify()
        with self._stats_lock:
            self.stats.posted += 1

    def post_batch(self, tasks) -> None:
        """Fire-and-forget many thunks under one lock acquisition.

        The fan-out primitive of the futurized execution engine
        (:mod:`repro.core.exec`): posting a solve's worth of kernel
        batches one ``post`` at a time would take and drop ``_idle_cond``
        per task.  Called from a worker the batch lands on its local
        deque, where idle workers steal from the opposite end — the
        Blumofe–Leiserson fan-out that spreads a task tree breadth-first.
        """
        tasks = list(tasks)
        if not tasks:
            return
        if _sanitize_state.ACTIVE:
            drain = ("sched-drain", id(self))
            tasks = [_racecheck.wrap_callback(None, t, drain_key=drain)
                     for t in tasks]
        exp = _schedules.EXPLORER
        if exp is not None:
            # a fan-out batch carries no mutual ordering guarantee —
            # permuting it is a legal schedule the OS could produce
            tasks = exp.permute("sched-batch", tasks)
            exp.pause("sched-post")
        worker = getattr(_TLS, "worker", None)
        local = worker is not None and worker.sched is self
        with self._idle_cond:
            if self._shutdown and not (local and not self._stopped):
                with self._stats_lock:
                    self.stats.rejected += len(tasks)
                raise RuntimeError("scheduler is shut down")
            self._pending += len(tasks)
            self._wake_seq += 1
            if local:
                worker.deque.extend(tasks)
            else:
                self._inbox.extend(tasks)
            self._idle_cond.notify_all()
        with self._stats_lock:
            self.stats.posted += len(tasks)

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)``; returns a future for its result."""
        return async_execute(fn, *args, executor=self.post)

    # -- lifecycle -----------------------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no task is queued or running."""
        with self._idle_cond:
            idle = self._idle_cond.wait_for(lambda: self._pending == 0,
                                            timeout)
        if idle and _sanitize_state.ACTIVE:
            # acquire edge from every drained task's end-of-body release
            _racecheck.recv(("sched-drain", id(self)))
        return idle

    def shutdown(self) -> None:
        with self._idle_cond:
            already = self._shutdown
            self._shutdown = True
        if not already:
            # drain everything accepted before the flag flipped (plus any
            # continuations draining tasks post), then stop the workers
            self.wait_idle()
            with self._idle_cond:
                self._stopped = True
                for _ in self._workers:
                    self._inbox.append(_SHUTDOWN)
                self._wake_seq += 1
                self._idle_cond.notify_all()
        for w in self._workers:
            # _SHUTDOWN sentinels are consumed via the shared inbox
            w.join(timeout=5.0)

    def _record_error(self, exc: BaseException) -> None:
        with self._stats_lock:
            self._errors.append(exc)

    @property
    def errors(self) -> list[BaseException]:
        """Exceptions raised by fire-and-forget tasks (submit() errors go to futures)."""
        with self._stats_lock:
            return list(self._errors)

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # -- diagnostics -------------------------------------------------------

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/threads/...`` gauges (APEX-style) into ``registry``.

        Idempotent (gauges, not increments), so it may be called at any
        cadence; the profile report calls it once after a run.
        """
        registry = registry or default_registry()
        with self._stats_lock:
            snap = self.stats.snapshot()
        registry.set_gauge("/threads/executed", float(snap["executed"]))
        registry.set_gauge("/threads/posted", float(snap["posted"]))
        registry.set_gauge("/threads/stolen", float(snap["stolen"]))
        registry.set_gauge("/threads/rejected", float(snap["rejected"]))
        registry.set_gauge("/threads/idle-sleeps", float(snap["idle_sleeps"]))
        denom = snap["executed"] + snap["idle_sleeps"]
        registry.set_gauge("/threads/idle-rate",
                           snap["idle_sleeps"] / denom if denom else 0.0)
        registry.set_gauge("/threads/steal-rate",
                           snap["stolen"] / snap["executed"]
                           if snap["executed"] else 0.0)
        for i, n in enumerate(snap["per_worker"]):
            registry.set_gauge(f"/threads/worker/{i}/executed", float(n))

    def __enter__(self) -> "WorkStealingScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
