"""Work-stealing lightweight task scheduler.

Models the HPX thread-scheduling subsystem the paper leans on (Sec. 4.1:
"a work-stealing lightweight task scheduler that enables finer-grained
parallelization and synchronization and automatic load balancing across all
local compute resources").

Each worker owns a deque; it pushes and pops tasks LIFO at its own end
(cache-friendly depth-first descent of the task tree) and steals FIFO from
the opposite end of a victim's deque (breadth-first steal of large work
items) — the classic Blumofe–Leiserson discipline HPX implements.

The scheduler doubles as a *future executor*: pass ``scheduler.post`` as the
``executor`` argument of the :mod:`repro.runtime.future` combinators and
continuations become ordinary stealable tasks.
"""

from __future__ import annotations

import collections
import random
import threading
from typing import Any, Callable

from .future import Future, async_execute

__all__ = ["WorkStealingScheduler", "TaskStats"]


class TaskStats:
    """Counters mirroring HPX/APEX scheduler diagnostics."""

    __slots__ = ("executed", "stolen", "posted", "per_worker")

    def __init__(self, n_workers: int):
        self.executed = 0
        self.stolen = 0
        self.posted = 0
        self.per_worker = [0] * n_workers

    def snapshot(self) -> dict[str, Any]:
        return {
            "executed": self.executed,
            "stolen": self.stolen,
            "posted": self.posted,
            "per_worker": list(self.per_worker),
        }


class _Worker(threading.Thread):
    def __init__(self, sched: "WorkStealingScheduler", index: int):
        super().__init__(name=f"repro-worker-{index}", daemon=True)
        self.sched = sched
        self.index = index
        self.deque: collections.deque = collections.deque()
        self.rng = random.Random(0xC0FFEE ^ index)

    def run(self) -> None:
        _TLS.worker = self
        sched = self.sched
        while True:
            task = self._next_task()
            if task is _SHUTDOWN:
                return
            if task is None:
                with sched._idle_cond:
                    sched._idle_workers += 1
                    if sched._idle_workers == len(sched._workers) and sched._pending == 0:
                        sched._idle_cond.notify_all()
                    sched._idle_cond.wait(timeout=0.001)
                    sched._idle_workers -= 1
                continue
            self._execute(task)

    def _next_task(self) -> Any:
        # Own deque first (LIFO), then the shared inbox, then steal (FIFO).
        try:
            return self.deque.pop()
        except IndexError:
            pass
        try:
            return self.sched._inbox.popleft()
        except IndexError:
            pass
        return self._steal()

    def _steal(self) -> Any:
        workers = self.sched._workers
        n = len(workers)
        start = self.rng.randrange(n)
        for k in range(n):
            victim = workers[(start + k) % n]
            if victim is self:
                continue
            try:
                task = victim.deque.popleft()
            except IndexError:
                continue
            with self.sched._stats_lock:
                self.sched.stats.stolen += 1
            return task
        return None

    def _execute(self, task: Callable[[], None]) -> None:
        sched = self.sched
        try:
            task()
        except BaseException as exc:  # tasks must not kill workers
            sched._record_error(exc)
        finally:
            with sched._stats_lock:
                sched.stats.executed += 1
                sched.stats.per_worker[self.index] += 1
            with sched._idle_cond:
                sched._pending -= 1
                if sched._pending == 0:
                    sched._idle_cond.notify_all()


_SHUTDOWN = object()
_TLS = threading.local()


class WorkStealingScheduler:
    """A pool of work-stealing workers executing fire-and-forget tasks.

    Usage::

        with WorkStealingScheduler(4) as sched:
            fut = sched.submit(expensive, arg)
            value = fut.get()

    ``post`` schedules a bare thunk (used as a future executor); ``submit``
    wraps the callable in a :class:`Future`.
    """

    def __init__(self, n_workers: int = 4):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._inbox: collections.deque = collections.deque()
        self._workers = [_Worker(self, i) for i in range(n_workers)]
        self._stats_lock = threading.Lock()
        self.stats = TaskStats(n_workers)
        self._idle_cond = threading.Condition()
        self._idle_workers = 0
        self._pending = 0
        self._errors: list[BaseException] = []
        self._shutdown = False
        for w in self._workers:
            w.start()

    # -- scheduling --------------------------------------------------------

    def post(self, task: Callable[[], None]) -> None:
        """Fire-and-forget a thunk. Current-worker tasks go on the local deque."""
        if self._shutdown:
            raise RuntimeError("scheduler is shut down")
        with self._stats_lock:
            self.stats.posted += 1
        with self._idle_cond:
            self._pending += 1
            worker = getattr(_TLS, "worker", None)
            if worker is not None and worker.sched is self:
                worker.deque.append(task)
            else:
                self._inbox.append(task)
            self._idle_cond.notify()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)``; returns a future for its result."""
        return async_execute(fn, *args, executor=self.post)

    # -- lifecycle -----------------------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no task is queued or running."""
        with self._idle_cond:
            return self._idle_cond.wait_for(lambda: self._pending == 0, timeout)

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self.wait_idle()
        self._shutdown = True
        for _ in self._workers:
            self._inbox.append(_SHUTDOWN)
        with self._idle_cond:
            self._idle_cond.notify_all()
        for w in self._workers:
            # _SHUTDOWN sentinels are consumed via the shared inbox
            w.join(timeout=5.0)

    def _record_error(self, exc: BaseException) -> None:
        with self._stats_lock:
            self._errors.append(exc)

    @property
    def errors(self) -> list[BaseException]:
        """Exceptions raised by fire-and-forget tasks (submit() errors go to futures)."""
        with self._stats_lock:
            return list(self._errors)

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def __enter__(self) -> "WorkStealingScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
