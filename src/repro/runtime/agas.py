"""Active Global Address Space (AGAS).

HPX names every distributed object with a *global identifier* (GID) that
stays valid when the object migrates between localities; the runtime
resolves GIDs to their current home transparently (Sec. 4.1: "load
balancing via object migration ... a uniform API for local and remote
execution", and Sec. 5.2: "Even when a grid cell is migrated from one node
to another during operation, the runtime manages the updated destination
address transparently").

This module implements that registry for the in-process model: components
register under fresh GIDs, live on a *locality* (an integer rank), can
migrate, and remote method invocation routes through :class:`AgasRuntime`
so callers never need to know where a component lives.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable

from .future import Future, make_ready_future

__all__ = ["Gid", "Component", "AgasRuntime", "AgasError"]


class AgasError(RuntimeError):
    """Raised for unknown GIDs or invalid migrations."""


@dataclass(frozen=True, order=True)
class Gid:
    """A global identifier: (locality of birth, sequence number)."""

    msb: int  # birth locality
    lsb: int  # sequence number

    def __repr__(self) -> str:
        return f"gid({self.msb}:{self.lsb})"


class Component:
    """Base class for objects addressable through AGAS.

    Subclasses expose *actions* — plain methods invoked remotely via
    :meth:`AgasRuntime.apply` / :meth:`AgasRuntime.async_action`.
    """

    def __init__(self) -> None:
        self.gid: Gid | None = None

    def on_migrate(self, old_locality: int, new_locality: int) -> None:
        """Hook called after the component has been moved."""


class AgasRuntime:
    """The AGAS resolver plus active-message dispatch.

    Parameters
    ----------
    n_localities:
        Number of simulated localities (compute nodes).
    executor:
        Optional thunk executor (e.g. ``WorkStealingScheduler.post``) used
        to run remotely-invoked actions asynchronously.
    """

    def __init__(self, n_localities: int = 1,
                 executor: Callable[[Callable[[], None]], None] | None = None):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        self.n_localities = n_localities
        self._executor = executor
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._objects: dict[Gid, Component] = {}
        self._home: dict[Gid, int] = {}
        self._migrations = 0

    # -- registration -------------------------------------------------------

    def register(self, component: Component, locality: int = 0) -> Gid:
        """Give ``component`` a fresh GID homed at ``locality``."""
        self._check_locality(locality)
        with self._lock:
            gid = Gid(locality, next(self._seq))
            self._objects[gid] = component
            self._home[gid] = locality
        component.gid = gid
        return gid

    def unregister(self, gid: Gid) -> None:
        with self._lock:
            if gid not in self._objects:
                raise AgasError(f"unknown gid {gid}")
            del self._objects[gid]
            del self._home[gid]

    # -- resolution -----------------------------------------------------------

    def resolve(self, gid: Gid) -> tuple[Component, int]:
        """Return ``(component, current locality)`` for a GID."""
        with self._lock:
            try:
                return self._objects[gid], self._home[gid]
            except KeyError:
                raise AgasError(f"unknown gid {gid}") from None

    def locality_of(self, gid: Gid) -> int:
        return self.resolve(gid)[1]

    def components_on(self, locality: int) -> list[Gid]:
        self._check_locality(locality)
        with self._lock:
            return [g for g, loc in self._home.items() if loc == locality]

    # -- migration --------------------------------------------------------------

    def migrate(self, gid: Gid, new_locality: int) -> None:
        """Move a component; its GID remains valid (the AGAS promise)."""
        self._check_locality(new_locality)
        with self._lock:
            if gid not in self._home:
                raise AgasError(f"unknown gid {gid}")
            old = self._home[gid]
            self._home[gid] = new_locality
            comp = self._objects[gid]
            self._migrations += 1
        comp.on_migrate(old, new_locality)

    @property
    def migrations(self) -> int:
        with self._lock:
            return self._migrations

    # -- action invocation --------------------------------------------------------

    def async_action(self, gid: Gid, method: str, *args: Any) -> Future:
        """Invoke ``component.method(*args)`` wherever the component lives.

        This is the "semantic and syntactic equivalence of local and remote
        operations" of Sec. 4.1 — callers see a future either way.
        """
        comp, _loc = self.resolve(gid)
        fn = getattr(comp, method, None)
        if fn is None or not callable(fn):
            raise AgasError(f"component {gid} has no action {method!r}")
        if self._executor is None:
            try:
                return make_ready_future(fn(*args))
            except BaseException as exc:
                from .future import make_exceptional_future
                return make_exceptional_future(exc)
        from .future import async_execute
        return async_execute(fn, *args, executor=self._executor)

    def apply(self, gid: Gid, method: str, *args: Any) -> None:
        """Fire-and-forget action (HPX ``hpx::apply``)."""
        self.async_action(gid, method, *args)

    # -- helpers ----------------------------------------------------------------

    def _check_locality(self, locality: int) -> None:
        if not 0 <= locality < self.n_localities:
            raise AgasError(
                f"locality {locality} out of range [0, {self.n_localities})")
