"""Active Global Address Space (AGAS).

HPX names every distributed object with a *global identifier* (GID) that
stays valid when the object migrates between localities; the runtime
resolves GIDs to their current home transparently (Sec. 4.1: "load
balancing via object migration ... a uniform API for local and remote
execution", and Sec. 5.2: "Even when a grid cell is migrated from one node
to another during operation, the runtime manages the updated destination
address transparently").

This module implements that registry for the in-process model: components
register under fresh GIDs, live on a *locality* (an integer rank), can
migrate, and remote method invocation routes through :class:`AgasRuntime`
so callers never need to know where a component lives.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable

from . import trace
from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state
from .counters import CounterRegistry, default_registry
from .future import Future, make_exceptional_future, make_ready_future

__all__ = ["Gid", "Component", "AgasRuntime", "AgasError", "LocalityFailed"]


class AgasError(RuntimeError):
    """Raised for unknown GIDs or invalid migrations."""


class LocalityFailed(AgasError):
    """The locality hosting (or targeted for) a component has failed.

    Distinct from a plain :class:`AgasError` so resilience layers can tell
    "this GID never existed" apart from "this GID died with its node".
    """


@dataclass(frozen=True, order=True)
class Gid:
    """A global identifier: (locality of birth, sequence number)."""

    msb: int  # birth locality
    lsb: int  # sequence number

    def __repr__(self) -> str:
        return f"gid({self.msb}:{self.lsb})"


class Component:
    """Base class for objects addressable through AGAS.

    Subclasses expose *actions* — plain methods invoked remotely via
    :meth:`AgasRuntime.apply` / :meth:`AgasRuntime.async_action`.

    ``migratable`` controls locality-failure handling: migratable
    components (the default — Sec. 5.2's grid cells move freely) are
    evacuated to a surviving locality when their node dies; pinned ones
    (``migratable = False``) are lost and their GIDs invalidated.
    """

    #: may this component be evacuated off a failed locality?
    migratable: bool = True

    def __init__(self) -> None:
        self.gid: Gid | None = None

    def on_migrate(self, old_locality: int, new_locality: int) -> None:
        """Hook called after the component has been moved."""


class AgasRuntime:
    """The AGAS resolver plus active-message dispatch.

    Parameters
    ----------
    n_localities:
        Number of simulated localities (compute nodes).
    executor:
        Optional thunk executor (e.g. ``WorkStealingScheduler.post``) used
        to run remotely-invoked actions asynchronously.
    registry:
        Counter sink for ``/agas/...`` and ``/resilience/agas/...``
        counters (default: the process-wide registry).
    """

    def __init__(self, n_localities: int = 1,
                 executor: Callable[[Callable[[], None]], None] | None = None,
                 registry: CounterRegistry | None = None):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        self.n_localities = n_localities
        self._executor = executor
        self.registry = registry or default_registry()
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._objects: dict[Gid, Component] = {}
        self._home: dict[Gid, int] = {}
        self._migrations = 0
        self._failed: set[int] = set()
        #: GIDs invalidated by a locality failure -> the locality that died
        self._lost: dict[Gid, int] = {}
        #: per-gid FIFO of move notifications not yet delivered; whichever
        #: thread queues onto an *empty* FIFO owns draining it, so
        #: ``on_migrate`` callbacks always arrive in commit order even
        #: when migrations race (and never run under ``self._lock``)
        self._notify: dict[Gid, list[tuple[Component, int, int]]] = {}

    # -- registration -------------------------------------------------------

    def register(self, component: Component, locality: int = 0) -> Gid:
        """Give ``component`` a fresh GID homed at ``locality``."""
        self._check_locality(locality)
        self._check_alive(locality)
        with self._lock:
            gid = Gid(locality, next(self._seq))
            self._objects[gid] = component
            self._home[gid] = locality
            if _sanitize_state.ACTIVE:
                # registrant -> resolver edge: the component's constructed
                # state happens-before any access through its GID
                _racecheck.send(("agas", gid))
        component.gid = gid
        return gid

    def unregister(self, gid: Gid) -> None:
        with self._lock:
            if gid not in self._objects:
                raise AgasError(f"unknown gid {gid}")
            del self._objects[gid]
            del self._home[gid]

    # -- resolution -----------------------------------------------------------

    def resolve(self, gid: Gid) -> tuple[Component, int]:
        """Return ``(component, current locality)`` for a GID."""
        with self._lock:
            try:
                found = self._objects[gid], self._home[gid]
            except KeyError:
                dead = self._lost.get(gid)
                if dead is not None:
                    raise LocalityFailed(
                        f"{gid} was lost when locality {dead} failed") from None
                raise AgasError(f"unknown gid {gid}") from None
        if _sanitize_state.ACTIVE:
            # acquire the registration/migration commit order for this GID
            _racecheck.recv(("agas", gid))
        return found

    def locality_of(self, gid: Gid) -> int:
        return self.resolve(gid)[1]

    def components_on(self, locality: int) -> list[Gid]:
        self._check_locality(locality)
        with self._lock:
            return [g for g, loc in self._home.items() if loc == locality]

    # -- migration --------------------------------------------------------------

    def migrate(self, gid: Gid, new_locality: int) -> None:
        """Move a component; its GID remains valid (the AGAS promise).

        The ``on_migrate`` notification is committed under ``self._lock``
        together with the home-table update and delivered through a
        per-gid FIFO: two racing migrations of the same gid can therefore
        never observe their callbacks out of order (the old code invoked
        the hook after dropping the lock, so the second mover's callback
        could arrive first, leaving the component believing in a stale
        home).
        """
        self._check_locality(new_locality)
        self._check_alive(new_locality)
        with self._lock:
            if gid not in self._home:
                if gid in self._lost:
                    raise LocalityFailed(
                        f"{gid} was lost when locality "
                        f"{self._lost[gid]} failed")
                raise AgasError(f"unknown gid {gid}")
            old = self._home[gid]
            self._home[gid] = new_locality
            comp = self._objects[gid]
            self._migrations += 1
            if _sanitize_state.ACTIVE:
                # migration commit: the mover's writes happen-before any
                # post-migration resolve/notification of this GID
                _racecheck.send(("agas", gid))
            owner = self._queue_notification(gid, comp, old, new_locality)
        if owner:
            self._drain_notifications(gid)

    def _queue_notification(self, gid: Gid, comp: Component,
                            old: int, new: int) -> bool:
        """Append a move notification (caller holds ``self._lock``).

        Returns True when the caller became the drainer: the FIFO was
        empty, so no other thread is currently delivering for this gid.
        """
        pending = self._notify.setdefault(gid, [])
        pending.append((comp, old, new))
        return len(pending) == 1

    def _drain_notifications(self, gid: Gid) -> None:
        """Deliver queued ``on_migrate`` callbacks in commit order.

        Runs without ``self._lock`` held during the callback (the hook may
        re-enter the runtime).  An entry is popped only *after* its
        callback returns, so racing migrators see a non-empty FIFO and
        leave delivery — including of their own entry — to this thread.
        A raising callback does not strand the entries queued behind it;
        the first exception is re-raised once the FIFO is dry.
        """
        first_exc: BaseException | None = None
        while True:
            with self._lock:
                pending = self._notify.get(gid)
                if not pending:
                    self._notify.pop(gid, None)
                    break
                comp, old, new = pending[0]
            if _sanitize_state.ACTIVE:
                # the drainer may not be the migrator: order the callback
                # after the migration commit it delivers
                _racecheck.recv(("agas", gid))
            try:
                comp.on_migrate(old, new)
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
            finally:
                with self._lock:
                    pending.pop(0)
                    if not pending:
                        del self._notify[gid]
        if first_exc is not None:
            raise first_exc

    @property
    def migrations(self) -> int:
        with self._lock:
            return self._migrations

    # -- action invocation --------------------------------------------------------

    def async_action(self, gid: Gid, method: str, *args: Any) -> Future:
        """Invoke ``component.method(*args)`` wherever the component lives.

        This is the "semantic and syntactic equivalence of local and remote
        operations" of Sec. 4.1 — callers see a future either way, and
        *every* failure mode (unknown GID, missing action, failed locality,
        exception in the action body) arrives through that future rather
        than as a synchronous raise.
        """
        try:
            comp, _loc = self.resolve(gid)
        except AgasError as exc:
            return make_exceptional_future(exc)
        fn = getattr(comp, method, None)
        if fn is None or not callable(fn):
            return make_exceptional_future(
                AgasError(f"component {gid} has no action {method!r}"))
        if self._executor is None:
            try:
                return make_ready_future(fn(*args))
            except BaseException as exc:
                return make_exceptional_future(exc)
        from .future import async_execute
        return async_execute(fn, *args, executor=self._executor)

    def apply(self, gid: Gid, method: str, *args: Any) -> None:
        """Fire-and-forget action (HPX ``hpx::apply``).

        Nobody holds the future, so nothing may leak to the caller: any
        failure is swallowed and tallied under ``/agas/apply-errors``.
        """
        def consume(fut: Future) -> None:
            try:
                fut.get()
            except BaseException:
                self.registry.increment("/agas/apply-errors")

        self.async_action(gid, method, *args).then(consume)

    # -- locality failure ------------------------------------------------------

    def fail_locality(self, locality: int,
                      evacuate: bool = True) -> dict[str, list[Gid]]:
        """Kill a locality; evacuate what can move, invalidate the rest.

        Migratable components are re-homed round-robin across the
        surviving localities (their GIDs stay valid — the AGAS promise
        outlives the node); pinned components, or everything when no
        locality survives or ``evacuate`` is false, are *lost*: their GIDs
        resolve to :class:`LocalityFailed` from now on.  Idempotent.
        """
        self._check_locality(locality)
        drains: list[Gid] = []
        with self._lock:
            if locality in self._failed:
                return {"migrated": [], "lost": []}
            self._failed.add(locality)
            survivors = [l for l in range(self.n_localities)
                         if l not in self._failed]
            homed = sorted(g for g, loc in self._home.items()
                           if loc == locality)
            migrated: list[Gid] = []
            lost: list[Gid] = []
            for gid in homed:
                comp = self._objects[gid]
                if evacuate and survivors and comp.migratable:
                    new = survivors[len(migrated) % len(survivors)]
                    self._home[gid] = new
                    self._migrations += 1
                    if _sanitize_state.ACTIVE:
                        _racecheck.send(("agas", gid))
                    if self._queue_notification(gid, comp, locality, new):
                        drains.append(gid)
                    migrated.append(gid)
                else:
                    del self._objects[gid]
                    del self._home[gid]
                    self._lost[gid] = locality
                    lost.append(gid)
        for gid in drains:
            self._drain_notifications(gid)
        self.registry.increment("/resilience/agas/localities-failed")
        self.registry.increment("/resilience/agas/components-migrated",
                                len(migrated))
        self.registry.increment("/resilience/agas/components-lost",
                                len(lost))
        trace.instant("locality-failed", "resilience", locality=locality,
                      migrated=len(migrated), lost=len(lost))
        return {"migrated": migrated, "lost": lost}

    def recover_locality(self, locality: int) -> None:
        """Bring a failed locality back (lost GIDs stay lost)."""
        self._check_locality(locality)
        with self._lock:
            self._failed.discard(locality)
        self.registry.increment("/resilience/agas/localities-recovered")

    def restore_component(self, component: Component, gid: Gid,
                          locality: int) -> Gid:
        """Resurrect a *lost* GID from durable state onto ``locality``.

        Evacuation (:meth:`fail_locality` with ``evacuate=True``) keeps
        GIDs valid because the component's memory survives; when the last
        copy died with its node the GID lands in ``_lost`` and only a
        recovery layer holding a replicated checkpoint can bring it back.
        This is that layer's hook: it re-binds the *same* GID — the AGAS
        promise that names outlive placement extends across restarts — to
        a freshly rebuilt component on a surviving locality.  Restoring a
        GID that is still live, or that was never lost, is an error.
        """
        self._check_locality(locality)
        self._check_alive(locality)
        with self._lock:
            if gid in self._home:
                raise AgasError(f"{gid} is still live; restore would alias it")
            if gid not in self._lost:
                raise AgasError(f"{gid} was never lost; nothing to restore")
            del self._lost[gid]
            self._objects[gid] = component
            self._home[gid] = locality
            if _sanitize_state.ACTIVE:
                # restore commit: the rebuilt state happens-before any
                # resolve of the resurrected GID
                _racecheck.send(("agas", gid))
        component.gid = gid
        self.registry.increment("/resilience/agas/components-restored")
        trace.instant("component-restored", "resilience",
                      gid=repr(gid), locality=locality)
        return gid

    @property
    def failed_localities(self) -> set[int]:
        with self._lock:
            return set(self._failed)

    # -- helpers ----------------------------------------------------------------

    def _check_locality(self, locality: int) -> None:
        if not 0 <= locality < self.n_localities:
            raise AgasError(
                f"locality {locality} out of range [0, {self.n_localities})")

    def _check_alive(self, locality: int) -> None:
        with self._lock:
            if locality in self._failed:
                raise LocalityFailed(f"locality {locality} has failed")
