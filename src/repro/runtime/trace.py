"""APEX-style task tracing with Chrome trace-event export.

"HPX provides a performance counter and adaptive tuning framework that
allows users to access performance data [...]; these diagnostic tools were
instrumental in scaling Octo-Tiger to the full machine" (Sec. 4.1).  The
counter half of that framework lives in :mod:`repro.runtime.counters`;
this module is the *tracing* half: low-overhead span recording (begin/end
wall time, thread id, category, free-form args) for every task the runtime
executes, exported in the Chrome trace-event JSON format so a recording
can be dropped straight into ``chrome://tracing`` / Perfetto / Speedscope.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Tracing is off by default and every
   instrumentation point in the runtime guards on the module-level
   :data:`TRACING` flag (a plain attribute load + truth test) before doing
   any work.  Enabling is global (:func:`enable` / :func:`disable`).
2. **No cross-thread contention when enabled.**  Each thread appends to
   its own event buffer (registered once per thread under a lock);
   recording an event is a ``list.append`` of a tuple.
3. **Export, don't stream.**  Buffers are merged and converted to JSON
   only on :func:`export_chrome` / :meth:`TraceRecorder.events`.

Typical use::

    from repro.runtime import trace

    trace.enable()
    ...  # run the instrumented runtime
    trace.export_chrome("trace.json")
    trace.disable()

Instrumentation points use either the :func:`span` context manager (cool
paths) or the ``begin()``/``complete()`` pair (hot paths, avoids the
context-manager machinery)::

    if trace.TRACING:
        t0 = trace.begin()
    work()
    if trace.TRACING:
        trace.complete("work", "category", t0, worker=3)
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any

__all__ = [
    "TRACING", "TraceRecorder", "enable", "disable", "is_enabled",
    "default_recorder", "span", "instant", "begin", "complete",
    "export_chrome", "clear",
]

#: Global fast-path flag.  Instrumentation points test this before paying
#: any tracing cost; flip it through :func:`enable` / :func:`disable`.
TRACING = False

# event kinds (Chrome trace-event "ph" phases)
_COMPLETE = "X"
_INSTANT = "i"


class TraceRecorder:
    """Collects trace events into per-thread buffers.

    Raw events are stored as tuples
    ``(phase, name, category, start_s, dur_s, tid, args)`` with times in
    :func:`time.perf_counter` seconds; conversion to Chrome's
    microsecond-resolution dicts happens at export time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buffers: list[list[tuple]] = []
        self._thread_names: dict[int, str] = {}
        self._local = threading.local()
        self._t0 = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def _buffer(self) -> list[tuple]:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = []
            self._local.buf = buf
            cur = threading.current_thread()
            with self._lock:
                self._buffers.append(buf)
                self._thread_names[cur.ident or 0] = cur.name
        return buf

    def complete(self, name: str, category: str, start_s: float,
                 end_s: float, **args: Any) -> None:
        """Record a finished span (Chrome 'X' complete event)."""
        self._buffer().append(
            (_COMPLETE, name, category, start_s, end_s - start_s,
             threading.get_ident(), args or None))

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record a zero-duration marker (Chrome 'i' instant event)."""
        self._buffer().append(
            (_INSTANT, name, category, time.perf_counter(), 0.0,
             threading.get_ident(), args or None))

    # -- export ------------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """All recorded events as Chrome trace-event dicts, time-sorted."""
        with self._lock:
            raw = [ev for buf in self._buffers for ev in list(buf)]
            names = dict(self._thread_names)
        raw.sort(key=lambda ev: ev[3])
        pid = os.getpid()
        out: list[dict[str, Any]] = []
        for tid, tname in names.items():
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": tid, "args": {"name": tname}})
        for phase, name, cat, start, dur, tid, args in raw:
            ev: dict[str, Any] = {
                "ph": phase, "name": name, "cat": cat or "runtime",
                "ts": (start - self._t0) * 1e6, "pid": pid, "tid": tid,
            }
            if phase == _COMPLETE:
                ev["dur"] = dur * 1e6
            else:
                ev["s"] = "t"  # thread-scoped instant
            if args:
                ev["args"] = args
            out.append(ev)
        return out

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing``-loadable JSON file; returns #events."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                      fh, default=str)
        return len(events)

    def clear(self) -> None:
        with self._lock:
            for buf in self._buffers:
                buf.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buffers)


_recorder = TraceRecorder()


def default_recorder() -> TraceRecorder:
    return _recorder


def enable() -> None:
    """Turn tracing on globally (all instrumented runtime components)."""
    global TRACING
    TRACING = True


def disable() -> None:
    global TRACING
    TRACING = False


def is_enabled() -> bool:
    return TRACING


# -- convenience recording into the default recorder -----------------------

def begin() -> float:
    """Start-of-span timestamp (pair with :func:`complete`)."""
    return time.perf_counter()


def complete(name: str, category: str, start_s: float, **args: Any) -> None:
    """Record a span that started at ``start_s`` and ends now."""
    _recorder.complete(name, category, start_s, time.perf_counter(), **args)


def instant(name: str, category: str = "", **args: Any) -> None:
    if TRACING:
        _recorder.instant(name, category, **args)


def export_chrome(path: str) -> int:
    return _recorder.export_chrome(path)


def clear() -> None:
    _recorder.clear()


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "category", "args", "_start")

    def __init__(self, name: str, category: str, args: dict[str, Any]):
        self.name = name
        self.category = category
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if TRACING:
            _recorder.complete(self.name, self.category, self._start,
                               time.perf_counter(), **self.args)
        return False


def span(name: str, category: str = "", **args: Any):
    """Context manager recording a span; a shared no-op when disabled."""
    if not TRACING:
        return _NULL_SPAN
    return _Span(name, category, args)
