"""HPX-semantics asynchronous many-task runtime (pure-Python model).

Substitutes for the HPX C++ runtime of the paper (see DESIGN.md §2):
futures + continuations, a work-stealing scheduler, AGAS, active-message
parcels, channels, a simulated CUDA co-processor, and APEX-style counters.
"""

from . import trace
from .future import (Future, Promise, FutureError, FutureTimeout,
                     CancelledError, make_ready_future,
                     make_exceptional_future, when_all, when_any, dataflow,
                     async_execute)
from .scheduler import WorkStealingScheduler, TaskStats
from .agas import AgasRuntime, Component, Gid, AgasError, LocalityFailed
from .parcel import Parcel, ParcelHandler, EAGER_THRESHOLD, serialized_size
from .channel import (Channel, ChannelError, ChannelClosed, ChannelReset,
                      ChannelGenerationError)
from .cuda import (CudaDevice, CudaStream, StreamPool, StreamLease,
                   AggregatedOp, LaunchPolicy, DEFAULT_STREAMS_PER_GPU,
                   DEFAULT_LEASE_TIMEOUT_S)
from .aggregate import AggregationRegion, DEFAULT_AGG_SLOTS
from .counters import CounterRegistry, default_registry, counter, gauge, timer

__all__ = [
    "Future", "Promise", "FutureError", "FutureTimeout", "CancelledError",
    "make_ready_future", "make_exceptional_future", "when_all", "when_any",
    "dataflow", "async_execute",
    "WorkStealingScheduler", "TaskStats",
    "AgasRuntime", "Component", "Gid", "AgasError", "LocalityFailed",
    "Parcel", "ParcelHandler", "EAGER_THRESHOLD", "serialized_size",
    "Channel", "ChannelError", "ChannelClosed", "ChannelReset",
    "ChannelGenerationError",
    "CudaDevice", "CudaStream", "StreamPool", "StreamLease", "AggregatedOp",
    "LaunchPolicy", "DEFAULT_STREAMS_PER_GPU", "DEFAULT_LEASE_TIMEOUT_S",
    "AggregationRegion", "DEFAULT_AGG_SLOTS",
    "CounterRegistry", "default_registry", "counter", "gauge", "timer",
    "trace",
]
