"""Simulated CUDA device, streams, and stream-event futures.

The paper's GPU integration (Sec. 5.1) has three ingredients we reproduce:

1. **Streams with futures** — "For any CUDA stream event we create an HPX
   future that becomes ready once operations in the stream (up to the point
   of the event/future's creation) are finished."  Here
   :meth:`CudaStream.enqueue` returns a future per operation and
   :meth:`CudaStream.record_event` returns a future for the stream frontier.

2. **The launch policy** — "Each CPU thread manages a certain number of
   CUDA streams.  When launching a kernel, a thread first checks whether all
   of the CUDA streams it manages are busy.  If not, the kernel will be
   launched on the GPU using an idle stream.  Otherwise, the kernel will be
   executed on the CPU by the current CPU worker thread."  Implemented by
   :class:`StreamPool.try_acquire` + :class:`LaunchPolicy`, whose
   gpu/cpu launch counters reproduce the 97.4995 % / 99.9997 % / 99.5207 %
   statistics of Sec. 6.1.2 (see ``repro.simulator.scaling``).

3. **Asynchronous execution** — operations run on device worker threads
   while the submitting CPU worker continues; per-stream FIFO order is
   preserved, different streams overlap (the 128-concurrent-kernels model).

No actual GPU is involved (the repro=2 substitution): a "kernel" is any
Python callable, typically the same vectorized NumPy kernel the CPU path
uses — mirroring the paper's trick of instantiating the identical cell-to-
cell function template for both targets.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Callable

from . import trace
from .counters import CounterRegistry, default_registry
from .future import Future, Promise

__all__ = ["CudaDevice", "CudaStream", "StreamPool", "LaunchPolicy",
           "DEFAULT_STREAMS_PER_GPU"]

#: "usually 128 per GPU" (Sec. 5.1)
DEFAULT_STREAMS_PER_GPU = 128


class CudaStream:
    """A FIFO of asynchronous operations on a :class:`CudaDevice`."""

    def __init__(self, device: "CudaDevice", index: int):
        self.device = device
        self.index = index
        self._lock = threading.Lock()
        self._queue: collections.deque = collections.deque()
        self._in_flight = False
        self._reserved = False
        self._last_future: Future | None = None

    def enqueue(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit ``fn(*args)`` to the device; returns its future.

        Enqueueing consumes any outstanding :meth:`StreamPool.try_acquire`
        reservation on this stream (the acquired-for kernel is now queued,
        so ``busy()`` keeps reporting True through ``_in_flight`` instead).
        """
        promise = Promise()
        fut = promise.get_future()
        with self._lock:
            self._reserved = False
            self._queue.append((fn, args, promise))
            self._last_future = fut
            should_kick = not self._in_flight
            if should_kick:
                self._in_flight = True
        if should_kick:
            self.device._dispatch(self)
        return fut

    def record_event(self) -> Future:
        """Future ready when everything enqueued so far has completed."""
        with self._lock:
            last = self._last_future
        if last is None:
            from .future import make_ready_future
            return make_ready_future(None)
        return last.then(lambda _f: None)

    def busy(self) -> bool:
        with self._lock:
            return self._in_flight or self._reserved or bool(self._queue)

    def _try_reserve(self) -> bool:
        """Atomically claim this stream if it is idle (pool-internal)."""
        with self._lock:
            if self._in_flight or self._reserved or self._queue:
                return False
            self._reserved = True
            return True

    def release(self) -> None:
        """Give back a reservation without enqueueing a kernel."""
        with self._lock:
            self._reserved = False

    # -- device side ---------------------------------------------------------

    def _pop(self) -> tuple | None:
        with self._lock:
            if not self._queue:
                self._in_flight = False
                return None
            return self._queue.popleft()


class CudaDevice:
    """A simulated GPU: a stream set serviced by device worker threads.

    Parameters
    ----------
    n_streams:
        Streams available (128 on the paper's P100/V100 setup).
    n_workers:
        Simulated concurrency of the device (number of host threads
        standing in for streaming multiprocessors).
    peak_gflops:
        Nominal peak, used only for bookkeeping/flop accounting.
    """

    def __init__(self, n_streams: int = DEFAULT_STREAMS_PER_GPU,
                 n_workers: int = 4, peak_gflops: float = 4700.0,
                 name: str = "sim-gpu"):
        if n_streams < 1 or n_workers < 1:
            raise ValueError("need at least one stream and one worker")
        self.name = name
        self.peak_gflops = peak_gflops
        self.streams = [CudaStream(self, i) for i in range(n_streams)]
        self._work: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._shutdown = False
        self.kernels_executed = 0
        self._stats_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"{name}-sm-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    def _dispatch(self, stream: CudaStream) -> None:
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"device {self.name} is shut down")
            self._work.append(stream)
            self._cond.notify()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._work and not self._shutdown:
                    self._cond.wait()
                if self._shutdown and not self._work:
                    return
                stream = self._work.popleft()
            item = stream._pop()
            if item is None:
                continue
            fn, args, promise = item
            t0 = time.perf_counter() if trace.TRACING else 0.0
            try:
                promise.set_value(fn(*args))
            except BaseException as exc:
                promise.set_exception(exc)
            if trace.TRACING:
                trace.default_recorder().complete(
                    getattr(fn, "__name__", "kernel"), "cuda",
                    t0, time.perf_counter(),
                    device=self.name, stream=stream.index)
            with self._stats_lock:
                self.kernels_executed += 1
            # keep per-stream FIFO: only after completion may the next op run
            with stream._lock:
                more = bool(stream._queue)
                if not more:
                    stream._in_flight = False
            if more:
                self._dispatch(stream)

    def synchronize(self) -> None:
        """Block until every stream has drained (cudaDeviceSynchronize)."""
        for s in self.streams:
            s.record_event().get()

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/cuda/<device>/...`` gauges into ``registry``."""
        registry = registry or default_registry()
        with self._stats_lock:
            executed = self.kernels_executed
        registry.set_gauge(f"/cuda/{self.name}/kernels-executed",
                           float(executed))
        registry.set_gauge(f"/cuda/{self.name}/streams",
                           float(len(self.streams)))
        registry.set_gauge(f"/cuda/{self.name}/streams-busy",
                           float(sum(s.busy() for s in self.streams)))

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "CudaDevice":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


class StreamPool:
    """Non-blocking allocator of idle streams across one or more devices."""

    def __init__(self, devices: list[CudaDevice]):
        if not devices:
            raise ValueError("need at least one device")
        self.devices = devices
        self._lock = threading.Lock()
        self._rr = 0

    def try_acquire(self) -> CudaStream | None:
        """Reserve and return an idle stream; ``None`` if all are busy.

        The returned stream is *reserved* (its ``busy()`` reports True) so
        concurrent acquirers can never be handed the same stream before
        either has enqueued anything; the reservation is consumed by
        :meth:`CudaStream.enqueue` or returned via
        :meth:`CudaStream.release`.

        Round-robins across devices so multi-GPU nodes (the 2×V100 rows of
        Table 2) share load.
        """
        with self._lock:
            all_streams = [s for d in self.devices for s in d.streams]
            n = len(all_streams)
            for k in range(n):
                s = all_streams[(self._rr + k) % n]
                if s._try_reserve():
                    self._rr = (self._rr + k + 1) % n
                    return s
        return None

    @property
    def n_streams(self) -> int:
        return sum(len(d.streams) for d in self.devices)


class LaunchPolicy:
    """The paper's GPU-else-CPU kernel launch rule, with statistics.

    ``launch(kernel, *args)`` runs the kernel on an idle GPU stream when one
    exists, otherwise synchronously on the calling CPU worker; either way a
    future is returned, so callers are oblivious to the placement — the
    property that makes the whole scheme "mostly non-invasive" (Sec. 5.1).
    """

    def __init__(self, pool: StreamPool):
        self.pool = pool
        self._lock = threading.Lock()
        self.gpu_launches = 0
        self.cpu_launches = 0

    def launch(self, kernel: Callable[..., Any], *args: Any) -> Future:
        stream = self.pool.try_acquire()
        if stream is not None:
            with self._lock:
                self.gpu_launches += 1
            return stream.enqueue(kernel, *args)
        with self._lock:
            self.cpu_launches += 1
        promise = Promise()
        t0 = time.perf_counter() if trace.TRACING else 0.0
        try:
            promise.set_value(kernel(*args))
        except BaseException as exc:
            promise.set_exception(exc)
        if trace.TRACING:
            trace.default_recorder().complete(
                getattr(kernel, "__name__", "kernel"), "cuda",
                t0, time.perf_counter(), device="cpu-fallback")
        return promise.get_future()

    @property
    def gpu_fraction(self) -> float:
        """Fraction of kernels that ran on the GPU (Sec. 6.1.2 statistic)."""
        with self._lock:
            total = self.gpu_launches + self.cpu_launches
            return self.gpu_launches / total if total else 0.0

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/cuda/launch/...`` decision gauges into ``registry``."""
        registry = registry or default_registry()
        with self._lock:
            gpu, cpu = self.gpu_launches, self.cpu_launches
        registry.set_gauge("/cuda/launch/gpu", float(gpu))
        registry.set_gauge("/cuda/launch/cpu", float(cpu))
        total = gpu + cpu
        registry.set_gauge("/cuda/launch/gpu-fraction",
                           gpu / total if total else 0.0)
