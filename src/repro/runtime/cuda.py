"""Simulated CUDA device, streams, and stream-event futures.

The paper's GPU integration (Sec. 5.1) has three ingredients we reproduce:

1. **Streams with futures** — "For any CUDA stream event we create an HPX
   future that becomes ready once operations in the stream (up to the point
   of the event/future's creation) are finished."  Here
   :meth:`CudaStream.enqueue` returns a future per operation and
   :meth:`CudaStream.record_event` returns a future for the stream frontier.

2. **The launch policy** — "Each CPU thread manages a certain number of
   CUDA streams.  When launching a kernel, a thread first checks whether all
   of the CUDA streams it manages are busy.  If not, the kernel will be
   launched on the GPU using an idle stream.  Otherwise, the kernel will be
   executed on the CPU by the current CPU worker thread."  Implemented by
   :class:`StreamPool.try_acquire` + :class:`LaunchPolicy`, whose
   gpu/cpu launch counters reproduce the 97.4995 % / 99.9997 % / 99.5207 %
   statistics of Sec. 6.1.2 (see ``repro.simulator.scaling``).

3. **Asynchronous execution** — operations run on device worker threads
   while the submitting CPU worker continues; per-stream FIFO order is
   preserved, different streams overlap (the 128-concurrent-kernels model).

No actual GPU is involved (the repro=2 substitution): a "kernel" is any
Python callable, typically the same vectorized NumPy kernel the CPU path
uses — mirroring the paper's trick of instantiating the identical cell-to-
cell function template for both targets.

**Stream health (supervision layer).**  A real production run cannot keep
re-using a stream whose kernels keep failing (a sick SM, a poisoned
context): after ``quarantine_threshold`` *consecutive* kernel faults a
stream is **quarantined** — :meth:`CudaStream._try_reserve` stops handing
it out, so the launch policy transparently overflows its work to healthy
streams or the CPU.  After ``quarantine_period`` seconds the stream is
re-admitted **on probation**: one more fault re-quarantines it
immediately, one success clears the probation.  Quarantines are counted
under ``/cuda/quarantined`` (re-admissions under ``/cuda/readmitted``)
and per-device gauges; :meth:`CudaStream.poison` is the matching
adversary hook used by the chaos tests.

**Work aggregation.**  :meth:`CudaStream.enqueue_aggregated` (and the
lease equivalent) submits a whole slot buffer of kernels as *one*
:class:`AggregatedOp` — one queue entry, one dispatch, one launch future
— following the Octo-Tiger aggregated-kernel design (Daiß et al., arXiv
2210.06438).  Poison draws and fault-streak accounting remain per slot,
so quarantine behaviour is indistinguishable from unaggregated launches;
the buffering/flush policy lives in :mod:`repro.runtime.aggregate`.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Callable

from . import trace
from ..sanitize import lockdep as _sanitize_lockdep
from ..sanitize import protocol as _sanitize_protocol
from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state
from .counters import CounterRegistry, default_registry
from .future import Future, Promise

__all__ = ["CudaDevice", "CudaStream", "StreamPool", "StreamLease",
           "AggregatedOp", "LaunchPolicy", "DEFAULT_STREAMS_PER_GPU",
           "DEFAULT_LEASE_TIMEOUT_S", "DEFAULT_QUARANTINE_THRESHOLD",
           "DEFAULT_QUARANTINE_PERIOD_S"]

#: "usually 128 per GPU" (Sec. 5.1)
DEFAULT_STREAMS_PER_GPU = 128

#: reservation leases older than this are considered leaked (the holder
#: acquired a stream but never enqueued, e.g. it raised in between) and
#: may be reclaimed by the next acquirer
DEFAULT_LEASE_TIMEOUT_S = 5.0

#: consecutive kernel faults on one stream before it is quarantined
DEFAULT_QUARANTINE_THRESHOLD = 3

#: seconds a quarantined stream sits out before probationary re-admission
DEFAULT_QUARANTINE_PERIOD_S = 1.0


class AggregatedOp:
    """A filled slot buffer executed as **one** stream operation.

    The device-side half of work aggregation (Daiß et al., arXiv
    2210.06438; see :mod:`repro.runtime.aggregate`): many buffered
    ``(fn, args)`` kernels occupy one queue slot, one dispatch, and one
    launch future — amortizing the per-launch overhead the aggregation
    paper targets.

    Stream-health semantics stay per *kernel*, not per launch: the
    device worker draws poison and records a fault-streak outcome for
    every slot individually (a sick stream faulting mid-buffer
    quarantines exactly as it would under one-kernel-per-launch), and a
    slot raising never takes its neighbours down.  The launch future
    resolves with ``[(ok, value_or_exception), ...]`` in slot order;
    :func:`repro.runtime.aggregate._scatter` forwards these to the
    per-kernel futures.
    """

    __slots__ = ("items",)

    #: trace label (the worker loop reads ``__name__`` off the op)
    __name__ = "aggregated-op"

    def __init__(self, items: list[tuple[Callable[..., Any], tuple]]):
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def run(self, stream: "CudaStream") -> list[tuple[bool, Any]]:
        """Execute every slot on ``stream``; called by the device worker."""
        outcomes: list[tuple[bool, Any]] = []
        for fn, args in self.items:
            poison = stream._consume_poison()
            if poison is not None:
                outcomes.append((False, poison))
                stream._record_kernel_outcome(ok=False)
                continue
            try:
                outcomes.append((True, fn(*args)))
                stream._record_kernel_outcome(ok=True)
            except BaseException as exc:
                outcomes.append((False, exc))
                stream._record_kernel_outcome(ok=False)
        return outcomes


class CudaStream:
    """A FIFO of asynchronous operations on a :class:`CudaDevice`."""

    def __init__(self, device: "CudaDevice", index: int):
        self.device = device
        self.index = index
        self._lock = _sanitize_lockdep.make_lock("cuda.stream")
        self._queue: collections.deque = collections.deque()
        self._in_flight = False
        self._reserved = False
        self._lease_token = 0
        self._lease_deadline = 0.0
        self._last_future: Future | None = None
        # stream-health state: consecutive-fault streak, quarantine expiry
        # (0.0 = healthy), probation flag, and the poison adversary hook
        self._fault_streak = 0
        self._quarantined_until = 0.0
        self._probation = False
        self._poison_left: int | None = 0  # None = poisoned forever
        self._poison_exc: Callable[[], BaseException] | None = None

    def enqueue(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit ``fn(*args)`` to the device; returns its future.

        Enqueueing consumes any outstanding :meth:`StreamPool.try_acquire`
        reservation on this stream (the acquired-for kernel is now queued,
        so ``busy()`` keeps reporting True through ``_in_flight`` instead).
        """
        promise = Promise()
        fut = promise.get_future()
        with self._lock:
            self._reserved = False
            if _sanitize_state.ACTIVE:
                # submitter -> device-worker edge (per-stream FIFO, so one
                # cumulative key per stream is exact for the head op)
                _racecheck.send(("stream-op", id(self)))
            self._queue.append((fn, args, promise))
            self._last_future = fut
            should_kick = not self._in_flight
            if should_kick:
                self._in_flight = True
        if should_kick:
            self.device._dispatch(self)
        return fut

    def enqueue_aggregated(self, items: list[tuple[Callable[..., Any], tuple]]
                           ) -> Future:
        """Submit a slot buffer as one aggregated launch (one queue op).

        The returned future resolves with per-slot ``(ok, value_or_exc)``
        outcomes in slot order; see :class:`AggregatedOp` for the
        stream-health semantics.
        """
        return self.enqueue(AggregatedOp(items))

    def record_event(self) -> Future:
        """Future ready when everything enqueued so far has completed."""
        with self._lock:
            last = self._last_future
        if last is None:
            from .future import make_ready_future
            return make_ready_future(None)
        return last.then(lambda _f: None)

    def busy(self) -> bool:
        with self._lock:
            return self._in_flight or self._reserved or bool(self._queue)

    def _try_reserve(self, timeout: float = DEFAULT_LEASE_TIMEOUT_S
                     ) -> int | None:
        """Atomically claim this stream if it is idle (pool-internal).

        Returns a lease token, or ``None`` when the stream is busy.  A
        reservation whose lease deadline has passed was leaked by its
        holder (acquired, never enqueued) and is reclaimed here, counted
        under ``/cuda/leases-reclaimed``.
        """
        readmitted = False
        with self._lock:
            if self._in_flight or self._queue:
                return None
            now = time.monotonic()
            if self._quarantined_until > 0.0:
                if now < self._quarantined_until:
                    return None
                # quarantine served: re-admit on probation (one more fault
                # sends the stream straight back)
                self._quarantined_until = 0.0
                self._probation = True
                readmitted = True
            if self._reserved:
                if now < self._lease_deadline:
                    return None
                default_registry().increment("/cuda/leases-reclaimed")
                if _sanitize_state.ACTIVE:
                    _sanitize_protocol.lease_reclaimed()
            self._reserved = True
            self._lease_token += 1
            self._lease_deadline = now + timeout
            token = self._lease_token
            if _sanitize_state.ACTIVE:
                # acquire edge from the previous holder's release (or the
                # device worker finishing the previous kernel), so writes
                # made under successive leases of one stream are ordered
                _racecheck.recv(("stream", id(self)))
        if readmitted:
            default_registry().increment("/cuda/readmitted")
            if trace.TRACING:
                trace.instant("stream-readmitted", "cuda",
                              device=self.device.name, stream=self.index)
        return token

    def release(self, token: int | None = None) -> None:
        """Give back a reservation without enqueueing a kernel.

        With a ``token`` (from :meth:`StreamPool.acquire` leases) the
        release is a no-op unless the token still owns the reservation,
        so a late release can never clobber a newer holder's claim.
        """
        with self._lock:
            if token is None or (self._reserved
                                 and self._lease_token == token):
                self._reserved = False
                if _sanitize_state.ACTIVE:
                    # lease handoff: the holder's writes happen-before
                    # whoever reserves this stream next
                    _racecheck.send(("stream", id(self)))

    # -- stream health -------------------------------------------------------

    def poison(self, count: int | None = None,
               exc_factory: Callable[[], BaseException] | None = None) -> None:
        """Make the next ``count`` kernels on this stream fail (adversary).

        ``count=None`` poisons the stream permanently.  Failures surface
        through the kernel futures as transient faults (default:
        :class:`repro.resilience.faults.TransientActionFault`), exactly
        like a sick SM would — the supervision layer must retry the work
        elsewhere and the health machinery must quarantine the stream.
        """
        with self._lock:
            self._poison_left = count
            self._poison_exc = exc_factory

    def quarantined(self) -> bool:
        """True while the stream is sitting out a quarantine."""
        with self._lock:
            return (self._quarantined_until > 0.0
                    and time.monotonic() < self._quarantined_until)

    def _consume_poison(self) -> BaseException | None:
        """One poison draw (device-worker side); returns the fault or None."""
        with self._lock:
            if self._poison_left == 0:
                return None
            if self._poison_left is not None:
                self._poison_left -= 1
            factory = self._poison_exc
        if factory is not None:
            return factory()
        from ..resilience.faults import TransientActionFault
        return TransientActionFault(
            f"poisoned stream {self.index} on {self.device.name}")

    def _record_kernel_outcome(self, ok: bool) -> None:
        """Track the consecutive-fault streak; quarantine past threshold."""
        dev = self.device
        if dev.quarantine_threshold is None:
            return
        quarantined = False
        with self._lock:
            if ok:
                self._fault_streak = 0
                self._probation = False
                return
            self._fault_streak += 1
            threshold = 1 if self._probation else dev.quarantine_threshold
            if self._fault_streak >= threshold:
                self._quarantined_until = (time.monotonic()
                                           + dev.quarantine_period)
                self._fault_streak = 0
                self._probation = False
                quarantined = True
        if quarantined:
            default_registry().increment("/cuda/quarantined")
            if trace.TRACING:
                trace.instant("stream-quarantined", "cuda",
                              device=dev.name, stream=self.index)

    # -- device side ---------------------------------------------------------

    def _pop(self) -> tuple | None:
        with self._lock:
            if not self._queue:
                self._in_flight = False
                return None
            return self._queue.popleft()


class CudaDevice:
    """A simulated GPU: a stream set serviced by device worker threads.

    Parameters
    ----------
    n_streams:
        Streams available (128 on the paper's P100/V100 setup).
    n_workers:
        Simulated concurrency of the device (number of host threads
        standing in for streaming multiprocessors).
    peak_gflops:
        Nominal peak, used only for bookkeeping/flop accounting.
    quarantine_threshold / quarantine_period:
        Consecutive kernel faults that quarantine a stream, and how long
        it sits out before probationary re-admission.  ``threshold=None``
        disables stream-health tracking entirely.
    """

    def __init__(self, n_streams: int = DEFAULT_STREAMS_PER_GPU,
                 n_workers: int = 4, peak_gflops: float = 4700.0,
                 name: str = "sim-gpu",
                 quarantine_threshold: int | None =
                 DEFAULT_QUARANTINE_THRESHOLD,
                 quarantine_period: float = DEFAULT_QUARANTINE_PERIOD_S):
        if n_streams < 1 or n_workers < 1:
            raise ValueError("need at least one stream and one worker")
        if quarantine_threshold is not None and quarantine_threshold < 1:
            raise ValueError("quarantine threshold must be >= 1 (or None)")
        if quarantine_period <= 0:
            raise ValueError("quarantine period must be positive")
        self.name = name
        self.peak_gflops = peak_gflops
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_period = quarantine_period
        self.streams = [CudaStream(self, i) for i in range(n_streams)]
        self._work: collections.deque = collections.deque()
        self._cond = _sanitize_lockdep.make_condition("cuda.device")
        self._shutdown = False
        self.kernels_executed = 0
        self._stats_lock = _sanitize_lockdep.make_lock("cuda.device-stats")
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"{name}-sm-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for t in self._threads:
            t.start()

    def _dispatch(self, stream: CudaStream) -> None:
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"device {self.name} is shut down")
            self._work.append(stream)
            self._cond.notify()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._work and not self._shutdown:
                    self._cond.wait()
                if self._shutdown and not self._work:
                    return
                stream = self._work.popleft()
            item = stream._pop()
            if item is None:
                continue
            fn, args, promise = item
            if _sanitize_state.ACTIVE:
                _racecheck.recv(("stream-op", id(stream)))
            t0 = time.perf_counter() if trace.TRACING else 0.0
            if isinstance(fn, AggregatedOp):
                # aggregated launch: one queue op, per-slot poison draws
                # and health outcomes (see AggregatedOp.run)
                executed = len(fn)
                promise.set_value(fn.run(stream))
            else:
                executed = 1
                poison = stream._consume_poison()
                if poison is not None:
                    promise.set_exception(poison)
                    stream._record_kernel_outcome(ok=False)
                else:
                    try:
                        promise.set_value(fn(*args))
                        stream._record_kernel_outcome(ok=True)
                    except BaseException as exc:
                        promise.set_exception(exc)
                        stream._record_kernel_outcome(ok=False)
            if trace.TRACING:
                trace.default_recorder().complete(
                    getattr(fn, "__name__", "kernel"), "cuda",
                    t0, time.perf_counter(),
                    device=self.name, stream=stream.index)
            with self._stats_lock:
                self.kernels_executed += executed
            # keep per-stream FIFO: only after completion may the next op run
            with stream._lock:
                more = bool(stream._queue)
                if not more:
                    stream._in_flight = False
                if _sanitize_state.ACTIVE:
                    # kernel completion happens-before the next reserve
                    _racecheck.send(("stream", id(stream)))
            if more:
                self._dispatch(stream)

    def synchronize(self) -> None:
        """Block until every stream has drained (cudaDeviceSynchronize)."""
        for s in self.streams:
            s.record_event().get()

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/cuda/<device>/...`` gauges into ``registry``."""
        registry = registry or default_registry()
        with self._stats_lock:
            executed = self.kernels_executed
        registry.set_gauge(f"/cuda/{self.name}/kernels-executed",
                           float(executed))
        registry.set_gauge(f"/cuda/{self.name}/streams",
                           float(len(self.streams)))
        registry.set_gauge(f"/cuda/{self.name}/streams-busy",
                           float(sum(s.busy() for s in self.streams)))
        registry.set_gauge(f"/cuda/{self.name}/streams-quarantined",
                           float(sum(s.quarantined() for s in self.streams)))

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "CudaDevice":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


class StreamLease:
    """A held stream reservation that cannot leak.

    Returned by :meth:`StreamPool.acquire`.  Use as a context manager (or
    call :meth:`release` explicitly): if the holder exits without having
    enqueued a kernel — e.g. an exception between acquire and launch —
    the reservation is given back immediately instead of pinning the
    stream until the lease timeout reclaims it.
    """

    __slots__ = ("stream", "_token", "_consumed", "_san_seq", "__weakref__")

    def __init__(self, stream: CudaStream, token: int):
        self.stream = stream
        self._token = token
        self._consumed = False
        if _sanitize_state.ACTIVE:
            _sanitize_protocol.lease_created(self)

    def enqueue(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Launch a kernel on the leased stream, consuming the lease."""
        if _sanitize_state.ACTIVE:
            _sanitize_protocol.lease_consumed(self)
        self._consumed = True
        return self.stream.enqueue(fn, *args)

    def enqueue_aggregated(self, items: list[tuple[Callable[..., Any], tuple]]
                           ) -> Future:
        """Launch a slot buffer as one aggregated op, consuming the lease."""
        if _sanitize_state.ACTIVE:
            _sanitize_protocol.lease_consumed(self)
        self._consumed = True
        return self.stream.enqueue_aggregated(items)

    def release(self) -> None:
        """Return the reservation unless a kernel was already enqueued."""
        if not self._consumed:
            if _sanitize_state.ACTIVE:
                _sanitize_protocol.lease_released(self)
            self._consumed = True
            self.stream.release(self._token)

    def __enter__(self) -> "StreamLease":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class StreamPool:
    """Non-blocking allocator of idle streams across one or more devices.

    Reservations are leases: they expire after ``lease_timeout`` seconds
    if the holder never enqueues, so a crashed caller cannot permanently
    remove a stream from circulation (reclaims are counted under
    ``/cuda/leases-reclaimed``).
    """

    def __init__(self, devices: list[CudaDevice],
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S):
        if not devices:
            raise ValueError("need at least one device")
        if lease_timeout <= 0:
            raise ValueError("lease timeout must be positive")
        self.devices = devices
        self.lease_timeout = lease_timeout
        self._lock = _sanitize_lockdep.make_lock("cuda.pool")
        self._rr = 0

    def acquire(self) -> StreamLease | None:
        """Reserve an idle stream; returns a lease, or ``None`` if busy.

        The leased stream is *reserved* (its ``busy()`` reports True) so
        concurrent acquirers can never be handed the same stream before
        either has enqueued anything; the reservation is consumed by
        :meth:`StreamLease.enqueue` or returned by
        :meth:`StreamLease.release` / lease expiry.

        Round-robins across devices so multi-GPU nodes (the 2×V100 rows of
        Table 2) share load.
        """
        with self._lock:
            all_streams = [s for d in self.devices for s in d.streams]
            n = len(all_streams)
            for k in range(n):
                s = all_streams[(self._rr + k) % n]
                token = s._try_reserve(self.lease_timeout)
                if token is not None:
                    self._rr = (self._rr + k + 1) % n
                    return StreamLease(s, token)
        return None

    def try_acquire(self) -> CudaStream | None:
        """Legacy acquire: the reserved stream itself (lease implicit).

        The reservation is consumed by :meth:`CudaStream.enqueue`,
        released by :meth:`CudaStream.release`, or reclaimed after
        ``lease_timeout`` — prefer :meth:`acquire`, whose lease object
        cannot be leaked by an exception between acquire and enqueue.
        """
        lease = self.acquire()
        if lease is None:
            return None
        if _sanitize_state.ACTIVE:
            # the reservation now lives on the raw stream, not the lease
            # object we are about to drop — not a leak
            _sanitize_protocol.lease_handoff(lease)
        return lease.stream

    @property
    def n_streams(self) -> int:
        return sum(len(d.streams) for d in self.devices)


class LaunchPolicy:
    """The paper's GPU-else-CPU kernel launch rule, with statistics.

    ``launch(kernel, *args)`` runs the kernel on an idle GPU stream when one
    exists, otherwise synchronously on the calling CPU worker; either way a
    future is returned, so callers are oblivious to the placement — the
    property that makes the whole scheme "mostly non-invasive" (Sec. 5.1).
    """

    def __init__(self, pool: StreamPool):
        self.pool = pool
        self._lock = _sanitize_lockdep.make_lock("cuda.launch-policy")
        self.gpu_launches = 0
        self.cpu_launches = 0

    def launch(self, kernel: Callable[..., Any], *args: Any) -> Future:
        lease = self.pool.acquire()
        if lease is not None:
            with lease:
                with self._lock:
                    self.gpu_launches += 1
                return lease.enqueue(kernel, *args)
        with self._lock:
            self.cpu_launches += 1
        promise = Promise()
        t0 = time.perf_counter() if trace.TRACING else 0.0
        try:
            promise.set_value(kernel(*args))
        except BaseException as exc:
            promise.set_exception(exc)
        if trace.TRACING:
            trace.default_recorder().complete(
                getattr(kernel, "__name__", "kernel"), "cuda",
                t0, time.perf_counter(), device="cpu-fallback")
        return promise.get_future()

    @property
    def gpu_fraction(self) -> float:
        """Fraction of kernels that ran on the GPU (Sec. 6.1.2 statistic)."""
        with self._lock:
            total = self.gpu_launches + self.cpu_launches
            return self.gpu_launches / total if total else 0.0

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/cuda/launch/...`` decision gauges into ``registry``."""
        registry = registry or default_registry()
        with self._lock:
            gpu, cpu = self.gpu_launches, self.cpu_launches
        registry.set_gauge("/cuda/launch/gpu", float(gpu))
        registry.set_gauge("/cuda/launch/cpu", float(cpu))
        total = gpu + cpu
        registry.set_gauge("/cuda/launch/gpu-fraction",
                           gpu / total if total else 0.0)
