"""GPU work aggregation: slot buffers coalescing kernels into one launch.

The AMT runtime produces thousands of tiny per-subgrid kernels (one per
recorded M2L/P2P batch, one per sub-grid RHS); launching each as its own
stream operation pays the per-launch and per-lease overhead thousands of
times per step.  The Octo-Tiger work-aggregation line (Daiß et al.,
"From Task-Based GPU Work Aggregation to Stellar Mergers: Turning Fine-
Grained CPU Tasks into Portable GPU Kernels", arXiv 2210.06438) fixes
this with *aggregation regions*: work destined for the device is staged
into a fixed number of **slots**; when the buffer fills — or the region
ends — the whole slot buffer goes to the GPU as **one** aggregated
launch.

:class:`AggregationRegion` is that mechanism for our simulated CUDA
layer.  Kernels are pushed into the region's slot buffer and flushed as
a single :class:`~repro.runtime.cuda.AggregatedOp` on one leased stream:

* **flush triggers** — buffer full (``slots`` pending), explicit
  :meth:`flush`, :meth:`synchronize`, or region exit (context manager);
* **placement** — the flush acquires a stream lease from the pool and
  enqueues the aggregated op; if no idle stream exists (or the enqueue
  itself fails, e.g. a device shutting down mid-flush) the buffered
  kernels run inline on the calling CPU worker, preserving the paper's
  GPU-else-CPU overflow rule at aggregated granularity;
* **accounting** — placements are reported through ``on_flush(gpu, n)``
  only *after* a successful enqueue (or, for the CPU path, around the
  inline execution), so a faulting enqueue can never inflate the GPU
  launch statistics;
* **identity** — each buffered kernel keeps its own promise; the
  aggregated launch future scatters per-slot ``(ok, value-or-exception)``
  outcomes back to them, so callers are oblivious to the coalescing and
  recorded-order accumulation replay (the FMM bit-identity contract)
  is untouched.

A region buffers work for **one task** and is deliberately not
thread-safe — the execution engine opens one region per chunk task,
mirroring the per-executor-thread slot buffers of the aggregation paper.

Counters (all under ``/cuda``): ``agg-launches`` (aggregated GPU
launches), ``agg-tasks`` (kernels they carried), ``agg-flush/<reason>``
(flush trigger histogram), ``agg-enqueue-failed`` (enqueues that threw
and fell back to the CPU).  The tasks-per-launch ratio is published by
:meth:`repro.core.exec.ExecutionEngine.publish_counters` as
``/cuda/aggregated-per-launch``.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state
from .counters import CounterRegistry, default_registry
from .cuda import StreamPool
from .future import Future, Promise

__all__ = ["AggregationRegion", "DEFAULT_AGG_SLOTS"]

#: default slot-buffer capacity of an aggregation region (kernels per
#: aggregated launch); the benchmark config fills several buffers per
#: FMM solve, giving a tasks-per-launch ratio well above 1
DEFAULT_AGG_SLOTS = 16


def _scatter(launch_fut: Future, promises: list[Promise]) -> None:
    """Distribute an aggregated launch's per-slot outcomes to promises.

    The launch future resolves with a list of ``(ok, value_or_exc)``
    pairs in slot order (see :class:`~repro.runtime.cuda.AggregatedOp`);
    a launch-level exception (the whole op failed to run) is forwarded
    to every slot.
    """
    if launch_fut.has_exception():
        try:
            launch_fut.get(timeout=0.0)
        except BaseException as exc:
            for promise in promises:
                promise.set_exception(exc)
        return
    for (ok, value), promise in zip(launch_fut.get(timeout=0.0), promises):
        if ok:
            promise.set_value(value)
        else:
            promise.set_exception(value)


class AggregationRegion:
    """A slot buffer coalescing kernel submissions into aggregated launches.

    Parameters
    ----------
    pool:
        :class:`~repro.runtime.cuda.StreamPool` to lease streams from;
        ``None`` pins the region to the CPU (every flush runs inline).
    slots:
        Slot-buffer capacity; a push that fills the buffer triggers an
        automatic flush (the paper's buffer-full launch trigger).
    registry:
        Counter registry for the ``/cuda/agg-*`` statistics.
    on_flush:
        Optional callback ``on_flush(gpu: bool, n: int)`` reporting each
        flushed placement — invoked only after a successful aggregated
        enqueue (GPU) or around the inline execution (CPU), so launch
        accounting cannot run ahead of the launch itself.

    Use as a context manager; exit flushes the remaining slots::

        with AggregationRegion(pool, slots=16) as region:
            futs = [region.submit(kernel, batch) for batch in batches]
        values = [f.get() for f in futs]
    """

    def __init__(self, pool: StreamPool | None,
                 slots: int = DEFAULT_AGG_SLOTS,
                 registry: CounterRegistry | None = None,
                 on_flush: Callable[[bool, int], None] | None = None):
        if slots < 1:
            raise ValueError("need at least one slot")
        self.pool = pool
        self.slots = slots
        self.registry = registry or default_registry()
        self._on_flush = on_flush
        self._pending: list[tuple[Callable[..., Any], tuple, Promise]] = []
        self._launch_futures: list[Future] = []
        self.launches = 0        # aggregated GPU launches
        self.gpu_tasks = 0       # kernels carried by them
        self.cpu_tasks = 0       # kernels that ran inline (overflow)

    # -- submission --------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Buffer ``fn(*args)`` into the next free slot; returns its future."""
        promise = Promise()
        self.push(fn, args, promise)
        return promise.get_future()

    def push(self, fn: Callable[..., Any], args: tuple,
             promise: Promise) -> None:
        """Buffer a kernel whose outcome feeds an existing promise.

        This is the execution-engine entry point (the engine creates the
        promises up front so callers get futures in input order before
        any flush happens).
        """
        if _sanitize_state.ACTIVE:
            # slot-fill edge: whatever the pusher wrote into the slot's
            # arguments happens-before the flush that launches them
            _racecheck.send(("agg", id(self)))
        self._pending.append((fn, tuple(args), promise))
        if len(self._pending) >= self.slots:
            self._flush("full")

    # -- flushing ----------------------------------------------------------

    def flush(self) -> None:
        """Launch whatever is buffered now, without waiting for it."""
        self._flush("explicit")

    def synchronize(self, timeout: float | None = None) -> None:
        """Flush, then block until every aggregated launch has completed.

        Slot-level outcomes (including exceptions) stay on the per-kernel
        futures; this only waits for the launches to drain.
        """
        self._flush("sync")
        futures, self._launch_futures = self._launch_futures, []
        for fut in futures:
            fut.wait(timeout)

    def _flush(self, reason: str) -> None:
        pending, self._pending = self._pending, []
        if not pending:
            return
        if _sanitize_state.ACTIVE:
            _racecheck.recv(("agg", id(self)))
        n = len(pending)
        lease = self.pool.acquire() if self.pool is not None else None
        if lease is not None:
            launch_fut = None
            try:
                with lease:
                    launch_fut = lease.enqueue_aggregated(
                        [(fn, args) for fn, args, _ in pending])
            except BaseException:
                # the enqueue itself failed (device shut down, stream
                # revoked): nothing was launched, nothing may be counted
                # as a GPU placement — overflow the buffer to the CPU
                self.registry.increment("/cuda/agg-enqueue-failed")
            if launch_fut is not None:
                self.launches += 1
                self.gpu_tasks += n
                self.registry.increment("/cuda/agg-launches")
                self.registry.increment("/cuda/agg-tasks", float(n))
                self.registry.increment(f"/cuda/agg-flush/{reason}")
                if self._on_flush is not None:
                    self._on_flush(True, n)
                promises = [promise for _, _, promise in pending]
                launch_fut.then(lambda f: _scatter(f, promises))
                self._launch_futures.append(launch_fut)
                return
        # CPU overflow: run the whole buffer inline, one slot at a time,
        # with per-slot exception isolation (same contract as the device)
        self.cpu_tasks += n
        if self._on_flush is not None:
            self._on_flush(False, n)
        for fn, args, promise in pending:
            try:
                promise.set_value(fn(*args))
            except BaseException as exc:
                promise.set_exception(exc)

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "AggregationRegion":
        return self

    def __exit__(self, *exc: Any) -> None:
        self._flush("exit")
