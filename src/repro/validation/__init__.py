"""Analytic reference solutions for the Sec. 4.2 verification suite."""

from .sod import RiemannState, SodSolution, solve_riemann, sod_solution
from .sedov import sedov_alpha, shock_radius, shock_speed, post_shock_state

__all__ = ["RiemannState", "SodSolution", "solve_riemann", "sod_solution",
           "sedov_alpha", "shock_radius", "shock_speed", "post_shock_state"]
