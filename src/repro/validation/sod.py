"""Exact solution of the Sod shock tube (verification test 1 of Sec. 4.2).

Standard exact Riemann solver for the ideal-gas Euler equations (Toro,
ch. 4): Newton iteration for the star-region pressure, then sampling of
the similarity solution x/t.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RiemannState", "SodSolution", "solve_riemann", "sod_solution"]


@dataclass(frozen=True)
class RiemannState:
    rho: float
    u: float
    p: float


@dataclass(frozen=True)
class SodSolution:
    """Sampled exact solution arrays at time t."""

    x: np.ndarray
    rho: np.ndarray
    u: np.ndarray
    p: np.ndarray


def _pressure_function(p: float, state: RiemannState, gamma: float
                       ) -> tuple[float, float]:
    """f(p, state) and its derivative for the star-pressure iteration."""
    rho, pk = state.rho, state.p
    a = np.sqrt(gamma * pk / rho)
    if p > pk:      # shock
        A = 2.0 / ((gamma + 1.0) * rho)
        B = (gamma - 1.0) / (gamma + 1.0) * pk
        f = (p - pk) * np.sqrt(A / (p + B))
        df = np.sqrt(A / (B + p)) * (1.0 - (p - pk) / (2.0 * (B + p)))
    else:           # rarefaction
        f = 2.0 * a / (gamma - 1.0) * ((p / pk) ** ((gamma - 1.0)
                                                    / (2.0 * gamma)) - 1.0)
        df = 1.0 / (rho * a) * (p / pk) ** (-(gamma + 1.0) / (2.0 * gamma))
    return f, df


def solve_riemann(left: RiemannState, right: RiemannState,
                  gamma: float = 1.4, tol: float = 1e-12,
                  max_iter: int = 100) -> tuple[float, float]:
    """Star-region pressure and velocity for a Riemann problem."""
    p = max(0.5 * (left.p + right.p), tol)
    du = right.u - left.u
    for _ in range(max_iter):
        fl, dfl = _pressure_function(p, left, gamma)
        fr, dfr = _pressure_function(p, right, gamma)
        step = (fl + fr + du) / (dfl + dfr)
        p_new = max(p - step, tol)
        if abs(p_new - p) < tol * (1.0 + p):
            p = p_new
            break
        p = p_new
    fl, _ = _pressure_function(p, left, gamma)
    fr, _ = _pressure_function(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)
    return p, u


def _sample(xi: np.ndarray, left: RiemannState, right: RiemannState,
            p_star: float, u_star: float, gamma: float
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample the solution at similarity coordinates xi = x/t."""
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)
    g = gamma
    gm1, gp1 = g - 1.0, g + 1.0
    aL = np.sqrt(g * left.p / left.rho)
    aR = np.sqrt(g * right.p / right.rho)

    for i, s in enumerate(xi):
        if s <= u_star:     # left of contact
            st = left
            if p_star > st.p:   # left shock
                rho_s = st.rho * ((p_star / st.p + gm1 / gp1)
                                  / (gm1 / gp1 * p_star / st.p + 1.0))
                S = st.u - aL * np.sqrt(gp1 / (2 * g) * p_star / st.p
                                        + gm1 / (2 * g))
                if s < S:
                    rho[i], u[i], p[i] = st.rho, st.u, st.p
                else:
                    rho[i], u[i], p[i] = rho_s, u_star, p_star
            else:               # left rarefaction
                a_star = aL * (p_star / st.p) ** (gm1 / (2 * g))
                head = st.u - aL
                tail = u_star - a_star
                if s < head:
                    rho[i], u[i], p[i] = st.rho, st.u, st.p
                elif s > tail:
                    rho[i] = st.rho * (p_star / st.p) ** (1 / g)
                    u[i], p[i] = u_star, p_star
                else:
                    u[i] = 2 / gp1 * (aL + gm1 / 2 * st.u + s)
                    a = 2 / gp1 * (aL + gm1 / 2 * (st.u - s))
                    rho[i] = st.rho * (a / aL) ** (2 / gm1)
                    p[i] = st.p * (a / aL) ** (2 * g / gm1)
        else:               # right of contact
            st = right
            if p_star > st.p:   # right shock
                rho_s = st.rho * ((p_star / st.p + gm1 / gp1)
                                  / (gm1 / gp1 * p_star / st.p + 1.0))
                S = st.u + aR * np.sqrt(gp1 / (2 * g) * p_star / st.p
                                        + gm1 / (2 * g))
                if s > S:
                    rho[i], u[i], p[i] = st.rho, st.u, st.p
                else:
                    rho[i], u[i], p[i] = rho_s, u_star, p_star
            else:               # right rarefaction
                a_star = aR * (p_star / st.p) ** (gm1 / (2 * g))
                head = st.u + aR
                tail = u_star + a_star
                if s > head:
                    rho[i], u[i], p[i] = st.rho, st.u, st.p
                elif s < tail:
                    rho[i] = st.rho * (p_star / st.p) ** (1 / g)
                    u[i], p[i] = u_star, p_star
                else:
                    u[i] = 2 / gp1 * (-aR + gm1 / 2 * st.u + s)
                    a = 2 / gp1 * (aR - gm1 / 2 * (st.u - s))
                    rho[i] = st.rho * (a / aR) ** (2 / gm1)
                    p[i] = st.p * (a / aR) ** (2 * g / gm1)
    return rho, u, p


def sod_solution(x: np.ndarray, t: float, x0: float = 0.5,
                 left: RiemannState | None = None,
                 right: RiemannState | None = None,
                 gamma: float = 1.4) -> SodSolution:
    """Exact Sod-tube profiles at positions ``x`` and time ``t``."""
    left = left or RiemannState(1.0, 0.0, 1.0)
    right = right or RiemannState(0.125, 0.0, 0.1)
    x = np.asarray(x, dtype=np.float64)
    if t <= 0:
        rho = np.where(x < x0, left.rho, right.rho)
        u = np.where(x < x0, left.u, right.u)
        p = np.where(x < x0, left.p, right.p)
        return SodSolution(x, rho, u, p)
    p_star, u_star = solve_riemann(left, right, gamma)
    xi = (x - x0) / t
    rho, u, p = _sample(xi, left, right, p_star, u_star, gamma)
    return SodSolution(x, rho, u, p)
