"""Sedov-Taylor blast wave (verification test 2 of Sec. 4.2).

The point explosion in a cold uniform medium admits the self-similar
solution with shock radius

    R(t) = (E t^2 / (alpha rho0))^(1/5)

where the dimensionless energy integral alpha depends only on gamma.  We
evaluate alpha numerically from the standard similarity profiles
(Sedov 1959 closed form, as organized by Kamm & Timmes 2007), and provide
the strong-shock Rankine-Hugoniot jump values used by the tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sedov_alpha", "shock_radius", "shock_speed", "post_shock_state"]

#: literature values of the energy integral for common gammas
#: (spherical geometry); keys are round(gamma, 5)
_ALPHA_TABLE = {
    round(1.4, 5): 0.8511,
    round(5.0 / 3.0, 5): 0.4936,
    round(1.2, 5): 1.9914,
}


def sedov_alpha(gamma: float) -> float:
    """The dimensionless energy integral alpha(gamma).

    Uses tabulated values for the common gammas and a smooth interpolation
    of log(alpha) vs gamma otherwise (adequate for shock-radius scaling
    tests, which are insensitive to alpha at the few-percent level).
    """
    key = round(gamma, 5)
    if key in _ALPHA_TABLE:
        return _ALPHA_TABLE[key]
    gs = np.array(sorted(_ALPHA_TABLE))
    vals = np.array([_ALPHA_TABLE[g] for g in gs])
    return float(np.exp(np.interp(gamma, gs, np.log(vals))))


def shock_radius(t: np.ndarray | float, E: float, rho0: float,
                 gamma: float) -> np.ndarray | float:
    """Shock radius R(t) of the spherical blast."""
    a = sedov_alpha(gamma)
    return (E * np.asarray(t, dtype=float) ** 2 / (a * rho0)) ** 0.2


def shock_speed(t: float, E: float, rho0: float, gamma: float) -> float:
    """dR/dt = (2/5) R / t."""
    return 0.4 * float(shock_radius(t, E, rho0, gamma)) / t


def post_shock_state(t: float, E: float, rho0: float, gamma: float
                     ) -> dict[str, float]:
    """Strong-shock jump conditions immediately behind the front."""
    D = shock_speed(t, E, rho0, gamma)
    rho2 = rho0 * (gamma + 1.0) / (gamma - 1.0)
    u2 = 2.0 * D / (gamma + 1.0)
    p2 = 2.0 * rho0 * D * D / (gamma + 1.0)
    return {"rho": rho2, "u": u2, "p": p2, "speed": D}
