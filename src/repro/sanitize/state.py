"""Shared sanitizer state: the activation flag and the findings store.

Everything in :mod:`repro.sanitize` funnels observations through
:func:`record`; a :class:`Finding` carries the hazard kind, a message and
the *site* (file:line of the offending frame outside the runtime), so a
report can point at user code rather than at the sanitizer hook.

Activation is **creation-time** for instrumented objects: enabling the
sanitizers makes locks/futures/leases created *afterwards* tracked.  The
``REPRO_SANITIZE=1`` environment variable enables them before any runtime
module is imported, which is how CI instruments a whole test run; inside
a process, call :func:`enable` before constructing the runtime objects
under scrutiny.

This module imports only the standard library — the runtime imports it
from hot paths, so it must never import the runtime back at module level
(counters are imported lazily inside :func:`record`).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Finding", "enable", "disable", "enabled", "findings",
           "finding_count", "clear", "record", "scope", "call_site",
           "configure", "config"]

#: Fast-path activation flag.  Runtime hooks read this module attribute
#: directly (``state.ACTIVE``) so a disabled sanitizer costs one global
#: load per hook.
ACTIVE = False

_findings_lock = threading.Lock()
_findings: list["Finding"] = []
_dedupe: set[tuple] = set()
#: innermost-first stack of active capture scopes (see :func:`scope`)
_scopes: list[list["Finding"]] = []


@dataclass(frozen=True)
class Finding:
    """One sanitizer observation.

    ``kind`` is a stable slug (``lock-order``, ``lock-recursion``,
    ``callback-under-lock``, ``wait-cycle``, ``abandoned-future``,
    ``swallowed-exception``, ``blocked-worker``, ``lease-leak``,
    ``lease-reuse``, ``channel-reset-generation``, ``channel-closed-set``).
    ``site`` is the ``file:line in func`` of the first frame outside the
    instrumented runtime; ``details`` carries kind-specific context (for
    lock-order findings, both acquisition sites of the inverted edge).
    """

    kind: str
    message: str
    site: str
    timestamp: float = field(default_factory=time.time, compare=False)
    details: dict[str, Any] = field(default_factory=dict, compare=False)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind}] {self.message} (at {self.site})"


class _Config:
    """Tunables; mutate via :func:`configure`."""

    __slots__ = ("stall_timeout", "max_graph_sites")

    def __init__(self) -> None:
        #: seconds a scheduler worker may block in an unbounded
        #: ``Future.get`` before a ``blocked-worker`` finding is recorded
        self.stall_timeout = 5.0
        #: frames walked when resolving a call site
        self.max_graph_sites = 16


config = _Config()


def configure(stall_timeout: float | None = None) -> None:
    """Adjust sanitizer tunables (tests shrink the stall timeout)."""
    if stall_timeout is not None:
        config.stall_timeout = stall_timeout


def enable() -> None:
    """Turn the sanitizers on for objects created from now on."""
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    global ACTIVE
    ACTIVE = False


def enabled() -> bool:
    return ACTIVE


def clear() -> None:
    """Drop all recorded findings and dedupe state (not the graphs)."""
    with _findings_lock:
        _findings.clear()
        _dedupe.clear()


def findings() -> list[Finding]:
    """All findings recorded outside any :func:`scope` so far."""
    with _findings_lock:
        return list(_findings)


def finding_count() -> int:
    with _findings_lock:
        return len(_findings)


def record(kind: str, message: str, site: str | None = None,
           dedupe_key: tuple | None = None, **details: Any) -> Finding | None:
    """Store a finding; returns it, or ``None`` when deduplicated.

    ``dedupe_key`` suppresses repeats of the same structural hazard (the
    same inverted lock edge fires on every acquisition otherwise).  The
    matching ``/sanitize/...`` counters are bumped in the default
    registry; the lazy import breaks the runtime<->sanitize cycle.
    """
    if dedupe_key is not None:
        with _findings_lock:
            if dedupe_key in _dedupe:
                return None
            _dedupe.add(dedupe_key)
    f = Finding(kind=kind, message=message,
                site=site if site is not None else call_site(),
                details=details)
    with _findings_lock:
        sink = _scopes[-1] if _scopes else _findings
        sink.append(f)
    try:
        from ..runtime.counters import default_registry
        reg = default_registry()
        reg.increment("/sanitize/findings")
        reg.increment(f"/sanitize/{kind}")
    except Exception:  # noqa: BLE001 - diagnostics must never take the run down
        pass
    return f


class scope:
    """Divert findings recorded while the scope is open into a local list.

    Used by the adversarial tests: hazards injected inside the scope do
    not pollute the global findings list (which the test harness asserts
    stays empty), yet the test can assert the exact findings produced::

        with sanitize.scope() as caught:
            inject_hazard()
        assert caught[0].kind == "lock-order"

    The diversion is global (not thread-local) on purpose — hazards fire
    on worker threads while the test thread owns the scope.
    """

    def __init__(self) -> None:
        self._captured: list[Finding] = []

    def __enter__(self) -> list[Finding]:
        with _findings_lock:
            _scopes.append(self._captured)
        return self._captured

    def __exit__(self, *exc: Any) -> None:
        with _findings_lock:
            _scopes.remove(self._captured)


_RUNTIME_DIRS = (os.sep + "repro" + os.sep + "sanitize" + os.sep,
                 os.sep + "repro" + os.sep + "runtime" + os.sep,
                 os.sep + "threading.py")


def call_site(skip_runtime: bool = True) -> str:
    """``file:line in func`` of the nearest frame outside the runtime.

    Cheap by construction: walks raw frame objects (no source loading),
    bounded by ``config.max_graph_sites`` frames.
    """
    try:
        frame = sys._getframe(1)
    except ValueError:  # pragma: no cover
        return "<unknown>"
    fallback = None
    for _ in range(config.max_graph_sites):
        if frame is None:
            break
        fn = frame.f_code.co_filename
        desc = f"{fn}:{frame.f_lineno} in {frame.f_code.co_name}"
        if fallback is None:
            fallback = desc
        if not skip_runtime or not any(part in fn for part in _RUNTIME_DIRS):
            return desc
        frame = frame.f_back
    return fallback or "<unknown>"


def iter_all_findings() -> Iterator[Finding]:  # pragma: no cover - debug aid
    yield from findings()


# Environment opt-in: importing any sanitize module (the runtime does, to
# create its locks) activates instrumentation process-wide.
if os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("1", "true", "on"):
    enable()
