"""Deterministic schedule exploration for the AMT runtime.

The bit-identity contracts (futurized == serial, distributed ==
node-level, chaos == clean) are only ever exercised on the one
interleaving the OS scheduler happens to produce.  This module drives
the runtime through *adversarial but replayable* schedules instead:

* **PCT-style priority churn** — at instrumented scheduling points
  (task post, task begin, channel set, parcel delivery) the explorer
  injects tiny seeded sleeps, perturbing which worker wins each race
  the way a priority-based probabilistic concurrency tester does;
* **delivery permutation** — batches that the runtime is free to
  reorder (``post_batch`` fan-outs, transport flush queues) are
  permuted with a seeded shuffle;
* **steal steering** — work-stealing victim scans start from a seeded
  index, exercising different steal orders.

Every decision comes from a per-``(point, thread-name)``
:class:`random.Random` derived from the master seed with a CRC (not
:func:`hash`, which is salted per process), so a failing schedule is
**replayable from the seed alone**: rerun with ``REPRO_SCHEDULE_SEED=<n>``
and the same decision stream is produced.

Hook contract: runtime modules read ``schedules.EXPLORER`` (one module
attribute load) and call into it only when not ``None`` — zero overhead
when exploration is off, independent of ``REPRO_SANITIZE``.  Combine
both to hunt races: the explorer shakes the schedule, racecheck reports
any pair of accesses the synchronization vocabulary failed to order.
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from typing import Any, Callable, Iterable, Sequence

__all__ = ["ScheduleExplorer", "EXPLORER", "install", "uninstall",
           "installed", "run_under_seeds", "publish_counters"]

#: the active explorer, or None (the only thing hot paths ever read)
EXPLORER: "ScheduleExplorer | None" = None

#: scheduling points the runtime instruments (documented so tests and
#: reports can refer to them by name)
POINTS = (
    "sched-post",        # WorkStealingScheduler.post, before enqueue
    "sched-batch",       # post_batch fan-out (permutation point)
    "task-begin",        # worker about to run a task
    "steal",             # victim scan start index
    "channel-set",       # Channel.set, before publishing the value
    "parcel-deliver",    # ParcelHandler.deliver, before dispatch
    "transport-flush",   # HaloTransport.flush batch (permutation point)
)


class ScheduleExplorer:
    """Seeded source of schedule perturbations.

    ``intensity`` scales how often pause points actually sleep (1.0 is
    the CI default); sleeps are capped at ``max_sleep`` seconds so even
    aggressive exploration stays inside test timeouts.
    """

    def __init__(self, seed: int, intensity: float = 1.0,
                 max_sleep: float = 5e-4) -> None:
        self.seed = int(seed)
        self.intensity = float(intensity)
        self.max_sleep = float(max_sleep)
        self._lock = threading.Lock()
        self._rngs: dict[tuple[str, str], random.Random] = {}
        self.perturbations = 0
        self.permutations = 0

    def _rng(self, point: str) -> random.Random:
        """The deterministic decision stream for (point, this thread)."""
        key = (point, threading.current_thread().name)
        with self._lock:
            rng = self._rngs.get(key)
            if rng is None:
                # CRC, not hash(): str hashing is salted per process and
                # would make the seed non-replayable
                basis = f"{self.seed}|{key[0]}|{key[1]}".encode()
                rng = self._rngs[key] = random.Random(zlib.crc32(basis))
            return rng

    def pause(self, point: str) -> None:
        """Maybe yield/sleep at a scheduling point (priority churn)."""
        rng = self._rng(point)
        roll = rng.random()
        if roll < 0.25 * self.intensity:
            with self._lock:
                self.perturbations += 1
            # sleep duration drawn from the same stream: replayable
            time.sleep(rng.random() * self.max_sleep)
        elif roll < 0.5 * self.intensity:
            with self._lock:
                self.perturbations += 1
            time.sleep(0)  # bare yield: cheap reordering pressure

    def permute(self, point: str, items: Sequence[Any]) -> list[Any]:
        """Seeded permutation of a batch the runtime may legally reorder."""
        out = list(items)
        if len(out) > 1:
            self._rng(point).shuffle(out)
            with self._lock:
                self.permutations += 1
        return out

    def pick(self, point: str, n: int) -> int:
        """Seeded index in [0, n) (steal-victim scan start etc.)."""
        if n <= 1:
            return 0
        return self._rng(point).randrange(n)


def install(seed: int, intensity: float = 1.0) -> ScheduleExplorer:
    """Activate schedule exploration process-wide; returns the explorer."""
    global EXPLORER
    EXPLORER = ScheduleExplorer(seed, intensity=intensity)
    return EXPLORER


def uninstall() -> None:
    global EXPLORER
    EXPLORER = None


def installed() -> "ScheduleExplorer | None":
    return EXPLORER


def run_under_seeds(fn: Callable[[], Any], seeds: Iterable[int],
                    intensity: float = 1.0) -> list[Any]:
    """Run ``fn`` once per seed under an installed explorer.

    On failure the seed is attached to the exception and printed, so the
    schedule can be replayed with ``REPRO_SCHEDULE_SEED=<seed>`` (or
    ``install(seed)``); the previous explorer is always restored.
    """
    global EXPLORER
    prev = EXPLORER
    results = []
    try:
        for seed in seeds:
            install(seed, intensity=intensity)
            try:
                results.append(fn())
            except BaseException as exc:
                print(f"[repro.sanitize.schedules] failure under schedule "
                      f"seed {seed}: replay with REPRO_SCHEDULE_SEED={seed}")
                exc.repro_schedule_seed = seed
                raise
    finally:
        EXPLORER = prev
    return results


def install_from_env() -> "ScheduleExplorer | None":
    """Install from ``REPRO_SCHEDULE_SEED`` if set (pytest/CI entry point)."""
    raw = os.environ.get("REPRO_SCHEDULE_SEED", "").strip()
    if not raw:
        return None
    return install(int(raw))


def publish_counters(registry=None) -> None:
    """Publish ``/sanitize/schedules/...`` gauges (default registry)."""
    from ..runtime.counters import default_registry
    registry = registry or default_registry()
    exp = EXPLORER
    registry.set_gauge("/sanitize/schedules/active",
                       1.0 if exp is not None else 0.0)
    registry.set_gauge("/sanitize/schedules/seed",
                       float(exp.seed) if exp is not None else -1.0)
    registry.set_gauge("/sanitize/schedules/perturbations",
                       float(exp.perturbations) if exp is not None else 0.0)
    registry.set_gauge("/sanitize/schedules/permutations",
                       float(exp.permutations) if exp is not None else 0.0)


# Environment opt-in: importing any runtime module (scheduler, channel,
# parcel, transport all read ``EXPLORER``) pulls this module in, so setting
# ``REPRO_SCHEDULE_SEED=<n>`` activates exploration process-wide — examples
# and CLI entry points replay a failing schedule from the seed alone, the
# same contract as ``REPRO_SANITIZE`` in :mod:`.state`.
if os.environ.get("REPRO_SCHEDULE_SEED", "").strip():
    install_from_env()
