"""Future-graph watcher: wait-for cycles, abandoned futures, swallowed errors.

The runtime registers every :class:`~repro.runtime.future.Future` created
while the sanitizers are active, together with its creation site, and
reports dependency edges as continuation chains are wired up
(``then`` / ``when_all`` / ``when_any`` / ``dataflow`` / monadic
unwrapping).  Resolved futures are pruned immediately, so the live graph
only ever holds *pending* work — the part that can still deadlock.

Finding kinds produced here:

* ``wait-cycle`` — a dependency edge closes a cycle in the wait-for
  graph.  Impossible through plain combinator composition (a future can
  only depend on futures that already exist), but *monadic unwrapping*
  can do it: a ``then`` callback that returns its own result future (or
  any ancestor of it) makes the future wait on itself — a silent,
  permanent hang without the sanitizer.
* ``abandoned-future`` — still pending at a :func:`sweep` (called at
  shutdown/quiesce points): the producer was lost, nobody can ever
  resolve it.
* ``swallowed-exception`` — a future resolved exceptionally whose error
  was never consumed (no ``get`` raised it, no ``recover`` mapped it)
  by :func:`sweep` time.  Cancelled futures are exempt: cancellation is
  a deliberate abandonment with a well-defined owner.
* ``blocked-worker`` — a scheduler worker thread sat in an *unbounded*
  ``Future.get`` on a pending future for longer than
  ``state.config.stall_timeout`` seconds: the dynamic face of lint rule
  REPRO001 (a worker blocking on work that may be queued behind it).

Futures are keyed by a process-unique sequence number stamped on the
future itself (``_san_seq``) — never by ``id()``, which CPython reuses
after garbage collection.
"""

from __future__ import annotations

import gc
import itertools
import threading
import weakref
from typing import Any

from . import state

__all__ = ["register_future", "add_dependency", "on_resolved",
           "mark_error_consumed", "on_scheduler_worker",
           "record_blocked_worker", "sweep", "reset", "pending_count"]

_lock = threading.Lock()
_seq = itertools.count(1)


class _Node:
    __slots__ = ("ref", "site", "deps")

    def __init__(self, ref: weakref.ref, site: str):
        self.ref = ref
        self.site = site
        self.deps: set[int] = set()


#: pending futures only: seq -> node
_nodes: dict[int, _Node] = {}
#: exceptional futures whose error has not been consumed: seq -> (ref, site, exc)
_unconsumed: dict[int, tuple[weakref.ref, str, str]] = {}


def register_future(fut: Any) -> None:
    """Track a newly created (pending) future; stamps ``_san_seq``."""
    seq = next(_seq)
    fut._san_seq = seq
    site = state.call_site()

    def _gone(_ref: weakref.ref, seq: int = seq) -> None:
        with _lock:
            _nodes.pop(seq, None)
            _unconsumed.pop(seq, None)

    node = _Node(weakref.ref(fut, _gone), site)
    with _lock:
        _nodes[seq] = node


def add_dependency(dependent: Any, dependency: Any) -> None:
    """Record that ``dependent`` cannot resolve before ``dependency``.

    Detects wait-for cycles at insertion time: if ``dependency``
    (transitively) waits on ``dependent``, neither can ever resolve.
    """
    dep_seq = getattr(dependent, "_san_seq", None)
    src_seq = getattr(dependency, "_san_seq", None)
    if dep_seq is None or src_seq is None:
        return
    cycle = None
    with _lock:
        node = _nodes.get(dep_seq)
        if node is None or src_seq not in _nodes:
            return  # either side already resolved: cannot deadlock
        node.deps.add(src_seq)
        cycle = _find_cycle(src_seq, dep_seq)
    if cycle is not None:
        sites = [_describe(s) for s in cycle]
        state.record(
            "wait-cycle",
            "wait-for cycle among futures: "
            + " waits-on ".join(sites)
            + " — none of them can ever resolve",
            dedupe_key=("wait-cycle", tuple(sorted(cycle))),
            cycle_sites=sites)


def _find_cycle(src: int, dst: int) -> list[int] | None:
    """Path ``src -> ... -> dst`` along dependency edges (lock held)."""
    if src == dst:
        return [src]
    stack = [(src, [src])]
    seen = {src}
    while stack:
        cur, path = stack.pop()
        node = _nodes.get(cur)
        if node is None:
            continue
        for nxt in node.deps:
            if nxt == dst:
                return path + [dst]
            if nxt not in seen and nxt in _nodes:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return None


def _describe(seq: int) -> str:
    node = _nodes.get(seq)
    return f"future#{seq} (created at {node.site})" if node else f"future#{seq}"


def on_resolved(fut: Any, exception: BaseException | None = None,
                cancelled: bool = False) -> None:
    """Prune a resolved future; start tracking an unconsumed error."""
    seq = getattr(fut, "_san_seq", None)
    if seq is None:
        return
    with _lock:
        node = _nodes.pop(seq, None)
        if (exception is not None and not cancelled and node is not None):
            _unconsumed[seq] = (node.ref, node.site,
                                f"{type(exception).__name__}: {exception}")


def mark_error_consumed(fut: Any) -> None:
    """The stored exception escaped to (or was mapped by) a consumer."""
    seq = getattr(fut, "_san_seq", None)
    if seq is None:
        return
    with _lock:
        _unconsumed.pop(seq, None)


def on_scheduler_worker() -> bool:
    """True when the calling thread is a work-stealing scheduler worker."""
    try:
        from ..runtime.scheduler import _TLS
    except Exception:  # pragma: no cover - scheduler not imported yet
        return False
    return getattr(_TLS, "worker", None) is not None


def record_blocked_worker(fut: Any, waited: float) -> None:
    seq = getattr(fut, "_san_seq", None)
    with _lock:
        site = _describe(seq) if seq is not None else "untracked future"
    state.record(
        "blocked-worker",
        f"scheduler worker blocked {waited:.2f}s in unbounded get() on "
        f"pending {site}; a worker waiting on work that may be queued "
        "behind it can self-deadlock the pool",
        dedupe_key=("blocked-worker", seq),
        waited=waited)


def sweep(collect: bool = True) -> list[state.Finding]:
    """Quiesce-point audit: report abandoned futures and swallowed errors.

    Call after a drain/shutdown (the chaos harness does, and tests do
    around injected hazards).  ``collect`` runs the garbage collector
    first so dead-but-uncollected futures do not show up as abandoned.
    """
    if collect:
        gc.collect()
    out: list[state.Finding] = []
    with _lock:
        pending = [(seq, n.ref(), n.site) for seq, n in _nodes.items()]
        swallowed = [(seq, ref(), site, exc)
                     for seq, (ref, site, exc) in _unconsumed.items()]
    for seq, fut, site in pending:
        if fut is None or fut.is_ready():
            continue
        f = state.record(
            "abandoned-future",
            f"future#{seq} created at {site} still pending at sweep — "
            "its producer is gone or never ran",
            site=site, dedupe_key=("abandoned-future", seq))
        if f is not None:
            out.append(f)
    for seq, fut, site, exc in swallowed:
        if fut is None:
            continue
        f = state.record(
            "swallowed-exception",
            f"future#{seq} created at {site} holds unconsumed error "
            f"[{exc}] — the failure was silently dropped",
            site=site, dedupe_key=("swallowed-exception", seq))
        if f is not None:
            out.append(f)
    return out


def pending_count() -> int:
    with _lock:
        return len(_nodes)


def reset() -> None:
    """Forget all tracked futures (test isolation)."""
    with _lock:
        _nodes.clear()
        _unconsumed.clear()
