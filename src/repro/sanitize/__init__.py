"""Dynamic correctness sanitizers for the AMT runtime (opt-in).

The runtime guarantees HPX-grade invariants — bit-identical futurized
execution, leak-proof stream leases, generation-exact channels — but a
latent lock-order inversion or an abandoned future violates them
silently, and three of the last four PRs each fixed such a bug found by
hand.  This package detects those hazard classes mechanically:

* :mod:`.lockdep` — lock-order (ABBA) inversions over the runtime's lock
  classes, recursive self-deadlocks, user callbacks invoked under locks;
* :mod:`.futuregraph` — wait-for cycles through the future dependency
  graph, futures abandoned unresolved, exceptional futures whose error
  is never consumed, scheduler workers stalled in unbounded ``get``;
* :mod:`.protocol` — stream-lease lifecycle (held → consumed xor
  released, exactly once) and channel generation protocol (set at most
  once, never after close/consume);
* :mod:`.racecheck` — FastTrack-style vector-clock happens-before data
  races on shared buffers declared through :func:`access`, with the
  runtime's sync vocabulary (futures, channels, scheduler, leases,
  aggregation, AGAS, parcels) publishing the happens-before edges;
* :mod:`.schedules` — seeded, replayable adversarial schedule
  exploration (priority churn + delivery permutation) so the above run
  on many interleavings, not just the one the OS produced.

Enable with ``REPRO_SANITIZE=1`` in the environment (instruments the
whole process — how CI runs the suite) or :func:`enable` *before*
constructing the runtime objects to instrument: instrumentation is
decided when locks/futures/leases are created, so a disabled sanitizer
costs the hot paths nothing.

Findings accumulate in :func:`findings` and publish ``/sanitize/...``
counters; :func:`sweep` audits quiesce points (abandoned futures,
swallowed errors, held leases); :func:`report` renders everything for
humans.  Tests isolate injected hazards with :func:`scope`.
"""

from __future__ import annotations

from . import futuregraph, lockdep, protocol, racecheck, schedules, state
from .lockdep import make_condition, make_lock
from .racecheck import access
from .state import (Finding, clear, configure, disable, enable, enabled,
                    finding_count, findings, record, scope)

__all__ = [
    "Finding", "enable", "disable", "enabled", "configure",
    "findings", "finding_count", "clear", "scope", "record",
    "make_lock", "make_condition", "access",
    "sweep", "report", "publish_counters", "reset_graphs",
    "state", "lockdep", "futuregraph", "protocol", "racecheck",
    "schedules",
]


def sweep() -> list[Finding]:
    """Quiesce-point audit across all checkers.

    Reports futures still pending (abandoned), exceptional futures whose
    error was never consumed (swallowed), and stream leases still held.
    Call after a drain/shutdown; the chaos harness calls it after the
    chaotic run completes.
    """
    out = futuregraph.sweep()
    out.extend(protocol.sweep_leases(collect=False))
    return out


def reset_graphs() -> None:
    """Drop accumulated graph state *and* findings (test isolation)."""
    lockdep.reset()
    futuregraph.reset()
    protocol.reset()
    racecheck.reset()
    clear()


def publish_counters(registry=None) -> None:
    """Publish ``/sanitize/...`` gauges into ``registry`` (default global)."""
    from ..runtime.counters import default_registry
    registry = registry or default_registry()
    all_findings = findings()
    registry.set_gauge("/sanitize/enabled", 1.0 if enabled() else 0.0)
    registry.set_gauge("/sanitize/findings-live", float(len(all_findings)))
    registry.set_gauge("/sanitize/futures-pending",
                       float(futuregraph.pending_count()))
    racecheck.publish_counters(registry)
    schedules.publish_counters(registry)


def report() -> str:
    """Human-readable findings report (empty-state message when clean)."""
    all_findings = findings()
    lines = [f"sanitizers: {'enabled' if enabled() else 'disabled'}, "
             f"{len(all_findings)} finding(s)"]
    for i, f in enumerate(all_findings, 1):
        lines.append(f"  {i:>3}. [{f.kind}] {f.message}")
        lines.append(f"       at {f.site}")
        for key, value in sorted(f.details.items()):
            lines.append(f"       {key}: {value}")
    if not all_findings:
        lines.append("  (no findings)")
    return "\n".join(lines)
