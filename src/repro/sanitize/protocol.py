"""Lease and channel protocol checkers.

Two runtime protocols carry invariants the type system cannot express:

**Stream leases** (:class:`~repro.runtime.cuda.StreamLease`): a lease is
*held* from ``StreamPool.acquire`` until exactly one of ``enqueue`` (the
kernel consumes the reservation) or ``release`` (given back unused).  The
hazards: a lease that reaches neither (the stream stays reserved until
the timeout reclaims it — a silent throughput leak), and a lease used
again after it was consumed or released (the reservation it represents
belongs to someone else by then).

**Channels** (:class:`~repro.runtime.channel.Channel`): each generation
is set at most once and never after it was consumed or the channel was
closed.  The channel itself raises typed errors for these; the checker
records a finding *as well*, because a badly behaved caller may swallow
the exception — the sanitizer report survives the swallow.

Leases are stamped with a sequence number (``_san_seq``) just like
futures; leases created while the sanitizers are inactive are invisible
here.
"""

from __future__ import annotations

import gc
import itertools
import threading
import weakref
from typing import Any

from . import state

__all__ = ["lease_created", "lease_consumed", "lease_released",
           "lease_handoff", "lease_reclaimed", "channel_closed_set",
           "channel_reset_generation", "sweep_leases", "reset"]

_lock = threading.Lock()
_seq = itertools.count(1)

_HELD, _CONSUMED, _RELEASED = "held", "consumed", "released"

#: live leases: seq -> [weakref, acquire site, status]
_leases: dict[int, list] = {}


def lease_created(lease: Any) -> None:
    seq = next(_seq)
    lease._san_seq = seq
    site = state.call_site()

    def _gone(_ref: weakref.ref, seq: int = seq) -> None:
        with _lock:
            entry = _leases.pop(seq, None)
        # GC of a still-held lease is a leak even before any sweep: the
        # reservation can now only come back via the timeout reclaim
        if entry is not None and entry[2] == _HELD:
            state.record(
                "lease-leak",
                f"stream lease acquired at {entry[1]} was dropped without "
                "enqueue or release; the stream stays reserved until the "
                "lease timeout reclaims it",
                site=entry[1], dedupe_key=("lease-leak", seq))

    with _lock:
        _leases[seq] = [weakref.ref(lease, _gone), site, _HELD]


def _transition(lease: Any, new_status: str, verb: str) -> None:
    seq = getattr(lease, "_san_seq", None)
    if seq is None:
        return
    with _lock:
        entry = _leases.get(seq)
        if entry is None:
            return
        old = entry[2]
        if old == _HELD:
            entry[2] = new_status
            return
    state.record(
        "lease-reuse",
        f"stream lease acquired at {entry[1]} {verb} after it was already "
        f"{old} — the reservation no longer belongs to this holder",
        dedupe_key=("lease-reuse", seq, verb))


def lease_consumed(lease: Any) -> None:
    """``StreamLease.enqueue`` ran: the reservation is spent."""
    _transition(lease, _CONSUMED, "enqueued a kernel")


def lease_released(lease: Any) -> None:
    """An *effective* release (the idempotent no-op path is not reported)."""
    _transition(lease, _RELEASED, "released")


def lease_handoff(lease: Any) -> None:
    """The reservation left the lease object by a sanctioned path.

    ``StreamPool.try_acquire`` (the legacy API) extracts the raw stream
    and drops the lease; the reservation is then governed by
    ``CudaStream.enqueue``/``release`` directly, so lease lifecycle
    tracking no longer applies — without this, the GC of the discarded
    lease object would be reported as a leak.
    """
    seq = getattr(lease, "_san_seq", None)
    if seq is None:
        return
    with _lock:
        _leases.pop(seq, None)


def lease_reclaimed() -> None:
    """The pool reclaimed an expired reservation: some holder leaked it."""
    state.record(
        "lease-leak",
        "stream reservation reclaimed after lease timeout — a holder "
        "acquired a stream and neither enqueued nor released",
        dedupe_key=None)


def sweep_leases(collect: bool = True) -> list[state.Finding]:
    """Report leases still *held* at a quiesce point."""
    if collect:
        gc.collect()
    out: list[state.Finding] = []
    with _lock:
        held = [(seq, e[0](), e[1]) for seq, e in _leases.items()
                if e[2] == _HELD]
    for seq, lease, site in held:
        if lease is None:
            continue
        f = state.record(
            "lease-leak",
            f"stream lease acquired at {site} still held at sweep — "
            "neither enqueued nor released",
            site=site, dedupe_key=("lease-leak", seq))
        if f is not None:
            out.append(f)
    return out


def channel_closed_set(name: str, generation: int | None) -> None:
    state.record(
        "channel-closed-set",
        f"set(generation={generation}) on closed channel {name!r} — the "
        "value can never be delivered",
        dedupe_key=None, channel=name, generation=generation)


def channel_reset_generation(name: str, generation: int, why: str) -> None:
    state.record(
        "channel-reset-generation",
        f"re-set of generation {generation} on channel {name!r} ({why}) — "
        "generations are single-assignment; a re-set clobbers ordering",
        dedupe_key=None, channel=name, generation=generation)


def reset() -> None:
    """Forget all tracked leases (test isolation)."""
    with _lock:
        _leases.clear()
