"""Happens-before data-race detector (FastTrack-style vector clocks).

The byte-identity contracts of this codebase — futurized == serial,
distributed == node-level, chaos == clean — are only as good as the
*synchronization* between the tasks that share buffers: an unsynchronized
concurrent write to a shared ``out=``/workspace array corrupts results
silently on a schedule CI never sees.  This module detects that hazard
class mechanically, the dynamic analogue of ThreadSanitizer's FastTrack
algorithm (Flanagan & Freund, PLDI 2009):

* every thread carries a **vector clock** (its view of every other
  thread's progress);
* the runtime's synchronization vocabulary publishes **happens-before
  edges** through :func:`send` / :func:`recv` on per-object keys — future
  resolution/consumption, channel generations, scheduler post/begin/drain,
  stream-lease release/acquire and enqueue/execute, aggregation-region
  slot fill/flush, AGAS migration commit order, parcel send/deliver;
* every shared buffer the solver layer touches is declared through the
  shadow-access API :func:`access`, which keeps **epoch** shadow state per
  buffer — the last write ``(thread, clock)`` plus either a single read
  epoch or, after concurrent readers, a promoted read vector clock
  (FastTrack's read-share promotion).  Each access is O(1); two accesses
  with no happens-before path between them and at least one write is a
  **data race**, reported with both access stacks.

Activation follows the lockdep contract: everything above is gated on
``state.ACTIVE`` (``REPRO_SANITIZE=1`` or :func:`repro.sanitize.enable`),
so a disabled detector costs exactly one module-attribute read per hook
— zero overhead on the hot path.

Finding kind produced here: ``data-race`` — message carries the buffer
label and both conflicting accesses (mode, thread, ``file:line`` site).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Hashable

from . import state

__all__ = ["access", "send", "recv", "wrap_callback", "retire",
           "new_token", "reset", "stats", "publish_counters"]

_lock = threading.Lock()
_tls = threading.local()
_tid_seq = itertools.count(1)
_token_seq = itertools.count(1)

#: sync-object vector clocks: key -> {tid: clock}
_sync: dict[Hashable, dict[int, int]] = {}
#: per-buffer shadow state: key -> _Shadow
_shadow: dict[Hashable, "_Shadow"] = {}

# tallies (under _lock), published as /sanitize/race/* gauges
_n_accesses = 0
_n_edges = 0
_n_races = 0


class _Thread:
    """This thread's identity and vector clock (only its owner mutates
    ``vc``; other threads read entries of it under ``_lock`` via joins)."""

    __slots__ = ("tid", "vc", "name")

    def __init__(self) -> None:
        self.tid = next(_tid_seq)
        self.vc: dict[int, int] = {self.tid: 1}
        self.name = threading.current_thread().name


def _me() -> _Thread:
    t = getattr(_tls, "t", None)
    if t is None:
        t = _tls.t = _Thread()
    return t


def _join(dst: dict[int, int], src: dict[int, int]) -> None:
    for tid, clk in src.items():
        if clk > dst.get(tid, 0):
            dst[tid] = clk


# -- happens-before edge publication ------------------------------------------


def send(key: Hashable) -> None:
    """Release edge: publish this thread's clock onto sync object ``key``.

    A later :func:`recv` on the same key by any thread establishes
    happens-before from everything this thread did up to now.
    """
    if not state.ACTIVE:
        return
    global _n_edges
    t = _me()
    with _lock:
        vc = _sync.get(key)
        if vc is None:
            vc = _sync[key] = {}
        _join(vc, t.vc)
        t.vc[t.tid] += 1
        _n_edges += 1


def recv(key: Hashable) -> None:
    """Acquire edge: join sync object ``key``'s clock into this thread's.

    A no-op when nothing was ever sent on ``key`` (there is then no edge
    to acquire — and claiming one would hide real races).
    """
    if not state.ACTIVE:
        return
    global _n_edges
    t = _me()
    with _lock:
        vc = _sync.get(key)
        if vc:
            _join(t.vc, vc)
        _n_edges += 1


def new_token() -> tuple:
    """A fresh one-shot sync key (callback registration edges etc.)."""
    return ("tok", next(_token_seq))


def wrap_callback(key: Hashable, cb: Callable[..., Any],
                  drain_key: Hashable | None = None) -> Callable[..., Any]:
    """Wrap a callback/task with its happens-before edges.

    Publishes a registration edge *now* (registrar → callback), and on
    invocation acquires both that edge and ``key`` (e.g. the resolving
    future / posting scheduler); after the body, optionally releases
    ``drain_key`` (task end → ``wait_idle``).  Returns ``cb`` unchanged
    when the sanitizers are inactive.
    """
    if not state.ACTIVE:
        return cb
    token = new_token()
    send(token)

    def wrapped(*args: Any, **kwargs: Any) -> Any:
        recv(token)
        if key is not None:
            recv(key)
        with _lock:
            _sync.pop(token, None)  # one-shot: free the registration edge
        try:
            return cb(*args, **kwargs)
        finally:
            if drain_key is not None:
                send(drain_key)

    try:
        wrapped.__name__ = getattr(cb, "__name__", "task")
    except (AttributeError, TypeError):  # pragma: no cover
        pass
    return wrapped


# -- shadow accesses ----------------------------------------------------------


class _Shadow:
    """FastTrack epoch state for one buffer.

    ``w`` is the last-write epoch ``(tid, clock, site, thread_name)`` or
    ``None``; reads are a single epoch ``r`` until two concurrent readers
    promote to the read map ``rs`` (tid -> (clock, site, thread_name)).
    """

    __slots__ = ("label", "w", "r", "rs")

    def __init__(self, label: str) -> None:
        self.label = label
        self.w: tuple | None = None
        self.r: tuple | None = None
        self.rs: dict[int, tuple] | None = None


def _buffer_key(buf: Any, region: Hashable | None) -> Hashable:
    """Identity of a shared buffer: ndarray data pointer (so views of one
    allocation alias) or ``id()`` for plain objects, plus the caller's
    ``region`` discriminator for deliberately partitioned reuse."""
    iface = getattr(buf, "__array_interface__", None)
    if iface is not None:
        return ("nd", iface["data"][0], region)
    return ("py", id(buf), region)


def access(buf: Any, mode: str = "r", owner: str | None = None,
           region: Hashable | None = None, site: str | None = None) -> None:
    """Declare one access to a shared buffer (the shadow-access API).

    Parameters
    ----------
    buf:
        The buffer (ndarray or any object); identified by its data
        pointer so overlapping views alias correctly.
    mode:
        ``"r"`` or ``"w"``.
    owner:
        Human-readable label for reports (``"hydro/rhs-out"``); defaults
        to the buffer's type name.
    region:
        Optional discriminator for buffers deliberately partitioned into
        independently-synchronized regions (slot indices etc.); accesses
        with different regions never conflict.
    site:
        Override the reported ``file:line`` (defaults to the first frame
        outside the runtime).

    Reports a ``data-race`` finding when this access and the prior
    access epoch are unordered by happens-before and at least one is a
    write.  O(1) per access; a no-op when the sanitizers are disabled.
    """
    if not state.ACTIVE:
        return
    if mode not in ("r", "w"):
        raise ValueError(f"access mode must be 'r' or 'w', not {mode!r}")
    global _n_accesses, _n_races
    t = _me()
    if site is None:
        site = state.call_site()
    key = _buffer_key(buf, region)
    prior = None
    with _lock:
        _n_accesses += 1
        sh = _shadow.get(key)
        if sh is None:
            sh = _shadow[key] = _Shadow(
                owner or type(buf).__name__)
        elif owner is not None:
            sh.label = owner
        vc = t.vc
        clock = vc[t.tid]
        w = sh.w
        if w is not None and w[0] != t.tid and w[1] > vc.get(w[0], 0):
            prior = ("write", w)
        if mode == "w":
            if prior is None:
                if sh.rs is not None:
                    for tid, (clk, rsite, tname) in sh.rs.items():
                        if tid != t.tid and clk > vc.get(tid, 0):
                            prior = ("read", (tid, clk, rsite, tname))
                            break
                elif sh.r is not None:
                    r = sh.r
                    if r[0] != t.tid and r[1] > vc.get(r[0], 0):
                        prior = ("read", r)
            sh.w = (t.tid, clock, site, t.name)
            sh.r = None
            sh.rs = None
        else:
            epoch = (t.tid, clock, site, t.name)
            if sh.rs is not None:
                sh.rs[t.tid] = (clock, site, t.name)
            elif sh.r is None or sh.r[0] == t.tid:
                sh.r = epoch
            elif sh.r[1] <= vc.get(sh.r[0], 0):
                # prior reader happens-before us: stay in the exclusive
                # fast path (FastTrack's same-epoch optimization)
                sh.r = epoch
            else:
                sh.rs = {sh.r[0]: (sh.r[1], sh.r[2], sh.r[3]),
                         t.tid: (clock, site, t.name)}
                sh.r = None
        label = sh.label
        if prior is not None:
            _n_races += 1
    if prior is not None:
        kind, (_ptid, _pclk, psite, pname) = prior
        word = "write" if mode == "w" else "read"
        state.record(
            "data-race",
            f"data race on {label}: {word} at {site} (thread {t.name}) is "
            f"concurrent with prior {kind} at {psite} (thread {pname}) — "
            "no happens-before edge orders them",
            site=site,
            dedupe_key=("data-race", label, psite, site, kind, word),
            buffer=label,
            current_access=f"{word} at {site} (thread {t.name})",
            prior_access=f"{kind} at {psite} (thread {pname})")


def retire(buf: Any, region: Hashable | None = None) -> None:
    """Forget a buffer's shadow state (its storage is being freed/reused).

    Optional hygiene for callers that recycle allocations outside the
    instrumented sync vocabulary; unknown buffers are ignored.
    """
    if not state.ACTIVE:
        return
    with _lock:
        _shadow.pop(_buffer_key(buf, region), None)


# -- lifecycle / diagnostics --------------------------------------------------


def stats() -> dict[str, int]:
    with _lock:
        return {"accesses": _n_accesses, "edges": _n_edges,
                "races": _n_races, "buffers": len(_shadow),
                "sync_objects": len(_sync)}


def publish_counters(registry=None) -> None:
    """Publish ``/sanitize/race/...`` gauges (default registry)."""
    from ..runtime.counters import default_registry
    registry = registry or default_registry()
    snap = stats()
    registry.set_gauge("/sanitize/race/accesses", float(snap["accesses"]))
    registry.set_gauge("/sanitize/race/hb-edges", float(snap["edges"]))
    registry.set_gauge("/sanitize/race/races", float(snap["races"]))
    registry.set_gauge("/sanitize/race/buffers-tracked",
                       float(snap["buffers"]))


def reset() -> None:
    """Drop all shadow/sync state and tallies (test isolation).

    Thread vector clocks survive (they are thread-local and only ever
    advance), which is safe: new sync objects and shadows start empty,
    so stale clock values can only *under*-report, never invent an edge.
    """
    global _n_accesses, _n_edges, _n_races
    with _lock:
        _sync.clear()
        _shadow.clear()
        _n_accesses = 0
        _n_edges = 0
        _n_races = 0
