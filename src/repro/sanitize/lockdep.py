"""Lockdep-style lock-order checking for the AMT runtime.

Linux lockdep's key idea, transplanted: order violations are detected on
*lock classes*, not lock instances, so one observed ``A -> B`` nesting
plus one observed ``B -> A`` nesting anywhere in the process is flagged —
even if the two nestings never ran concurrently and no deadlock actually
happened.  That turns a probabilistic hang into a deterministic report.

Every runtime lock is created through :func:`make_lock` with a class name
(``"future.Future"``, ``"scheduler.idle"``, ``"cuda.stream"`` ...).  When
the sanitizers are enabled at creation time the returned object is a
:class:`TrackedLock`: each successful acquisition pushes onto a
thread-local held stack, inserts acquired-before edges from every held
class to the new class, and searches the class graph for a cycle.  Three
finding kinds come out of this module:

* ``lock-order`` — the new edge closes a cycle in the acquired-before
  graph (classic ABBA inversion); the finding carries the sites of both
  conflicting acquisitions.
* ``lock-recursion`` — a thread re-acquires the *same non-reentrant
  instance* it already holds: a guaranteed self-deadlock, reported just
  before the thread hangs.
* ``callback-under-lock`` (recorded via :func:`check_no_locks_held`) —
  user callbacks invoked while a tracked lock is held, the hazard class
  behind the scheduler-shutdown and stream-pool races of earlier PRs.

Same-class nesting (two ``Future`` locks held together) is recorded as an
ordinary self-edge but never reported as a cycle on its own: the runtime
legitimately nests instances of one class in creation order, and class
granularity cannot tell those apart (lockdep's "nesting annotation"
problem — documented limitation).
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from . import state

__all__ = ["TrackedLock", "make_lock", "make_condition", "held_classes",
           "check_no_locks_held", "reset", "acquired_before_edges"]

_graph_lock = threading.Lock()
#: acquired-before edges: class -> {later class: site of first observation}
_edges: dict[str, dict[str, str]] = {}
_tls = threading.local()


def _held() -> list[tuple[str, int, str]]:
    """This thread's stack of (class, instance id, acquire site)."""
    held = getattr(_tls, "held", None)
    if held is None:
        held = _tls.held = []
    return held


def held_classes() -> list[str]:
    """Lock classes the calling thread currently holds (outermost first)."""
    return [cls for cls, _id, _site in _held()]


def check_no_locks_held(context: str) -> None:
    """Record ``callback-under-lock`` if the calling thread holds any.

    The runtime calls this at the instant it is about to run user code
    (future continuations); holding a runtime lock there inverts against
    whatever locks the callback takes and can deadlock the dispatcher.
    """
    held = _held()
    if held:
        cls, _id, site = held[-1]
        state.record(
            "callback-under-lock",
            f"user callback invoked in {context} while holding lock "
            f"{cls!r} (acquired at {site})",
            dedupe_key=("callback-under-lock", context, cls),
            lock_class=cls, acquire_site=site, context=context)


def _reachable(src: str, dst: str) -> list[str] | None:
    """Path ``src -> ... -> dst`` in the class graph, or None (caller locks)."""
    stack = [(src, [src])]
    seen = {src}
    while stack:
        node, path = stack.pop()
        for nxt in _edges.get(node, ()):
            if nxt == node:
                continue  # self-edges never participate in reported cycles
            if nxt == dst:
                return path + [dst]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return None


def _note_acquired(cls: str, instance_id: int) -> None:
    """Edge insertion + cycle check after a successful acquire.

    Cycles can only appear when a *new* edge enters the class graph, so
    the reachability search runs once per novel (held, acquired) class
    pair — steady-state nested acquisitions cost two dict lookups.
    """
    held = _held()
    if not held:
        held.append((cls, instance_id, ""))
        return
    # Push *before* analysing: if edge analysis itself acquires a tracked
    # lock (it should not, but defence in depth), the held stack already
    # reflects reality and the recursion check cannot be blind-sided.
    site = state.call_site()
    held.append((cls, instance_id, site))
    for held_cls, _held_id, held_site in held[:-1]:
        if held_cls == cls:
            continue  # class-granularity: skip self-edges for cycles
        path = None
        with _graph_lock:
            existing = _edges.setdefault(held_cls, {})
            if cls in existing:
                continue  # edge known; cycle was checked at first insertion
            existing[cls] = site
            # inversion: can we already get from `cls` back to `held_cls`?
            path = _reachable(cls, held_cls)
            if path is not None:
                first_leg = _edges.get(cls, {}).get(
                    path[1] if len(path) > 1 else held_cls, "<unknown>")
        if path is not None:
            state.record(
                "lock-order",
                f"lock-order inversion: acquiring {cls!r} while holding "
                f"{held_cls!r}, but {' -> '.join(path)} was already "
                f"observed (first at {first_leg})",
                site=site,
                dedupe_key=("lock-order", held_cls, cls),
                cycle=path + [cls],
                held_site=held_site or "<outermost>",
                acquire_site=site, first_edge_site=first_leg)


def _note_released(cls: str, instance_id: int) -> None:
    held = _held()
    for i in range(len(held) - 1, -1, -1):
        if held[i][1] == instance_id:
            del held[i]
            return


class TrackedLock:
    """A ``threading.Lock`` wrapper feeding the acquired-before graph.

    Duck-compatible with the stdlib lock protocol (``acquire``/
    ``release``/context manager/``locked``), including use as the
    underlying lock of a ``threading.Condition`` — the condition's
    ``wait`` releases and re-acquires through these methods, so the held
    stack stays truthful across waits.
    """

    __slots__ = ("_lock", "lock_class")

    def __init__(self, lock_class: str):
        self._lock = threading.Lock()
        self.lock_class = lock_class

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if blocking and any(_id == id(self) for _c, _id, _s in _held()):
            state.record(
                "lock-recursion",
                f"thread {me} re-acquiring non-reentrant lock "
                f"{self.lock_class!r} it already holds (self-deadlock)",
                dedupe_key=None,
                lock_class=self.lock_class)
            # a blocking re-acquire would hang this thread forever; fail
            # fast so the run (and its report) survive the finding
            raise RuntimeError(
                f"lockdep: self-deadlock on {self.lock_class!r} "
                "(blocking re-acquire of a held non-reentrant lock)")
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            _note_acquired(self.lock_class, id(self))
        return ok

    def release(self) -> None:
        _note_released(self.lock_class, id(self))
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TrackedLock {self.lock_class!r} {self._lock!r}>"


def make_lock(lock_class: str):
    """A lock for ``lock_class``: tracked when sanitizers are active.

    The decision is taken at creation time, so a disabled sanitizer adds
    zero overhead to the hot paths (a plain ``threading.Lock`` is
    returned); objects built after :func:`repro.sanitize.enable` — or any
    time under ``REPRO_SANITIZE=1`` — get the instrumented lock.
    """
    if state.ACTIVE:
        return TrackedLock(lock_class)
    return threading.Lock()


def make_condition(lock_class: str) -> threading.Condition:
    """A condition variable over a (possibly tracked) class lock."""
    return threading.Condition(make_lock(lock_class))


def acquired_before_edges() -> dict[str, dict[str, str]]:
    """Snapshot of the acquired-before graph (class -> class -> site)."""
    with _graph_lock:
        return {a: dict(bs) for a, bs in _edges.items()}


def reset() -> None:
    """Forget all observed edges (test isolation)."""
    with _graph_lock:
        _edges.clear()


def _iter_threads_held() -> Iterator[tuple[str, int, str]]:  # pragma: no cover
    yield from _held()
