"""Deterministic fault injection for the runtime and network model.

The paper's production runs (Sec. 6.2/6.3, up to 5400 Piz Daint nodes)
assume a fault-free machine; the follow-up AMT survey (arXiv:2412.15518)
names fault tolerance as the open challenge for scaling AMR astrophysics
codes to exascale.  This module is the *adversary* half of the resilience
story: a :class:`FaultInjector` that, driven by a seeded RNG, injects

* **message loss** — a parcel send that never produces an ack
  (:meth:`FaultInjector.drop_message`);
* **message delay / reorder** — an ack that arrives late; delays past the
  retry policy's ack timeout are indistinguishable from loss, shorter
  delays let later parcels overtake the slow one
  (:meth:`FaultInjector.message_delay`);
* **transient action exceptions** — a remotely-invoked action that fails
  once and would succeed on retry (:meth:`FaultInjector.maybe_action_fault`,
  consulted by :class:`repro.runtime.parcel.ParcelHandler`);
* **step faults** — a failure in the middle of a timestep loop, recovered
  from checkpoint by :func:`repro.core.stepper.evolve`
  (:meth:`FaultInjector.maybe_step_fault`);
* **whole-locality failure** — handled by
  :meth:`repro.runtime.agas.AgasRuntime.fail_locality`; the injector only
  schedules *when* (:meth:`FaultInjector.locality_failure_due`);
* **torn checkpoint writes** — a checkpoint save that stages only part of
  its block records and never commits its manifest, as a crash mid-write
  leaves on a real filesystem (:meth:`FaultInjector.torn_write_due`,
  consulted by :class:`repro.resilience.checkpoint.CheckpointManager`);
* **checkpoint corruption** — a committed checkpoint record whose payload
  bytes are silently damaged after the fact (bit rot, a bad DMA):
  detectable only because records carry content checksums
  (:meth:`FaultInjector.checkpoint_corruption_due`).

Every draw comes from one ``random.Random(seed)`` stream behind a lock, so
a fixed seed reproduces the exact same fault schedule — the property the
deterministic regression tests and the "drift identical to the fault-free
run" acceptance check rely on.  Optional budgets (``max_losses``,
``max_action_faults``, ``max_step_faults``) make every fault *transient*:
once a budget is exhausted the injector stops firing that fault class, so
a retry loop with a finite budget is guaranteed to make progress.

All injected faults are tallied under ``/resilience/injected/...`` in the
counter registry.
"""

from __future__ import annotations

import random
import threading

from ..runtime.counters import CounterRegistry, default_registry

__all__ = [
    "InjectedFault", "TransientActionFault", "SimulationFault",
    "FaultInjector",
]


class InjectedFault(RuntimeError):
    """Base class for all injected failures (catch this to recover)."""


class TransientActionFault(InjectedFault):
    """A remotely-invoked action failed transiently; a retry may succeed."""


class SimulationFault(InjectedFault):
    """A failure mid-timestep; recoverable from the last checkpoint."""


class FaultInjector:
    """Seeded source of message loss, delays, action and step faults.

    Parameters
    ----------
    seed:
        RNG seed; the full fault schedule is a pure function of it.
    loss_rate:
        Probability that a parcel send is dropped (no ack).
    delay_rate / max_delay:
        Probability that a delivered parcel is delayed, and the maximum
        injected delay in seconds (uniform on ``[0, max_delay]``).
    action_fault_rate:
        Probability that a delivered parcel's action raises
        :class:`TransientActionFault` instead of running.
    step_fault_rate:
        Probability that :meth:`maybe_step_fault` raises on a given step.
    fail_at_steps:
        Explicit step numbers at which :meth:`maybe_step_fault` raises
        (each fires once) — deterministic scheduling for tests.
    corrupt_at_steps:
        Step numbers at which :meth:`corruption_due` answers True (each
        fires once): silent data corruption for the post-stage guards of
        :class:`repro.core.stepper.GuardedStepper` to catch.  Unlike a
        step fault, nothing raises — the run only survives if somebody
        *checks* the state.
    fail_locality_at:
        ``(step, locality)``: :meth:`locality_failure_due` returns the
        locality once when asked about that step.
    torn_write_at_saves / torn_write_rate:
        Checkpoint save indices (0-based, each fires once) at which the
        write is torn — partial records staged, manifest never committed —
        plus an optional Bernoulli rate on every other save.
    corrupt_ckpt_at_saves / ckpt_corruption_rate:
        Checkpoint save indices at which the committed record's payload is
        silently damaged after the write, plus an optional rate.
    max_losses / max_action_faults / max_step_faults:
        Budgets after which that fault class stops firing (``None`` means
        unlimited).  Finite budgets make faults transient by construction.
    """

    def __init__(self, seed: int = 0, *,
                 loss_rate: float = 0.0,
                 delay_rate: float = 0.0,
                 max_delay: float = 0.0,
                 action_fault_rate: float = 0.0,
                 step_fault_rate: float = 0.0,
                 fail_at_steps: tuple[int, ...] = (),
                 corrupt_at_steps: tuple[int, ...] = (),
                 fail_locality_at: tuple[int, int] | None = None,
                 torn_write_at_saves: tuple[int, ...] = (),
                 torn_write_rate: float = 0.0,
                 corrupt_ckpt_at_saves: tuple[int, ...] = (),
                 ckpt_corruption_rate: float = 0.0,
                 max_losses: int | None = None,
                 max_action_faults: int | None = None,
                 max_step_faults: int | None = None,
                 max_torn_writes: int | None = None,
                 max_ckpt_corruptions: int | None = None,
                 registry: CounterRegistry | None = None):
        for name, rate in (("loss_rate", loss_rate),
                           ("delay_rate", delay_rate),
                           ("action_fault_rate", action_fault_rate),
                           ("step_fault_rate", step_fault_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("ckpt_corruption_rate", ckpt_corruption_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.loss_rate = loss_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.action_fault_rate = action_fault_rate
        self.step_fault_rate = step_fault_rate
        self.torn_write_rate = torn_write_rate
        self.ckpt_corruption_rate = ckpt_corruption_rate
        self._fail_at_steps = set(fail_at_steps)
        self._corrupt_at_steps = set(corrupt_at_steps)
        self._fail_locality_at = fail_locality_at
        self._torn_write_at_saves = set(torn_write_at_saves)
        self._corrupt_ckpt_at_saves = set(corrupt_ckpt_at_saves)
        #: checkpoint saves observed so far (indexes the *_at_saves sets)
        self._saves_seen = 0
        self._budgets = {"loss": max_losses,
                         "action": max_action_faults,
                         "step": max_step_faults,
                         "torn-write": max_torn_writes,
                         "ckpt-corruption": max_ckpt_corruptions}
        self.registry = registry or default_registry()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.injected = {"loss": 0, "delay": 0, "action": 0, "step": 0,
                         "corruption": 0, "locality": 0,
                         "torn-write": 0, "ckpt-corruption": 0}

    # -- internals ----------------------------------------------------------

    def _fire(self, kind: str, rate: float) -> bool:
        """One Bernoulli draw for ``kind``, respecting its budget."""
        budget = self._budgets.get(kind)
        if budget is not None and self.injected[kind] >= budget:
            return False
        if rate <= 0.0 or self._rng.random() >= rate:
            return False
        self.injected[kind] += 1
        self.registry.increment(f"/resilience/injected/{kind}")
        return True

    # -- message path -------------------------------------------------------

    def drop_message(self) -> bool:
        """True when the current parcel send should be lost (no ack)."""
        with self._lock:
            return self._fire("loss", self.loss_rate)

    def message_delay(self) -> float:
        """Injected delivery delay in seconds for the current send (0 = none)."""
        with self._lock:
            if not self._fire("delay", self.delay_rate):
                return 0.0
            return self._rng.random() * self.max_delay

    def maybe_action_fault(self, parcel=None) -> TransientActionFault | None:
        """A transient exception for this parcel's action, or ``None``.

        Consulted by :class:`repro.runtime.parcel.ParcelHandler.deliver`;
        the returned exception is surfaced through the action's future so
        a :class:`~repro.resilience.retry.ResilientParcelSender` can retry.
        """
        with self._lock:
            if not self._fire("action", self.action_fault_rate):
                return None
        what = f"parcel #{parcel.seq}" if parcel is not None else "action"
        return TransientActionFault(f"injected transient fault in {what}")

    # -- timestep path ------------------------------------------------------

    def maybe_step_fault(self, step: int) -> None:
        """Raise :class:`SimulationFault` if a fault is due at ``step``."""
        with self._lock:
            if step in self._fail_at_steps:
                self._fail_at_steps.discard(step)
                self.injected["step"] += 1
                self.registry.increment("/resilience/injected/step")
            elif not self._fire("step", self.step_fault_rate):
                return
        raise SimulationFault(f"injected failure at step {step}")

    def corruption_due(self, step: int) -> bool:
        """True when step ``step``'s result should be silently corrupted.

        Fires at most once per listed step; the caller (e.g.
        :class:`repro.core.stepper.GuardedStepper`) applies the actual
        state damage, so the injector stays physics-agnostic.
        """
        with self._lock:
            if step not in self._corrupt_at_steps:
                return False
            self._corrupt_at_steps.discard(step)
            self.injected["corruption"] += 1
            self.registry.increment("/resilience/injected/corruption")
            return True

    def locality_failure_due(self, step: int) -> int | None:
        """Locality scheduled to die at ``step`` (fires at most once)."""
        with self._lock:
            due = self._fail_locality_at
            if due is None or step < due[0]:
                return None
            self._fail_locality_at = None
            self.injected["locality"] += 1
            self.registry.increment("/resilience/injected/locality")
            return due[1]

    # -- checkpoint-store path ----------------------------------------------

    def _ckpt_fault_due(self, kind: str, scheduled: set[int],
                        rate: float, save_index: int) -> bool:
        """Shared draw for the two checkpoint-store fault classes."""
        if save_index in scheduled:
            scheduled.discard(save_index)
            self.injected[kind] += 1
            self.registry.increment(f"/resilience/injected/{kind}")
            return True
        return self._fire(kind, rate)

    def torn_write_due(self) -> bool:
        """True when the current checkpoint save should be torn.

        A torn save stages only part of its block records and never
        commits its manifest — the caller
        (:class:`repro.resilience.checkpoint.CheckpointManager` or the
        buddy-replicated store) applies the actual truncation, so the
        injector stays store-agnostic.  Each call consumes one save index
        for the ``*_at_saves`` schedules.
        """
        with self._lock:
            index = self._saves_seen
            due = self._ckpt_fault_due("torn-write", self._torn_write_at_saves,
                                       self.torn_write_rate, index)
            if due:
                # a torn save is *also* this save for scheduling purposes
                self._saves_seen += 1
            return due

    def checkpoint_corruption_due(self) -> bool:
        """True when the just-committed checkpoint record should rot.

        Fired once per save (after :meth:`torn_write_due` answered False);
        the store damages the stored payload bytes so only a content
        checksum can tell.
        """
        with self._lock:
            index = self._saves_seen
            self._saves_seen += 1
            return self._ckpt_fault_due(
                "ckpt-corruption", self._corrupt_ckpt_at_saves,
                self.ckpt_corruption_rate, index)

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return dict(self.injected)
