"""Reliable parcel delivery: ack/timeout/retry with exponential backoff.

The HPX parcel layer of the paper assumes a lossless interconnect; this
module wraps delivery so the runtime survives the faults
:class:`~repro.resilience.faults.FaultInjector` injects.  The model is the
classic acknowledged-datagram one:

* each send attempt either produces an *ack* (the action's future becomes
  ready within ``ack_timeout``), is *dropped* (injected loss — no ack), or
  is *delayed* past the ack timeout (indistinguishable from loss, so it is
  retried — delivery is at-least-once, like HPX parcel resends);
* between attempts the sender backs off exponentially
  (``base_backoff * backoff_factor**(attempt-1)``, capped at
  ``max_backoff``) — optionally with seeded **decorrelated jitter**
  (``jitter=True``: wait ~ U(base, 3 * previous wait), capped), so a
  congestion event that fails many senders at once cannot make them all
  re-fire into the same degraded-network window in lockstep; each
  sender's jitter stream is seeded (from ``jitter_seed`` or its
  injector's seed), keeping the schedule fully deterministic;
* a :class:`~repro.resilience.faults.TransientActionFault` surfaced by the
  action's future also counts as a failed attempt and is retried;
* when the attempt budget is exhausted the caller gets an **exceptional
  future** carrying :class:`RetryBudgetExhausted` — never a hang, and
  never a synchronous raise (the Sec. 4.1 local/remote equivalence).

Non-transient action errors (application exceptions,
:class:`~repro.runtime.agas.LocalityFailed`, unknown GIDs) are *not*
retried: they propagate through the returned future untouched, because no
number of resends will fix them.

All activity is tallied under ``/resilience/parcels/...`` and, when
tracing is enabled, each send is recorded as a ``resilient-send`` span
with the attempt count.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry
from ..runtime.future import Future, FutureTimeout, make_exceptional_future
from ..runtime.parcel import Parcel, ParcelHandler
from .faults import FaultInjector, TransientActionFault

__all__ = ["RetryPolicy", "RetryBudgetExhausted", "ResilientParcelSender",
           "DEFAULT_RETRY_POLICY", "NETWORK_RETRY_POLICY"]


class RetryBudgetExhausted(RuntimeError):
    """Every send attempt for a parcel failed; delivery gave up."""


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff schedule for resilient sends.

    Times are in seconds.  The defaults keep worst-case test wall time in
    the milliseconds while still exercising a real exponential schedule.
    """

    max_attempts: int = 4
    base_backoff: float = 1e-3
    backoff_factor: float = 2.0
    max_backoff: float = 0.1
    ack_timeout: float = 0.25
    #: decorrelated jitter (AWS-style): each wait is drawn uniformly from
    #: ``[base_backoff, 3 * previous wait]``, capped at ``max_backoff``.
    #: Spreads synchronized retry storms; the draw stream lives in the
    #: sender (seeded), so the policy object stays shareable and frozen.
    jitter: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Deterministic wait after failed attempt number ``attempt``
        (the no-jitter schedule, and the jittered schedule's anchor)."""
        return min(self.base_backoff * self.backoff_factor ** (attempt - 1),
                   self.max_backoff)

    def jittered_backoff(self, previous: float,
                         rng: random.Random) -> float:
        """One decorrelated-jitter draw: ``min(cap, U(base, 3 * prev))``.

        ``previous`` is the last wait (use ``base_backoff`` before the
        first retry).  Growth is still geometric *in expectation* (~2x
        per retry, like ``backoff_factor=2``), but two senders whose
        failures coincide draw from different seeded streams and land in
        different windows — the desynchronization property the
        regression test asserts.
        """
        high = max(previous * 3.0, self.base_backoff)
        return min(self.max_backoff,
                   rng.uniform(self.base_backoff, high))

    # -- expectation helpers (used by the scaling model) --------------------

    def expected_attempts(self, loss_rate: float) -> float:
        """E[number of sends] per parcel under iid loss, budget-capped."""
        p = min(max(loss_rate, 0.0), 1.0)
        if p == 0.0:
            return 1.0
        if p == 1.0:
            return float(self.max_attempts)
        return (1.0 - p ** self.max_attempts) / (1.0 - p)

    def expected_backoff(self, loss_rate: float) -> float:
        """E[total backoff wait] per parcel under iid loss (seconds)."""
        p = min(max(loss_rate, 0.0), 1.0)
        return sum(p ** k * self.backoff(k)
                   for k in range(1, self.max_attempts))

    def delivery_probability(self, loss_rate: float) -> float:
        p = min(max(loss_rate, 0.0), 1.0)
        return 1.0 - p ** self.max_attempts


DEFAULT_RETRY_POLICY = RetryPolicy()

#: backoff on interconnect timescales (a few RTTs, not wall-clock millis) —
#: the right schedule for the *cost model* in the cluster simulator, where
#: message costs are microseconds and a millisecond backoff would dwarf them
NETWORK_RETRY_POLICY = RetryPolicy(max_attempts=4, base_backoff=10e-6,
                                   backoff_factor=2.0, max_backoff=1e-3,
                                   ack_timeout=1e-3)


class ResilientParcelSender:
    """Wraps a :class:`ParcelHandler` with ack/timeout/retry delivery.

    Parameters
    ----------
    handler:
        Destination parcel handler (its AGAS executes the actions).
    injector:
        Optional :class:`FaultInjector` supplying loss/delay on the send
        path.  Action faults are injected by the *handler's* injector —
        they model receive-side failures.
    policy:
        Attempt budget and backoff schedule.
    sleep:
        Clock used for backoff/delay waits; tests pass a no-op or virtual
        clock.  Defaults to :func:`time.sleep`.
    jitter_seed:
        Seed for the decorrelated-jitter stream (only drawn from when
        ``policy.jitter`` is set).  Defaults to the injector's seed when
        one is supplied, so a seeded fault schedule fixes the jitter
        schedule too; distinct senders should get distinct seeds — that
        is what desynchronizes their retry storms.
    """

    def __init__(self, handler: ParcelHandler,
                 injector: FaultInjector | None = None,
                 policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                 registry: CounterRegistry | None = None,
                 sleep: Callable[[float], None] | None = None,
                 jitter_seed: int | None = None):
        self.handler = handler
        self.injector = injector
        self.policy = policy
        self.registry = registry or default_registry()
        self._sleep = time.sleep if sleep is None else sleep
        if jitter_seed is None and injector is not None:
            jitter_seed = injector.seed
        self._jitter_rng = random.Random(jitter_seed)

    # -- delivery -----------------------------------------------------------

    def send(self, parcel: Parcel) -> Future:
        """Deliver ``parcel``, retrying on loss/timeout/transient fault.

        Returns the action's future on success; an exceptional future with
        :class:`RetryBudgetExhausted` when every attempt fails.  Never
        raises synchronously and never blocks longer than the backoff
        schedule plus ``max_attempts`` ack timeouts.
        """
        r = self.registry
        policy = self.policy
        r.increment("/resilience/parcels/sent")
        t0 = trace.begin() if trace.TRACING else 0.0
        last_failure = "loss"
        prev_wait = policy.base_backoff
        for attempt in range(1, policy.max_attempts + 1):
            r.increment("/resilience/parcels/attempts")
            fut = self._attempt(parcel)
            if fut is not None:
                if not fut.wait(policy.ack_timeout):
                    # action still running past the ack window: treat like a
                    # lost ack and resend (at-least-once delivery)
                    last_failure = "ack-timeout"
                    r.increment("/resilience/parcels/ack-timeouts")
                elif fut.has_exception() and self._is_transient(fut):
                    last_failure = "action-fault"
                    r.increment("/resilience/parcels/action-faults")
                else:
                    r.increment("/resilience/parcels/acked")
                    if attempt > 1:
                        r.increment("/resilience/parcels/recovered")
                    if trace.TRACING:
                        trace.complete("resilient-send", "resilience", t0,
                                       action=parcel.action, attempts=attempt)
                    return fut
            if attempt < policy.max_attempts:
                if policy.jitter:
                    wait = policy.jittered_backoff(prev_wait,
                                                   self._jitter_rng)
                    prev_wait = wait
                else:
                    wait = policy.backoff(attempt)
                r.increment("/resilience/parcels/retries")
                r.increment("/resilience/backoff-seconds", wait)
                if trace.TRACING:
                    trace.instant("parcel-retry", "resilience",
                                  seq=parcel.seq, attempt=attempt)
                self._sleep(wait)
        r.increment("/resilience/parcels/exhausted")
        if trace.TRACING:
            trace.complete("resilient-send", "resilience", t0,
                           action=parcel.action, exhausted=True)
        return make_exceptional_future(RetryBudgetExhausted(
            f"parcel #{parcel.seq} ({parcel.action!r} -> "
            f"{parcel.destination}) undelivered after "
            f"{policy.max_attempts} attempts (last failure: {last_failure})"))

    def _attempt(self, parcel: Parcel) -> Future | None:
        """One send attempt; ``None`` means the message was dropped."""
        inj = self.injector
        if inj is not None:
            if inj.drop_message():
                self.registry.increment("/resilience/parcels/dropped")
                return None
            delay = inj.message_delay()
            if delay > 0.0:
                self.registry.increment("/resilience/parcels/delayed")
                if delay > self.policy.ack_timeout:
                    # the ack would arrive after the sender gave up; model
                    # it as loss (the duplicate-delivery case of real nets)
                    return None
                self._sleep(delay)
        return self.handler.deliver(parcel)

    @staticmethod
    def _is_transient(fut: Future) -> bool:
        """Typed transient-fault classification (never message sniffing):
        injected transient action faults and future timeouts are worth a
        resend; everything else (application errors, failed localities,
        unknown GIDs) is permanent."""
        try:
            fut.get(timeout=0.0)
        except (TransientActionFault, FutureTimeout):
            return True
        except BaseException:
            return False
        return False
