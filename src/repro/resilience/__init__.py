"""Fault injection and recovery for the AMT runtime (see DESIGN.md).

The paper's runs assume a fault-free Piz Daint; the AMT follow-up survey
(arXiv:2412.15518) calls fault tolerance *the* open challenge for exascale
AMR astrophysics.  This package supplies both halves of the story:

* the adversary — :class:`FaultInjector`, a seeded source of message
  loss/delay, transient action exceptions, step faults, silent state
  corruption and scheduled locality failures;
* the defence — :class:`ResilientParcelSender` (ack/timeout/retry with
  exponential backoff over the parcel layer), :class:`SupervisedEngine`
  (bounded re-execution of transiently failing compute tasks),
  :class:`FailureDetector` (phi-accrual heartbeat detection of silent
  localities with automatic AGAS evacuation),
  :meth:`repro.runtime.agas.AgasRuntime.fail_locality` (component
  migration / invalidation on node death), :class:`CheckpointManager`
  (periodic mesh snapshots consumed by
  :func:`repro.core.stepper.evolve` and
  :class:`repro.core.stepper.GuardedStepper`) and stream quarantine in
  :mod:`repro.runtime.cuda`.

Everything publishes ``/resilience/...`` counters into the registry from
:mod:`repro.runtime.counters` and emits trace spans when tracing is on.
"""

from .faults import (FaultInjector, InjectedFault, SimulationFault,
                     TransientActionFault)
from .retry import (DEFAULT_RETRY_POLICY, NETWORK_RETRY_POLICY,
                    ResilientParcelSender, RetryBudgetExhausted, RetryPolicy)
from .checkpoint import (CheckpointError, CheckpointManager, MeshCheckpoint,
                         block_checksum)
from .durability import (BlockRecord, BuddyReplicatedStore, ManifestRecord,
                         RecoveryCoordinator, RecoveryReport)
from .supervisor import DEFAULT_TASK_RETRIES, SupervisedEngine
from .health import (DEFAULT_HEARTBEAT_INTERVAL_S, DEFAULT_PHI_THRESHOLD,
                     FailureDetector)
from .chaos import ChaosConfig, ChaosResult, run_chaos_merger
from .distrun import (DistributedMergerConfig, DistributedMergerResult,
                      RecoveryMergerConfig, RecoveryMergerResult,
                      run_distributed_merger, run_recovery_merger)

__all__ = [
    "FaultInjector", "InjectedFault", "SimulationFault",
    "TransientActionFault",
    "RetryPolicy", "RetryBudgetExhausted", "ResilientParcelSender",
    "DEFAULT_RETRY_POLICY", "NETWORK_RETRY_POLICY",
    "CheckpointError", "CheckpointManager", "MeshCheckpoint",
    "block_checksum",
    "BlockRecord", "ManifestRecord", "BuddyReplicatedStore",
    "RecoveryCoordinator", "RecoveryReport",
    "SupervisedEngine", "DEFAULT_TASK_RETRIES",
    "FailureDetector", "DEFAULT_PHI_THRESHOLD",
    "DEFAULT_HEARTBEAT_INTERVAL_S",
    "ChaosConfig", "ChaosResult", "run_chaos_merger",
    "DistributedMergerConfig", "DistributedMergerResult",
    "run_distributed_merger",
    "RecoveryMergerConfig", "RecoveryMergerResult", "run_recovery_merger",
]
