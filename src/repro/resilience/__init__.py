"""Fault injection and recovery for the AMT runtime (see DESIGN.md).

The paper's runs assume a fault-free Piz Daint; the AMT follow-up survey
(arXiv:2412.15518) calls fault tolerance *the* open challenge for exascale
AMR astrophysics.  This package supplies both halves of the story:

* the adversary — :class:`FaultInjector`, a seeded source of message
  loss/delay, transient action exceptions, step faults and scheduled
  locality failures;
* the defence — :class:`ResilientParcelSender` (ack/timeout/retry with
  exponential backoff over the parcel layer),
  :meth:`repro.runtime.agas.AgasRuntime.fail_locality` (component
  migration / invalidation on node death) and :class:`CheckpointManager`
  (periodic mesh snapshots consumed by
  :func:`repro.core.stepper.evolve`).

Everything publishes ``/resilience/...`` counters into the registry from
:mod:`repro.runtime.counters` and emits trace spans when tracing is on.
"""

from .faults import (FaultInjector, InjectedFault, SimulationFault,
                     TransientActionFault)
from .retry import (DEFAULT_RETRY_POLICY, NETWORK_RETRY_POLICY,
                    ResilientParcelSender, RetryBudgetExhausted, RetryPolicy)
from .checkpoint import CheckpointError, CheckpointManager, MeshCheckpoint

__all__ = [
    "FaultInjector", "InjectedFault", "SimulationFault",
    "TransientActionFault",
    "RetryPolicy", "RetryBudgetExhausted", "ResilientParcelSender",
    "DEFAULT_RETRY_POLICY", "NETWORK_RETRY_POLICY",
    "CheckpointError", "CheckpointManager", "MeshCheckpoint",
]
