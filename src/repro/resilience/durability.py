"""Durable recovery: buddy-replicated checkpoints and elastic restart.

:class:`~repro.resilience.checkpoint.CheckpointManager` protects a run
against *state* loss — rollback past a bad step — but its records live in
the memory of the run they protect.  A correlated multi-locality failure
(the full-job interruptions the Fugaku port, arXiv 2304.11002, reports,
and the gating concern of the exascale AMT survey, arXiv 2412.15518)
takes the checkpoints down with the blocks.  This module supplies the
two missing layers:

* :class:`BuddyReplicatedStore` — a write-through replica store wired to
  the manager's commit hook.  Each committed block record is kept on the
  block's *owner* locality and copied to a **buddy** (the next surviving
  locality, cyclically), with the copy charged to the mesh's halo
  parcelport via one-sided puts — replication is honest traffic, not
  free magic, and the ``/parcels/*`` reconciliation still holds.  The
  per-generation *manifest* (metadata + the per-block checksum stamps)
  is broadcast to every survivor, so any survivor can validate any
  generation.  Losing a locality wipes its shard; one replica survives
  any single loss, and the pair survives one of the two.

* :class:`RecoveryCoordinator` — the global-rollback driver.  When
  concurrent failures exceed evacuation capacity, or a block's last live
  copy died with its node, local evacuation cannot help: the coordinator
  finds the newest generation that is **globally consistent** (manifest
  survives, every block has a verified copy on a survivor), remaps block
  ownership over the *remaining* localities through
  :func:`~repro.core.distmesh.slab_partition`, resurrects lost GIDs via
  :meth:`~repro.runtime.agas.AgasRuntime.restore_component`, fetches the
  payloads from whichever shard holds a good copy (charged
  holder→new-owner), and rolls the whole run back — an **elastic
  restart** on fewer localities that, by the partition-independence
  contract of :class:`~repro.core.distmesh.DistBlockMesh`, finishes
  byte-identical to a clean run.

Recovery activity is tallied under ``/recovery/...``; store verification
shares the ``/resilience/ckpt/{verified,corrupt,fallback}`` counters with
the local manager's restore path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry
from ..sanitize import lockdep as _sanitize_lockdep
from .checkpoint import (CheckpointError, CheckpointManager, MeshCheckpoint,
                         _manifest_checksum, block_checksum)

__all__ = ["BlockRecord", "ManifestRecord", "BuddyReplicatedStore",
           "RecoveryCoordinator", "RecoveryReport"]


@dataclass(frozen=True)
class BlockRecord:
    """One replicated block payload: a copy, its stamp, its generation."""

    generation: int
    key: object
    payload: np.ndarray
    checksum: int

    def verify(self) -> bool:
        return block_checksum(self.payload) == self.checksum


@dataclass(frozen=True)
class ManifestRecord:
    """The broadcast half of a generation: metadata + per-block stamps.

    Small (no payloads), so it is replicated to *every* survivor — any
    one of them can then validate any generation's block records.
    """

    generation: int
    step: int
    time: float
    monitor_len: int
    checksums: dict
    manifest: int

    @property
    def nbytes(self) -> int:
        # modelled wire size: fixed header + one (key, crc) entry per block
        return 48 + 24 * len(self.checksums)

    def verify(self) -> bool:
        return self.manifest == _manifest_checksum(
            self.step, self.time, self.monitor_len, self.checksums)


class BuddyReplicatedStore:
    """Per-locality checkpoint shards with buddy replication.

    Wire it to a manager with ``manager.on_commit = store.replicate`` (or
    let :class:`RecoveryCoordinator` do so): every committed checkpoint
    is split into per-block records, each stored on its block's owner
    locality and copied to the next surviving locality.  The copies are
    independent arrays — damaging one replica (bit rot on one node) does
    not touch the other, which is the whole point.

    The store's notion of *alive* starts from the mesh's AGAS and shrinks
    through :meth:`locality_lost`; a dead locality's shard and manifests
    vanish with it, exactly like the memory of a dead node.
    """

    def __init__(self, mesh, *, keep: int = 4,
                 registry: CounterRegistry | None = None):
        if keep < 1:
            raise ValueError("must keep at least one generation")
        self.mesh = mesh
        self.keep = keep
        self.registry = registry or default_registry()
        self._lock = _sanitize_lockdep.make_lock("durability.store")
        n = mesh.n_localities
        self._alive: set[int] = (set(range(n))
                                 - mesh.agas.failed_localities)
        #: locality -> {(generation, key) -> BlockRecord}
        self._shards: dict[int, dict[tuple, BlockRecord]] = {
            loc: {} for loc in range(n)}
        #: locality -> {generation -> ManifestRecord}
        self._manifests: dict[int, dict[int, ManifestRecord]] = {
            loc: {} for loc in range(n)}
        self.replicated = 0

    # -- write path ---------------------------------------------------------

    @staticmethod
    def _buddy_of(owner: int, alive: list[int]) -> int | None:
        """Next surviving locality after ``owner``, cyclically."""
        if len(alive) < 2:
            return None
        after = [loc for loc in alive if loc > owner]
        return after[0] if after else alive[0]

    def replicate(self, cp: MeshCheckpoint) -> None:
        """Write-through one committed checkpoint into the shards.

        Primary copy on each block's owner, buddy copy on the next
        survivor (charged as a one-sided put over the halo parcelport);
        the manifest broadcast to every survivor.  Torn records never get
        here — the manager's commit hook only fires for committed saves.
        """
        if not cp.committed:
            return
        transport = self.mesh.transport
        owners = self.mesh.owners() if hasattr(self.mesh, "owners") else {}
        r = self.registry
        with self._lock:
            alive = sorted(self._alive)
            if not alive:
                return
            for key, arr in cp.payload_items():
                owner = owners.get(key, alive[0])
                if owner not in self._alive:
                    owner = alive[0]
                crc = cp.checksums[key]
                self._shards[owner][(cp.generation, key)] = BlockRecord(
                    cp.generation, key, arr.copy(), crc)
                buddy = self._buddy_of(owner, alive)
                if buddy is not None:
                    self._shards[buddy][(cp.generation, key)] = BlockRecord(
                        cp.generation, key, arr.copy(), crc)
                    transport.charge_onesided(arr.nbytes, owner, buddy)
                    r.increment("/resilience/ckpt/replicas")
                    r.increment("/resilience/ckpt/replica-bytes",
                                float(arr.nbytes))
            man = ManifestRecord(cp.generation, cp.step, cp.time,
                                 cp.monitor_len, dict(cp.checksums),
                                 cp.manifest)
            origin = alive[0]
            for loc in alive:
                self._manifests[loc][cp.generation] = man
                transport.charge_onesided(man.nbytes, origin, loc)
            self.replicated += 1
            self._prune(alive)
        trace.instant("checkpoint-replicated", "resilience",
                      generation=cp.generation, step=cp.step)

    def _prune(self, alive: list[int]) -> None:
        """Retain the ``keep`` newest generations (caller holds the lock)."""
        gens = sorted({g for loc in alive for g in self._manifests[loc]})
        if len(gens) <= self.keep:
            return
        cutoff = gens[-self.keep]
        for loc in alive:
            self._manifests[loc] = {g: m
                                    for g, m in self._manifests[loc].items()
                                    if g >= cutoff}
            self._shards[loc] = {gk: rec
                                 for gk, rec in self._shards[loc].items()
                                 if gk[0] >= cutoff}

    # -- failure ------------------------------------------------------------

    def locality_lost(self, locality: int) -> int:
        """A locality died: its shard and manifests die with it.

        Idempotent; returns the number of block records wiped.
        """
        with self._lock:
            if locality not in self._alive:
                return 0
            self._alive.discard(locality)
            dropped = len(self._shards[locality])
            self._shards[locality] = {}
            self._manifests[locality] = {}
        if dropped:
            self.registry.increment("/resilience/ckpt/replicas-lost",
                                    float(dropped))
        return dropped

    @property
    def alive(self) -> set[int]:
        with self._lock:
            return set(self._alive)

    # -- recovery planning --------------------------------------------------

    def recovery_plan(self) -> tuple[ManifestRecord, dict]:
        """Newest globally-consistent verified generation, or raise.

        Scans generations newest-to-oldest: a candidate qualifies when its
        manifest survives (and verifies) on some live locality *and* every
        block named by the manifest has at least one surviving replica
        whose content matches its stamp.  Returns the manifest and a
        ``key -> holder locality`` map; raises
        :class:`~repro.resilience.checkpoint.CheckpointError` when no
        generation qualifies.
        """
        r = self.registry
        with self._lock:
            alive = sorted(self._alive)
            gens = sorted({g for loc in alive
                           for g in self._manifests[loc]}, reverse=True)
            for gen in gens:
                man = next((self._manifests[loc][gen] for loc in alive
                            if gen in self._manifests[loc]), None)
                if man is None or not man.verify():
                    r.increment("/resilience/ckpt/fallback")
                    continue
                holders: dict = {}
                saw_corrupt = False
                for key, crc in man.checksums.items():
                    holder = None
                    for loc in alive:
                        rec = self._shards[loc].get((gen, key))
                        if rec is None:
                            continue
                        if rec.checksum == crc and rec.verify():
                            holder = loc
                            break
                        saw_corrupt = True
                    if holder is None:
                        break
                    holders[key] = holder
                if len(holders) == len(man.checksums):
                    r.increment("/resilience/ckpt/verified")
                    return man, holders
                if saw_corrupt:
                    r.increment("/resilience/ckpt/corrupt")
                r.increment("/resilience/ckpt/fallback")
                trace.instant("generation-fallback", "resilience",
                              generation=gen)
        raise CheckpointError(
            "no globally-consistent verified generation survives the "
            "failures (manifest or last replica lost for every generation)")

    def fetch(self, manifest: ManifestRecord, holders: dict,
              destination: dict) -> dict:
        """Pull every block of a generation to its post-recovery owner.

        ``holders`` comes from :meth:`recovery_plan`; ``destination`` maps
        each key to the locality that will own it after the restart.
        Cross-locality pulls are charged holder→destination like any other
        one-sided transfer.  Returns ``key -> payload copy``.
        """
        out: dict = {}
        nbytes = 0
        transport = self.mesh.transport
        with self._lock:
            for key, holder in sorted(holders.items(),
                                      key=lambda kv: repr(kv[0])):
                rec = self._shards[holder][(manifest.generation, key)]
                dst = destination.get(key, holder)
                transport.charge_onesided(rec.payload.nbytes, holder, dst)
                out[key] = rec.payload.copy()
                nbytes += rec.payload.nbytes
        r = self.registry
        r.increment("/recovery/blocks-fetched", float(len(out)))
        r.increment("/recovery/bytes-fetched", float(nbytes))
        return out

    # -- adversary hooks (tests) --------------------------------------------

    def damage_copy(self, generation: int, key, locality: int) -> bool:
        """Flip one byte of a single replica (models per-node bit rot;
        the buddy's copy is untouched, so recovery should route around
        it).  Returns False when that shard holds no such record."""
        with self._lock:
            rec = self._shards.get(locality, {}).get((generation, key))
            if rec is None:
                return False
            rec.payload.view(np.uint8).reshape(-1)[0] ^= 0xFF
            return True

    def holdings(self, locality: int) -> list[tuple]:
        """The ``(generation, key)`` records a locality's shard holds."""
        with self._lock:
            return sorted(self._shards.get(locality, {}),
                          key=lambda gk: (gk[0], repr(gk[1])))


@dataclass
class RecoveryReport:
    """What one global rollback + elastic restart actually did."""

    generation: int
    step: int
    time: float
    survivors: list[int]
    blocks_fetched: int
    components_migrated: int
    components_restored: int
    new_owner: dict = field(default_factory=dict)

    def summary(self) -> str:
        return (f"rolled back to generation {self.generation} "
                f"(step {self.step}) on {len(self.survivors)} survivors "
                f"{self.survivors}: {self.blocks_fetched} blocks fetched, "
                f"{self.components_migrated} components migrated, "
                f"{self.components_restored} GIDs resurrected")


class RecoveryCoordinator:
    """Global rollback + elastic restart over a :class:`BuddyReplicatedStore`.

    Construction wires the manager's commit hook to the store, so every
    committed checkpoint is durable from then on.  The coordinator is
    consulted when localities fail: :meth:`needs_global_recovery` decides
    whether local evacuation suffices (at most ``evacuation_capacity``
    concurrent failures *and* no block's last copy destroyed) or the run
    must roll back globally; :meth:`recover` performs the rollback.
    """

    def __init__(self, mesh, manager: CheckpointManager,
                 store: BuddyReplicatedStore | None = None, *,
                 evacuation_capacity: int = 1,
                 registry: CounterRegistry | None = None):
        self.mesh = mesh
        self.manager = manager
        self.registry = registry or manager.registry
        self.store = store or BuddyReplicatedStore(
            mesh, keep=manager.keep, registry=self.registry)
        self.evacuation_capacity = evacuation_capacity
        self.rollbacks = 0
        manager.on_commit = self.store.replicate

    # -- policy -------------------------------------------------------------

    def lost_blocks(self) -> list:
        """Blocks whose GID currently resolves to a dead locality."""
        from ..runtime.agas import LocalityFailed
        lost = []
        for ip, gid in sorted(getattr(self.mesh, "gids", {}).items()):
            try:
                self.mesh.agas.resolve(gid)
            except LocalityFailed:
                lost.append(ip)
        return lost

    def needs_global_recovery(self, concurrent_failures: int = 0) -> bool:
        """Evacuation cannot mask this event: roll back globally?

        True when more localities failed at once than evacuation can
        absorb, or when some block's last live copy is already gone.
        """
        return (concurrent_failures > self.evacuation_capacity
                or bool(self.lost_blocks()))

    # -- recovery -----------------------------------------------------------

    def recover(self, monitor=None) -> RecoveryReport:
        """Roll every survivor back to the newest consistent generation
        and restart elastically on the remaining locality count.

        Steps: drop the dead localities' shards; plan (newest verified
        globally-consistent generation); remap ownership over the
        survivors via ``slab_partition`` (migrating live components,
        resurrecting lost GIDs); fetch payloads from surviving replicas;
        restore mesh state/time/step and truncate the monitor; reset the
        local manager (its records described a dead timeline) and re-seed
        durability with a fresh checkpoint of the restored state.
        """
        from ..core.distmesh import slab_partition

        mesh = self.mesh
        failed = mesh.agas.failed_localities
        for loc in sorted(failed):
            self.store.locality_lost(loc)
        survivors = sorted(set(range(mesh.n_localities)) - failed)
        if not survivors:
            raise CheckpointError("no locality survives; nothing to restart")

        manifest, holders = self.store.recovery_plan()
        ips = sorted(mesh.blocks)
        new_owner = {ip: survivors[slab_partition(i, len(ips),
                                                  len(survivors))]
                     for i, ip in enumerate(ips)}
        moves = mesh.apply_ownership(new_owner)
        payloads = self.store.fetch(manifest, holders, new_owner)
        for key, arr in payloads.items():
            if key == "U":
                mesh.U[...] = arr
            else:
                mesh.blocks[key][...] = arr
        mesh.time = manifest.time
        mesh.steps = manifest.step
        hook = getattr(mesh, "on_restore", None)
        if hook is not None:
            hook()
        if monitor is not None:
            del monitor.records[manifest.monitor_len:]

        # the local manager's records describe the abandoned timeline —
        # and possibly memory that died with the failed localities
        self.manager.reset()
        self.rollbacks += 1
        r = self.registry
        r.increment("/recovery/global-rollbacks")
        r.increment("/recovery/elastic-restarts")
        r.increment("/recovery/components-migrated",
                    float(moves["migrated"]))
        r.increment("/recovery/components-restored",
                    float(moves["restored"]))
        r.set_gauge("/recovery/generation", float(manifest.generation))
        r.set_gauge("/recovery/localities-remaining", float(len(survivors)))
        trace.instant("global-rollback", "resilience",
                      generation=manifest.generation, step=manifest.step,
                      survivors=len(survivors))
        # re-seed durability at the restored state so the next failure
        # does not have to reach back past this recovery point
        self.manager.save(mesh, monitor)
        return RecoveryReport(
            generation=manifest.generation, step=manifest.step,
            time=manifest.time, survivors=survivors,
            blocks_fetched=len(payloads),
            components_migrated=moves["migrated"],
            components_restored=moves["restored"],
            new_owner=new_owner)
