"""Supervised task execution: bounded re-execution of transient faults.

The retry layer (:mod:`repro.resilience.retry`) makes *parcel delivery*
reliable; this module does the same for the *compute* hot path.  A
:class:`SupervisedEngine` wraps an
:class:`~repro.core.exec.ExecutionEngine` and re-executes any task whose
future resolves with a transient fault — an injected
:class:`~repro.resilience.faults.TransientActionFault` (e.g. from a
poisoned CUDA stream) or a :class:`~repro.runtime.future.FutureTimeout` —
up to ``max_retries`` times before surfacing the failure.

The supervisor preserves the bitwise-replay property the acceptance tests
rely on: a retried task *recomputes into fresh buffers* (the kernel
function is pure — same args in, new output array out), and callers such
as :meth:`repro.core.gravity.fmm.FmmSolver.solve` and
:meth:`repro.core.mesh.BlockMesh._rhs_all` accumulate results by calling
``fut.get()`` in recorded script order.  A task that failed twice and
succeeded on the third attempt therefore contributes exactly the bytes it
would have contributed in a fault-free run — the accumulation order never
depends on *when* futures completed.

Supervision is fully asynchronous: retries are chained through future
callbacks (never a blocking wait inside the engine), so a retry posted
from a worker thread is just another task for the scheduler.  Placement
is re-decided per attempt — a task whose stream was quarantined after its
failure overflows to the CPU or another stream on retry, which is how
stream quarantine and task re-execution compose in the chaos run.

An optional :class:`~repro.resilience.faults.FaultInjector` makes the
supervisor its own adversary: each attempt first consults
``injector.maybe_action_fault()``, modelling transient failures *inside*
task execution (distinct from the receive-side faults the parcel layer
injects).  With a finite ``max_action_faults`` budget every injected
fault is transient by construction.

Re-execution is the *local* recovery tier.  A failure the supervisor
cannot retry away — a :class:`~repro.runtime.agas.LocalityFailed` from a
dead node, or a transient budget exhausted — is **escalated**: the
optional ``escalate`` callback fires (before the exception surfaces
through the task's future) so a
:class:`~repro.resilience.durability.RecoveryCoordinator` can decide
whether the run needs a global rollback rather than another retry.

Counters: ``/resilience/tasks/submitted``, ``/resilience/tasks/retried``,
``/resilience/tasks/recovered`` (tasks that ultimately succeeded after at
least one retry), ``/resilience/tasks/gave-up`` and
``/resilience/tasks/escalated``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..core.exec import ExecutionEngine
from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry
from ..runtime.future import Future, FutureTimeout, Promise
from .faults import FaultInjector, TransientActionFault

__all__ = ["SupervisedEngine", "DEFAULT_TASK_RETRIES"]

#: re-execution budget per task (attempts = 1 + retries)
DEFAULT_TASK_RETRIES = 3


class SupervisedEngine:
    """An :class:`~repro.core.exec.ExecutionEngine` with task supervision.

    Drop-in for the engine everywhere one is accepted (``Mesh``,
    ``BlockMesh``, ``FmmSolver.solve``): exposes the same ``submit`` /
    ``map`` / ``synchronize`` / ``publish_counters`` surface and the same
    ``scheduler`` / ``devices`` / ``pool`` attributes.

    Parameters
    ----------
    engine:
        The engine to wrap; built from ``scheduler``/``device``/``devices``
        when omitted.
    injector:
        Optional fault injector consulted once per *attempt* (transient
        execution faults, budget-bounded).
    max_retries:
        Re-executions allowed per task after the first attempt.
    transient:
        Exception types worth re-executing; anything else (application
        errors, cancelled futures, failed localities) surfaces unchanged
        on the first attempt.
    escalate:
        Optional ``callback(exc, args, attempt)`` invoked for every
        *permanent* failure (non-transient, or transient budget
        exhausted) before it surfaces through the task's future — the
        hand-off point to a global recovery layer.  Escalation observes;
        it must not raise (a raising callback is tallied under
        ``/resilience/tasks/escalation-errors`` and otherwise ignored).
    """

    def __init__(self, engine: ExecutionEngine | None = None, *,
                 scheduler=None, device=None, devices=None,
                 injector: FaultInjector | None = None,
                 max_retries: int = DEFAULT_TASK_RETRIES,
                 transient: tuple[type[BaseException], ...] = (
                     TransientActionFault, FutureTimeout),
                 escalate: Callable[[BaseException, tuple, int], None]
                     | None = None,
                 registry: CounterRegistry | None = None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if engine is None:
            engine = ExecutionEngine(scheduler=scheduler, device=device,
                                     devices=devices, registry=registry)
        elif scheduler is not None or device is not None or devices:
            raise ValueError("pass either an engine or resources, not both")
        self.engine = engine
        self.injector = injector
        self.max_retries = max_retries
        self.transient = transient
        self.escalate = escalate
        self.registry = registry or engine.registry or default_registry()

    # -- engine surface ------------------------------------------------------

    @property
    def scheduler(self):
        return self.engine.scheduler

    @property
    def devices(self):
        return self.engine.devices

    @property
    def pool(self):
        return self.engine.pool

    @property
    def gpu_fraction(self) -> float:
        return self.engine.gpu_fraction

    def synchronize(self) -> None:
        self.engine.synchronize()

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        self.engine.publish_counters(registry)

    # -- supervised dispatch -------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any,
               use_device: bool = True) -> Future:
        """Run ``fn(*args)`` with supervision; returns a future."""
        return self.map(fn, [args], use_device=use_device)[0]

    def map(self, fn: Callable[..., Any], argtuples: Sequence[tuple],
            use_device: bool = True) -> list[Future]:
        """Dispatch every tuple through the wrapped engine; futures in
        input order.  The first attempt keeps the engine's batched fan-out
        (one scheduler post for the whole batch); retries are resubmitted
        individually as they fail."""
        argtuples = [tuple(a) for a in argtuples]
        run = fn if self.injector is None \
            else (lambda *a: self._run_injected(fn, a))
        self.registry.increment("/resilience/tasks/submitted",
                                float(len(argtuples)))
        promises = [Promise() for _ in argtuples]
        inner = self.engine.map(run, argtuples, use_device=use_device)
        for args, pr, fut in zip(argtuples, promises, inner):
            self._supervise(run, args, use_device, pr, fut, attempt=1)
        return [p.get_future() for p in promises]

    def _run_injected(self, fn: Callable[..., Any], args: tuple) -> Any:
        exc = self.injector.maybe_action_fault()
        if exc is not None:
            raise exc
        return fn(*args)

    def _supervise(self, run, args, use_device, promise: Promise,
                   fut: Future, attempt: int) -> None:
        fut.then(lambda f: self._on_done(f, run, args, use_device,
                                         promise, attempt))

    def _on_done(self, fut: Future, run, args, use_device,
                 promise: Promise, attempt: int) -> None:
        r = self.registry
        if not fut.has_exception():
            if attempt > 1:
                r.increment("/resilience/tasks/recovered")
            promise.set_value(fut.get())
            return
        try:
            fut.get(timeout=0.0)
            exc: BaseException = RuntimeError("unreachable")
        except BaseException as caught:
            exc = caught
        if isinstance(exc, self.transient) and attempt <= self.max_retries:
            r.increment("/resilience/tasks/retried")
            if trace.TRACING:
                trace.instant("task-retry", "resilience", attempt=attempt)
            # fresh buffers: the task recomputes from its original args;
            # placement is re-decided (a quarantined stream is skipped)
            refut = self.engine.map(run, [args], use_device=use_device)[0]
            self._supervise(run, args, use_device, promise, refut,
                            attempt + 1)
            return
        if isinstance(exc, self.transient):
            r.increment("/resilience/tasks/gave-up")
            if trace.TRACING:
                trace.instant("task-gave-up", "resilience", attempt=attempt)
        if self.escalate is not None:
            r.increment("/resilience/tasks/escalated")
            if trace.TRACING:
                trace.instant("task-escalated", "resilience",
                              attempt=attempt, exc=type(exc).__name__)
            try:
                self.escalate(exc, args, attempt)
            except BaseException:
                # the task's future must still complete with the original
                # failure; a broken escalation path may not eat it
                r.increment("/resilience/tasks/escalation-errors")
        promise.set_exception(exc)
