"""Distributed V1309 merger: the real physics sharded over localities.

This is the end-to-end driver for :class:`~repro.core.distmesh.DistBlockMesh`:
the Sec. 4.2 contact-binary merger (SCF-initialized, self-gravitating,
rotating frame) is run twice on identical initial data —

* **reference**: the node-level :class:`~repro.core.mesh.BlockMesh`
  (all blocks in one locality, no parcelport);
* **distributed**: blocks sharded over ``n_localities`` as AGAS
  components, halos charged through the parcelport and delivered in a
  seeded shuffled order, the whole run supervised — a
  :class:`~repro.resilience.supervisor.SupervisedEngine` re-executes
  faulted tasks, a :class:`~repro.resilience.checkpoint.CheckpointManager`
  snapshots every ``checkpoint_interval`` steps, and a phi-accrual
  :class:`~repro.resilience.health.FailureDetector` watches heartbeats on
  a deterministic event clock.

Optionally one locality goes **silent** mid-merger: the detector notices
(no manual ``fail_locality`` anywhere), AGAS evacuates the victim's block
components (their GIDs stay valid, ownership moves to survivors), the
harness clobbers the victim's block arrays with NaN — the data a real
node death takes with it — and the run rolls back to the latest
checkpoint and replays.  The acceptance bar, asserted by the integration
test and reported by ``examples/distributed_merger.py``:

* the distributed final state is **byte-identical** to the reference,
  with and without the failure;
* the conservation-drift reports are identical record for record;
* the counters reconcile: ``/distmesh/halo/sets == /distmesh/halo/gets``
  and every cross-locality halo was charged to the halo parcelport
  (transport tallies == ``/parcels/halo:<port>/*`` tallies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime.counters import CounterRegistry
from ..simulator.events import EventQueue
from .checkpoint import CheckpointManager
from .durability import RecoveryCoordinator, RecoveryReport
from .faults import FaultInjector
from .health import FailureDetector
from .supervisor import SupervisedEngine

__all__ = ["DistributedMergerConfig", "DistributedMergerResult",
           "run_distributed_merger",
           "RecoveryMergerConfig", "RecoveryMergerResult",
           "run_recovery_merger"]


@dataclass(frozen=True)
class DistributedMergerConfig:
    """Knobs of the distributed run; defaults are the CI smoke settings."""

    #: merger problem size (cells per edge; must be a multiple of the
    #: sub-grid edge, with a power-of-two block count for self-gravity)
    M: int = 16
    scf_iters: int = 12
    steps: int = 3
    t_end: float = 1.0
    # -- distribution --
    n_localities: int = 4
    port: str = "libfabric"
    #: seeded out-of-order delivery of remote halos (None: in-order)
    reorder_seed: int | None = 1309
    # -- mid-run locality failure (None: fault-free) --
    kill_locality: int | None = 2
    #: silence the victim once this many steps have completed
    kill_after_steps: int = 2
    heartbeat_interval: float = 0.25
    phi_threshold: float = 3.0
    #: simulation seconds the event clock advances per merger step
    sim_seconds_per_step: float = 2.0
    #: event-clock horizon (s) to wait for detection after the silence
    detect_horizon: float = 64.0
    # -- supervision --
    checkpoint_interval: int = 1
    n_cpu_workers: int = 2


@dataclass
class DistributedMergerResult:
    """Everything the acceptance test asserts and the example reports."""

    config: DistributedMergerConfig
    reference: object          # node-level BlockMesh
    dist: object               # DistBlockMesh
    ref_monitor: object        # ConservationMonitor
    dist_monitor: object       # ConservationMonitor
    registry: CounterRegistry
    detector: FailureDetector | None
    checkpoints: CheckpointManager
    killed_locality: int | None = None
    evacuated: list = field(default_factory=list)
    lost: list = field(default_factory=list)

    @property
    def bitwise_identical(self) -> bool:
        return np.array_equal(self.reference.gather_interior(),
                              self.dist.gather_interior())

    @property
    def reports_identical(self) -> bool:
        return self.ref_monitor.report() == self.dist_monitor.report()

    @property
    def counters_reconcile(self) -> bool:
        snap = self.registry.snapshot()
        sets = snap.get("/distmesh/halo/sets", 0.0)
        gets = snap.get("/distmesh/halo/gets", 0.0)
        return (sets == gets and sets > 0
                and self.dist.transport.reconciles())

    def summary(self) -> str:
        """Human-readable outcome digest for the example / CI log."""
        cfg = self.config
        st = self.dist.transport.stats
        blocks = self.dist.locality_blocks()
        detected = (sorted(self.detector.declared_failed)
                    if self.detector is not None else [])
        lines = [
            "distributed merger outcome",
            "--------------------------",
            f"steps completed         : {self.dist.steps}",
            f"bitwise identical state : {self.bitwise_identical}",
            f"identical drift report  : {self.reports_identical}",
            f"counters reconcile      : {self.counters_reconcile}",
            "",
            f"localities              : {cfg.n_localities} "
            f"(blocks: {blocks})",
            f"killed / detected       : {self.killed_locality} / {detected}",
            f"evacuated blocks        : {len(self.evacuated)} "
            f"(lost: {len(self.lost)})",
            f"checkpoint restores     : {self.checkpoints.restores}",
            "",
            f"halo traffic ({self.dist.transport.port.name})",
            f"  local  : {st.local_msgs} msgs, {st.local_bytes} B",
            f"  remote : {st.remote_msgs} msgs, {st.remote_bytes} B "
            f"({st.reordered} delivered out of order)",
            f"   1-sided: {st.onesided_msgs} msgs, {st.onesided_bytes} B",
            f"  path    : eager={st.eager} rendezvous={st.rendezvous} "
            f"rma={st.rma}",
        ]
        return "\n".join(lines)


def run_distributed_merger(config: DistributedMergerConfig | None = None,
                           registry: CounterRegistry | None = None
                           ) -> DistributedMergerResult:
    """Run the node-level reference and the supervised distributed merger.

    Both meshes are loaded from one SCF solve, so their initial data is
    bitwise-equal by construction.  Pass a fresh
    :class:`CounterRegistry` (the default) when asserting on counter
    reconciliation; ``default_registry()`` works but accumulates across
    runs.
    """
    # imported here, not at module top: repro.core.stepper imports from
    # this package, so a module-level import would be circular
    from ..core.distmesh import DistBlockMesh
    from ..core.exec import ExecutionEngine
    from ..core.mesh import SUBGRID_N, BlockMesh
    from ..core.scenario import v1309_binary
    from ..core.stepper import ConservationMonitor, evolve
    from ..runtime.scheduler import WorkStealingScheduler

    cfg = config or DistributedMergerConfig()
    registry = registry if registry is not None else CounterRegistry()
    if cfg.M % SUBGRID_N:
        raise ValueError(f"M={cfg.M} is not a multiple of the sub-grid "
                         f"edge {SUBGRID_N}")
    bpe = cfg.M // SUBGRID_N

    src = v1309_binary(M=cfg.M, scf_iters=cfg.scf_iters)
    mesh_kwargs = dict(domain=src.domain, origin=src.origin,
                       options=src.options, bc=src.bc, self_gravity=True)

    reference = BlockMesh(bpe, **mesh_kwargs)
    reference.load_interior(src.interior)
    dist = DistBlockMesh(bpe, n_localities=cfg.n_localities, port=cfg.port,
                         reorder_seed=cfg.reorder_seed, registry=registry,
                         **mesh_kwargs)
    dist.load_interior(src.interior)
    if not np.array_equal(reference.gather_interior(),
                          dist.gather_interior()):
        raise RuntimeError("reference and distributed initial data differ")

    # the fault-free node-level reference
    ref_monitor = evolve(reference, t_end=cfg.t_end, max_steps=cfg.steps)

    # supervision: checkpoints + phi-accrual detection on the event clock
    events = EventQueue()
    detector = FailureDetector(
        dist.agas, events, heartbeat_interval=cfg.heartbeat_interval,
        phi_threshold=cfg.phi_threshold, registry=registry)
    detector.start()
    checkpoints = CheckpointManager(interval=cfg.checkpoint_interval,
                                    keep=4, registry=registry)
    dist_monitor = ConservationMonitor()

    state = {"killed": False, "evacuated": [], "lost": []}

    def per_step(mesh) -> None:
        events.run(until=events.now + cfg.sim_seconds_per_step)
        if (state["killed"] or cfg.kill_locality is None
                or mesh.steps < cfg.kill_after_steps):
            return
        state["killed"] = True
        victim = cfg.kill_locality
        victim_blocks = [ip for ip, loc in mesh.owners().items()
                         if loc == victim]
        # the node goes silent; the detector must notice on its own
        detector.silence(victim)
        horizon = 0.0
        while (victim not in detector.declared_failed
               and horizon < cfg.detect_horizon):
            events.run(until=events.now + 1.0)
            horizon += 1.0
        if victim not in detector.declared_failed:
            raise RuntimeError(
                f"locality {victim} silent but never declared failed "
                f"within {cfg.detect_horizon}s of event time")
        state["evacuated"] = [mesh.gids[ip] for ip in victim_blocks]
        # the dead node's memory is gone: clobber what it hosted, then
        # roll back to the latest checkpoint and replay on the survivors
        for ip in victim_blocks:
            mesh.blocks[ip][...] = np.nan
        checkpoints.restore_latest(mesh, dist_monitor)

    with WorkStealingScheduler(cfg.n_cpu_workers) as sched:
        engine = SupervisedEngine(
            ExecutionEngine(scheduler=sched, registry=registry),
            registry=registry)
        dist.engine = engine
        evolve(dist, t_end=cfg.t_end, max_steps=cfg.steps,
               monitor=dist_monitor, callback=per_step,
               checkpoints=checkpoints)
        engine.synchronize()
    detector.stop()
    dist.publish_counters(registry)

    return DistributedMergerResult(
        config=cfg, reference=reference, dist=dist,
        ref_monitor=ref_monitor, dist_monitor=dist_monitor,
        registry=registry, detector=detector, checkpoints=checkpoints,
        killed_locality=cfg.kill_locality if state["killed"] else None,
        evacuated=state["evacuated"], lost=state["lost"])


# ---------------------------------------------------------------------------
# durable recovery demo: correlated multi-locality failure + elastic restart
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryMergerConfig:
    """Knobs of the durable-recovery run; defaults are the CI soak settings.

    The scripted disaster: ``kill_localities`` go silent *together* after
    ``kill_after_steps`` steps — more concurrent failures than the
    evacuation capacity absorbs, so their blocks' GIDs are lost, not
    evacuated — and the newest checkpoint at kill time was silently
    corrupted on its way to the store (``corrupt_save_index``).  The run
    must roll back to the newest *verified* generation, restart
    elastically on the survivors, and still finish byte-identical.

    The default victims ``(1, 3)`` are deliberately non-adjacent: buddy
    replication places each block's copy on the *next* surviving
    locality, so losing an owner together with its buddy (an adjacent
    pair) destroys both copies — the unrecoverable case, like losing
    both halves of a RAID mirror.
    """

    M: int = 16
    scf_iters: int = 12
    steps: int = 3
    t_end: float = 1.0
    # -- distribution --
    n_localities: int = 4
    port: str = "libfabric"
    reorder_seed: int | None = 1309
    # -- the correlated failure --
    kill_localities: tuple[int, ...] = (1, 3)
    kill_after_steps: int = 2
    evacuation_capacity: int = 1
    # -- the corrupted checkpoint (save index; evolve saves at step 0,
    #    then after every step, so index 1 is the newest at kill time) --
    corrupt_save_index: int | None = 1
    #: torn-write save indices (none by default; the soak test adds some)
    torn_save_indices: tuple[int, ...] = ()
    fault_seed: int = 1309
    # -- degraded network while recovering (chaos soak) --
    loss_rate: float = 0.0
    delay_rate: float = 0.0
    # -- detection --
    heartbeat_interval: float = 0.25
    phi_threshold: float = 3.0
    sim_seconds_per_step: float = 2.0
    detect_horizon: float = 64.0
    # -- supervision --
    checkpoint_interval: int = 1
    keep_generations: int = 4
    n_cpu_workers: int = 2


@dataclass
class RecoveryMergerResult:
    """Everything the recovery acceptance test asserts and CI reports."""

    config: RecoveryMergerConfig
    reference: object
    dist: object
    ref_monitor: object
    dist_monitor: object
    registry: CounterRegistry
    detector: FailureDetector
    coordinator: RecoveryCoordinator
    injector: FaultInjector
    report: RecoveryReport | None = None
    killed: list = field(default_factory=list)
    escalations: int = 0

    @property
    def bitwise_identical(self) -> bool:
        return np.array_equal(self.reference.gather_interior(),
                              self.dist.gather_interior())

    @property
    def reports_identical(self) -> bool:
        return self.ref_monitor.report() == self.dist_monitor.report()

    @property
    def counters_reconcile(self) -> bool:
        """Halo sets==gets, parcelport tallies match the transport, and
        the checkpoint-store counters tell the scripted story exactly:
        every committed save was verified-or-skipped coherently."""
        snap = self.registry.snapshot()
        sets = snap.get("/distmesh/halo/sets", 0.0)
        gets = snap.get("/distmesh/halo/gets", 0.0)
        if not (sets == gets and sets > 0 and self.dist.transport.reconciles()):
            return False
        # ckpt ledger: exactly one global verification per rollback, and
        # every generation passed over on the way is tallied as fallback
        rollbacks = snap.get("/recovery/global-rollbacks", 0.0)
        verified = snap.get("/resilience/ckpt/verified", 0.0)
        return verified >= rollbacks >= 1.0

    def summary(self) -> str:
        cfg = self.config
        snap = self.registry.snapshot()
        st = self.dist.transport.stats
        rep = self.report
        lines = [
            "durable recovery outcome",
            "------------------------",
            f"steps completed         : {self.dist.steps}",
            f"bitwise identical state : {self.bitwise_identical}",
            f"identical drift report  : {self.reports_identical}",
            f"counters reconcile      : {self.counters_reconcile}",
            "",
            f"killed / detected       : {self.killed} / "
            f"{sorted(self.detector.declared_failed)}",
            f"global rollback         : "
            f"{rep.summary() if rep is not None else '(not triggered)'}",
            f"task escalations        : {self.escalations}",
            "",
            "checkpoint store",
            f"  saves / replicas      : "
            f"{snap.get('/resilience/checkpoint/saves', 0):.0f} / "
            f"{snap.get('/resilience/ckpt/replicas', 0):.0f}",
            f"  verified / corrupt    : "
            f"{snap.get('/resilience/ckpt/verified', 0):.0f} / "
            f"{snap.get('/resilience/ckpt/corrupt', 0):.0f}",
            f"  fallbacks / torn      : "
            f"{snap.get('/resilience/ckpt/fallback', 0):.0f} / "
            f"{snap.get('/resilience/ckpt/torn', 0):.0f}",
            f"  replicas lost         : "
            f"{snap.get('/resilience/ckpt/replicas-lost', 0):.0f}",
            f"  blocks re-fetched     : "
            f"{snap.get('/recovery/blocks-fetched', 0):.0f} "
            f"({snap.get('/recovery/bytes-fetched', 0):.0f} B)",
            "",
            f"halo traffic ({self.dist.transport.port.name})",
            f"  local  : {st.local_msgs} msgs, {st.local_bytes} B",
            f"  remote : {st.remote_msgs} msgs, {st.remote_bytes} B "
            f"({st.reordered} delivered out of order)",
            f"   1-sided: {st.onesided_msgs} msgs, {st.onesided_bytes} B",
            f"  path    : eager={st.eager} rendezvous={st.rendezvous} "
            f"rma={st.rma}",
        ]
        return "\n".join(lines)


def run_recovery_merger(config: RecoveryMergerConfig | None = None,
                        registry: CounterRegistry | None = None
                        ) -> RecoveryMergerResult:
    """Run the reference and the durably-checkpointed distributed merger
    through a correlated multi-locality failure.

    The distributed run checkpoints every step through a
    :class:`~repro.resilience.checkpoint.CheckpointManager` whose commits
    are buddy-replicated by a :class:`RecoveryCoordinator`; a seeded
    :class:`FaultInjector` corrupts the newest record at kill time.  When
    the victims go silent the phi-accrual detector declares them (no
    evacuation — the failure exceeds capacity, so their GIDs are *lost*),
    the coordinator rolls everything back to the newest verified
    generation, remaps ownership over the survivors, resurrects the lost
    GIDs, and the run replays to completion.
    """
    from ..core.distmesh import DistBlockMesh
    from ..core.exec import ExecutionEngine
    from ..core.mesh import SUBGRID_N, BlockMesh
    from ..core.scenario import v1309_binary
    from ..core.stepper import ConservationMonitor, evolve
    from ..runtime.scheduler import WorkStealingScheduler

    cfg = config or RecoveryMergerConfig()
    registry = registry if registry is not None else CounterRegistry()
    if cfg.M % SUBGRID_N:
        raise ValueError(f"M={cfg.M} is not a multiple of the sub-grid "
                         f"edge {SUBGRID_N}")
    if len(set(cfg.kill_localities)) != len(cfg.kill_localities):
        raise ValueError("kill_localities must be distinct")
    if len(cfg.kill_localities) >= cfg.n_localities:
        raise ValueError("at least one locality must survive")
    bpe = cfg.M // SUBGRID_N

    src = v1309_binary(M=cfg.M, scf_iters=cfg.scf_iters)
    mesh_kwargs = dict(domain=src.domain, origin=src.origin,
                       options=src.options, bc=src.bc, self_gravity=True)

    reference = BlockMesh(bpe, **mesh_kwargs)
    reference.load_interior(src.interior)
    dist = DistBlockMesh(bpe, n_localities=cfg.n_localities, port=cfg.port,
                         reorder_seed=cfg.reorder_seed, registry=registry,
                         **mesh_kwargs)
    dist.load_interior(src.interior)
    if not np.array_equal(reference.gather_interior(),
                          dist.gather_interior()):
        raise RuntimeError("reference and distributed initial data differ")

    ref_monitor = evolve(reference, t_end=cfg.t_end, max_steps=cfg.steps)

    # the adversary: silent corruption of scheduled checkpoint saves
    # (plus optional torn writes and degraded-network loss/delay)
    injector = FaultInjector(
        cfg.fault_seed,
        corrupt_ckpt_at_saves=((cfg.corrupt_save_index,)
                               if cfg.corrupt_save_index is not None else ()),
        torn_write_at_saves=cfg.torn_save_indices,
        loss_rate=cfg.loss_rate, delay_rate=cfg.delay_rate,
        registry=registry)

    events = EventQueue()
    # evacuate=False: the scripted failure is a *correlated* one, beyond
    # the single-locality evacuation capacity — AGAS must lose the
    # victims' GIDs so the durable-recovery path (restore_component) is
    # what brings them back
    detector = FailureDetector(
        dist.agas, events, heartbeat_interval=cfg.heartbeat_interval,
        phi_threshold=cfg.phi_threshold, evacuate=False, registry=registry)
    detector.start()
    checkpoints = CheckpointManager(interval=cfg.checkpoint_interval,
                                    keep=cfg.keep_generations,
                                    registry=registry, injector=injector)
    dist_monitor = ConservationMonitor()
    coordinator = RecoveryCoordinator(
        dist, checkpoints, evacuation_capacity=cfg.evacuation_capacity,
        registry=registry)

    state = {"killed": False, "report": None, "escalations": 0}

    def escalate(exc, args, attempt) -> None:
        state["escalations"] += 1

    def per_step(mesh) -> None:
        events.run(until=events.now + cfg.sim_seconds_per_step)
        if (state["killed"] or not cfg.kill_localities
                or mesh.steps < cfg.kill_after_steps):
            return
        state["killed"] = True
        victims = list(cfg.kill_localities)
        victim_blocks = [ip for ip, loc in mesh.owners().items()
                         if loc in victims]
        # the correlated failure: every victim goes silent in the same
        # heartbeat window; the detector must find them all on its own
        for victim in victims:
            detector.silence(victim)
        horizon = 0.0
        while (not all(v in detector.declared_failed for v in victims)
               and horizon < cfg.detect_horizon):
            events.run(until=events.now + 1.0)
            horizon += 1.0
        missing = [v for v in victims if v not in detector.declared_failed]
        if missing:
            raise RuntimeError(
                f"localities {missing} silent but never declared failed "
                f"within {cfg.detect_horizon}s of event time")
        # dead memory: the victims' block arrays and checkpoint shards
        # are gone; only the surviving replicas can restore them
        for ip in victim_blocks:
            mesh.blocks[ip][...] = np.nan
        if not coordinator.needs_global_recovery(len(victims)):
            raise RuntimeError("scripted failure should exceed evacuation "
                               "capacity; check the config")
        state["report"] = coordinator.recover(dist_monitor)

    with WorkStealingScheduler(cfg.n_cpu_workers) as sched:
        engine = SupervisedEngine(
            ExecutionEngine(scheduler=sched, registry=registry),
            escalate=escalate, registry=registry)
        dist.engine = engine
        evolve(dist, t_end=cfg.t_end, max_steps=cfg.steps,
               monitor=dist_monitor, callback=per_step,
               checkpoints=checkpoints)
        engine.synchronize()
    detector.stop()
    dist.publish_counters(registry)

    return RecoveryMergerResult(
        config=cfg, reference=reference, dist=dist,
        ref_monitor=ref_monitor, dist_monitor=dist_monitor,
        registry=registry, detector=detector, coordinator=coordinator,
        injector=injector, report=state["report"],
        killed=list(cfg.kill_localities) if state["killed"] else [],
        escalations=state["escalations"])
