"""Periodic checkpoint/restore of mesh state.

The conservation results of Sec. 4.2/4.3 (mass and angular momentum to
machine precision) are only worth having if a fault mid-run does not force
a restart from t=0.  A :class:`CheckpointManager` snapshots the *complete*
evolution state of a mesh — the conserved-variable array ``U`` (ghosts
included), the simulation time and the step counter, plus the length of
the conservation monitor's record list — every ``interval`` steps.  A
restore copies the arrays back bit-for-bit and truncates the monitor, so a
run that fails and restores produces a state stream *identical* to the
fault-free run: same dt sequence, same floating-point operations, same
drifts.  That bitwise-replay property is what the resilience acceptance
test asserts.

Checkpoints live in memory (``keep`` most recent are retained; the model
has no node-local disk to lose).  Saves and restores are tallied under
``/resilience/checkpoint/...`` and emit trace instants.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry

__all__ = ["CheckpointError", "MeshCheckpoint", "CheckpointManager"]


class CheckpointError(RuntimeError):
    """Raised when a restore is requested but no checkpoint exists."""


@dataclass(frozen=True)
class MeshCheckpoint:
    """A frozen snapshot of a mesh's evolution state."""

    step: int
    time: float
    U: np.ndarray
    monitor_len: int

    @property
    def nbytes(self) -> int:
        return self.U.nbytes


class CheckpointManager:
    """Keeps the ``keep`` most recent snapshots of one mesh's state.

    Works with any object exposing ``U`` (ndarray), ``time`` (float) and
    ``steps`` (int) — i.e. :class:`repro.core.mesh.Mesh`; the optional
    monitor argument is a
    :class:`repro.core.stepper.ConservationMonitor` whose record list is
    truncated on restore so post-restore samples line up with the replay.
    """

    def __init__(self, interval: int = 10, keep: int = 2,
                 registry: CounterRegistry | None = None):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.interval = interval
        self.keep = keep
        self.registry = registry or default_registry()
        self._lock = threading.Lock()
        self._checkpoints: list[MeshCheckpoint] = []
        self.saves = 0
        self.restores = 0

    # -- saving -------------------------------------------------------------

    def save(self, mesh, monitor=None) -> MeshCheckpoint:
        """Snapshot ``mesh`` now (regardless of the interval)."""
        cp = MeshCheckpoint(
            step=mesh.steps, time=mesh.time, U=mesh.U.copy(),
            monitor_len=len(monitor.records) if monitor is not None else 0)
        with self._lock:
            self._checkpoints.append(cp)
            del self._checkpoints[:-self.keep]
            self.saves += 1
        r = self.registry
        r.increment("/resilience/checkpoint/saves")
        r.increment("/resilience/checkpoint/bytes-saved", float(cp.nbytes))
        trace.instant("checkpoint-save", "resilience", step=cp.step)
        return cp

    def maybe_save(self, mesh, monitor=None) -> MeshCheckpoint | None:
        """Snapshot if ``interval`` steps have passed since the last one."""
        with self._lock:
            last = self._checkpoints[-1].step if self._checkpoints else None
        if last is not None and mesh.steps - last < self.interval:
            return None
        return self.save(mesh, monitor)

    # -- restoring ----------------------------------------------------------

    def restore_latest(self, mesh, monitor=None) -> MeshCheckpoint:
        """Roll ``mesh`` (and ``monitor``) back to the newest checkpoint."""
        with self._lock:
            if not self._checkpoints:
                raise CheckpointError("no checkpoint to restore from")
            cp = self._checkpoints[-1]
            self.restores += 1
        mesh.U[...] = cp.U
        mesh.time = cp.time
        mesh.steps = cp.step
        if monitor is not None:
            del monitor.records[cp.monitor_len:]
        self.registry.increment("/resilience/checkpoint/restores")
        trace.instant("checkpoint-restore", "resilience", step=cp.step)
        return cp

    # -- introspection ------------------------------------------------------

    @property
    def latest(self) -> MeshCheckpoint | None:
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
