"""Periodic checkpoint/restore of mesh state.

The conservation results of Sec. 4.2/4.3 (mass and angular momentum to
machine precision) are only worth having if a fault mid-run does not force
a restart from t=0.  A :class:`CheckpointManager` snapshots the *complete*
evolution state of a mesh — for a single-block
:class:`~repro.core.mesh.Mesh` the conserved-variable array ``U`` (ghosts
included), for a :class:`~repro.core.mesh.BlockMesh` every per-sub-grid
block — plus the simulation time and the step counter, and the length of
the conservation monitor's record list — every ``interval`` steps.  A
restore copies the arrays back bit-for-bit and truncates the monitor, so a
run that fails and restores produces a state stream *identical* to the
fault-free run: same dt sequence, same floating-point operations, same
drifts.  That bitwise-replay property is what the resilience acceptance
tests assert, on both the serial and the futurized path.

After copying state back, a restore invokes the mesh's optional
``on_restore()`` hook — :class:`~repro.core.mesh.BlockMesh` uses it to
reset its halo channels, whose generation numbers are derived from the
step counter and would otherwise reject the replayed generations.

Checkpoints live in memory (``keep`` most recent are retained; the model
has no node-local disk to lose).  Saves and restores are tallied under
``/resilience/checkpoint/...`` and emit trace instants.

The interval check in :meth:`CheckpointManager.maybe_save` and the
append in :meth:`CheckpointManager.save` are one atomic claim: two worker
threads asking at the same step cannot double-save it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry
from ..sanitize import lockdep as _sanitize_lockdep

__all__ = ["CheckpointError", "MeshCheckpoint", "CheckpointManager"]


class CheckpointError(RuntimeError):
    """Raised when a restore is requested but no checkpoint exists."""


@dataclass(frozen=True)
class MeshCheckpoint:
    """A frozen snapshot of a mesh's evolution state.

    Exactly one of ``U`` (single-block :class:`~repro.core.mesh.Mesh`) or
    ``blocks`` (per-sub-grid state of a :class:`~repro.core.mesh.BlockMesh`)
    is populated.
    """

    step: int
    time: float
    U: np.ndarray | None
    monitor_len: int
    blocks: dict[tuple[int, int, int], np.ndarray] | None = field(
        default=None)

    @property
    def nbytes(self) -> int:
        if self.blocks is not None:
            return sum(b.nbytes for b in self.blocks.values())
        return self.U.nbytes if self.U is not None else 0


class CheckpointManager:
    """Keeps the ``keep`` most recent snapshots of one mesh's state.

    Works with any object exposing ``time`` (float), ``steps`` (int) and
    either ``U`` (ndarray — :class:`repro.core.mesh.Mesh`) or ``blocks``
    (dict of per-sub-grid ndarrays — :class:`repro.core.mesh.BlockMesh`);
    the optional monitor argument is a
    :class:`repro.core.stepper.ConservationMonitor` whose record list is
    truncated on restore so post-restore samples line up with the replay.
    """

    def __init__(self, interval: int = 10, keep: int = 2,
                 registry: CounterRegistry | None = None):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.interval = interval
        self.keep = keep
        self.registry = registry or default_registry()
        self._lock = _sanitize_lockdep.make_lock("checkpoint.manager")
        self._checkpoints: list[MeshCheckpoint] = []
        #: step of the newest save (claimed atomically in maybe_save so
        #: concurrent callers cannot double-save one step)
        self._last_saved_step: int | None = None
        self.saves = 0
        self.restores = 0

    # -- saving -------------------------------------------------------------

    @staticmethod
    def _snapshot(mesh, monitor) -> MeshCheckpoint:
        monitor_len = len(monitor.records) if monitor is not None else 0
        blocks = getattr(mesh, "blocks", None)
        if blocks is not None:
            return MeshCheckpoint(
                step=mesh.steps, time=mesh.time, U=None,
                monitor_len=monitor_len,
                blocks={ip: blk.copy() for ip, blk in blocks.items()})
        return MeshCheckpoint(step=mesh.steps, time=mesh.time,
                              U=mesh.U.copy(), monitor_len=monitor_len)

    def _store(self, cp: MeshCheckpoint) -> MeshCheckpoint:
        with self._lock:
            self._checkpoints.append(cp)
            del self._checkpoints[:-self.keep]
            self.saves += 1
        r = self.registry
        r.increment("/resilience/checkpoint/saves")
        r.increment("/resilience/checkpoint/bytes-saved", float(cp.nbytes))
        trace.instant("checkpoint-save", "resilience", step=cp.step)
        return cp

    def save(self, mesh, monitor=None) -> MeshCheckpoint:
        """Snapshot ``mesh`` now (regardless of the interval)."""
        with self._lock:
            self._last_saved_step = mesh.steps
        return self._store(self._snapshot(mesh, monitor))

    def maybe_save(self, mesh, monitor=None) -> MeshCheckpoint | None:
        """Snapshot if ``interval`` steps have passed since the last one.

        The interval check and the claim of the step are one atomic
        operation: when several worker threads reach the same step, exactly
        one performs the save (the old read-unlock-save sequence let two
        threads both observe a stale last step and double-save).
        """
        step = mesh.steps
        with self._lock:
            if (self._last_saved_step is not None
                    and step - self._last_saved_step < self.interval):
                return None
            self._last_saved_step = step
        return self._store(self._snapshot(mesh, monitor))

    # -- restoring ----------------------------------------------------------

    def restore_latest(self, mesh, monitor=None) -> MeshCheckpoint:
        """Roll ``mesh`` (and ``monitor``) back to the newest checkpoint."""
        with self._lock:
            if not self._checkpoints:
                raise CheckpointError("no checkpoint to restore from")
            cp = self._checkpoints[-1]
            self.restores += 1
            # replay re-arms the save cadence from the restored step
            self._last_saved_step = cp.step
        if cp.blocks is not None:
            for ip, blk in cp.blocks.items():
                mesh.blocks[ip][...] = blk
        else:
            mesh.U[...] = cp.U
        mesh.time = cp.time
        mesh.steps = cp.step
        hook = getattr(mesh, "on_restore", None)
        if hook is not None:
            hook()
        if monitor is not None:
            del monitor.records[cp.monitor_len:]
        self.registry.increment("/resilience/checkpoint/restores")
        trace.instant("checkpoint-restore", "resilience", step=cp.step)
        return cp

    # -- introspection ------------------------------------------------------

    @property
    def latest(self) -> MeshCheckpoint | None:
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
