"""Periodic checkpoint/restore of mesh state, with content verification.

The conservation results of Sec. 4.2/4.3 (mass and angular momentum to
machine precision) are only worth having if a fault mid-run does not force
a restart from t=0.  A :class:`CheckpointManager` snapshots the *complete*
evolution state of a mesh — for a single-block
:class:`~repro.core.mesh.Mesh` the conserved-variable array ``U`` (ghosts
included), for a :class:`~repro.core.mesh.BlockMesh` every per-sub-grid
block — plus the simulation time and the step counter, and the length of
the conservation monitor's record list — every ``interval`` steps.  A
restore copies the arrays back bit-for-bit and truncates the monitor, so a
run that fails and restores produces a state stream *identical* to the
fault-free run: same dt sequence, same floating-point operations, same
drifts.  That bitwise-replay property is what the resilience acceptance
tests assert, on both the serial and the futurized path.

Snapshots are **verified records** (the durable-recovery layer of
arXiv 2412.15518's fault-tolerance gap): every per-block payload is
stamped with a content checksum at snapshot time, and the record's
*manifest* — a checksum over the metadata and the sorted per-block
checksums — is committed only after all payloads are staged.  The write
path is therefore an atomic write-then-commit protocol: a crash (or an
injected :meth:`~repro.resilience.faults.FaultInjector.torn_write_due`)
mid-write leaves a staged record with no manifest, which
:meth:`CheckpointManager.restore_latest` detects and skips; a silently
damaged payload (bit rot,
:meth:`~repro.resilience.faults.FaultInjector.checkpoint_corruption_due`)
fails its checksum the same way.  ``restore_latest`` falls back
generation by generation past torn and corrupt records to the newest
*verified* one, and raises :class:`CheckpointError` only when no verified
generation survives.  Verification traffic is tallied under
``/resilience/ckpt/{verified,corrupt,torn,fallback}``.

After copying state back, a restore invokes the mesh's optional
``on_restore()`` hook — :class:`~repro.core.mesh.BlockMesh` uses it to
reset its halo channels, whose generation numbers are derived from the
step counter and would otherwise reject the replayed generations.

Checkpoints live in memory (``keep`` most recent are retained; the model
has no node-local disk to lose) — replication of records across
localities, so they survive the node they protect, is layered on top by
:class:`repro.resilience.durability.BuddyReplicatedStore`.  Saves and
restores are tallied under ``/resilience/checkpoint/...`` and emit trace
instants.

The interval check in :meth:`CheckpointManager.maybe_save` and the
append in :meth:`CheckpointManager.save` are one atomic claim: two worker
threads asking at the same step cannot double-save it.

Records round-trip through this module's API only: constructing a
:class:`MeshCheckpoint` elsewhere bypasses checksum stamping, and mutating
``CheckpointManager._checkpoints`` directly bypasses the commit protocol —
both are flagged by lint rule REPRO009.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..runtime import trace
from ..runtime.counters import CounterRegistry, default_registry
from ..sanitize import lockdep as _sanitize_lockdep

__all__ = ["CheckpointError", "MeshCheckpoint", "CheckpointManager",
           "block_checksum"]


class CheckpointError(RuntimeError):
    """Raised when a restore is requested but no verified checkpoint exists."""


def block_checksum(arr: np.ndarray) -> int:
    """Content checksum of one payload array (dtype + shape + bytes).

    CRC32 is deliberate: the adversary here is bit rot and torn writes,
    not tampering, and the stamp runs on every block of every save.
    """
    a = np.ascontiguousarray(arr)
    head = f"{a.dtype.str}:{a.shape}".encode()
    return zlib.crc32(a.tobytes(), zlib.crc32(head)) & 0xFFFFFFFF


def _manifest_checksum(step: int, time: float, monitor_len: int,
                       checksums: dict) -> int:
    """Checksum over the record metadata and the sorted per-block stamps."""
    parts = [f"{step}:{time!r}:{monitor_len}"]
    parts.extend(f"{key!r}={crc}" for key, crc in sorted(checksums.items(),
                                                         key=lambda kv: repr(kv[0])))
    return zlib.crc32("|".join(parts).encode()) & 0xFFFFFFFF


@dataclass(frozen=True)
class MeshCheckpoint:
    """A frozen, checksummed snapshot of a mesh's evolution state.

    Exactly one of ``U`` (single-block :class:`~repro.core.mesh.Mesh`) or
    ``blocks`` (per-sub-grid state of a :class:`~repro.core.mesh.BlockMesh`)
    is populated.  ``checksums`` maps each payload key (the block index
    triple, or ``"U"``) to its content checksum; ``manifest`` is the
    committed checksum over metadata + stamps, and is ``None`` for a
    record whose write was torn before commit.
    """

    step: int
    time: float
    U: np.ndarray | None
    monitor_len: int
    blocks: dict[tuple[int, int, int], np.ndarray] | None = field(
        default=None)
    #: monotonically increasing save index within one manager/store
    generation: int = 0
    #: payload key -> content checksum, stamped at snapshot time
    checksums: dict | None = None
    #: commit marker: checksum over (metadata, sorted stamps); ``None``
    #: means the write never committed (torn)
    manifest: int | None = None

    @property
    def nbytes(self) -> int:
        if self.blocks is not None:
            return sum(b.nbytes for b in self.blocks.values())
        return self.U.nbytes if self.U is not None else 0

    @property
    def committed(self) -> bool:
        return self.manifest is not None

    def payload_items(self) -> list[tuple[object, np.ndarray]]:
        """The (key, array) payloads this record protects."""
        if self.blocks is not None:
            return sorted(self.blocks.items())
        return [("U", self.U)] if self.U is not None else []

    def verify(self) -> bool:
        """Re-derive every stamp and the manifest; True iff all match."""
        if self.manifest is None or self.checksums is None:
            return False
        payloads = dict(self.payload_items())
        if set(payloads) != set(self.checksums):
            return False
        for key, arr in payloads.items():
            if block_checksum(arr) != self.checksums[key]:
                return False
        return self.manifest == _manifest_checksum(
            self.step, self.time, self.monitor_len, self.checksums)


class CheckpointManager:
    """Keeps the ``keep`` most recent verified snapshots of one mesh.

    Works with any object exposing ``time`` (float), ``steps`` (int) and
    either ``U`` (ndarray — :class:`repro.core.mesh.Mesh`) or ``blocks``
    (dict of per-sub-grid ndarrays — :class:`repro.core.mesh.BlockMesh`);
    the optional monitor argument is a
    :class:`repro.core.stepper.ConservationMonitor` whose record list is
    truncated on restore so post-restore samples line up with the replay.

    An optional ``injector`` makes the manager its own adversary: each
    save first asks :meth:`~repro.resilience.faults.FaultInjector.torn_write_due`
    (stage a partial record, never commit) and then
    :meth:`~repro.resilience.faults.FaultInjector.checkpoint_corruption_due`
    (damage the committed payload in place).  Both are only *detectable*
    because of the checksums — the save path reports success either way,
    exactly like a real filesystem.
    """

    def __init__(self, interval: int = 10, keep: int = 2,
                 registry: CounterRegistry | None = None,
                 injector=None):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.interval = interval
        self.keep = keep
        self.registry = registry or default_registry()
        self.injector = injector
        self._lock = _sanitize_lockdep.make_lock("checkpoint.manager")
        self._checkpoints: list[MeshCheckpoint] = []
        self._generation = 0
        #: step of the newest save (claimed atomically in maybe_save so
        #: concurrent callers cannot double-save one step)
        self._last_saved_step: int | None = None
        self.saves = 0
        self.restores = 0
        #: hook invoked with each newly committed record (the durability
        #: layer replicates it to a buddy locality from here)
        self.on_commit = None

    # -- saving -------------------------------------------------------------

    def _snapshot(self, mesh, monitor) -> MeshCheckpoint:
        """Copy the mesh state and stamp every payload (no manifest yet)."""
        monitor_len = len(monitor.records) if monitor is not None else 0
        blocks = getattr(mesh, "blocks", None)
        with self._lock:
            generation = self._generation
            self._generation += 1
        if blocks is not None:
            copies = {ip: blk.copy() for ip, blk in blocks.items()}
            cp = MeshCheckpoint(
                step=mesh.steps, time=mesh.time, U=None,
                monitor_len=monitor_len, blocks=copies,
                generation=generation)
        else:
            cp = MeshCheckpoint(step=mesh.steps, time=mesh.time,
                                U=mesh.U.copy(), monitor_len=monitor_len,
                                generation=generation)
        checksums = {key: block_checksum(arr)
                     for key, arr in cp.payload_items()}
        return replace(cp, checksums=checksums)

    def _commit(self, cp: MeshCheckpoint) -> MeshCheckpoint:
        """Write-then-commit: stage payloads, then stamp the manifest.

        With an injector, a due torn write stages only a strict prefix of
        the payloads and never commits; a due corruption damages one
        committed payload's bytes in place.  Either way the *caller* sees
        a successful save — detection is the restore path's job.
        """
        inj = self.injector
        if inj is not None and inj.torn_write_due():
            items = cp.payload_items()
            kept = dict(items[:len(items) // 2])
            if cp.blocks is not None:
                torn = replace(cp, blocks=kept, manifest=None,
                               checksums={k: cp.checksums[k] for k in kept})
            else:
                # single-payload record: staged bytes, commit never ran
                torn = replace(cp, manifest=None)
            self.registry.increment("/resilience/ckpt/torn")
            trace.instant("checkpoint-torn", "resilience", step=cp.step)
            return torn
        committed = replace(cp, manifest=_manifest_checksum(
            cp.step, cp.time, cp.monitor_len, cp.checksums))
        if inj is not None and inj.checkpoint_corruption_due():
            # bit rot strikes the first payload: flip one byte in place
            _, arr = committed.payload_items()[0]
            arr.view(np.uint8).reshape(-1)[0] ^= 0xFF
            trace.instant("checkpoint-corrupted", "resilience", step=cp.step)
        return committed

    def _store(self, cp: MeshCheckpoint) -> MeshCheckpoint:
        cp = self._commit(cp)
        with self._lock:
            self._checkpoints.append(cp)
            del self._checkpoints[:-self.keep]
            self.saves += 1
        r = self.registry
        r.increment("/resilience/checkpoint/saves")
        r.increment("/resilience/checkpoint/bytes-saved", float(cp.nbytes))
        trace.instant("checkpoint-save", "resilience", step=cp.step)
        if cp.committed and self.on_commit is not None:
            self.on_commit(cp)
        return cp

    def save(self, mesh, monitor=None) -> MeshCheckpoint:
        """Snapshot ``mesh`` now (regardless of the interval)."""
        with self._lock:
            self._last_saved_step = mesh.steps
        return self._store(self._snapshot(mesh, monitor))

    def maybe_save(self, mesh, monitor=None) -> MeshCheckpoint | None:
        """Snapshot if ``interval`` steps have passed since the last one.

        The interval check and the claim of the step are one atomic
        operation: when several worker threads reach the same step, exactly
        one performs the save (the old read-unlock-save sequence let two
        threads both observe a stale last step and double-save).
        """
        step = mesh.steps
        with self._lock:
            if (self._last_saved_step is not None
                    and step - self._last_saved_step < self.interval):
                return None
            self._last_saved_step = step
        return self._store(self._snapshot(mesh, monitor))

    # -- restoring ----------------------------------------------------------

    def _newest_verified(self) -> MeshCheckpoint:
        """Scan newest-to-oldest for a record that verifies, dropping the
        torn/corrupt ones passed over on the way (they can never be
        restored and must not shadow older good generations again)."""
        r = self.registry
        with self._lock:
            while self._checkpoints:
                cp = self._checkpoints[-1]
                if cp.verify():
                    r.increment("/resilience/ckpt/verified")
                    return cp
                self._checkpoints.pop()
                r.increment("/resilience/ckpt/corrupt")
                r.increment("/resilience/ckpt/fallback")
                trace.instant("checkpoint-fallback", "resilience",
                              step=cp.step,
                              cause="torn" if not cp.committed else "corrupt")
        raise CheckpointError("no verified checkpoint survives "
                              "(all generations torn or corrupt)")

    def restore_latest(self, mesh, monitor=None) -> MeshCheckpoint:
        """Roll ``mesh`` (and ``monitor``) back to the newest *verified*
        checkpoint, falling back past torn/corrupt generations."""
        cp = self._newest_verified()
        with self._lock:
            self.restores += 1
            # replay re-arms the save cadence from the restored step
            self._last_saved_step = cp.step
        if cp.blocks is not None:
            for ip, blk in cp.blocks.items():
                mesh.blocks[ip][...] = blk
        else:
            mesh.U[...] = cp.U
        mesh.time = cp.time
        mesh.steps = cp.step
        hook = getattr(mesh, "on_restore", None)
        if hook is not None:
            hook()
        if monitor is not None:
            del monitor.records[cp.monitor_len:]
        self.registry.increment("/resilience/checkpoint/restores")
        trace.instant("checkpoint-restore", "resilience", step=cp.step)
        return cp

    # -- durability hooks ----------------------------------------------------

    def reset(self) -> int:
        """Drop every retained record (the durable layer calls this when
        the localities whose memory held them are gone); the save cadence
        and generation counter keep running.  Returns the drop count."""
        with self._lock:
            dropped = len(self._checkpoints)
            self._checkpoints.clear()
            self._last_saved_step = None
        if dropped:
            self.registry.increment("/resilience/ckpt/invalidated",
                                    float(dropped))
        return dropped

    # -- introspection ------------------------------------------------------

    @property
    def latest(self) -> MeshCheckpoint | None:
        with self._lock:
            return self._checkpoints[-1] if self._checkpoints else None

    @property
    def latest_verified(self) -> MeshCheckpoint | None:
        """Newest record that passes verification (no side effects)."""
        with self._lock:
            for cp in reversed(self._checkpoints):
                if cp.verify():
                    return cp
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._checkpoints)
