"""Chaos harness: the V1309 merger under every fault class at once.

The individual resilience layers each have their own adversary and their
own tests; this module turns them all on **simultaneously** against one
scaled-down V1309 merger run (Sec. 4.2's scenario) and checks nothing
interferes:

* halo parcels ride a lossy, delaying network and survive through
  ack/timeout/retry (:class:`~repro.resilience.retry.ResilientParcelSender`);
* compute tasks suffer injected transient faults and a **permanently
  poisoned CUDA stream**; the
  :class:`~repro.resilience.supervisor.SupervisedEngine` re-executes
  them, and the stream-health layer quarantines the sick stream;
* one locality goes **silent** mid-run; the phi-accrual
  :class:`~repro.resilience.health.FailureDetector` notices and AGAS
  evacuates its components — no manual ``fail_locality`` call anywhere;
* an announced step fault and a silent state corruption strike the
  timestep loop; :class:`~repro.core.stepper.GuardedStepper` rolls back
  to checkpoint and replays.

The acceptance bar (asserted by the integration test, reported by
``examples/chaos_merger.py``): the chaotic run completes, every fault
class fired at least once, every recovery mechanism engaged at least
once, and the final state and conservation drifts are **byte-identical**
to a fault-free run of the same problem.

Everything is seeded: a fixed :class:`ChaosConfig` reproduces the same
fault schedule, the same detection time and the same counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..runtime.agas import AgasRuntime, Component
from ..runtime.counters import CounterRegistry, default_registry
from ..runtime.cuda import CudaDevice
from ..runtime.parcel import Parcel, ParcelHandler
from ..runtime.scheduler import WorkStealingScheduler
from ..simulator.events import EventQueue
from .faults import FaultInjector
from .health import FailureDetector
from .retry import ResilientParcelSender, RetryPolicy
from .supervisor import SupervisedEngine

__all__ = ["ChaosConfig", "ChaosResult", "run_chaos_merger"]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of the chaos run; the defaults are the CI smoke settings."""

    seed: int = 1309
    #: merger problem size (cells per edge) and SCF iterations
    M: int = 16
    scf_iters: int = 12
    #: steps to evolve (t_end is effectively step-bounded)
    steps: int = 3
    t_end: float = 1.0
    # -- network faults (halo parcel side-channel) --
    loss_rate: float = 0.3
    delay_rate: float = 0.3
    max_delay: float = 0.05
    max_losses: int = 4
    # -- task-execution faults --
    action_fault_rate: float = 0.05
    max_action_faults: int = 6
    max_task_retries: int = 4
    # -- timestep faults --
    fail_at_steps: tuple[int, ...] = (1,)
    corrupt_at_steps: tuple[int, ...] = (2,)
    # -- checkpoint-store faults (save indices; the stepper saves at
    #    step 0 and then after every step) --
    #: the save the first rollback would restore is silently corrupted,
    #: so that restore must fall back a generation
    corrupt_ckpt_saves: tuple[int, ...] = (1,)
    #: a later save is torn mid-write (staged, never committed)
    torn_ckpt_saves: tuple[int, ...] = (2,)
    # -- silent locality failure --
    n_localities: int = 4
    silence_locality: int = 3
    #: silence the victim once this many steps have completed
    silence_after_steps: int = 2
    heartbeat_interval: float = 0.25
    phi_threshold: float = 3.0
    #: simulation seconds the event clock advances per merger step
    sim_seconds_per_step: float = 2.0
    # -- stream health --
    n_streams: int = 2
    n_gpu_workers: int = 2
    n_cpu_workers: int = 2
    quarantine_threshold: int = 2
    #: long enough that the poisoned stream sits out the whole run
    quarantine_period: float = 30.0


class _HaloStore(Component):
    """Side-channel destination for per-step halo parcels (migratable)."""

    def __init__(self) -> None:
        super().__init__()
        self.halos: dict[int, np.ndarray] = {}

    def put_halo(self, generation: int, buf: np.ndarray) -> int:
        self.halos[generation] = buf
        return generation


@dataclass
class ChaosResult:
    """Everything the acceptance test asserts and the example reports."""

    config: ChaosConfig
    clean_mesh: object
    chaotic_mesh: object
    clean_monitor: object      # ConservationMonitor
    chaos_monitor: object      # ConservationMonitor
    registry: CounterRegistry
    run_injector: FaultInjector
    net_injector: FaultInjector
    detector: FailureDetector
    stepper: object            # GuardedStepper
    agas: AgasRuntime
    stores: list = field(default_factory=list)
    halo_acked: int = 0
    halo_failed: int = 0

    @property
    def bitwise_identical(self) -> bool:
        return np.array_equal(self.clean_mesh.U, self.chaotic_mesh.U)

    @property
    def clean_report(self) -> dict[str, float]:
        return self.clean_monitor.report()

    @property
    def chaos_report(self) -> dict[str, float]:
        return self.chaos_monitor.report()

    def summary(self) -> str:
        """Human-readable outcome digest for the example / CI log."""
        snap = self.registry.snapshot()

        def c(name: str) -> int:
            return int(snap.get(name, 0.0))

        inj = self.run_injector.stats()
        net = self.net_injector.stats()
        lines = [
            "chaos merger outcome",
            "--------------------",
            f"steps completed        : {self.chaotic_mesh.steps}",
            f"bitwise identical state: {self.bitwise_identical}",
            f"identical drift report : "
            f"{self.clean_report == self.chaos_report}",
            "",
            "injected: "
            f"loss={net['loss']} delay={net['delay']} "
            f"action={inj['action']} step={inj['step']} "
            f"corruption={inj['corruption']} "
            f"torn-ckpt={inj['torn-write']} "
            f"corrupt-ckpt={inj['ckpt-corruption']}, "
            f"silenced localities={c('/resilience/health/silenced')}",
            "recovered: "
            f"parcel-retries={c('/resilience/parcels/retries')} "
            f"task-retries={c('/resilience/tasks/retried')} "
            f"restores={c('/resilience/steps/restores')} "
            f"rejected-steps={c('/resilience/steps/rejected')} "
            f"ckpt-fallbacks={c('/resilience/ckpt/fallback')}",
            "detected : "
            f"dead-localities={c('/resilience/health/detected')} "
            f"evacuated-components={c('/resilience/health/evacuated')} "
            f"quarantined-streams={c('/cuda/quarantined')}",
            f"halo parcels           : {self.halo_acked} acked, "
            f"{self.halo_failed} failed",
        ]
        return "\n".join(lines)


def run_chaos_merger(config: ChaosConfig | None = None,
                     registry: CounterRegistry | None = None,
                     build: Callable[[], object] | None = None
                     ) -> ChaosResult:
    """Run the fault-free and the everything-at-once chaotic merger.

    ``build`` constructs the problem mesh (called twice — identical
    initial data); defaults to the scaled-down V1309 binary.  Stream
    quarantine tallies into the *default* registry (where the CUDA layer
    publishes), so pass ``registry=default_registry()`` — the default —
    when asserting on ``/cuda/quarantined``.
    """
    # imported here, not at module top: repro.core.stepper itself imports
    # from this package, so a module-level import would be circular
    from ..core.exec import ExecutionEngine
    from ..core.grid import NGHOST, RHO
    from ..core.stepper import GuardedStepper, evolve

    cfg = config or ChaosConfig()
    registry = registry or default_registry()
    if build is None:
        from ..core.scenario import v1309_binary

        def build() -> object:
            return v1309_binary(M=cfg.M, scf_iters=cfg.scf_iters)

    clean = build()
    chaotic = build()
    if not np.array_equal(clean.U, chaotic.U):
        raise RuntimeError("builder produced differing initial data")

    # the fault-free reference
    clean_monitor = evolve(clean, t_end=cfg.t_end, max_steps=cfg.steps)

    # adversaries: one injector on the compute/step path, one on the wire
    run_injector = FaultInjector(
        cfg.seed, action_fault_rate=cfg.action_fault_rate,
        max_action_faults=cfg.max_action_faults,
        fail_at_steps=cfg.fail_at_steps,
        corrupt_at_steps=cfg.corrupt_at_steps,
        corrupt_ckpt_at_saves=cfg.corrupt_ckpt_saves,
        torn_write_at_saves=cfg.torn_ckpt_saves, registry=registry)
    net_injector = FaultInjector(
        cfg.seed + 1, loss_rate=cfg.loss_rate, delay_rate=cfg.delay_rate,
        max_delay=cfg.max_delay, max_losses=cfg.max_losses,
        registry=registry)

    # distributed halo side-channel + health monitoring
    agas = AgasRuntime(cfg.n_localities, registry=registry)
    stores = [agas.register(_HaloStore(), loc)
              for loc in range(cfg.n_localities)]
    sender = ResilientParcelSender(
        ParcelHandler(agas), injector=net_injector,
        policy=RetryPolicy(max_attempts=8, base_backoff=1e-6,
                           max_backoff=1e-4),
        registry=registry, sleep=lambda _t: None)
    events = EventQueue()
    detector = FailureDetector(
        agas, events, heartbeat_interval=cfg.heartbeat_interval,
        phi_threshold=cfg.phi_threshold, registry=registry)
    detector.start()

    halo_futures: list = []
    silenced = False
    g = NGHOST

    with WorkStealingScheduler(cfg.n_cpu_workers) as sched, \
            CudaDevice(n_streams=cfg.n_streams,
                       n_workers=cfg.n_gpu_workers, name="chaos-gpu",
                       quarantine_threshold=cfg.quarantine_threshold,
                       quarantine_period=cfg.quarantine_period) as gpu:
        gpu.streams[0].poison()  # permanently sick stream
        engine = SupervisedEngine(
            ExecutionEngine(scheduler=sched, device=gpu,
                            registry=registry),
            injector=run_injector, max_retries=cfg.max_task_retries,
            registry=registry)
        chaotic.engine = engine
        stepper = GuardedStepper(chaotic, checkpoint_interval=1,
                                 fault_injector=run_injector,
                                 registry=registry)

        def per_step(mesh) -> None:
            nonlocal silenced
            # broadcast this step's boundary layer to every store
            halo = mesh.U[RHO, g:g + 1].copy()
            for gid in stores:
                halo_futures.append(sender.send(
                    Parcel(gid, "put_halo", (mesh.steps, halo))))
            if not silenced and mesh.steps >= cfg.silence_after_steps \
                    and cfg.silence_locality is not None:
                silenced = True
                detector.silence(cfg.silence_locality)
            events.run(until=events.now + cfg.sim_seconds_per_step)

        chaos_monitor = stepper.evolve(cfg.t_end, max_steps=cfg.steps,
                                       callback=per_step)
        engine.synchronize()
        # let detection complete if the victim was silenced late
        horizon = 0
        while (silenced
               and cfg.silence_locality not in detector.declared_failed
               and horizon < 64):
            events.run(until=events.now + 1.0)
            horizon += 1
        engine.publish_counters(registry)
    detector.stop()

    acked = failed = 0
    for fut in halo_futures:
        try:
            fut.get(timeout=5.0)
            acked += 1
        except BaseException:
            failed += 1

    return ChaosResult(
        config=cfg, clean_mesh=clean, chaotic_mesh=chaotic,
        clean_monitor=clean_monitor, chaos_monitor=chaos_monitor,
        registry=registry, run_injector=run_injector,
        net_injector=net_injector, detector=detector, stepper=stepper,
        agas=agas, stores=stores, halo_acked=acked, halo_failed=failed)
