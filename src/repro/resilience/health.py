"""Heartbeat health monitoring: phi-accrual failure detection.

The locality-failure machinery of :mod:`repro.runtime.agas` is *reactive*
— somebody has to call ``fail_locality``.  On a real machine nobody sends
that call: a node that dies simply goes **silent**.  This module closes
the loop with the standard phi-accrual failure detector (Hayashibara et
al. 2004, the detector used by Akka and Cassandra): every monitored
locality emits periodic heartbeats, the detector tracks the observed
inter-arrival statistics, and the suspicion level of a locality is

    ``phi(t) = (t - t_last) / mean_interval * log10(e)``

i.e. ``-log10`` of the probability that a heartbeat this late is still
in flight under an exponential inter-arrival model.  When ``phi`` crosses
``phi_threshold`` the locality is declared dead and
:meth:`~repro.runtime.agas.AgasRuntime.fail_locality` is invoked
*automatically* — evacuating its migratable components — with no manual
failure call anywhere (the chaos acceptance test asserts exactly this).

Time here is **simulation time**: heartbeats and detector sweeps are
events on a deterministic :class:`repro.simulator.events.EventQueue`, so
a fixed schedule reproduces the same detection time on every run.  A
silent node is modelled by :meth:`FailureDetector.silence` — the
locality's future heartbeats stop being scheduled, and nothing else about
it changes, which is precisely what the detector must cope with.

Declaring a locality failed is **final**: real networks deliver late —
a heartbeat emitted *before* the node died (or delayed in a congested
switch) can arrive *after* the detector suspected the node and AGAS
evacuated its components.  Acting on that stale beat would "flap" the
locality back to life with ownership it no longer has — the classic
split-brain.  :meth:`FailureDetector.receive_heartbeat` is therefore a
one-way gate: beats for a declared locality are dropped (tallied under
``/resilience/health/stale-heartbeats``), never refreshing its liveness
and never touching AGAS; the ordering regression test drives exactly the
suspect → evacuate → stale-heartbeat sequence.

Counters: ``/resilience/health/heartbeats``,
``/resilience/health/detected``, ``/resilience/health/silenced``,
``/resilience/health/evacuated``,
``/resilience/health/stale-heartbeats`` and a
``/resilience/health/max-phi`` gauge (largest suspicion level ever
observed for a live locality).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from ..runtime import trace
from ..runtime.agas import AgasRuntime
from ..runtime.counters import CounterRegistry, default_registry
from ..simulator.events import EventQueue

__all__ = ["FailureDetector", "DEFAULT_PHI_THRESHOLD",
           "DEFAULT_HEARTBEAT_INTERVAL_S"]

#: suspicion level at which a locality is declared dead.  8 corresponds to
#: a ~1e-8 probability that the heartbeat is merely late — Akka's default.
DEFAULT_PHI_THRESHOLD = 8.0

#: heartbeat period in simulation seconds
DEFAULT_HEARTBEAT_INTERVAL_S = 1.0

_LOG10_E = math.log10(math.e)


class FailureDetector:
    """Phi-accrual detection of silent localities, with auto-evacuation.

    Parameters
    ----------
    agas:
        The runtime whose localities are monitored;
        ``agas.fail_locality(loc)`` is called on detection.
    events:
        Simulation clock and scheduler for heartbeats and sweeps.
    localities:
        Which localities to monitor (default: all of ``agas``'s that have
        not already failed).
    heartbeat_interval:
        Period of each locality's heartbeat, in simulation seconds.
    phi_threshold:
        Suspicion level that triggers failure handling.
    sweep_interval:
        Period of the detector's phi sweep (default: the heartbeat
        interval).
    window:
        Number of recent inter-arrival intervals kept per locality for
        the mean estimate (seeded with the nominal interval so detection
        works from the first heartbeat).
    evacuate:
        Passed through to ``fail_locality``.
    on_failure:
        Optional ``callback(locality, evacuation_dict)`` invoked after
        AGAS handling.
    """

    def __init__(self, agas: AgasRuntime, events: EventQueue,
                 localities: list[int] | None = None, *,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL_S,
                 phi_threshold: float = DEFAULT_PHI_THRESHOLD,
                 sweep_interval: float | None = None,
                 window: int = 32,
                 evacuate: bool = True,
                 on_failure: Callable[[int, dict], None] | None = None,
                 registry: CounterRegistry | None = None):
        if heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be > 0")
        if phi_threshold <= 0.0:
            raise ValueError("phi_threshold must be > 0")
        self.agas = agas
        self.events = events
        self.heartbeat_interval = heartbeat_interval
        self.phi_threshold = phi_threshold
        self.sweep_interval = sweep_interval or heartbeat_interval
        self.evacuate = evacuate
        self.on_failure = on_failure
        self.registry = registry or default_registry()
        if localities is None:
            localities = [l for l in range(agas.n_localities)
                          if l not in agas.failed_localities]
        self._monitored = list(localities)
        self._silenced: set[int] = set()
        self._declared: set[int] = set()
        self._last_beat: dict[int, float] = {}
        self._intervals: dict[int, deque[float]] = {
            loc: deque([heartbeat_interval], maxlen=window)
            for loc in self._monitored}
        self._started = False
        self._stopped = False
        self.max_phi = 0.0
        self.detected: list[int] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Schedule the initial heartbeats and the sweep loop."""
        if self._started:
            return
        self._started = True
        now = self.events.now
        for loc in self._monitored:
            self._last_beat[loc] = now
            self.events.schedule(self.heartbeat_interval,
                                 self._heartbeat, loc)
        self.events.schedule(self.sweep_interval, self._sweep)

    def stop(self) -> None:
        """Stop rescheduling; in-flight events become no-ops."""
        self._stopped = True

    def silence(self, locality: int) -> None:
        """Model a node going silent: its heartbeats stop arriving.

        Nothing is announced to AGAS — the detector has to notice.
        """
        self._silenced.add(locality)
        self.registry.increment("/resilience/health/silenced")
        trace.instant("locality-silenced", "resilience", locality=locality)

    def receive_heartbeat(self, locality: int) -> bool:
        """An out-of-band heartbeat arrived (possibly delayed in flight).

        Returns True when it was accepted (liveness refreshed).  The
        one-way gate: once ``locality`` has been **declared** failed —
        components already evacuated or invalidated through AGAS — a
        late beat is *stale* by definition and must not resurrect
        anything: it is dropped, tallied, and AGAS is never consulted.
        A merely *silenced* (or suspected-but-undeclared) locality is
        different: its beat arrives before the verdict, so it counts
        like any scheduled one.
        """
        if locality not in self._intervals:
            return False
        if locality in self._declared:
            self.registry.increment("/resilience/health/stale-heartbeats")
            trace.instant("stale-heartbeat", "resilience",
                          locality=locality)
            return False
        now = self.events.now
        last = self._last_beat.get(locality, now)
        self._intervals[locality].append(max(now - last, 1e-12))
        self._last_beat[locality] = now
        self.registry.increment("/resilience/health/heartbeats")
        return True

    # -- event handlers ------------------------------------------------------

    def _heartbeat(self, locality: int) -> None:
        if self._stopped or locality in self._silenced \
                or locality in self._declared:
            return
        now = self.events.now
        last = self._last_beat.get(locality, now)
        self._intervals[locality].append(max(now - last, 1e-12))
        self._last_beat[locality] = now
        self.registry.increment("/resilience/health/heartbeats")
        self.events.schedule(self.heartbeat_interval, self._heartbeat,
                             locality)

    def _sweep(self) -> None:
        if self._stopped:
            return
        for loc in self._monitored:
            if loc in self._declared:
                continue
            p = self.phi(loc)
            self.max_phi = max(self.max_phi, p)
            if p >= self.phi_threshold:
                self._declare_failed(loc, p)
        if any(loc not in self._declared for loc in self._monitored):
            self.events.schedule(self.sweep_interval, self._sweep)

    # -- detection -----------------------------------------------------------

    def phi(self, locality: int) -> float:
        """Current suspicion level for ``locality`` (0 = just heard from)."""
        last = self._last_beat.get(locality)
        if last is None:
            return 0.0
        elapsed = self.events.now - last
        window = self._intervals[locality]
        mean = sum(window) / len(window)
        return (elapsed / mean) * _LOG10_E

    def _declare_failed(self, locality: int, phi_value: float) -> None:
        self._declared.add(locality)
        self.detected.append(locality)
        r = self.registry
        r.increment("/resilience/health/detected")
        r.set_gauge("/resilience/health/max-phi", self.max_phi)
        trace.instant("locality-detected-dead", "resilience",
                      locality=locality, phi=round(phi_value, 3))
        result = self.agas.fail_locality(locality, evacuate=self.evacuate)
        r.increment("/resilience/health/evacuated",
                    float(len(result["migrated"])))
        if self.on_failure is not None:
            self.on_failure(locality, result)

    # -- introspection -------------------------------------------------------

    @property
    def declared_failed(self) -> set[int]:
        return set(self._declared)

    def suspicion_levels(self) -> dict[int, float]:
        return {loc: self.phi(loc) for loc in self._monitored
                if loc not in self._declared}
