"""Aries-style network topology model.

Piz Daint's interconnect is a Cray Aries dragonfly (Table 3).  For the
scaling model we only need hop counts between node pairs: dragonfly routes
are at most ~5 hops (node→router, intra-group, global link, intra-group,
router→node) and on average short, so distance grows very slowly with
machine size — which is why communication cost in Fig. 2 is dominated by
message *counts* and per-message overheads rather than by distance.
"""

from __future__ import annotations

import math

__all__ = ["DragonflyTopology"]


class DragonflyTopology:
    """Hop-count model of a dragonfly with Aries-like group sizes.

    Nodes are numbered densely; 4 nodes share a router (Aries blade),
    96 routers form a group (Cray XC two-cabinet group = 384 nodes).
    """

    NODES_PER_ROUTER = 4
    ROUTERS_PER_GROUP = 96

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.nodes_per_group = self.NODES_PER_ROUTER * self.ROUTERS_PER_GROUP

    def router_of(self, node: int) -> int:
        self._check(node)
        return node // self.NODES_PER_ROUTER

    def group_of(self, node: int) -> int:
        self._check(node)
        return node // self.nodes_per_group

    def hops(self, a: int, b: int) -> int:
        """Hop count between two nodes (0 for self)."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if self.router_of(a) == self.router_of(b):
            return 1                      # same Aries ASIC
        if self.group_of(a) == self.group_of(b):
            return 2                      # intra-group electrical
        return 4                          # via a global optical link

    def mean_hops(self, a: int, neighbours: list[int]) -> float:
        if not neighbours:
            return 0.0
        return sum(self.hops(a, b) for b in neighbours) / len(neighbours)

    @property
    def n_groups(self) -> int:
        return math.ceil(self.n_nodes / self.nodes_per_group)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
