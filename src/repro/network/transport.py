"""Halo transport: channel delivery charged through a parcelport.

The distributed :class:`~repro.core.distmesh.DistBlockMesh` keeps the
node-level halo protocol — one generation-matched
:class:`~repro.runtime.channel.Channel` per neighbour direction per block
(Sec. 5.2) — but a halo whose sender and receiver live on *different*
localities is a parcel: it must be charged through the
:class:`~repro.network.parcelport.Parcelport` cost model (eager vs
rendezvous vs RMA by ``EAGER_BYTES``) like any other message, and it may
arrive out of order.  This module is the seam between the two layers:

* **local fast path** — sender and receiver share a locality; the value
  goes straight into the channel, no parcelport charge (an intra-node
  copy, exactly what HPX does when the AGAS resolution is local);
* **remote path** — the payload is charged to a *dedicated* port (the
  configured transport renamed ``halo:<name>``, so ``/parcels/halo:...``
  counters isolate halo traffic from other parcel users), then delivered
  into the channel.  With a ``reorder_seed`` the deliveries of one stage
  are buffered and :meth:`~HaloTransport.flush`-ed in a seeded random
  order — the generation matching of the channel protocol is what makes
  that reordering invisible to the receiver, and the distributed tests
  assert exactly that;
* **one-sided charge** — periodic wraps are direct RMA-style copies with
  no channel in between; :meth:`~HaloTransport.charge_onesided` books
  their cross-locality cost so "every cross-locality halo is charged"
  reconciles.

The transport keeps its own tallies (:class:`TransportStats`) so a test
can reconcile them against the port's ``/parcels/halo:<name>/*`` stats:
``remote_msgs + onesided_msgs == port messages`` must hold exactly.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..sanitize import racecheck as _racecheck
from ..sanitize import schedules as _schedules
from ..sanitize import state as _sanitize_state
from .parcelport import EAGER_BYTES, PARCELPORTS, Parcelport, port_stats

__all__ = ["HaloTransport", "TransportStats"]


class TransportStats:
    """Tallies of every halo moved (or charged) through one transport."""

    __slots__ = ("local_msgs", "local_bytes", "remote_msgs", "remote_bytes",
                 "onesided_msgs", "onesided_bytes", "eager", "rendezvous",
                 "rma", "reordered")

    def __init__(self) -> None:
        self.local_msgs = 0
        self.local_bytes = 0
        self.remote_msgs = 0
        self.remote_bytes = 0
        self.onesided_msgs = 0
        self.onesided_bytes = 0
        self.eager = 0
        self.rendezvous = 0
        self.rma = 0
        self.reordered = 0

    def snapshot(self) -> dict[str, int]:
        return {s: getattr(self, s) for s in self.__slots__}


class HaloTransport:
    """Deliver halo values into channels, charging cross-locality traffic.

    Parameters
    ----------
    port:
        Base transport (a :class:`Parcelport` or a name from
        :data:`PARCELPORTS`).  The instance actually charged is a copy
        renamed ``halo:<name>`` so halo traffic owns its
        ``/parcels/halo:<name>/*`` stats.
    reorder_seed:
        When not ``None``, remote deliveries are buffered per stage and
        :meth:`flush` hands them to the channels in a seeded random
        order, modelling out-of-order parcel arrival.  Local deliveries
        are never reordered (there is no wire to reorder them on).
    """

    def __init__(self, port: Parcelport | str = "libfabric",
                 reorder_seed: int | None = None):
        if isinstance(port, str):
            port = PARCELPORTS[port]
        self.base_port = port
        self.port = replace(port, name=f"halo:{port.name}")
        self.stats = TransportStats()
        self._rng = (None if reorder_seed is None
                     else random.Random(reorder_seed))
        self._pending: list[tuple] = []
        #: port tallies are process-global by name; remember what was
        #: already there so this transport's snapshot is exact even when
        #: several meshes share the halo port in one process
        self._baseline = port_stats(self.port.name).snapshot()

    # -- channel path ---------------------------------------------------------

    def send(self, channel, value, generation: int,
             src_locality: int, dst_locality: int) -> None:
        """Publish ``value`` for ``generation`` on ``channel``.

        Same-locality sends take the intra-node fast path; cross-locality
        sends are charged to the parcelport first and — under a reorder
        seed — buffered until :meth:`flush`.
        """
        nbytes = int(getattr(value, "nbytes", 0) or len(value))
        if _sanitize_state.ACTIVE:
            # the payload is read (serialized) at send time: any
            # unsynchronized later write to it would corrupt the wire copy
            _racecheck.access(value, "r",
                              owner=f"halo:{getattr(channel, 'name', '?')}")
        st = self.stats
        if src_locality == dst_locality:
            st.local_msgs += 1
            st.local_bytes += nbytes
            channel.set(value, generation)
            return
        self._charge(nbytes)
        st.remote_msgs += 1
        st.remote_bytes += nbytes
        if self._rng is None:
            channel.set(value, generation)
        else:
            self._pending.append((channel, value, generation))

    def flush(self) -> int:
        """Deliver buffered remote sends in a seeded random order.

        Must be called before the receives of the stage are drained (the
        futures would otherwise never resolve); returns the number of
        deliveries.  A no-op without a reorder seed.
        """
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        self._rng.shuffle(batch)
        exp = _schedules.EXPLORER
        if exp is not None:
            # explorer permutation on top of the transport's own seeded
            # shuffle: generation matching must absorb any arrival order
            batch = exp.permute("transport-flush", batch)
        for channel, value, generation in batch:
            channel.set(value, generation)
        self.stats.reordered += len(batch)
        return len(batch)

    def discard_pending(self) -> int:
        """Drop buffered remote sends without delivering them.

        Used on checkpoint rollback: the buffered halos belong to the
        timeline being discarded, and their channels are about to be
        reset.  Their parcelport charge stands — the bytes did travel.
        """
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    # -- one-sided path -------------------------------------------------------

    def charge_onesided(self, nbytes: int, src_locality: int,
                        dst_locality: int) -> None:
        """Book the cost of a direct (channel-less) halo copy.

        Periodic wraps read the source block's interior directly; when
        the two blocks live on different localities that read is a
        one-sided get over the wire and must be charged like one.
        """
        if src_locality == dst_locality:
            return
        self._charge(nbytes)
        self.stats.onesided_msgs += 1
        self.stats.onesided_bytes += nbytes

    # -- accounting -----------------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        self.port.message_cost(nbytes)
        st = self.stats
        if nbytes <= EAGER_BYTES:
            st.eager += 1
        elif self.port.rendezvous:
            st.rendezvous += 1
        else:
            st.rma += 1

    def port_snapshot(self) -> dict[str, float]:
        """The ``/parcels`` tallies this transport added to its halo port."""
        snap = port_stats(self.port.name).snapshot()
        return {k: snap[k] - self._baseline[k] for k in snap}

    def reconciles(self) -> bool:
        """Every cross-locality halo charged — and nothing else."""
        snap = self.port_snapshot()
        st = self.stats
        return (int(snap["messages"]) == st.remote_msgs + st.onesided_msgs
                and int(snap["bytes"]) == st.remote_bytes + st.onesided_bytes
                and int(snap["eager"]) == st.eager
                and int(snap["rendezvous"]) == st.rendezvous
                and int(snap["rma"]) == st.rma)
