"""Parcelport cost models and topology for the scaling study (DESIGN.md §2)."""

from .parcelport import MessageCost, Parcelport, PARCELPORTS, EAGER_BYTES
from .topology import DragonflyTopology
from .transport import HaloTransport, TransportStats

__all__ = ["MessageCost", "Parcelport", "PARCELPORTS", "EAGER_BYTES",
           "DragonflyTopology", "HaloTransport", "TransportStats"]
