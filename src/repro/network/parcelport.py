"""Parcelport cost/behaviour models.

Section 6.3 of the paper attributes the libfabric-vs-MPI gap to a specific
list of mechanisms; this module turns that list into an explicit cost model
that the discrete-event simulator charges per message:

* explicit RMA for halo buffers (no rendezvous round-trip for large
  payloads in the libfabric port, an extra handshake in the MPI one);
* lower send/receive latency per parcel;
* direct control of memory copies (a per-byte copy tax in the MPI port,
  pinned pre-registered buffers in the libfabric port);
* reduced overhead between a completion event and setting the future;
* a lock-free polling interface vs MPI's internal locking, which
  "interfere[s] with the smooth running of the HPX runtime" — modelled as
  a progress-interference term that grows with the number of concurrently
  communicating worker threads;
* the known libfabric weakness at small scale (Fig. 3 dips below 1):
  "if all cores are busy with work, no polling is done" — modelled as a
  polling delay proportional to how busy the node's workers are.

All times are in seconds, sizes in bytes.  The constants are calibrated so
the Fig. 2 / Fig. 3 *shapes* (crossover, ~2.8x at the largest runs) emerge;
see EXPERIMENTS.md for paper-vs-measured values.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

#: eager/rendezvous switch-over — the single shared constant, so the cost
#: model and the parcel serializer can never disagree on the boundary
from ..runtime.parcel import EAGER_THRESHOLD as EAGER_BYTES
from ..runtime.counters import CounterRegistry, default_registry

__all__ = ["MessageCost", "Parcelport", "PARCELPORTS", "EAGER_BYTES",
           "PortStats", "port_stats", "reset_port_stats", "publish_counters",
           "DegradedParcelport", "degrade"]


class PortStats:
    """Per-transport tallies of every :meth:`Parcelport.message_cost` call.

    The paper's APEX counters expose network throughput per parcelport;
    here each cost-model evaluation is tallied by port name — message and
    byte counts, the eager/rendezvous/RMA path split, and the accumulated
    cost components (sender CPU, wire, receiver CPU seconds).
    """

    __slots__ = ("messages", "bytes", "eager", "rendezvous", "rma",
                 "sender_cpu", "wire", "receiver_cpu")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.eager = 0
        self.rendezvous = 0
        self.rma = 0
        self.sender_cpu = 0.0
        self.wire = 0.0
        self.receiver_cpu = 0.0

    def snapshot(self) -> dict[str, float]:
        return {s: getattr(self, s) for s in self.__slots__}


_stats_lock = threading.Lock()
_port_stats: dict[str, PortStats] = {}


def port_stats(name: str) -> PortStats:
    """The accumulated tallies for transport ``name`` (created on demand)."""
    with _stats_lock:
        st = _port_stats.get(name)
        if st is None:
            st = _port_stats[name] = PortStats()
        return st


def reset_port_stats() -> None:
    with _stats_lock:
        _port_stats.clear()


def publish_counters(registry: CounterRegistry | None = None) -> None:
    """Publish ``/parcels/<port>/...`` gauges into ``registry``."""
    registry = registry or default_registry()
    with _stats_lock:
        snaps = {name: st.snapshot() for name, st in _port_stats.items()}
    for name, snap in snaps.items():
        for key, value in snap.items():
            registry.set_gauge(f"/parcels/{name}/{key}", float(value))
        total = snap["messages"]
        registry.set_gauge(f"/parcels/{name}/eager-fraction",
                           snap["eager"] / total if total else 0.0)


@dataclass(frozen=True)
class MessageCost:
    """Decomposed cost of moving one parcel between two nodes.

    ``sender_cpu`` and ``receiver_cpu`` are charged to worker cores (they
    compete with compute tasks); ``wire`` is pure network time that
    futurization can overlap with computation.
    """

    sender_cpu: float
    wire: float
    receiver_cpu: float

    @property
    def total(self) -> float:
        return self.sender_cpu + self.wire + self.receiver_cpu


@dataclass(frozen=True)
class Parcelport:
    """A named transport with the paper's cost mechanisms as parameters.

    Parameters
    ----------
    latency:
        Base one-way wire latency for a small message (s).
    bandwidth:
        Effective per-link bandwidth (B/s) after protocol overheads.
    send_overhead / recv_overhead:
        CPU time consumed on each side to inject/retire a message (s).
    copy_per_byte:
        CPU time per payload byte spent copying between user buffers and
        the transport (zero-copy RMA ports set this to ~0).
    rendezvous:
        True if payloads above ``EAGER_BYTES`` need a request/ack
        round-trip before the data moves (two-sided MPI semantics).
    progress_interference:
        Extra CPU overhead per message *per concurrently communicating
        worker*, modelling internal transport locking that stalls the task
        scheduler (the MPI pathology of Sec. 5.2).
    poll_delay_busy:
        Added delivery delay when the destination's workers are fully busy
        and nobody polls the completion queue (the libfabric small-scale
        penalty of Sec. 6.3 / Fig. 3).
    """

    name: str
    latency: float
    bandwidth: float
    send_overhead: float
    recv_overhead: float
    copy_per_byte: float
    rendezvous: bool
    progress_interference: float
    poll_delay_busy: float
    idle_contention: float
    #: receive-side multiplier under an unthrottled many-to-one message
    #: storm (start-up/regridding): two-sided transports scan a linearly
    #: growing unexpected-message queue per unmatched receive, one-sided
    #: RMA does not.  Applied only when message_cost(storm=True).
    storm_factor: float = 1.0

    def message_cost(self, size: int, hops: int = 1,
                     concurrent_senders: int = 1,
                     busy_fraction: float = 0.0,
                     comm_intensity: float = 1.0,
                     storm: bool = False) -> MessageCost:
        """Cost of one parcel of ``size`` bytes over ``hops`` network hops.

        ``concurrent_senders`` and ``comm_intensity`` (0..1, the fraction
        of node time spent communicating) scale the progress-interference
        term — MPI's internal locking only hurts when many workers hit the
        transport often; ``busy_fraction`` (0..1) scales the polling delay
        — completions sit unnoticed while every worker is computing.
        """
        if size < 0:
            raise ValueError("negative message size")
        hop_latency = self.latency * (1.0 + 0.15 * max(hops - 1, 0))
        wire = hop_latency + size / self.bandwidth
        if self.rendezvous and size > EAGER_BYTES:
            # request + ack round trip before the payload moves
            wire += 2.0 * hop_latency
        sender = (self.send_overhead
                  + self.copy_per_byte * size
                  + self.progress_interference * max(concurrent_senders - 1, 0)
                  * comm_intensity)
        receiver = (self.recv_overhead
                    + self.copy_per_byte * size
                    + self.poll_delay_busy * busy_fraction
                    + self.idle_contention * (1.0 - busy_fraction)
                    * max(concurrent_senders - 1, 0))
        if storm:
            receiver *= self.storm_factor
        cost = MessageCost(sender, wire, receiver)
        st = port_stats(self.name)
        with _stats_lock:
            st.messages += 1
            st.bytes += size
            if size <= EAGER_BYTES:
                st.eager += 1
            elif self.rendezvous:
                st.rendezvous += 1
            else:
                st.rma += 1
            st.sender_cpu += cost.sender_cpu
            st.wire += cost.wire
            st.receiver_cpu += cost.receiver_cpu
        return cost


@dataclass(frozen=True)
class DegradedParcelport(Parcelport):
    """A transport suffering iid message loss, with retries charged.

    Lost sends are resent by the resilience layer
    (:class:`repro.resilience.retry.ResilientParcelSender`); the *expected*
    cost of that — extra transmissions on both CPUs and the wire, plus the
    exponential-backoff waits — is folded into every
    :meth:`~Parcelport.message_cost` evaluation, so degraded-network
    scaling curves drop out of the existing simulator unchanged.  Receive
    CPU is only charged for copies that actually arrive.
    """

    loss_rate: float = 0.0
    #: retry budget/backoff; ``None`` means the package default policy
    retry_policy: object | None = None

    def _policy(self):
        if self.retry_policy is not None:
            return self.retry_policy
        from ..resilience.retry import NETWORK_RETRY_POLICY
        return NETWORK_RETRY_POLICY

    def message_cost(self, size: int, hops: int = 1,
                     concurrent_senders: int = 1,
                     busy_fraction: float = 0.0,
                     comm_intensity: float = 1.0,
                     storm: bool = False) -> MessageCost:
        base = super().message_cost(size, hops=hops,
                                    concurrent_senders=concurrent_senders,
                                    busy_fraction=busy_fraction,
                                    comm_intensity=comm_intensity,
                                    storm=storm)
        policy = self._policy()
        attempts = policy.expected_attempts(self.loss_rate)
        delivered = attempts * (1.0 - self.loss_rate)
        backoff = policy.expected_backoff(self.loss_rate)
        return MessageCost(
            sender_cpu=base.sender_cpu * attempts,
            wire=base.wire * attempts + backoff,
            receiver_cpu=base.receiver_cpu * max(delivered, 1.0))


def degrade(port: Parcelport, loss_rate: float,
            retry_policy=None) -> DegradedParcelport:
    """A lossy copy of ``port`` (named ``<port>+loss<rate>``)."""
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    base = {f.name: getattr(port, f.name) for f in fields(Parcelport)}
    base["name"] = f"{port.name}+loss{loss_rate:g}"
    return DegradedParcelport(**base, loss_rate=loss_rate,
                              retry_policy=retry_policy)


def _mpi() -> Parcelport:
    """Two-sided Cray-MPICH-like transport (the HPX default parcelport)."""
    return Parcelport(
        name="mpi",
        latency=1.7e-6,
        bandwidth=5.5e9,          # effective, after extra copies
        send_overhead=0.99e-6,    # Isend + parcel encode
        recv_overhead=1.35e-6,    # matching + unexpected-message queue
        copy_per_byte=1.1e-10,    # one extra copy at ~9 GB/s on each side
        rendezvous=True,
        progress_interference=0.36e-6,
        poll_delay_busy=0.0,      # MPI progresses inside its own calls
        idle_contention=19.2e-6,  # idle workers serialize on MPI's locks
        storm_factor=5.0,         # unexpected-message queue scans
    )


def _libfabric() -> Parcelport:
    """One-sided libfabric/GNI transport (the paper's new parcelport)."""
    return Parcelport(
        name="libfabric",
        latency=1.1e-6,
        bandwidth=9.5e9,          # RMA from pinned buffers, near line rate
        send_overhead=0.27e-6,    # lock-free injection
        recv_overhead=0.315e-6,   # completion event -> future, no matching
        copy_per_byte=0.0,        # zero-copy RMA (Biddiscombe et al. 2017)
        rendezvous=False,         # one-sided put/get, no handshake
        progress_interference=0.0225e-6,
        poll_delay_busy=10.0e-6,  # nobody polls while all workers compute
        idle_contention=8.0e-6,   # lock-free, but cores still contend
        storm_factor=1.0,         # RMA has no matching queue
    )


#: transport catalogue used by the scaling experiments
PARCELPORTS: dict[str, Parcelport] = {
    "mpi": _mpi(),
    "libfabric": _libfabric(),
}
