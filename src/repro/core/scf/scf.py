"""Hachisu self-consistent-field (SCF) solver (Sec. 4.2).

"Finally, we assemble the initial scenario using the Self-Consistent
Field technique alongside the FMM solver.  Octo-Tiger can produce initial
models for binary systems that are in contact, semi-detached, or
detached."

The Hachisu (1986) iteration for a rigidly rotating polytrope: given the
current density, solve gravity (with the FMM), then impose the Bernoulli
integral

    H + Phi - 1/2 Omega^2 varpi^2 = C

fixing the integration constants from boundary points.  For a single
rotating star the constants are (C, Omega^2) fixed by the equatorial and
polar surface radii; for a binary, two constants C1, C2 (one per star)
and Omega^2 follow from three boundary points (the outer equatorial edge
of each star plus one inner point).  Enthalpy maps back to density through
the polytropic relation H = (n + 1) K rho^(1/n).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gravity.fmm import FmmSolver
from .lane_emden import Polytrope, solve_lane_emden

__all__ = ["ScfResult", "scf_single_star", "scf_binary"]


@dataclass
class ScfResult:
    """Converged SCF model on a uniform grid (G = 1 units)."""

    rho: np.ndarray
    phi: np.ndarray
    omega: float
    K: float
    n_poly: float
    dx: float
    origin: tuple[float, float, float]
    iterations: int
    residuals: list[float]

    def pressure(self) -> np.ndarray:
        return self.K * self.rho ** (1.0 + 1.0 / self.n_poly)


def _grid_axes(M: int, dx: float, origin):
    ax = [origin[d] + (np.arange(M) + 0.5) * dx for d in range(3)]
    return (ax[0][:, None, None], ax[1][None, :, None], ax[2][None, None, :])


def _solve_phi(rho: np.ndarray, dx: float,
               solver_box: list) -> np.ndarray:
    if not solver_box:
        solver_box.append(FmmSolver.from_uniform(rho, dx))
    solver = solver_box[0]
    depth = solver._uniform_shape[0]
    solver.set_leaf_density({depth: rho})
    phi, _acc = solver.uniform_field(solver.solve())
    return phi


def scf_single_star(M: int = 32, domain: float = 4.0, n_poly: float = 1.5,
                    radius_eq: float = 1.0, axis_ratio: float = 1.0,
                    rho_max: float = 1.0, max_iter: int = 60,
                    tol: float = 1e-6) -> ScfResult:
    """SCF model of a single (optionally rotating) polytrope.

    ``axis_ratio`` = polar/equatorial surface radius; 1.0 gives the
    non-rotating Lane-Emden star (Omega = 0), smaller values spin it up.
    """
    if not 0.0 < axis_ratio <= 1.0:
        raise ValueError("axis ratio must be in (0, 1]")
    dx = domain / M
    origin = (-domain / 2.0,) * 3
    x, y, z = _grid_axes(M, dx, origin)
    r = np.sqrt(x * x + y * y + z * z)
    # seed with a sphere
    rho = np.where(r < radius_eq, rho_max * (1 - (r / radius_eq) ** 2), 0.0)
    rho = np.clip(rho, 0.0, None) ** n_poly
    rho *= rho_max / max(rho.max(), 1e-300)
    solver_box: list = []
    residuals: list[float] = []
    omega2 = 0.0
    K = 1.0
    varpi2 = x * x + y * y

    def interp_phi(phi, point):
        # nearest-cell sample (adequate on the SCF grid)
        idx = tuple(int(np.clip((point[d] - origin[d]) / dx, 0, M - 1))
                    for d in range(3))
        return phi[idx]

    for it in range(max_iter):
        phi = _solve_phi(rho, dx, solver_box)
        # boundary points: equatorial surface (radius_eq, 0, 0) and pole
        pA = (radius_eq, 0.0, 0.0)
        pB = (0.0, 0.0, axis_ratio * radius_eq)
        phiA = interp_phi(phi, pA)
        phiB = interp_phi(phi, pB)
        if axis_ratio < 1.0:
            # H = 0 at both surface points:
            # C = phiA - 1/2 w2 Req^2 (equator) and C = phiB (pole)
            omega2 = max(2.0 * (phiA - phiB) / radius_eq ** 2, 0.0)
        C = phiA - 0.5 * omega2 * radius_eq ** 2
        H = C - phi + 0.5 * omega2 * varpi2
        H = np.clip(H, 0.0, None)
        Hmax = H.max()
        if Hmax <= 0:
            raise RuntimeError("SCF enthalpy collapsed to zero")
        # K from normalizing the maximum density
        K = Hmax / ((n_poly + 1.0) * rho_max ** (1.0 / n_poly))
        rho_new = (H / ((n_poly + 1.0) * K)) ** n_poly
        res = float(np.abs(rho_new - rho).max() / rho_max)
        residuals.append(res)
        rho = 0.5 * rho + 0.5 * rho_new     # under-relaxation
        if res < tol:
            break
    phi = _solve_phi(rho, dx, solver_box)
    return ScfResult(rho=rho, phi=phi, omega=float(np.sqrt(omega2)), K=K,
                     n_poly=n_poly, dx=dx, origin=origin,
                     iterations=it + 1, residuals=residuals)


def scf_binary(M: int = 32, domain: float = 8.0, n_poly: float = 1.5,
               separation: float = 3.0, mass_ratio: float = 0.35,
               radius1: float = 1.0, rho_max: float = 1.0,
               max_iter: int = 80, tol: float = 1e-5) -> ScfResult:
    """SCF model of a synchronously rotating binary (Hachisu 1986 II).

    The primary sits at x1 > 0, the secondary at x2 < 0 (centre of mass at
    the origin).  Boundary points: the outer equatorial edges of the two
    stars fix (C1 shared with Omega^2); densities renormalize so the
    maxima of each lobe keep the requested mass ratio.
    """
    dx = domain / M
    origin = (-domain / 2.0,) * 3
    x, y, z = _grid_axes(M, dx, origin)
    q = mass_ratio
    x1 = separation * q / (1.0 + q)         # primary offset (+x)
    x2 = x1 - separation                    # secondary offset (-x)
    # Roche-ish secondary radius, floored to stay resolvable on the grid
    radius2 = max(radius1 * max(q, 1e-3) ** 0.4, 2.0 * dx)
    r1 = np.sqrt((x - x1) ** 2 + y * y + z * z)
    r2 = np.sqrt((x - x2) ** 2 + y * y + z * z)
    rho = np.where(r1 < radius1,
                   rho_max * np.clip(1 - (r1 / radius1) ** 2, 0, None)
                   ** n_poly, 0.0)
    rho = rho + np.where(
        r2 < radius2,
        q * rho_max * np.clip(1 - (r2 / radius2) ** 2, 0, None) ** n_poly,
        0.0)
    varpi2 = x * x + y * y
    side1 = np.broadcast_to(x > 0.5 * (x1 + x2),
                            (M, M, M))
    # the Bernoulli surface H = 0 reopens beyond the corotation radius
    # (centrifugal wins); Hachisu's prescription keeps matter only inside
    # the two stellar lobes bounded by the edge points
    lobe1 = (x - x1) ** 2 + y * y + z * z <= (1.25 * radius1) ** 2
    lobe2 = (x - x2) ** 2 + y * y + z * z <= (1.25 * radius2) ** 2
    allowed = lobe1 | lobe2
    solver_box: list = []
    residuals: list[float] = []
    omega2 = separation ** (-3)             # Keplerian seed
    K = 1.0

    def sample(phi, px):
        i = int(np.clip((px - origin[0]) / dx, 0, M - 1))
        j = int(np.clip((0.0 - origin[1]) / dx, 0, M - 1))
        return phi[i, j, j]

    for it in range(max_iter):
        phi = _solve_phi(rho, dx, solver_box)
        # Hachisu's three boundary points: the outer and inner edges of
        # the primary fix (C1, omega^2); the outer edge of the secondary
        # fixes C2.  Each side of the binary uses its own constant.
        pA = x1 + radius1        # primary outer edge
        pB = x1 - radius1        # primary inner edge
        pC = x2 - radius2        # secondary outer edge
        phiA = sample(phi, pA)
        phiB = sample(phi, pB)
        phiC = sample(phi, pC)
        denom = pA ** 2 - pB ** 2
        if abs(denom) < 1e-12:
            omega2 = separation ** (-3)
        else:
            omega2 = max(2.0 * (phiA - phiB) / denom, 0.0)
        C1 = phiA - 0.5 * omega2 * pA ** 2
        C2 = phiC - 0.5 * omega2 * pC ** 2
        Cfield = np.where(side1, C1, C2)
        H = np.clip(Cfield - phi + 0.5 * omega2 * varpi2, 0.0, None)
        H1max = H[side1 & allowed].max()
        H2max = H[(~side1) & allowed].max()
        if H1max <= 0:
            raise RuntimeError("SCF lost the primary component")
        if H2max <= 0:
            # the secondary's Bernoulli surface closed this iteration —
            # reseed its lobe and keep iterating (common for extreme q on
            # coarse grids)
            seed2 = np.where(
                r2 < radius2,
                q * rho_max * np.clip(1 - (r2 / radius2) ** 2, 0,
                                      None) ** n_poly, 0.0)
            rho = np.where(~side1, np.maximum(rho, seed2), rho)
            residuals.append(1.0)
            continue
        K = H1max / ((n_poly + 1.0) * rho_max ** (1.0 / n_poly))
        rho_new = np.where(allowed,
                           (H / ((n_poly + 1.0) * K)) ** n_poly, 0.0)
        # keep the secondary's peak density at q^x of the primary's
        peak2 = rho_new[(~side1) & allowed].max()
        if peak2 > 0:
            rho_new[~side1] *= (q * rho_max) / peak2
        res = float(np.abs(rho_new - rho).max() / rho_max)
        residuals.append(res)
        rho = 0.5 * rho + 0.5 * rho_new
        if res < tol:
            break
    phi = _solve_phi(rho, dx, solver_box)
    return ScfResult(rho=rho, phi=phi, omega=float(np.sqrt(omega2)), K=K,
                     n_poly=n_poly, dx=dx, origin=origin,
                     iterations=it + 1, residuals=residuals)
