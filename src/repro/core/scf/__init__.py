"""Initial-model solvers: Lane-Emden polytropes and the Hachisu SCF."""

from .lane_emden import LaneEmdenSolution, solve_lane_emden, Polytrope
from .scf import ScfResult, scf_single_star, scf_binary

__all__ = ["LaneEmdenSolution", "solve_lane_emden", "Polytrope",
           "ScfResult", "scf_single_star", "scf_binary"]
