"""Lane-Emden polytropes: the single-star equilibria of the test suite.

A polytrope p = K rho^(1 + 1/n) in hydrostatic equilibrium satisfies the
Lane-Emden equation for theta(xi) with rho = rho_c theta^n.  n = 3/2
(gamma = 5/3) models the fully convective stars of the V1309 system; the
third/fourth verification tests of Sec. 4.2 place such a star on the grid
at rest / in uniform motion and require the structure to persist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

__all__ = ["LaneEmdenSolution", "solve_lane_emden", "Polytrope"]


@dataclass(frozen=True)
class LaneEmdenSolution:
    """theta(xi) profile up to the first zero xi_1."""

    n: float
    xi: np.ndarray
    theta: np.ndarray
    dtheta: np.ndarray
    xi1: float
    dtheta_xi1: float

    def theta_at(self, xi: np.ndarray) -> np.ndarray:
        """theta interpolated (zero outside the surface)."""
        out = np.interp(np.asarray(xi, float), self.xi, self.theta,
                        right=0.0)
        return np.clip(out, 0.0, None)


def solve_lane_emden(n: float = 1.5, xi_max: float = 20.0,
                     rtol: float = 1e-10) -> LaneEmdenSolution:
    """Integrate the Lane-Emden equation to the surface theta = 0."""
    if n < 0:
        raise ValueError("polytropic index must be non-negative")

    def rhs(xi, y):
        theta, dtheta = y
        th = max(theta, 0.0)
        return [dtheta, -th ** n - 2.0 * dtheta / xi]

    def surface(xi, y):
        return y[0]
    surface.terminal = True
    surface.direction = -1

    # series start away from the singular origin
    eps = 1e-6
    y0 = [1.0 - eps ** 2 / 6.0, -eps / 3.0]
    sol = solve_ivp(rhs, (eps, xi_max), y0, events=surface,
                    rtol=rtol, atol=1e-12, dense_output=True, max_step=0.01)
    if not sol.t_events[0].size:
        raise RuntimeError(f"no Lane-Emden surface found below xi={xi_max}")
    xi1 = float(sol.t_events[0][0])
    xi = np.linspace(eps, xi1, 2000)
    y = sol.sol(xi)
    dth1 = float(sol.sol(xi1)[1])
    return LaneEmdenSolution(n=n, xi=xi, theta=np.clip(y[0], 0.0, None),
                             dtheta=y[1], xi1=xi1, dtheta_xi1=dth1)


@dataclass(frozen=True)
class Polytrope:
    """A physical polytropic star: radius R, mass M, index n (G = 1)."""

    n: float
    radius: float
    mass: float

    def profile(self, r: np.ndarray,
                le: LaneEmdenSolution | None = None
                ) -> tuple[np.ndarray, np.ndarray]:
        """(rho, p) at radii ``r``.

        Central density and K follow from (M, R, n) via the Lane-Emden
        scalings: M = -4 pi a^3 rho_c xi1^2 theta'(xi1), R = a xi1.
        """
        le = le or solve_lane_emden(self.n)
        a = self.radius / le.xi1
        rho_c = self.mass / (-4.0 * np.pi * a ** 3 * le.xi1 ** 2
                             * le.dtheta_xi1)
        # 4 pi G a^2 = (n+1) K rho_c^(1/n - 1)  =>  K
        K = 4.0 * np.pi * a ** 2 * rho_c ** (1.0 - 1.0 / self.n) \
            / (self.n + 1.0)
        theta = le.theta_at(np.asarray(r, float) / a)
        rho = rho_c * theta ** self.n
        p = K * rho ** (1.0 + 1.0 / self.n)
        return rho, p

    def central_density(self, le: LaneEmdenSolution | None = None) -> float:
        le = le or solve_lane_emden(self.n)
        a = self.radius / le.xi1
        return self.mass / (-4.0 * np.pi * a ** 3 * le.xi1 ** 2
                            * le.dtheta_xi1)
