"""Distributed block mesh: AGAS-sharded sub-grids with parcelport halos.

The node-level :class:`~repro.core.mesh.BlockMesh` already speaks the
paper's protocol — one generation-matched channel per neighbour direction
per sub-grid (Sec. 5.2) — but every block lives in one address space and
no halo ever crosses a locality.  :class:`DistBlockMesh` closes ROADMAP
item 2's first gap: each block becomes an AGAS-registered, migratable
:class:`~repro.runtime.agas.Component` homed on one of ``n_localities``
simulated localities, and every halo send is routed through a
:class:`~repro.network.transport.HaloTransport` that charges
cross-locality traffic to the parcelport cost model (eager vs rendezvous
vs RMA by ``EAGER_BYTES``) and may deliver it out of order — the
generation matching of the channel protocol is what keeps the physics
byte-identical anyway (Sec. 4.1: "semantic and syntactic equivalence of
local and remote operations").

Contracts this class maintains (asserted by the distributed tests):

* a distributed step is **byte-identical** to the node-level
  ``BlockMesh`` step on the same initial data, for any partition, any
  parcelport, and any delivery order;
* killing a locality (via :meth:`fail_locality` or the phi-accrual
  detector) evacuates its block components through AGAS — the blocks'
  GIDs stay valid, ownership moves, and subsequent halo traffic is
  re-charged along the new local/remote split;
* every cross-locality halo is charged to the parcelport: the
  ``/distmesh/*`` and ``/parcels/halo:<port>/*`` counters reconcile
  exactly (halo sets == halo gets; transport tallies == port tallies).

Direct ``Channel.set`` calls are banned here by lint rule REPRO007 —
every send must go through the transport so the accounting above cannot
silently rot.
"""

from __future__ import annotations

from typing import Callable

from ..network.transport import HaloTransport
from ..runtime.agas import AgasRuntime, Component, Gid, LocalityFailed
from ..runtime.counters import CounterRegistry, default_registry
from .mesh import BlockMesh

__all__ = ["DistBlockMesh", "BlockComponent", "slab_partition"]


def slab_partition(index: int, n_blocks: int, n_localities: int) -> int:
    """Contiguous slabs of the block index space (the default layout)."""
    return index * n_localities // n_blocks


class BlockComponent(Component):
    """The AGAS face of one sub-grid block.

    Holds no state of its own — the block array stays in the mesh, as the
    paper's grid cells stay in the octree — but its GID is the name the
    runtime migrates, and :meth:`on_migrate` is where the mesh learns
    that a block changed locality (evacuation or load balancing alike).
    """

    def __init__(self, mesh: "DistBlockMesh",
                 ip: tuple[int, int, int]) -> None:
        super().__init__()
        self._mesh = mesh
        self.ip = ip

    def on_migrate(self, old_locality: int, new_locality: int) -> None:
        self._mesh._block_moved(self.ip, old_locality, new_locality)


class DistBlockMesh(BlockMesh):
    """A :class:`BlockMesh` whose blocks are sharded across localities.

    Parameters (beyond :class:`BlockMesh`'s)
    ----------------------------------------
    n_localities:
        Simulated compute nodes to shard over (ignored when ``agas`` is
        supplied — its locality count wins).
    agas:
        An existing :class:`AgasRuntime` to register blocks with; by
        default a fresh one is created, so a failure detector can be
        pointed at ``mesh.agas``.
    transport / port / reorder_seed:
        Either a ready :class:`HaloTransport`, or the parcelport (name or
        instance) to build one around; ``reorder_seed`` enables seeded
        out-of-order delivery of remote halos.
    partition:
        ``partition(index, n_blocks, n_localities) -> locality`` over the
        sorted block index; default :func:`slab_partition`.
    """

    def __init__(self, blocks_per_edge: int, *, n_localities: int = 2,
                 agas: AgasRuntime | None = None,
                 transport: HaloTransport | None = None,
                 port: str = "libfabric",
                 reorder_seed: int | None = None,
                 partition: Callable[[int, int, int], int] | None = None,
                 registry: CounterRegistry | None = None,
                 **mesh_kwargs):
        super().__init__(blocks_per_edge, **mesh_kwargs)
        self.registry = registry or default_registry()
        if agas is None:
            if n_localities < 1:
                raise ValueError("need at least one locality")
            agas = AgasRuntime(n_localities, registry=self.registry)
        self.agas = agas
        self.n_localities = agas.n_localities
        self.transport = transport or HaloTransport(
            port, reorder_seed=reorder_seed)
        partition = partition or slab_partition
        ips = sorted(self.blocks)
        self._owner: dict[tuple[int, int, int], int] = {}
        self._components: dict[tuple[int, int, int], BlockComponent] = {}
        self.gids: dict[tuple[int, int, int], Gid] = {}
        self.block_migrations = 0
        for index, ip in enumerate(ips):
            loc = partition(index, len(ips), self.n_localities)
            if not 0 <= loc < self.n_localities:
                raise ValueError(
                    f"partition put block {ip} on locality {loc}, outside "
                    f"[0, {self.n_localities})")
            comp = BlockComponent(self, ip)
            self.gids[ip] = self.agas.register(comp, loc)
            self._components[ip] = comp
            self._owner[ip] = loc
        #: blocks whose last live copy died with a locality (their GIDs
        #: resolve to LocalityFailed until apply_ownership restores them)
        self._lost_blocks: set[tuple[int, int, int]] = set()

    # -- ownership ------------------------------------------------------------

    def owners(self) -> dict[tuple[int, int, int], int]:
        """Current block -> locality map (a copy)."""
        return dict(self._owner)

    def locality_blocks(self) -> dict[int, int]:
        """Blocks hosted per locality (every locality listed, even empty)."""
        counts = {loc: 0 for loc in range(self.n_localities)}
        for loc in self._owner.values():
            counts[loc] += 1
        return counts

    def _block_moved(self, ip: tuple[int, int, int], old: int,
                     new: int) -> None:
        """AGAS moved a block component (evacuation or load balancing)."""
        self._owner[ip] = new
        self.block_migrations += 1
        self.registry.increment("/distmesh/migrations")

    def fail_locality(self, locality: int,
                      evacuate: bool = True) -> dict[str, list[Gid]]:
        """Kill a locality; AGAS evacuates its blocks (GIDs stay valid).

        With ``evacuate=False`` — or when the failure outruns evacuation
        (correlated multi-node loss) — the locality's blocks are *lost*:
        their GIDs invalidate and only :meth:`apply_ownership`, fed from a
        replicated checkpoint, can bring them back.
        """
        result = self.agas.fail_locality(locality, evacuate=evacuate)
        by_gid = {gid: ip for ip, gid in self.gids.items()}
        self._lost_blocks.update(by_gid[g] for g in result["lost"])
        self.registry.increment("/distmesh/localities-failed")
        return result

    @property
    def lost_blocks(self) -> set[tuple[int, int, int]]:
        """Blocks whose only live copy died with a failed locality."""
        return set(self._lost_blocks)

    def apply_ownership(self, new_owner: dict[tuple[int, int, int], int]
                        ) -> dict[str, int]:
        """Remap block ownership for an elastic restart.

        ``new_owner`` maps every block to its post-recovery locality
        (typically ``slab_partition`` re-evaluated over the surviving
        locality count).  Blocks whose components are still live are
        migrated through AGAS as usual; blocks whose GIDs were *lost* with
        their node are resurrected via
        :meth:`~repro.runtime.agas.AgasRuntime.restore_component` — the
        same GID, a fresh :class:`BlockComponent`, a surviving home.  The
        block *data* is the recovery coordinator's problem (it restores
        payloads from the replicated store); this method only fixes the
        name service and the owner map the halo accounting charges
        against.
        """
        migrated = restored = 0
        for ip in sorted(new_owner):
            loc = new_owner[ip]
            gid = self.gids[ip]
            try:
                _, current = self.agas.resolve(gid)
            except LocalityFailed:
                comp = BlockComponent(self, ip)
                self.agas.restore_component(comp, gid, loc)
                self._components[ip] = comp
                self._owner[ip] = loc
                self._lost_blocks.discard(ip)
                restored += 1
                self.registry.increment("/distmesh/restorations")
                continue
            if current != loc:
                self.agas.migrate(gid, loc)
                migrated += 1
        return {"migrated": migrated, "restored": restored}

    # -- halo exchange --------------------------------------------------------

    def _halo_exchange(self, generation: int) -> None:
        """One stage of halos, with cross-locality sends charged.

        Same structure as the node-level exchange — receives posted
        first, sends second, futures drained, physical boundaries last —
        but every send goes through the transport (local fast path or
        parcelport charge), and buffered remote deliveries are flushed in
        the transport's (possibly shuffled) order before the drain.
        """
        recv, send = self._halo_plan
        owner = self._owner
        transport = self.transport
        pending = [(ip, off, ch.get(generation)) for ip, off, ch in recv]
        for ip, off, ch in send:
            nb = (ip[0] + off[0], ip[1] + off[1], ip[2] + off[2])
            transport.send(ch, self._extract_halo(self.blocks[ip], off),
                           generation, owner[ip], owner[nb])
        transport.flush()
        self.registry.increment("/distmesh/halo/sets", len(send))
        for ip, off, fut in pending:
            self._insert_halo(self.blocks[ip], off, fut.get())
        self.registry.increment("/distmesh/halo/gets", len(pending))
        for ip, blk in self.blocks.items():
            self._physical_boundary(ip, blk)

    def _physical_boundary(self, ip, blk) -> None:
        """Domain BC, with cross-locality periodic wraps charged.

        A periodic wrap reads the wrapped block's interior directly —
        a one-sided get when that block lives elsewhere, so its bytes
        are booked through the transport (same data, same insertion as
        the node-level path: bitwise identity is untouched).
        """
        if self.bc != "periodic":
            super()._physical_boundary(ip, blk)
            return
        owner = self._owner
        dst = owner[ip]
        for off, src_ip in self._periodic_wraps(ip):
            mirror = (-off[0], -off[1], -off[2])
            data = self._extract_halo(self.blocks[src_ip], mirror)
            self.transport.charge_onesided(data.nbytes, owner[src_ip], dst)
            self._insert_halo(blk, off, data)

    # -- rollback -------------------------------------------------------------

    def on_restore(self) -> None:
        """Rollback hook: also drop halos buffered for reordered delivery
        (they belong to the timeline being discarded)."""
        super().on_restore()
        self.transport.discard_pending()

    # -- counters -------------------------------------------------------------

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Publish ``/distmesh/...`` gauges (and the halo port's
        ``/parcels/halo:<name>/...``) into ``registry``."""
        from ..network import parcelport
        registry = registry or self.registry
        for loc, count in self.locality_blocks().items():
            registry.set_gauge(f"/distmesh/blocks/loc{loc}", float(count))
        registry.set_gauge("/distmesh/localities", float(self.n_localities))
        registry.set_gauge("/distmesh/block-migrations",
                           float(self.block_migrations))
        for key, value in self.transport.stats.snapshot().items():
            registry.set_gauge(f"/distmesh/halo/{key.replace('_', '-')}",
                               float(value))
        parcelport.publish_counters(registry)
