"""AMR time-stepping driver with flux correction (refluxing).

Evolves an :class:`~repro.core.octree.Octree` of sub-grids with a global
CFL timestep, mirroring Octo-Tiger's execution per level (Sec. 4.2):

* ghost shells fill from same-level neighbours (direct copy), coarser
  neighbours (conservative piecewise-constant prolongation) or finer
  neighbours (conservative restriction of the interface cells);
* each leaf updates with the shared PPM/KT right-hand side;
* at every coarse-fine face the coarse cell's flux is *replaced* by the
  area-weighted sum of the fine fluxes (refluxing), so mass, momentum and
  energy totals are conserved across resolution jumps to machine
  precision — the property the conservation tests assert.

The driver requires a 2:1 balanced tree (which :class:`Octree.refine`
maintains).  Gravity on AMR trees is available through
``Octree.fmm_levels`` + :class:`~repro.core.gravity.fmm.FmmSolver`; the
driver here is hydro-only (the coupled AMR+gravity production path in
the paper is exercised at fixed resolution by :class:`~repro.core.mesh.Mesh`).
"""

from __future__ import annotations

import numpy as np

from .eos import IdealGas
from .grid import NF, NGHOST, RHO, SUBGRID_N, SX, TAU
from .hydro.solver import HydroOptions, apply_floors, compute_rhs
from .hydro.riemann import conserved_to_primitive
from .octree import Octree, OctreeNode, prolong, restrict

__all__ = ["AmrMesh"]


class AmrMesh:
    """Hydro evolution on an adaptive octree with refluxing."""

    def __init__(self, tree: Octree, options: HydroOptions | None = None,
                 bc: str = "outflow"):
        if bc not in ("outflow", "reflect"):
            raise ValueError("AMR driver supports outflow/reflect walls")
        self.tree = tree
        self.options = options or HydroOptions(eos=IdealGas())
        self.bc = bc
        self.time = 0.0
        self.steps = 0

    # -- ghost filling ----------------------------------------------------

    def _find_neighbor(self, node: OctreeNode, off: tuple[int, int, int]
                       ) -> OctreeNode | None:
        """Leaf or interior node covering the neighbour position, or None
        at a domain wall."""
        level, ipos = node.level, node.ipos
        nb = tuple(ipos[d] + off[d] for d in range(3))
        if any(c < 0 or c >= (1 << level) for c in nb):
            return None
        lvl, pos = level, nb
        while lvl > 0 and self.tree.get(lvl, tuple(pos)) is None:
            pos = tuple(c // 2 for c in pos)
            lvl -= 1
        return self.tree.get(lvl, tuple(pos))

    def fill_ghosts(self) -> None:
        """Populate every leaf's ghost shell from the tree."""
        self._virtual_cache: dict = {}
        for node in self.tree.leaves():
            for off in np.ndindex(3, 3, 3):
                d = tuple(int(c) - 1 for c in off)
                if d == (0, 0, 0):
                    continue
                nb = self._find_neighbor(node, d)
                if nb is None:
                    continue        # wall handled below
                self._copy_halo(node, nb, d)
            self._wall_boundaries(node)

    def _virtual_interior(self, node: OctreeNode) -> np.ndarray:
        """Interior of a node at its own level; refined nodes assemble
        and conservatively restrict their children (recursively)."""
        if not node.refined:
            return node.grid.interior
        cached = self._virtual_cache.get(node.key)
        if cached is not None:
            return cached
        n = self.tree.subgrid_n
        merged = np.zeros((NF, 2 * n, 2 * n, 2 * n))
        for cip in node.children_ipos():
            child = self.tree.get(node.level + 1, cip)
            sub = self._virtual_interior(child)
            a = (cip[0] & 1) * n
            b = (cip[1] & 1) * n
            c = (cip[2] & 1) * n
            merged[:, a:a + n, b:b + n, c:c + n] = sub
        out = restrict(merged)
        self._virtual_cache[node.key] = out
        return out

    def _region(self, d: int, side: int, n: int, ghost: bool
                ) -> slice:
        """Slice along one axis: the ghost strip (ghost=True) or the
        interior strip a neighbour needs (ghost=False)."""
        g = NGHOST
        if side == 0:
            return slice(g, g + n)
        if ghost:
            return slice(0, g) if side < 0 else slice(g + n, g + n + g)
        return slice(g, 2 * g) if side < 0 else slice(n, g + n)

    def _interior_region(self, ax: int, side: int, n: int) -> slice:
        """Same as _region(ghost=False) but in interior coordinates
        (for virtual blocks without a ghost shell)."""
        g = NGHOST
        if side == 0:
            return slice(0, n)
        return slice(0, g) if side < 0 else slice(n - g, n)

    def _copy_halo(self, node: OctreeNode, nb: OctreeNode,
                   d: tuple[int, int, int]) -> None:
        n = self.tree.subgrid_n
        g = NGHOST
        dst = tuple([slice(None)]
                    + [self._region(ax, d[ax], n, ghost=True)
                       for ax in range(3)])
        if nb.level == node.level:
            # interior-coordinate source strip (virtual if nb is refined)
            src = tuple([slice(None)]
                        + [self._interior_region(ax, -d[ax], n)
                           for ax in range(3)])
            node.grid.U[dst] = self._virtual_interior(nb)[src]
        elif nb.level == node.level - 1:
            # coarse neighbour: prolong the coarse strip covering our halo
            self._fill_from_coarse(node, nb, d, dst)
        else:
            raise RuntimeError(
                f"tree not 2:1 balanced at {node.key} vs {nb.key}")

    def _fill_from_coarse(self, node, nb, d, dst) -> None:
        """Piecewise-constant prolongation of a coarse neighbour strip."""
        n = self.tree.subgrid_n
        g = NGHOST
        # fine ghost cell (node frame) -> global fine index -> coarse cell
        out = node.grid.U[dst]
        shape = out.shape[1:]
        src = self._virtual_interior(nb)    # interior coords, no ghosts
        idx = []
        for ax in range(3):
            r = dst[1 + ax]
            fine_local = np.arange(r.start, r.stop) - g
            fine_global = node.ipos[ax] * n + fine_local
            coarse_local = fine_global // 2 - nb.ipos[ax] * n
            idx.append(np.clip(coarse_local, 0, n - 1))
        I, J, K = np.meshgrid(idx[0], idx[1], idx[2], indexing="ij")
        node.grid.U[dst] = src[:, I, J, K]

    def _wall_boundaries(self, node: OctreeNode) -> None:
        n = self.tree.subgrid_n
        g = NGHOST
        U = node.grid.U
        for ax in range(3):
            for side in (-1, 1):
                nbpos = node.ipos[ax] + side
                if 0 <= nbpos < (1 << node.level):
                    continue
                sl = [slice(None)] * 4
                for k in range(g):
                    dsti = g - 1 - k if side < 0 else g + n + k
                    if self.bc == "outflow":
                        srci = g if side < 0 else g + n - 1
                    else:
                        srci = g + k if side < 0 else g + n - 1 - k
                    dsts = sl.copy()
                    dsts[1 + ax] = slice(dsti, dsti + 1)
                    srcs = sl.copy()
                    srcs[1 + ax] = slice(srci, srci + 1)
                    U[tuple(dsts)] = U[tuple(srcs)]
                if self.bc == "reflect":
                    m = sl.copy()
                    m[0] = SX + ax
                    m[1 + ax] = slice(0, g) if side < 0 \
                        else slice(g + n, g + n + g)
                    U[tuple(m)] *= -1.0

    # -- refluxing ----------------------------------------------------------

    def _reflux(self, rhs: dict, fluxes: dict) -> None:
        """Replace coarse fluxes at coarse-fine faces with the restricted
        fine fluxes, so face transfers cancel exactly in the totals."""
        n = self.tree.subgrid_n
        for node in self.tree.leaves():
            for ax in range(3):
                for side in (-1, 1):
                    d = tuple(side if a == ax else 0 for a in range(3))
                    nb = self._find_neighbor(node, d)
                    if nb is None or nb.refined or nb.level >= node.level:
                        continue
                    # `node` is fine, `nb` coarse: fix nb's rhs at the face
                    self._apply_flux_fix(node, nb, ax, side, rhs, fluxes)

    def _apply_flux_fix(self, fine: OctreeNode, coarse: OctreeNode,
                        ax: int, side: int, rhs: dict,
                        fluxes: dict) -> None:
        n = self.tree.subgrid_n
        dx_f = self.tree.cell_width(fine.level)
        dx_c = self.tree.cell_width(coarse.level)
        F_f = fluxes[fine.key][ax]
        F_c = fluxes[coarse.key][ax]
        # fine face plane at its low (side<0) or high (side>0) boundary
        f_plane = 0 if side < 0 else n
        slf = [slice(None)] * 4
        slf[1 + ax] = slice(f_plane, f_plane + 1)
        fine_face = F_f[tuple(slf)].squeeze(1 + ax)      # (NF, n, n)
        # restrict the fine face fluxes 2x2 -> coarse face cells
        t = fine_face.reshape(NF, n // 2, 2, n // 2, 2).mean(axis=(2, 4))
        # locate the coarse face cells this fine block touches
        axes_t = [a for a in range(3) if a != ax]
        coarse_plane = None
        # global coarse index of the face plane
        fine_global_face = fine.ipos[ax] * n + (0 if side < 0 else n)
        coarse_face_idx = fine_global_face // 2 - coarse.ipos[ax] * n
        # transverse offsets of the fine block inside the coarse block
        offs = []
        for a in axes_t:
            fine_global0 = fine.ipos[a] * n
            coarse_local0 = fine_global0 // 2 - coarse.ipos[a] * n
            offs.append(coarse_local0)
        # coarse flux array index along ax: face index == cell index on the
        # high side of the coarse cell when side<0 (fine block sits on the
        # +ax side of the coarse neighbour), etc.
        c_face = coarse_face_idx
        slc = [slice(None)] * 4
        slc[1 + ax] = slice(c_face, c_face + 1)
        t_slices = [slice(offs[0], offs[0] + n // 2),
                    slice(offs[1], offs[1] + n // 2)]
        slc[1 + axes_t[0]] = t_slices[0]
        slc[1 + axes_t[1]] = t_slices[1]
        old = F_c[tuple(slc)].squeeze(1 + ax)
        delta = t - old
        # correct the coarse cell adjacent to the face: the divergence of
        # that cell used `old`; swap in the restricted fine flux
        cell_idx = c_face - 1 if side < 0 else c_face
        if not 0 <= cell_idx < n:
            return
        rsl = [slice(None)] * 4
        rsl[1 + ax] = slice(cell_idx, cell_idx + 1)
        rsl[1 + axes_t[0]] = t_slices[0]
        rsl[1 + axes_t[1]] = t_slices[1]
        # side is the direction fine -> coarse: the shared face is the
        # coarse block's HIGH face when side < 0 (enters its divergence
        # with a minus sign) and its LOW face when side > 0
        sign = -1.0 if side < 0 else 1.0
        rhs[coarse.key][tuple(rsl)] += np.expand_dims(
            sign * delta / dx_c, 1 + ax)

    # -- stepping --------------------------------------------------------------

    def compute_dt(self) -> float:
        from .hydro.solver import cfl_dt
        self.fill_ghosts()
        return min(cfl_dt(leaf.grid.U, self.tree.cell_width(leaf.level),
                          self.options) for leaf in self.tree.leaves())

    def _rhs_all(self) -> tuple[dict, dict]:
        rhs: dict = {}
        fluxes: dict = {}
        for node in self.tree.leaves():
            r, f = compute_rhs(node.grid.U,
                               self.tree.cell_width(node.level),
                               self.options,
                               origin=node.grid.origin,
                               return_fluxes=True)
            rhs[node.key] = r
            fluxes[node.key] = f
        self._reflux(rhs, fluxes)
        return rhs, fluxes

    def step(self, dt: float) -> None:
        """One SSP-RK2 step over all leaves with refluxing."""
        g = NGHOST
        n = self.tree.subgrid_n
        inner = (slice(None),) + (slice(g, g + n),) * 3
        self.fill_ghosts()
        rhs1, _ = self._rhs_all()
        saved = {key: self.tree.nodes[key].grid.U.copy() for key in rhs1}
        for key, r in rhs1.items():
            U = self.tree.nodes[key].grid.U
            U[inner] += dt * r
            apply_floors(U, self.options)
        self.fill_ghosts()
        rhs2, _ = self._rhs_all()
        for key in rhs1:
            U = self.tree.nodes[key].grid.U
            U[...] = saved[key]
            U[inner] += 0.5 * dt * (rhs1[key] + rhs2[key])
            apply_floors(U, self.options)
            eos = self.options.eos
            I = U[inner]
            I[TAU] = eos.sync_tau(I[RHO], I[SX], I[SX + 1], I[SX + 2],
                                  I[4], I[TAU])
        self.time += dt
        self.steps += 1

    # -- diagnostics ------------------------------------------------------------

    def totals(self) -> dict[str, float]:
        mass = 0.0
        mom = np.zeros(3)
        egas = 0.0
        for leaf in self.tree.leaves():
            v = leaf.grid.cell_volume
            I = leaf.grid.interior
            mass += float(I[RHO].sum()) * v
            for d in range(3):
                mom[d] += float(I[SX + d].sum()) * v
            egas += float(I[4].sum()) * v
        return {"mass": mass, "momentum_x": float(mom[0]),
                "momentum_y": float(mom[1]), "momentum_z": float(mom[2]),
                "egas": egas}
