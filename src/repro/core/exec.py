"""Futurized execution engine: the gravity+hydro hot-path dispatcher.

The paper's node-level execution model (Sec. 5.1) couples three pieces:
per-subgrid kernels are wrapped in HPX tasks on a work-stealing
scheduler; each CPU worker, when it reaches a kernel launch, first tries
to grab an idle CUDA stream (the kernel then runs on the GPU and its
completion is a future); if every stream it can see is busy the kernel
overflows onto the CPU worker itself.  The :class:`ExecutionEngine`
reproduces exactly that routing for *real* solver work —
:meth:`repro.core.gravity.fmm.FmmSolver.solve` hands it the recorded
M2L/P2P interaction batches, :class:`repro.core.mesh.BlockMesh` hands it
per-block hydro right-hand sides — instead of only for the synthetic
kernels of the simulator.

Placement decisions are counted under ``/cuda/launched/gpu`` and
``/cuda/launched/cpu`` (the Sec. 6.1.2 launch-ratio statistic, now
measured on a live solve), and :meth:`publish_counters` republishes the
scheduler's ``/threads/...`` gauges so one call snapshots the whole hot
path.

Every combination of resources degrades gracefully:

========== ========= ==================================================
scheduler  device(s)  behaviour
========== ========= ==================================================
yes        yes        tasks fan out to workers; workers launch on idle
                      streams, overflow to themselves (the paper's rule)
yes        no         plain work-stealing CPU execution
no         yes        calling thread launches on streams, overflow inline
no         no         synchronous execution (serial reference)
========== ========= ==================================================
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from ..runtime.counters import CounterRegistry, default_registry
from ..runtime.cuda import CudaDevice, StreamPool, DEFAULT_LEASE_TIMEOUT_S
from ..runtime.future import Future, Promise
from ..runtime.scheduler import WorkStealingScheduler

__all__ = ["ExecutionEngine"]


def _forward(src: Future, dst_promise: Promise) -> None:
    """Copy a ready future's outcome into a promise."""
    if src.has_exception():
        try:
            src.get()
        except BaseException as exc:
            dst_promise.set_exception(exc)
    else:
        dst_promise.set_value(src.get())


class ExecutionEngine:
    """Routes batches of kernel work to scheduler workers and GPU streams.

    Parameters
    ----------
    scheduler:
        Optional :class:`~repro.runtime.scheduler.WorkStealingScheduler`;
        when present, submitted work becomes stealable tasks.
    device / devices:
        Optional :class:`~repro.runtime.cuda.CudaDevice` (or several);
        when present, tasks try to acquire an idle stream from a shared
        :class:`~repro.runtime.cuda.StreamPool` before overflowing to the
        CPU — the paper's launch policy, with leases that cannot leak.
    registry:
        Counter registry for ``/cuda/launched/*`` and ``/exec/*``
        (default: the global registry).
    """

    def __init__(self, scheduler: WorkStealingScheduler | None = None,
                 device: CudaDevice | None = None,
                 devices: Sequence[CudaDevice] | None = None,
                 registry: CounterRegistry | None = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S):
        devs = list(devices) if devices else []
        if device is not None:
            devs.insert(0, device)
        self.scheduler = scheduler
        self.devices = devs
        self.pool = StreamPool(devs, lease_timeout) if devs else None
        self.registry = registry or default_registry()
        self._lock = threading.Lock()
        self.gpu_launches = 0
        self.cpu_launches = 0

    # -- placement ---------------------------------------------------------

    def _count_launch(self, gpu: bool) -> None:
        with self._lock:
            if gpu:
                self.gpu_launches += 1
            else:
                self.cpu_launches += 1
        self.registry.increment(
            "/cuda/launched/gpu" if gpu else "/cuda/launched/cpu")

    def _place_and_run(self, fn: Callable[..., Any], args: tuple,
                       promise: Promise, use_device: bool) -> None:
        """GPU-else-CPU placement of one kernel, outcome into ``promise``."""
        try:
            lease = self.pool.acquire() \
                if (use_device and self.pool is not None) else None
            if lease is not None:
                with lease:
                    self._count_launch(gpu=True)
                    fut = lease.enqueue(fn, *args)
                fut.then(lambda f: _forward(f, promise))
            else:
                if use_device and self.pool is not None:
                    self._count_launch(gpu=False)
                promise.set_value(fn(*args))
        except BaseException as exc:
            promise.set_exception(exc)

    # -- public API --------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any,
               use_device: bool = True) -> Future:
        """Run ``fn(*args)`` under the engine's routing; returns a future."""
        return self.map(fn, [args], use_device=use_device)[0]

    def map(self, fn: Callable[..., Any], argtuples: Sequence[tuple],
            use_device: bool = True) -> list[Future]:
        """Dispatch ``fn(*args)`` for every tuple; futures in input order.

        With a scheduler, a single fan-out task is posted; running on a
        worker it lands the per-item tasks on that worker's local deque,
        from which idle workers steal (``/threads/stolen``) — the paper's
        breadth-first distribution of a solve's kernel batches.  Without
        one, items run on the calling thread (still using GPU streams
        when available, so device work overlaps the dispatch loop).
        """
        argtuples = list(argtuples)
        promises = [Promise() for _ in argtuples]
        self.registry.increment("/exec/batches")
        self.registry.increment("/exec/tasks", float(len(argtuples)))
        if self.scheduler is None:
            for args, pr in zip(argtuples, promises):
                self._place_and_run(fn, args, pr, use_device)
        else:
            tasks = [
                (lambda a=args, p=pr: self._place_and_run(
                    fn, a, p, use_device))
                for args, pr in zip(argtuples, promises)
            ]

            def fan_out() -> None:
                self.scheduler.post_batch(tasks)

            self.scheduler.post(fan_out)
        return [p.get_future() for p in promises]

    def synchronize(self) -> None:
        """Drain the scheduler and every device (barrier for diagnostics)."""
        if self.scheduler is not None:
            self.scheduler.wait_idle()
        for dev in self.devices:
            dev.synchronize()

    # -- diagnostics -------------------------------------------------------

    @property
    def gpu_fraction(self) -> float:
        """Fraction of placed kernels that ran on a GPU stream."""
        with self._lock:
            total = self.gpu_launches + self.cpu_launches
            return self.gpu_launches / total if total else 0.0

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Snapshot engine + scheduler + device gauges into ``registry``."""
        registry = registry or self.registry
        with self._lock:
            gpu, cpu = self.gpu_launches, self.cpu_launches
        total = gpu + cpu
        registry.set_gauge("/exec/launched/gpu", float(gpu))
        registry.set_gauge("/exec/launched/cpu", float(cpu))
        registry.set_gauge("/exec/gpu-fraction",
                           gpu / total if total else 0.0)
        if self.scheduler is not None:
            self.scheduler.publish_counters(registry)
        for dev in self.devices:
            dev.publish_counters(registry)
